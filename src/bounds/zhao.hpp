// The paper's consistency results: Theorem 1, Theorem 3, Theorem 2 and
// Remark 1, plus the derived constants δ₄ (Eq. 60) and δ₁ (Eq. 61) and
// the Lemma 7 sandwich used in the Theorem-2 proof.
#pragma once

#include "bounds/params.hpp"
#include "support/logprob.hpp"

namespace neatbound::bounds {

// ---------------------------------------------------------------------------
// Theorem 1 — the exact Markov-chain condition.
// ---------------------------------------------------------------------------

/// The two sides of Inequality (10): ᾱ^{2Δ}·α₁  vs  p·ν·n.
struct Theorem1Sides {
  LogProb convergence_rate;  ///< ᾱ^{2Δ}·α₁ — per-round convergence-opportunity prob.
  LogProb adversary_rate;    ///< pνn — expected adversary blocks per round
};

[[nodiscard]] Theorem1Sides theorem1_sides(const ProtocolParams& params);

/// Inequality (10) with explicit δ₁: ᾱ^{2Δ}α₁ ≥ (1+δ₁)·pνn.
[[nodiscard]] bool theorem1_holds(const ProtocolParams& params, double delta1);

/// Margin ᾱ^{2Δ}α₁ / (pνn); Theorem 1 applies iff margin > 1 (then any
/// δ₁ ∈ (0, margin−1] witnesses it).
[[nodiscard]] LogProb theorem1_margin(const ProtocolParams& params);

/// Smallest c for which condition (10) holds with the given δ₁ at (n, Δ,
/// ν), found by bisection (the margin is monotone in c in the admissible
/// regime).  With δ₁ → 0 this is the exact Theorem-1 frontier; larger δ₁
/// buys concentration speed (via Eq. 23) at the price of a larger c.
[[nodiscard]] double theorem1_c_min(double nu, double n, double delta,
                                    double delta1);

// ---------------------------------------------------------------------------
// Theorem 3 / Theorem 2 — the explicit c conditions.
// ---------------------------------------------------------------------------

/// Inequality (50): pn ≤ ε₁·ln(μ/ν) / ((ln(μ/ν)+1)·μ).
[[nodiscard]] bool theorem3_pn_condition(const ProtocolParams& params,
                                         double eps1);

/// Inequality (51): c ≥ (2μ/ln(μ/ν) + 1/Δ)·(1+ε₂)/(1−ε₁).
[[nodiscard]] bool theorem3_c_condition(const ProtocolParams& params,
                                        double eps1, double eps2);

/// Theorem 2, Inequality (11): c ≥ max{ (2μ/ln(μ/ν)+1/Δ)(1+ε₂)/(1−ε₁),
///                                      (ln(μ/ν)+1)μ/(ε₁Δln(μ/ν)) }.
[[nodiscard]] bool theorem2_holds(const ProtocolParams& params, double eps1,
                                  double eps2);

/// The infimum over admissible (ε₁, ε₂) of the RHS of (11):
/// with ε₂ → 0⁺ and ε₁ chosen to equalize the two max-terms,
///   c_inf(ν, Δ) = 2μ/ln(μ/ν) + 1/Δ + (ln(μ/ν)+1)·μ/(Δ·ln(μ/ν)).
/// Consistency is guaranteed by Theorem 2 for any c strictly above this.
[[nodiscard]] double theorem2_c_infimum(double nu, double delta);

/// The neat asymptote 2μ/ln(μ/ν) — what the paper's headline reports.
[[nodiscard]] double neat_bound_c(double nu);

// ---------------------------------------------------------------------------
// Constants δ₄, δ₁ used to pass from Theorem 1 to Theorem 3.
// ---------------------------------------------------------------------------

/// Eq. (60): δ₄ = (ε₁+ε₂)·ln(μ/ν) / (ε₁+ε₂+(1−ε₁)(ln(μ/ν)+1)).
[[nodiscard]] double delta4_from_epsilons(double nu, double eps1, double eps2);

/// Eq. (61): δ₁ = (1+δ₄)·(1 − ε₁·ln(μ/ν)/(ln(μ/ν)+1)) − 1.
[[nodiscard]] double delta1_from_delta4(double nu, double eps1, double delta4);

// ---------------------------------------------------------------------------
// Lemma 7 — the sandwich that turns the Δ-th-root expression into the neat
// bound:  2/ln(μ/ν) ≤ 1/(Δ·(1−(ν/μ)^{1/(2Δ)})) ≤ 2/ln(μ/ν) + 1/Δ.  (82)
// ---------------------------------------------------------------------------

struct Lemma7Sandwich {
  double lower;   ///< 2/ln(μ/ν)
  double middle;  ///< 1/(Δ·(1−(ν/μ)^{1/(2Δ)}))
  double upper;   ///< 2/ln(μ/ν) + 1/Δ
  [[nodiscard]] bool holds() const noexcept {
    return lower <= middle && middle <= upper;
  }
};

[[nodiscard]] Lemma7Sandwich lemma7_sandwich(double nu, double delta);

// ---------------------------------------------------------------------------
// Remark 1 — the explicit ν-windows for Δ = 10¹³ (Inequalities 12–17).
// ---------------------------------------------------------------------------

struct Remark1Window {
  double nu_lo = 0.0;      ///< 1/(1+exp(Δ^{δ₁}))          (Ineq. 12, lower)
  double log10_nu_lo = 0.0;  ///< log₁₀(ν_lo), stable even when ν_lo underflows
  double nu_hi = 0.0;      ///< 1/(1+exp(1/(Δ^{δ₂}−1)))    (Ineq. 12, upper)
  double half_minus_hi = 0.0;  ///< ½ − ν_hi (the paper reports 10⁻⁷, 10⁻⁹)
  double factor = 0.0;     ///< (1+Δ^{δ₁−1})/(1−Δ^{δ₁+δ₂−1}) (Ineq. 13)
  double factor_minus_one = 0.0;  ///< factor − 1 (paper reports 5·10⁻⁵, 2·10⁻³)
};

/// Computes the window for given Δ and exponents (δ₁, δ₂) with δ₁+δ₂ < 1.
/// Uses expm1/log-space forms so ν_lo ~ 10⁻⁶³ and ½−ν_hi ~ 10⁻⁷ are exact.
[[nodiscard]] Remark1Window remark1_window(double delta, double d1, double d2);

/// Inequality (13): the c threshold over the window,
///   c ≥ 2μ/ln(μ/ν) · (1+ε₂) · (1+Δ^{δ₁−1})/(1−Δ^{δ₁+δ₂−1}).
[[nodiscard]] double remark1_c_threshold(double nu, double delta, double d1,
                                         double d2, double eps2);

}  // namespace neatbound::bounds
