// Chain growth and chain quality in the Δ-delay model — the two §II
// properties the paper defers to future work, provided here as the
// standard analytical companions so the simulator has something exact to
// be compared against.
//
// * Growth: honest players' chains grow at least at the rate at which
//   "isolated-enough" honest successes arrive.  Two classical estimates:
//     g_pessimistic = ᾱ^{Δ−1}·α   (a success preceded by Δ−1 quiet rounds
//                                  definitely adds one height — the
//                                  PSS-style lower bound), and
//     g_renewal     = α/(1+Δα)    (one success per busy period of length
//                                  1/α plus a Δ propagation stall).
// * Quality: out of the blocks in any long window of an honest chain, the
//   adversary contributes at most its mining share against the honest
//   *growth*:  q_bound = 1 − pνn/g.
#pragma once

#include "bounds/params.hpp"

namespace neatbound::bounds {

/// ᾱ^{Δ−1}·α — rate of honest successes with Δ−1 quiet predecessors
/// (each necessarily increases every honest chain's length by ≥ 1).
[[nodiscard]] double growth_pessimistic(const ProtocolParams& params);

/// α/(1+Δα) — the renewal estimate of growth under worst-case Δ delays.
[[nodiscard]] double growth_renewal(const ProtocolParams& params);

/// 1/Δ-free upper bound: growth can never exceed α (one level per round
/// with ≥1 honest success) — useful as a sanity envelope.
[[nodiscard]] double growth_upper(const ProtocolParams& params);

/// Chain-quality lower bound 1 − pνn/g for a given growth rate g (clamped
/// to [0,1]); the adversary can displace at most one honest block per
/// adversarial block.
[[nodiscard]] double quality_bound_for_growth(const ProtocolParams& params,
                                              double growth);

/// Convenience: quality bound at the pessimistic growth estimate.
[[nodiscard]] double quality_pessimistic(const ProtocolParams& params);

/// Ideal-share quality 1 − ν/μ (the selfish-mining benchmark line).
[[nodiscard]] double quality_ideal_share(const ProtocolParams& params);

}  // namespace neatbound::bounds
