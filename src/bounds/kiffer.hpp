// Kiffer–Rajaraman–shelat (CCS 2018)-style Markov bound, in two variants.
//
// [6] bounds consistency by comparing the long-run rate of convergence
// opportunities — estimated from a renewal argument with expected
// inter-block waiting times ℓ — against the adversary's block rate pνn.
// A convergence-opportunity cycle consists of an honest block, a Δ-round
// quiet period, an isolated honest block and another Δ-round quiet period,
// giving an opportunity rate of roughly 1/(2Δ + 2ℓ) where ℓ is the
// expected number of rounds until some honest block appears.
//
// The paper (§IV, "Novelty of our Theorem 1") points out that [6]
// computes ℓ incorrectly as 1/(μnp) where it should be 1/α with
// α = 1 − (1−p)^{μn}.  Both variants are provided:
//   * as-published: ℓ = 1/(pμn)
//   * corrected:    ℓ = 1/α
// The two coincide asymptotically as pμn → 0 and diverge as block rates
// grow, which bench_tightness_ablation tabulates.
#pragma once

#include "bounds/params.hpp"

namespace neatbound::bounds {

enum class KifferVariant {
  kAsPublished,  ///< ℓ = 1/(pμn)  (the computation the paper flags as wrong)
  kCorrected,    ///< ℓ = 1/α      (the fix the paper prescribes)
};

/// Estimated convergence-opportunity rate 1/(2Δ + 2ℓ).
[[nodiscard]] double kiffer_opportunity_rate(const ProtocolParams& params,
                                             KifferVariant variant);

/// The consistency condition: opportunity rate ≥ (1+δ)·pνn.
[[nodiscard]] bool kiffer_condition_holds(const ProtocolParams& params,
                                          KifferVariant variant,
                                          double delta1);

}  // namespace neatbound::bounds
