#include "bounds/lemmas.hpp"

#include <cmath>

#include "bounds/zhao.hpp"
#include "support/contracts.hpp"

namespace neatbound::bounds {

Lemma2Sides lemma2_sides(const ProtocolParams& params) {
  const double pmn = params.p() * params.honest_trials();
  NEATBOUND_EXPECTS(pmn > 0.0 && pmn < 1.0,
                    "Lemma 2 requires 0 < p*mu*n < 1 (condition 65)");
  Lemma2Sides sides;
  sides.alpha1 = params.alpha1().linear();
  sides.lower_bound = pmn * (1.0 - pmn);
  return sides;
}

bool lemma2_condition_66(const ProtocolParams& params, double delta1) {
  NEATBOUND_EXPECTS(delta1 > 0.0, "requires delta1 > 0");
  const double pmn = params.p() * params.honest_trials();
  NEATBOUND_EXPECTS(pmn < 1.0, "condition (65) requires p*mu*n < 1");
  const double two_delta = 2.0 * params.delta();
  // RHS in log space: ((1+δ₁)/(1−pμn)·ν/μ)^{1/(2Δ)}.
  const double log_rhs =
      (std::log1p(delta1) - std::log1p(-pmn) +
       std::log(params.nu() / params.mu())) /
      two_delta;
  return params.alpha_bar().log() >= log_rhs;
}

Lemma3Sides lemma3_sides(const ProtocolParams& params, double eps1,
                         double delta4) {
  NEATBOUND_EXPECTS(delta4 > 0.0, "requires delta4 > 0");
  const double pmn = params.p() * params.honest_trials();
  NEATBOUND_EXPECTS(pmn < 1.0, "requires p*mu*n < 1");
  Lemma3Sides sides;
  sides.delta1 = delta1_from_delta4(params.nu(), eps1, delta4);
  const double two_delta = 2.0 * params.delta();
  sides.lhs =
      std::exp((std::log1p(sides.delta1) - std::log1p(-pmn)) / two_delta);
  sides.rhs = 1.0 + delta4 / two_delta;
  return sides;
}

bool lemma3_condition_71(const ProtocolParams& params, double delta4) {
  NEATBOUND_EXPECTS(delta4 > 0.0, "requires delta4 > 0");
  const double two_delta = 2.0 * params.delta();
  const double log_rhs = std::log1p(delta4 / two_delta) +
                         std::log(params.nu() / params.mu()) / two_delta;
  return params.alpha_bar().log() >= log_rhs;
}

double lemma4_c_threshold(const ProtocolParams& params, double delta4) {
  const double lg = params.log_mu_over_nu();
  NEATBOUND_EXPECTS(delta4 > 0.0 && delta4 < lg,
                    "Lemma 4 requires 0 < delta4 < ln(mu/nu) (condition 73)");
  const double two_delta = 2.0 * params.delta();
  // ln[(1+δ₄/(2Δ))(ν/μ)^{1/(2Δ)}] — negative by Proposition 2.
  const double log_inner = std::log1p(delta4 / two_delta) - lg / two_delta;
  NEATBOUND_ENSURES(log_inner < 0.0, "Proposition 2 violated");
  // Denominator 1 − inner^{1/(μn)} = −expm1(log_inner/(μn)).
  const double denom = -std::expm1(log_inner / params.honest_trials());
  return 1.0 / (params.n() * params.delta() * denom);
}

double proposition2_value(double nu, double delta, double delta4) {
  NEATBOUND_EXPECTS(nu > 0.0 && nu < 0.5, "requires nu in (0,1/2)");
  const double lg = std::log((1.0 - nu) / nu);
  NEATBOUND_EXPECTS(delta4 > 0.0 && delta4 < lg,
                    "Proposition 2 requires 0 < delta4 < ln(mu/nu)");
  const double two_delta = 2.0 * delta;
  return -std::expm1(std::log1p(delta4 / two_delta) - lg / two_delta);
}

Lemma5Sides lemma5_sides(const ProtocolParams& params, double delta4) {
  const double a =
      proposition2_value(params.nu(), params.delta(), delta4);
  Lemma5Sides sides;
  sides.lhs = params.mu() / (params.delta() * a);
  sides.rhs = lemma4_c_threshold(params, delta4);
  return sides;
}

Lemma6Sides lemma6_sides(double nu, double delta, double delta4) {
  NEATBOUND_EXPECTS(nu > 0.0 && nu < 0.5, "requires nu in (0,1/2)");
  const double lg = std::log((1.0 - nu) / nu);
  NEATBOUND_EXPECTS(delta4 > 0.0 && delta4 < lg,
                    "Lemma 6 requires 0 < delta4 < ln(mu/nu)");
  const double two_delta = 2.0 * delta;
  Lemma6Sides sides;
  const double one_minus_root = -std::expm1(-lg / two_delta);
  sides.lhs = (1.0 + delta4 / (lg - delta4)) / one_minus_root;
  const double one_minus_scaled =
      -std::expm1(std::log1p(delta4 / two_delta) - lg / two_delta);
  sides.rhs = 1.0 / one_minus_scaled;
  return sides;
}

Lemma8Sides lemma8_sides(double nu, double eps1, double eps2) {
  NEATBOUND_EXPECTS(eps1 > 0.0 && eps1 < 1.0, "requires eps1 in (0,1)");
  NEATBOUND_EXPECTS(eps2 > 0.0, "requires eps2 > 0");
  const double lg = std::log((1.0 - nu) / nu);
  const double delta4 = delta4_from_epsilons(nu, eps1, eps2);
  Lemma8Sides sides;
  sides.lhs = 1.0 + delta4 / (lg - delta4);
  sides.rhs = (1.0 + eps2) / (1.0 - eps1);
  return sides;
}

}  // namespace neatbound::bounds
