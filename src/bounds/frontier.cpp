#include "bounds/frontier.hpp"

#include <cmath>
#include <limits>

#include "bounds/kiffer.hpp"
#include "bounds/pss.hpp"
#include "bounds/zhao.hpp"
#include "support/math.hpp"

namespace neatbound::bounds {

std::string bound_name(BoundKind kind) {
  switch (kind) {
    case BoundKind::kZhaoNeat:
      return "Zhao neat bound 2mu/ln(mu/nu)";
    case BoundKind::kZhaoTheorem2:
      return "Zhao Theorem 2 (optimized eps)";
    case BoundKind::kZhaoTheorem1Exact:
      return "Zhao Theorem 1 (exact Markov)";
    case BoundKind::kPssConsistency:
      return "PSS consistency (closed form)";
    case BoundKind::kPssConsistencyExact:
      return "PSS consistency (exact)";
    case BoundKind::kPssAttack:
      return "PSS attack frontier";
    case BoundKind::kKifferAsPublished:
      return "Kiffer renewal (as published)";
    case BoundKind::kKifferCorrected:
      return "Kiffer renewal (corrected)";
  }
  return "?";
}

bool certifies(BoundKind kind, const ProtocolParams& params) {
  switch (kind) {
    case BoundKind::kZhaoNeat:
      return params.c() > neat_bound_c(params.nu());
    case BoundKind::kZhaoTheorem2:
      return params.c() > theorem2_c_infimum(params.nu(), params.delta());
    case BoundKind::kZhaoTheorem1Exact:
      return theorem1_margin(params) > LogProb::one();
    case BoundKind::kPssConsistency:
      return params.nu() < pss_consistency_nu_max(params.c());
    case BoundKind::kPssConsistencyExact:
      return pss_consistency_exact(params);
    case BoundKind::kPssAttack:
      return !pss_attack_applies(params.nu(), params.c());
    case BoundKind::kKifferAsPublished:
      return kiffer_opportunity_rate(params, KifferVariant::kAsPublished) >
             params.adversary_rate();
    case BoundKind::kKifferCorrected:
      return kiffer_opportunity_rate(params, KifferVariant::kCorrected) >
             params.adversary_rate();
  }
  return false;
}

namespace {
constexpr double kNuFloor = 1e-80;
constexpr double kNuCeil = 0.5 - 1e-15;
constexpr double kCFloor = 1e-6;
constexpr double kCCeil = 1e9;
}  // namespace

double nu_max(BoundKind kind, double c, double n, double delta) {
  NEATBOUND_EXPECTS(c > 0.0, "c must be positive");
  // Closed forms first.
  if (kind == BoundKind::kPssConsistency) return pss_consistency_nu_max(c);
  if (kind == BoundKind::kPssAttack) return pss_attack_nu_threshold(c);

  const auto pred = [&](double nu) {
    return certifies(kind, ProtocolParams::from_c(n, delta, nu, c));
  };
  if (!pred(kNuFloor)) return 0.0;
  if (pred(kNuCeil)) return kNuCeil;
  return bisect_last_true_log(pred, kNuFloor, kNuCeil).value;
}

double c_min(BoundKind kind, double nu, double n, double delta) {
  NEATBOUND_EXPECTS(nu > 0.0 && nu < 0.5, "requires nu in (0, 1/2)");
  switch (kind) {
    case BoundKind::kZhaoNeat:
      return neat_bound_c(nu);
    case BoundKind::kZhaoTheorem2:
      return theorem2_c_infimum(nu, delta);
    case BoundKind::kPssConsistency:
      return pss_consistency_c_min(nu);
    default:
      break;
  }
  const auto fails = [&](double c) {
    return !certifies(kind, ProtocolParams::from_c(n, delta, nu, c));
  };
  if (!fails(kCFloor)) return kCFloor;
  if (fails(kCCeil)) return std::numeric_limits<double>::infinity();
  return bisect_last_true_log(fails, kCFloor, kCCeil).value;
}

}  // namespace neatbound::bounds
