#include "bounds/zhao.hpp"

#include <cmath>
#include <limits>

#include "support/contracts.hpp"
#include "support/math.hpp"

namespace neatbound::bounds {

Theorem1Sides theorem1_sides(const ProtocolParams& params) {
  const LogProb abar = params.alpha_bar();
  const LogProb a1 = params.alpha1();
  Theorem1Sides sides;
  sides.convergence_rate = abar.pow(2.0 * params.delta()) * a1;
  sides.adversary_rate = LogProb::from_linear(params.adversary_rate());
  return sides;
}

bool theorem1_holds(const ProtocolParams& params, double delta1) {
  NEATBOUND_EXPECTS(delta1 > 0.0, "Theorem 1 requires delta1 > 0");
  const Theorem1Sides sides = theorem1_sides(params);
  return sides.convergence_rate >=
         LogProb::from_linear(1.0 + delta1) * sides.adversary_rate;
}

LogProb theorem1_margin(const ProtocolParams& params) {
  const Theorem1Sides sides = theorem1_sides(params);
  return sides.convergence_rate / sides.adversary_rate;
}

double theorem1_c_min(double nu, double n, double delta, double delta1) {
  NEATBOUND_EXPECTS(delta1 > 0.0, "requires delta1 > 0");
  const auto fails = [&](double c) {
    return !theorem1_holds(ProtocolParams::from_c(n, delta, nu, c), delta1);
  };
  constexpr double kCFloor = 1e-6;
  constexpr double kCCeil = 1e9;
  if (!fails(kCFloor)) return kCFloor;
  if (fails(kCCeil)) {
    return std::numeric_limits<double>::infinity();
  }
  return bisect_last_true_log(fails, kCFloor, kCCeil).value;
}

bool theorem3_pn_condition(const ProtocolParams& params, double eps1) {
  NEATBOUND_EXPECTS(eps1 > 0.0 && eps1 < 1.0, "requires eps1 in (0,1)");
  const double lg = params.log_mu_over_nu();
  const double rhs = eps1 * lg / ((lg + 1.0) * params.mu());
  return params.p() * params.n() <= rhs;
}

bool theorem3_c_condition(const ProtocolParams& params, double eps1,
                          double eps2) {
  NEATBOUND_EXPECTS(eps1 > 0.0 && eps1 < 1.0, "requires eps1 in (0,1)");
  NEATBOUND_EXPECTS(eps2 > 0.0, "requires eps2 > 0");
  const double lg = params.log_mu_over_nu();
  const double rhs = (2.0 * params.mu() / lg + 1.0 / params.delta()) *
                     (1.0 + eps2) / (1.0 - eps1);
  return params.c() >= rhs;
}

bool theorem2_holds(const ProtocolParams& params, double eps1, double eps2) {
  // Inequality (11) is exactly the conjunction of (50) and (51); note that
  // the second max-term of (11) equals the (50) condition rewritten in c:
  //   pn ≤ ε₁·lg/((lg+1)μ)  ⇔  c = 1/(pnΔ) ≥ (lg+1)μ/(ε₁·Δ·lg).
  return theorem3_pn_condition(params, eps1) &&
         theorem3_c_condition(params, eps1, eps2);
}

double theorem2_c_infimum(double nu, double delta) {
  NEATBOUND_EXPECTS(nu > 0.0 && nu < 0.5, "requires nu in (0, 1/2)");
  NEATBOUND_EXPECTS(delta >= 1.0, "requires delta >= 1");
  const double mu = 1.0 - nu;
  const double lg = std::log(mu / nu);
  // With ε₂ → 0⁺, the RHS of (11) is max{A/(1−ε₁), B/ε₁} where
  //   A = 2μ/lg + 1/Δ  and  B = (lg+1)·μ/(Δ·lg).
  // A/(1−ε₁) increases and B/ε₁ decreases in ε₁, so the infimum over ε₁ is
  // at the crossing ε₁* = B/(A+B), giving value A + B.
  const double a = 2.0 * mu / lg + 1.0 / delta;
  const double b = (lg + 1.0) * mu / (delta * lg);
  return a + b;
}

double neat_bound_c(double nu) {
  NEATBOUND_EXPECTS(nu > 0.0 && nu < 0.5, "requires nu in (0, 1/2)");
  const double mu = 1.0 - nu;
  return 2.0 * mu / std::log(mu / nu);
}

double delta4_from_epsilons(double nu, double eps1, double eps2) {
  NEATBOUND_EXPECTS(nu > 0.0 && nu < 0.5, "requires nu in (0, 1/2)");
  NEATBOUND_EXPECTS(eps1 > 0.0 && eps1 < 1.0, "requires eps1 in (0,1)");
  NEATBOUND_EXPECTS(eps2 > 0.0, "requires eps2 > 0");
  const double lg = std::log((1.0 - nu) / nu);
  return (eps1 + eps2) * lg / (eps1 + eps2 + (1.0 - eps1) * (lg + 1.0));
}

double delta1_from_delta4(double nu, double eps1, double delta4) {
  NEATBOUND_EXPECTS(nu > 0.0 && nu < 0.5, "requires nu in (0, 1/2)");
  NEATBOUND_EXPECTS(eps1 > 0.0 && eps1 < 1.0, "requires eps1 in (0,1)");
  NEATBOUND_EXPECTS(delta4 > 0.0, "requires delta4 > 0");
  const double lg = std::log((1.0 - nu) / nu);
  return (1.0 + delta4) * (1.0 - eps1 * lg / (lg + 1.0)) - 1.0;
}

Lemma7Sandwich lemma7_sandwich(double nu, double delta) {
  NEATBOUND_EXPECTS(nu > 0.0 && nu < 0.5, "requires nu in (0, 1/2)");
  NEATBOUND_EXPECTS(delta >= 1.0, "requires delta >= 1");
  const double mu = 1.0 - nu;
  const double lg = std::log(mu / nu);
  Lemma7Sandwich s;
  s.lower = 2.0 / lg;
  // 1 − (ν/μ)^{1/(2Δ)} = 1 − e^{−lg/(2Δ)} = −expm1(−lg/(2Δ)), stable even
  // when lg/(2Δ) ~ 10⁻¹⁴ (paper-scale Δ).
  const double one_minus_root = -std::expm1(-lg / (2.0 * delta));
  s.middle = 1.0 / (delta * one_minus_root);
  s.upper = 2.0 / lg + 1.0 / delta;
  return s;
}

Remark1Window remark1_window(double delta, double d1, double d2) {
  NEATBOUND_EXPECTS(delta > 1.0, "remark 1 requires delta > 1");
  NEATBOUND_EXPECTS(d1 > 0.0 && d2 > 0.0 && d1 + d2 < 1.0,
                    "requires delta1, delta2 > 0 with delta1 + delta2 < 1");
  Remark1Window w;
  // ν_lo = 1/(1+e^{x}) with x = Δ^{δ₁} large: equals σ(−x) = e^{−x}/(1+e^{−x}).
  const double x = std::pow(delta, d1);
  const double emx = std::exp(-x);
  w.nu_lo = emx / (1.0 + emx);
  // ln ν_lo = −(x + ln(1+e^{−x})) — finite even when ν_lo underflows.
  w.log10_nu_lo = -(x + std::log1p(emx)) / std::log(10.0);
  // ν_hi = 1/(1+e^{y}) with y = 1/(Δ^{δ₂} − 1) tiny:
  //   ½ − ν_hi = ½·(e^{y}−1)/(e^{y}+1) = ½·tanh(y/2), stable via tanh.
  const double y = 1.0 / (std::pow(delta, d2) - 1.0);
  w.half_minus_hi = 0.5 * std::tanh(y / 2.0);
  w.nu_hi = 0.5 - w.half_minus_hi;
  // Factor of Inequality (13): (1+Δ^{δ₁−1})/(1−Δ^{δ₁+δ₂−1}).
  const double t1 = std::pow(delta, d1 - 1.0);
  const double t2 = std::pow(delta, d1 + d2 - 1.0);
  NEATBOUND_ENSURES(t2 < 1.0, "delta^{d1+d2-1} must be < 1");
  w.factor = (1.0 + t1) / (1.0 - t2);
  // factor − 1 = (t1 + t2)/(1 − t2), computed directly to keep precision
  // when both terms are ~1e-11.
  w.factor_minus_one = (t1 + t2) / (1.0 - t2);
  return w;
}

double remark1_c_threshold(double nu, double delta, double d1, double d2,
                           double eps2) {
  NEATBOUND_EXPECTS(eps2 >= 0.0, "requires eps2 >= 0");
  const Remark1Window w = remark1_window(delta, d1, d2);
  NEATBOUND_EXPECTS(nu >= w.nu_lo && nu <= w.nu_hi,
                    "nu outside the Remark 1 window for these exponents");
  return neat_bound_c(nu) * (1.0 + eps2) * w.factor;
}

}  // namespace neatbound::bounds
