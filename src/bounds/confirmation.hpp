// Confirmation-window calculator: the paper's proof machinery turned into
// an operational answer — "after how many rounds is a block final except
// with probability ≤ target?".
//
// The failure bound for a window of T rounds is assembled exactly as in
// Section V:
//   * margin δ₁ from the Theorem-1 ratio ᾱ^{2Δ}α₁ / (pνn),
//   * the δ₂/δ₃ split of Eq. (23),
//   * lower tail of C(t₀,t₀+T−1): Chernoff–Hoeffding for Markov chains
//     (Eq. 47) with a caller-supplied mixing time τ (computed from the
//     explicit suffix chain at laptop scale),
//   * upper tail of A(t₀,t₀+T−1): Arratia–Gordon (Eq. 49),
// summed by union bound.
#pragma once

#include <optional>

#include "bounds/params.hpp"

namespace neatbound::bounds {

struct ConfirmationBound {
  double delta1 = 0.0;      ///< Theorem-1 margin − 1
  double delta2 = 0.0;      ///< Eq. (23) lower-tail split
  double delta3 = 0.0;      ///< Eq. (23) upper-tail split
  double log_c_tail = 0.0;  ///< ln of the Eq. (47) bound
  double log_a_tail = 0.0;  ///< ln of the Eq. (49) bound
  double log_failure = 0.0; ///< ln(union bound)
};

/// Failure bound for a window of `rounds` rounds with ε-mixing time `tau`
/// (τ(1/8) of C_{F‖P}; use the explicit C_F value as a proxy at laptop
/// scale) and initial-distribution π-norm `phi_pi_norm` (1 for a
/// stationary start; Proposition 1 bounds the worst case).
/// Precondition: Theorem 1 margin > 1 at `params`.
[[nodiscard]] ConfirmationBound confirmation_failure_bound(
    const ProtocolParams& params, double tau, double rounds,
    double phi_pi_norm = 1.0);

struct ConfirmationWindow {
  double rounds = 0.0;           ///< smallest window meeting the target
  double expected_blocks = 0.0;  ///< α·rounds honest-block arrivals
  double delta_delays = 0.0;     ///< rounds/Δ
};

/// Smallest window T with confirmation_failure_bound ≤ target, or nullopt
/// if the margin is non-positive or `max_rounds` does not suffice.
[[nodiscard]] std::optional<ConfirmationWindow> required_confirmation_window(
    const ProtocolParams& params, double tau, double target_probability,
    double max_rounds = 1e12, double phi_pi_norm = 1.0);

}  // namespace neatbound::bounds
