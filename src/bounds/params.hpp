// Protocol parameters (Table I) and their derived per-round quantities.
#pragma once

#include <cstdint>

#include "support/logprob.hpp"

namespace neatbound::bounds {

/// The (n, p, Δ, ν) parameter tuple of the Δ-delay model, with the paper's
/// standing assumptions enforced:
///   (1) μ + ν = 1       (μ is stored implicitly)
///   (2) 0 < ν < ½ < μ
///   (3) n ≥ 4
/// plus p ∈ (0,1) and Δ ≥ 1.
///
/// n and Δ are real-valued: the paper freely treats μn, νn and 1/(pnΔ) as
/// reals, and Figure 1 uses Δ = 10¹³ where integral arithmetic would
/// overflow intermediate expressions anyway.
class ProtocolParams {
 public:
  ProtocolParams(double n, double p, double delta, double nu);

  /// Alternative construction from c = 1/(pnΔ): sets p = 1/(c·n·Δ).
  static ProtocolParams from_c(double n, double delta, double nu, double c);

  [[nodiscard]] double n() const noexcept { return n_; }
  [[nodiscard]] double p() const noexcept { return p_; }
  [[nodiscard]] double delta() const noexcept { return delta_; }
  [[nodiscard]] double nu() const noexcept { return nu_; }
  [[nodiscard]] double mu() const noexcept { return 1.0 - nu_; }

  /// c := 1/(pnΔ) — expected Δ-delays before some block is mined.
  [[nodiscard]] double c() const noexcept { return 1.0 / (p_ * n_ * delta_); }

  /// Honest / adversarial per-round trial counts μn, νn.
  [[nodiscard]] double honest_trials() const noexcept { return mu() * n_; }
  [[nodiscard]] double adversary_trials() const noexcept { return nu_ * n_; }

  /// α = 1 − (1−p)^{μn}  — P[some honest block this round]   (Eq. 7).
  [[nodiscard]] LogProb alpha() const;
  /// ᾱ = (1−p)^{μn}      — P[no honest block this round]      (Eq. 8).
  [[nodiscard]] LogProb alpha_bar() const;
  /// α₁ = pμn(1−p)^{μn−1} — P[exactly one honest block]       (Eq. 9).
  [[nodiscard]] LogProb alpha1() const;

  /// Expected adversary blocks per round: pνn (mean of Binomial(νn, p)).
  [[nodiscard]] double adversary_rate() const noexcept { return p_ * nu_ * n_; }

  /// ln(μ/ν) — the denominator of the neat bound.
  [[nodiscard]] double log_mu_over_nu() const noexcept;

 private:
  double n_;
  double p_;
  double delta_;
  double nu_;
};

}  // namespace neatbound::bounds
