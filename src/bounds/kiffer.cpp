#include "bounds/kiffer.hpp"

#include "support/contracts.hpp"

namespace neatbound::bounds {

double kiffer_opportunity_rate(const ProtocolParams& params,
                               KifferVariant variant) {
  double ell = 0.0;
  switch (variant) {
    case KifferVariant::kAsPublished:
      ell = 1.0 / (params.p() * params.honest_trials());
      break;
    case KifferVariant::kCorrected:
      ell = 1.0 / params.alpha().linear();
      break;
  }
  return 1.0 / (2.0 * params.delta() + 2.0 * ell);
}

bool kiffer_condition_holds(const ProtocolParams& params,
                            KifferVariant variant, double delta1) {
  NEATBOUND_EXPECTS(delta1 >= 0.0, "delta1 must be non-negative");
  return kiffer_opportunity_rate(params, variant) >=
         (1.0 + delta1) * params.adversary_rate();
}

}  // namespace neatbound::bounds
