#include "bounds/pss.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace neatbound::bounds {

PssSides pss_sides(const ProtocolParams& params) {
  PssSides sides;
  const double alpha = params.alpha().linear();
  sides.lhs = alpha * (1.0 - (2.0 * params.delta() + 2.0) * alpha);
  sides.rhs = params.adversary_rate();
  return sides;
}

bool pss_consistency_exact(const ProtocolParams& params) {
  const PssSides sides = pss_sides(params);
  return sides.lhs > sides.rhs;
}

double pss_consistency_nu_max(double c) {
  NEATBOUND_EXPECTS(c > 0.0, "c must be positive");
  if (c <= 2.0) return 0.0;
  return (2.0 - c + std::sqrt(c * c - 2.0 * c)) / 2.0;
}

double pss_consistency_c_min(double nu) {
  NEATBOUND_EXPECTS(nu > 0.0 && nu < 0.5, "requires nu in (0, 1/2)");
  const double mu = 1.0 - nu;
  return 2.0 * mu * mu / (1.0 - 2.0 * nu);
}

double pss_attack_nu_threshold(double c) {
  NEATBOUND_EXPECTS(c > 0.0, "c must be positive");
  return (2.0 * c + 1.0 - std::sqrt(4.0 * c * c + 1.0)) / 2.0;
}

bool pss_attack_applies(double nu, double c) {
  NEATBOUND_EXPECTS(nu > 0.0 && nu < 1.0, "requires nu in (0,1)");
  NEATBOUND_EXPECTS(c > 0.0, "c must be positive");
  return 1.0 / c > 1.0 / nu - 1.0 / (1.0 - nu);
}

}  // namespace neatbound::bounds
