// Pass–Seeman–Shelat (Eurocrypt 2017) comparison bounds, as used by the
// paper's Figure 1.
//
// * Consistency (exact, [3]): α·(1 − (2Δ+2)·α) > β,
//     with α = 1 − (1−p)^{μn} and β = νnp.
// * Consistency (closed form used for Fig. 1's blue line): the paper's
//     §I derivation c > 2(1−ν)²/(1−2ν), i.e. ν < (2 − c + √(c²−2c))/2,
//     valid for c > 2.
// * Attack (Remark 8.5 of [3], Fig. 1's red line): consistency breaks when
//     1/c > 1/ν − 1/(1−ν), i.e. ν > (2c+1 − √(4c²+1))/2.
#pragma once

#include "bounds/params.hpp"

namespace neatbound::bounds {

/// Exact PSS consistency condition α(1 − (2Δ+2)α) > β.
/// Evaluated in linear space: α is tiny at paper scale but well above the
/// double underflow threshold once multiplied out (α ≈ μ/(cΔ)).
[[nodiscard]] bool pss_consistency_exact(const ProtocolParams& params);

/// The two sides of the exact condition, for margin diagnostics.
struct PssSides {
  double lhs = 0.0;  ///< α(1 − (2Δ+2)α)
  double rhs = 0.0;  ///< β = νnp
};
[[nodiscard]] PssSides pss_sides(const ProtocolParams& params);

/// Closed-form blue-line frontier: largest ν tolerated at a given c,
///   ν_max = (2 − c + √(c²−2c))/2 for c > 2; 0 for c ≤ 2 (no tolerance).
[[nodiscard]] double pss_consistency_nu_max(double c);

/// Closed-form threshold in the other direction: smallest c that tolerates
/// a given ν, c_min = 2(1−ν)²/(1−2ν).
[[nodiscard]] double pss_consistency_c_min(double nu);

/// Red-line attack frontier: the attack of [3, Remark 8.5] succeeds when
/// ν exceeds ν_att = (2c+1 − √(4c²+1))/2.
[[nodiscard]] double pss_attack_nu_threshold(double c);

/// The raw attack condition 1/c > 1/ν − 1/(1−ν).
[[nodiscard]] bool pss_attack_applies(double nu, double c);

}  // namespace neatbound::bounds
