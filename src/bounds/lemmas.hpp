// The paper's proof of Theorem 3 proceeds through a chain of implications
// (52)–(59) justified by Lemmas 2–8 (Appendices B–I).  This header exposes
// each lemma's inequality as a numeric predicate/value pair so that the
// test suite can verify the whole chain mechanically across parameter
// sweeps — i.e. the algebra of the paper is checked by machine, not taken
// on faith.
//
// Notation note: the bare α in the paper's (53)(54)(66)(71) denotes ᾱ =
// (1−p)^{μn} (the overline is lost in the text rendering); the proofs in
// Appendices B and D make this explicit.
#pragma once

#include "bounds/params.hpp"

namespace neatbound::bounds {

/// Lemma 2's engine, Eq. (100): under 0 < pμn < 1 (and μn ≥ 2),
///   α₁ = pμn(1−p)^{μn−1} ≥ pμn(1 − pμn).
struct Lemma2Sides {
  double alpha1;       ///< pμn(1−p)^{μn−1}
  double lower_bound;  ///< pμn(1 − pμn)
  /// At paper scale the two sides agree to ~10⁻²⁸ relative difference,
  /// below double rounding; compare with an epsilon for that reason.
  [[nodiscard]] bool holds() const noexcept {
    return alpha1 >= lower_bound * (1.0 - 1e-12);
  }
};
[[nodiscard]] Lemma2Sides lemma2_sides(const ProtocolParams& params);

/// Lemma 2, statement: Inequality (66) implies Inequality (10).
///   (66): ᾱ ≥ ((1+δ₁)/(1−pμn) · ν/μ)^{1/(2Δ)}
[[nodiscard]] bool lemma2_condition_66(const ProtocolParams& params,
                                       double delta1);

/// Lemma 3, Eq. (70): ((1+δ₁)/(1−pμn))^{1/(2Δ)} ≤ 1 + δ₄/(2Δ),
/// where δ₁ is derived from δ₄ via Eq. (61)/(69).
struct Lemma3Sides {
  double lhs;  ///< ((1+δ₁)/(1−pμn))^{1/(2Δ)}
  double rhs;  ///< 1 + δ₄/(2Δ)
  double delta1;
  [[nodiscard]] bool holds() const noexcept { return lhs <= rhs; }
};
[[nodiscard]] Lemma3Sides lemma3_sides(const ProtocolParams& params,
                                       double eps1, double delta4);

/// Lemma 3's antecedent, Inequality (71):
///   ᾱ ≥ (1 + δ₄/(2Δ))·(ν/μ)^{1/(2Δ)}.
[[nodiscard]] bool lemma3_condition_71(const ProtocolParams& params,
                                       double delta4);

/// Lemma 4, Inequality (74): the c threshold whose satisfaction implies
/// (71).  Returns the RHS of (74).
[[nodiscard]] double lemma4_c_threshold(const ProtocolParams& params,
                                        double delta4);

/// Proposition 2: 1 − (1+δ₄/(2Δ))(ν/μ)^{1/(2Δ)} > 0 for 0 < δ₄ < ln(μ/ν).
[[nodiscard]] double proposition2_value(double nu, double delta,
                                        double delta4);

/// Lemma 5, Inequality (76): RHS ≤ LHS where
///   LHS = μ/(Δ·A)  and  RHS = 1/(nΔ·(1−(1−A)^{1/(μn)})),
///   A = 1 − (1+δ₄/(2Δ))(ν/μ)^{1/(2Δ)}.
struct Lemma5Sides {
  double lhs;  ///< μ/(Δ·A) — the (77) threshold
  double rhs;  ///< the (74) threshold
  [[nodiscard]] bool holds() const noexcept { return lhs >= rhs; }
};
[[nodiscard]] Lemma5Sides lemma5_sides(const ProtocolParams& params,
                                       double delta4);

/// Lemma 6, Inequality (79):
///   1/(1−(ν/μ)^{1/(2Δ)}) · (1 + δ₄/(ln(μ/ν)−δ₄))
///     > 1/(1−(1+δ₄/(2Δ))(ν/μ)^{1/(2Δ)}).
struct Lemma6Sides {
  double lhs;
  double rhs;
  [[nodiscard]] bool holds() const noexcept { return lhs > rhs; }
};
[[nodiscard]] Lemma6Sides lemma6_sides(double nu, double delta, double delta4);

/// Lemma 8, Inequality (85): with δ₄ from Eq. (60),
///   1 + δ₄/(ln(μ/ν)−δ₄) < (1+ε₂)/(1−ε₁).
struct Lemma8Sides {
  double lhs;
  double rhs;
  [[nodiscard]] bool holds() const noexcept { return lhs < rhs; }
};
[[nodiscard]] Lemma8Sides lemma8_sides(double nu, double eps1, double eps2);

}  // namespace neatbound::bounds
