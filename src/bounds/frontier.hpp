// Unified tolerance frontiers: for each bound, the maximum adversarial
// fraction ν_max tolerated at a given c (Figure 1's y-axis) and the
// minimum c required at a given ν.
//
// Closed-form bounds evaluate directly; predicate-style bounds (Theorem 1,
// exact PSS, Kiffer variants) are inverted by monotone bisection over ν on
// a log grid spanning [10⁻⁸⁰, ½).
#pragma once

#include <string>

#include "bounds/params.hpp"

namespace neatbound::bounds {

enum class BoundKind {
  kZhaoNeat,           ///< asymptote c > 2μ/ln(μ/ν)               (headline)
  kZhaoTheorem2,       ///< full Ineq. (11) with optimized ε₁, ε₂→0 (Thm 2/3)
  kZhaoTheorem1Exact,  ///< exact Markov condition (10), δ₁ → 0     (Thm 1)
  kPssConsistency,     ///< blue line: ν < (2−c+√(c²−2c))/2
  kPssConsistencyExact,///< α(1−(2Δ+2)α) > β at the exact (n,p,Δ)
  kPssAttack,          ///< red line: attack succeeds above (2c+1−√(4c²+1))/2
  kKifferAsPublished,  ///< renewal bound with ℓ = 1/(pμn)
  kKifferCorrected,    ///< renewal bound with ℓ = 1/α
};

[[nodiscard]] std::string bound_name(BoundKind kind);

/// Largest ν ∈ (0, ½) for which `kind` certifies consistency at the given
/// c (or, for kPssAttack, the smallest ν at which the attack succeeds).
/// n and delta are needed by the exact bounds; closed-form bounds ignore
/// them.  Returns 0 when no ν > 10⁻⁸⁰ is tolerated.
[[nodiscard]] double nu_max(BoundKind kind, double c, double n, double delta);

/// Smallest c for which `kind` certifies consistency at the given ν.
/// Returns +inf when no c ≤ 10⁹ suffices.
[[nodiscard]] double c_min(BoundKind kind, double nu, double n, double delta);

/// Whether `kind` certifies consistency for the full parameter tuple.
/// (For kPssAttack this instead reports "the attack does NOT succeed".)
[[nodiscard]] bool certifies(BoundKind kind, const ProtocolParams& params);

}  // namespace neatbound::bounds
