#include "bounds/growth_quality.hpp"

#include <algorithm>

namespace neatbound::bounds {

double growth_pessimistic(const ProtocolParams& params) {
  const double alpha = params.alpha().linear();
  return (params.alpha_bar().pow(params.delta() - 1.0) *
          LogProb::from_linear(alpha))
      .linear();
}

double growth_renewal(const ProtocolParams& params) {
  const double alpha = params.alpha().linear();
  return alpha / (1.0 + params.delta() * alpha);
}

double growth_upper(const ProtocolParams& params) {
  return params.alpha().linear();
}

double quality_bound_for_growth(const ProtocolParams& params, double growth) {
  NEATBOUND_EXPECTS(growth > 0.0, "growth must be positive");
  const double q = 1.0 - params.adversary_rate() / growth;
  return std::clamp(q, 0.0, 1.0);
}

double quality_pessimistic(const ProtocolParams& params) {
  return quality_bound_for_growth(params, growth_pessimistic(params));
}

double quality_ideal_share(const ProtocolParams& params) {
  return std::clamp(1.0 - params.nu() / params.mu(), 0.0, 1.0);
}

}  // namespace neatbound::bounds
