#include "bounds/params.hpp"

#include <cmath>

#include "stats/distributions.hpp"
#include "support/contracts.hpp"

namespace neatbound::bounds {

ProtocolParams::ProtocolParams(double n, double p, double delta, double nu)
    : n_(n), p_(p), delta_(delta), nu_(nu) {
  NEATBOUND_EXPECTS(n >= 4.0, "the paper's condition (3): n >= 4");
  NEATBOUND_EXPECTS(p > 0.0 && p < 1.0, "p must be in (0,1)");
  NEATBOUND_EXPECTS(delta >= 1.0, "delta must be >= 1");
  NEATBOUND_EXPECTS(nu > 0.0 && nu < 0.5,
                    "the paper's condition (2): 0 < nu < 1/2");
}

ProtocolParams ProtocolParams::from_c(double n, double delta, double nu,
                                      double c) {
  NEATBOUND_EXPECTS(c > 0.0, "c must be positive");
  return ProtocolParams(n, 1.0 / (c * n * delta), delta, nu);
}

LogProb ProtocolParams::alpha() const {
  return stats::Binomial(honest_trials(), p_).prob_positive();
}

LogProb ProtocolParams::alpha_bar() const {
  return stats::Binomial(honest_trials(), p_).prob_zero();
}

LogProb ProtocolParams::alpha1() const {
  return stats::Binomial(honest_trials(), p_).prob_one();
}

double ProtocolParams::log_mu_over_nu() const noexcept {
  return std::log(mu() / nu_);
}

}  // namespace neatbound::bounds
