#include "bounds/confirmation.hpp"

#include <cmath>

#include "bounds/zhao.hpp"
#include "chains/convergence.hpp"
#include "markov/chernoff.hpp"
#include "stats/large_deviations.hpp"
#include "support/math.hpp"

namespace neatbound::bounds {

ConfirmationBound confirmation_failure_bound(const ProtocolParams& params,
                                             double tau, double rounds,
                                             double phi_pi_norm) {
  NEATBOUND_EXPECTS(tau >= 1.0, "mixing time must be >= 1");
  NEATBOUND_EXPECTS(rounds > 0.0, "window must be positive");
  const double log_margin = theorem1_margin(params).log();
  NEATBOUND_EXPECTS(log_margin > 0.0,
                    "confirmation bound requires Theorem 1 margin > 1");

  ConfirmationBound bound;
  const double one_plus_d1 = std::exp(log_margin);
  bound.delta1 = one_plus_d1 - 1.0;
  // Eq. (23): δ₂ = 1 − (1+δ₁)^{-1/3}, δ₃ = (1+δ₁)^{1/3} − 1, chosen so
  // (1−δ₂)(1+δ₁) − (1+δ₃) > 0.
  bound.delta2 = 1.0 - std::pow(one_plus_d1, -1.0 / 3.0);
  bound.delta3 = std::pow(one_plus_d1, 1.0 / 3.0) - 1.0;

  const double rate = chains::convergence_opportunity_probability(
                          params.alpha_bar(), params.alpha1(),
                          static_cast<std::uint64_t>(params.delta()))
                          .linear();
  markov::MarkovChernoffParams mc;
  mc.stationary_mass = rate;
  mc.steps = rounds;
  mc.delta = bound.delta2;
  mc.mixing_time = tau;
  mc.phi_pi_norm = phi_pi_norm;
  bound.log_c_tail = markov::markov_chernoff_lower(mc).log();

  bound.log_a_tail = stats::binomial_upper_tail_bound(
                         rounds * params.adversary_trials(), params.p(),
                         bound.delta3)
                         .log();
  bound.log_failure = log_add_exp(bound.log_c_tail, bound.log_a_tail);
  return bound;
}

std::optional<ConfirmationWindow> required_confirmation_window(
    const ProtocolParams& params, double tau, double target_probability,
    double max_rounds, double phi_pi_norm) {
  NEATBOUND_EXPECTS(target_probability > 0.0 && target_probability < 1.0,
                    "target probability must be in (0,1)");
  if (theorem1_margin(params).log() <= 0.0) return std::nullopt;
  const double log_target = std::log(target_probability);

  const auto meets = [&](double rounds) {
    return confirmation_failure_bound(params, tau, rounds, phi_pi_norm)
               .log_failure <= log_target;
  };
  if (!meets(max_rounds)) return std::nullopt;
  // The failure bound decreases in T; find the frontier of "too small".
  const auto too_small = [&meets](double rounds) { return !meets(rounds); };
  double window = 1.0;
  if (too_small(1.0)) {
    const auto r = bisect_last_true_log(too_small, 1.0, max_rounds, 1e-6);
    window = r.value;
  }
  ConfirmationWindow result;
  result.rounds = window;
  result.expected_blocks = window * params.alpha().linear();
  result.delta_delays = window / params.delta();
  return result;
}

}  // namespace neatbound::bounds
