#include "analysis/validation.hpp"

#include <cmath>

#include "bounds/params.hpp"
#include "chains/convergence.hpp"
#include "chains/suffix_chain.hpp"
#include "markov/stationary.hpp"
#include "markov/structure.hpp"
#include "markov/walk.hpp"
#include "sim/aggregate.hpp"
#include "stats/large_deviations.hpp"

namespace neatbound::analysis {

ConvergenceRateRow validate_convergence_rate(double n, double delta, double c,
                                             double nu, std::uint64_t rounds,
                                             std::uint32_t seeds,
                                             std::uint64_t base_seed) {
  const auto params = bounds::ProtocolParams::from_c(n, delta, nu, c);
  ConvergenceRateRow row{};
  row.n = n;
  row.delta = delta;
  row.c = c;
  row.nu = nu;
  row.analytic_rate =
      chains::convergence_opportunity_probability(
          params.alpha_bar(), params.alpha1(),
          static_cast<std::uint64_t>(delta))
          .linear();
  row.expected_count = row.analytic_rate * static_cast<double>(rounds);

  stats::RunningStats counts;
  for (std::uint32_t k = 0; k < seeds; ++k) {
    sim::AggregateConfig config;
    config.honest_trials = params.honest_trials();
    config.adversary_trials = params.adversary_trials();
    config.p = params.p();
    config.delta = static_cast<std::uint64_t>(delta);
    config.rounds = rounds;
    config.seed = base_seed + k;
    const sim::AggregateResult result = sim::run_aggregate(config);
    counts.add(static_cast<double>(result.convergence_opportunities));
  }
  row.simulated_mean = counts.mean();
  row.simulated_stderr = counts.stderr_mean();
  row.ci = stats::mean_interval(counts.mean(), counts.stderr_mean());
  row.ratio = row.expected_count > 0.0
                  ? row.simulated_mean / row.expected_count
                  : 0.0;
  return row;
}

AdversaryCountRow validate_adversary_count(double n, double delta, double c,
                                           double nu, std::uint64_t rounds,
                                           std::uint32_t seeds,
                                           std::uint64_t base_seed) {
  const auto params = bounds::ProtocolParams::from_c(n, delta, nu, c);
  AdversaryCountRow row{};
  row.n = n;
  row.delta = delta;
  row.c = c;
  row.nu = nu;
  row.expected_count =
      params.adversary_rate() * static_cast<double>(rounds);

  stats::RunningStats counts;
  for (std::uint32_t k = 0; k < seeds; ++k) {
    sim::AggregateConfig config;
    config.honest_trials = params.honest_trials();
    config.adversary_trials = params.adversary_trials();
    config.p = params.p();
    config.delta = static_cast<std::uint64_t>(delta);
    config.rounds = rounds;
    config.seed = base_seed + k;
    counts.add(static_cast<double>(sim::run_aggregate(config).adversary_blocks));
  }
  row.simulated_mean = counts.mean();
  row.simulated_stderr = counts.stderr_mean();
  row.ratio =
      row.expected_count > 0.0 ? row.simulated_mean / row.expected_count : 0.0;
  const double trials =
      static_cast<double>(rounds) * params.adversary_trials();
  row.tail_exponent_at_10pct =
      stats::binomial_upper_tail_bound(trials, params.p(), 0.10).log();
  return row;
}

StationaryComparisonRow compare_stationary(std::uint64_t delta, double alpha,
                                           std::uint64_t walk_steps,
                                           std::uint64_t seed) {
  const chains::SuffixStateSpace space(delta);
  const auto matrix = chains::build_suffix_chain_matrix(space, alpha);
  const auto closed = chains::stationary_closed_form_vector(space, alpha);

  StationaryComparisonRow row{};
  row.delta = delta;
  row.alpha = alpha;
  row.ergodic = markov::is_ergodic(matrix);

  double sum = 0.0;
  for (const double x : closed) sum += x;
  row.closed_form_sum = sum;

  const auto power = markov::solve_stationary_power(matrix);
  const auto fixed = markov::solve_stationary_fixed_point(matrix);
  for (std::size_t i = 0; i < closed.size(); ++i) {
    row.max_abs_err_power = std::max(
        row.max_abs_err_power, std::fabs(closed[i] - power.distribution[i]));
    row.max_abs_err_fixed = std::max(
        row.max_abs_err_fixed, std::fabs(closed[i] - fixed.distribution[i]));
  }

  // neatbound-analyze: allow(rng-stream) — analysis-side walk seeding
  // (see markov/walk.hpp)
  markov::RandomWalk walk(matrix, /*start=*/0, Rng(seed));
  const auto visits = walk.visit_counts(walk_steps);
  for (std::size_t i = 0; i < closed.size(); ++i) {
    const double freq = static_cast<double>(visits[i]) /
                        static_cast<double>(walk_steps);
    row.max_abs_err_walk =
        std::max(row.max_abs_err_walk, std::fabs(closed[i] - freq));
  }
  return row;
}

}  // namespace neatbound::analysis
