#include "analysis/tables.hpp"

#include "bounds/pss.hpp"

namespace neatbound::analysis {

DerivedQuantitiesRow derived_quantities(const bounds::ProtocolParams& params) {
  DerivedQuantitiesRow row{};
  row.n = params.n();
  row.p = params.p();
  row.delta = params.delta();
  row.nu = params.nu();
  row.c = params.c();
  row.mu = params.mu();
  row.log_alpha = params.alpha().log();
  row.log_alpha_bar = params.alpha_bar().log();
  row.log_alpha1 = params.alpha1().log();
  row.alpha_linear = params.alpha().linear();
  row.adversary_rate = params.adversary_rate();
  row.theorem1_log_margin = bounds::theorem1_margin(params).log();
  row.theorem1_ok = row.theorem1_log_margin > 0.0;
  row.theorem2_ok =
      params.c() > bounds::theorem2_c_infimum(params.nu(), params.delta());
  row.pss_ok = bounds::pss_consistency_exact(params);
  return row;
}

std::vector<bounds::ProtocolParams> representative_points() {
  using bounds::ProtocolParams;
  std::vector<ProtocolParams> points;
  // Paper scale (n = 10⁵, Δ = 10¹³) at several (c, ν):
  points.push_back(ProtocolParams::from_c(1e5, 1e13, 0.10, 1.0));
  points.push_back(ProtocolParams::from_c(1e5, 1e13, 0.25, 2.0));
  points.push_back(ProtocolParams::from_c(1e5, 1e13, 0.40, 5.0));
  points.push_back(ProtocolParams::from_c(1e5, 1e13, 0.49, 30.0));
  // Laptop scale (what the execution engine simulates):
  points.push_back(ProtocolParams::from_c(120, 4, 0.25, 4.0));
  points.push_back(ProtocolParams::from_c(200, 8, 0.30, 8.0));
  return points;
}

std::vector<Remark1Row> remark1_rows(double delta) {
  // The paper's two exponent pairs first, then a finer sweep showing how
  // the window/factor trade-off moves with (δ₁, δ₂).
  const std::vector<std::pair<double, double>> exponents = {
      {1.0 / 6.0, 1.0 / 2.0}, {1.0 / 8.0, 2.0 / 3.0}, {1.0 / 10.0, 1.0 / 2.0},
      {1.0 / 4.0, 1.0 / 2.0}, {1.0 / 6.0, 2.0 / 3.0}, {1.0 / 8.0, 1.0 / 2.0},
  };
  std::vector<Remark1Row> rows;
  rows.reserve(exponents.size());
  for (const auto& [d1, d2] : exponents) {
    Remark1Row row;
    row.d1 = d1;
    row.d2 = d2;
    row.window = bounds::remark1_window(delta, d1, d2);
    row.probe_nu = 0.25;  // comfortably inside every window above
    row.c_threshold =
        bounds::remark1_c_threshold(row.probe_nu, delta, d1, d2, /*eps2=*/0.0);
    row.c_neat = bounds::neat_bound_c(row.probe_nu);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace neatbound::analysis
