// Theory-vs-simulation validation drivers (Eq. 26/27/44 and consistency).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/intervals.hpp"
#include "stats/summary.hpp"

namespace neatbound::analysis {

/// Convergence-opportunity rate: analytic ᾱ^{2Δ}α₁ vs the aggregate
/// engine's empirical frequency.
struct ConvergenceRateRow {
  double n, delta, c, nu;
  double analytic_rate;   ///< ᾱ^{2Δ}α₁      (Eq. 44)
  double expected_count;  ///< T·ᾱ^{2Δ}α₁    (Eq. 26)
  double simulated_mean;  ///< mean count across seeds
  double simulated_stderr;
  stats::Interval ci;     ///< 95% CI on the mean count
  double ratio;           ///< simulated / expected
};

[[nodiscard]] ConvergenceRateRow validate_convergence_rate(
    double n, double delta, double c, double nu, std::uint64_t rounds,
    std::uint32_t seeds, std::uint64_t base_seed = 777);

/// Adversary block count: analytic Tpνn vs simulation (Eq. 27), plus the
/// Arratia–Gordon tail evaluated at the observed deviation (Eq. 49).
struct AdversaryCountRow {
  double n, delta, c, nu;
  double expected_count;  ///< Tpνn
  double simulated_mean;
  double simulated_stderr;
  double ratio;
  double tail_exponent_at_10pct;  ///< ln P[A ≥ 1.1·E A] bound per Eq. (49)
};

[[nodiscard]] AdversaryCountRow validate_adversary_count(
    double n, double delta, double c, double nu, std::uint64_t rounds,
    std::uint32_t seeds, std::uint64_t base_seed = 999);

/// Stationary distribution of the suffix chain: closed form (Eq. 37) vs
/// numeric solvers vs empirical random-walk visits.
struct StationaryComparisonRow {
  std::uint64_t delta;
  double alpha;
  double max_abs_err_power;   ///< closed form vs power iteration
  double max_abs_err_fixed;   ///< closed form vs damped fixed point
  double max_abs_err_walk;    ///< closed form vs 10⁶-step walk frequencies
  double closed_form_sum;     ///< Σπ (should be 1)
  bool ergodic;               ///< structural check result
};

[[nodiscard]] StationaryComparisonRow compare_stationary(
    std::uint64_t delta, double alpha, std::uint64_t walk_steps = 1000000,
    std::uint64_t seed = 4242);

}  // namespace neatbound::analysis
