// Table-style artifacts: Table I derived quantities and the Remark 1
// windows.
#pragma once

#include <vector>

#include "bounds/params.hpp"
#include "bounds/zhao.hpp"

namespace neatbound::analysis {

/// One row of the "derived quantities" table (our rendering of Table I):
/// for a parameter point, every symbol the paper defines.
struct DerivedQuantitiesRow {
  double n, p, delta, nu;
  double c;
  double mu;
  double log_alpha;      ///< ln α
  double log_alpha_bar;  ///< ln ᾱ
  double log_alpha1;     ///< ln α₁
  double alpha_linear;   ///< α (may underflow to 0 at extreme scales)
  double adversary_rate; ///< pνn
  double theorem1_log_margin;  ///< ln(ᾱ^{2Δ}α₁/(pνn))
  bool theorem1_ok;
  bool theorem2_ok;      ///< via optimized-ε infimum
  bool pss_ok;           ///< exact PSS condition
};

[[nodiscard]] DerivedQuantitiesRow derived_quantities(
    const bounds::ProtocolParams& params);

/// Default representative parameter points (paper scale and lab scale).
[[nodiscard]] std::vector<bounds::ProtocolParams> representative_points();

/// One Remark 1 row: exponent pair, window, factor, and the resulting c
/// threshold at a probe ν inside the window.
struct Remark1Row {
  double d1, d2;
  bounds::Remark1Window window;
  double probe_nu;        ///< a ν inside the window used for the threshold
  double c_threshold;     ///< Ineq. (13) at probe ν with ε₂ → 0
  double c_neat;          ///< 2μ/ln(μ/ν) at probe ν
};

/// The paper's two exponent pairs (1/6, 1/2) and (1/8, 2/3) plus a sweep.
[[nodiscard]] std::vector<Remark1Row> remark1_rows(double delta = 1e13);

}  // namespace neatbound::analysis
