#include "analysis/figure1.hpp"

#include <algorithm>
#include <cmath>

#include "bounds/frontier.hpp"

namespace neatbound::analysis {

std::vector<double> figure1_c_grid(std::size_t fill_points) {
  std::vector<double> grid = {0.1, 0.3, 1.0, 2.0, 3.0, 10.0, 30.0, 100.0};
  const double lo = std::log10(0.1);
  const double hi = std::log10(100.0);
  for (std::size_t i = 0; i < fill_points; ++i) {
    const double frac =
        static_cast<double>(i) / static_cast<double>(fill_points - 1);
    grid.push_back(std::pow(10.0, lo + frac * (hi - lo)));
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end(),
                         [](double a, double b) {
                           return std::fabs(a - b) < 1e-9 * std::max(a, b);
                         }),
             grid.end());
  return grid;
}

std::vector<Figure1Row> figure1_series(std::span<const double> c_values,
                                       double n, double delta) {
  using bounds::BoundKind;
  std::vector<Figure1Row> rows;
  rows.reserve(c_values.size());
  for (const double c : c_values) {
    Figure1Row row;
    row.c = c;
    row.nu_zhao_neat = bounds::nu_max(BoundKind::kZhaoNeat, c, n, delta);
    row.nu_zhao_theorem2 =
        bounds::nu_max(BoundKind::kZhaoTheorem2, c, n, delta);
    row.nu_zhao_theorem1 =
        bounds::nu_max(BoundKind::kZhaoTheorem1Exact, c, n, delta);
    row.nu_pss = bounds::nu_max(BoundKind::kPssConsistency, c, n, delta);
    row.nu_pss_exact =
        bounds::nu_max(BoundKind::kPssConsistencyExact, c, n, delta);
    row.nu_attack = bounds::nu_max(BoundKind::kPssAttack, c, n, delta);
    row.nu_kiffer_corrected =
        bounds::nu_max(BoundKind::kKifferCorrected, c, n, delta);
    row.nu_kiffer_published =
        bounds::nu_max(BoundKind::kKifferAsPublished, c, n, delta);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace neatbound::analysis
