// Figure 1 of the paper: maximum tolerable adversarial fraction ν versus
// c = 1/(pnΔ), at n = 10⁵ and Δ = 10¹³, for
//   * the paper's bound (magenta): c > 2μ/ln(μ/ν),
//   * PSS consistency (blue):      ν < (2−c+√(c²−2c))/2,
//   * the PSS attack (red):        ν > (2c+1−√(4c²+1))/2,
// extended here with the bounds the paper discusses but does not plot:
// the exact Theorem 1 frontier, the full Theorem 2 expression, and the
// two Kiffer renewal variants.
#pragma once

#include <span>
#include <vector>

namespace neatbound::analysis {

struct Figure1Row {
  double c = 0.0;
  double nu_zhao_neat = 0.0;        ///< magenta line
  double nu_zhao_theorem2 = 0.0;    ///< full Ineq. (11), optimized ε
  double nu_zhao_theorem1 = 0.0;    ///< exact Markov condition (10)
  double nu_pss = 0.0;              ///< blue line
  double nu_pss_exact = 0.0;        ///< exact α(1−(2Δ+2)α) > β frontier
  double nu_attack = 0.0;           ///< red line
  double nu_kiffer_corrected = 0.0;
  double nu_kiffer_published = 0.0;
};

/// The paper's axis ticks (0.1, 0.3, 1, 2, 3, 10, 30, 100) merged with a
/// log-spaced fill-in grid over [0.1, 100].
[[nodiscard]] std::vector<double> figure1_c_grid(std::size_t fill_points = 25);

/// Computes all frontier columns at each c.  Defaults match the paper:
/// n = 10⁵, Δ = 10¹³.
[[nodiscard]] std::vector<Figure1Row> figure1_series(
    std::span<const double> c_values, double n = 1e5, double delta = 1e13);

}  // namespace neatbound::analysis
