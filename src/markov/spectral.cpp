#include "markov/spectral.hpp"

#include <cmath>

namespace neatbound::markov {

namespace {
double l2_norm(std::span<const double> v) {
  double total = 0.0;
  for (const double x : v) total += x * x;
  return std::sqrt(total);
}
}  // namespace

SpectralResult estimate_lambda2(const TransitionMatrix& matrix,
                                double tolerance, int max_iterations) {
  const std::size_t n = matrix.size();
  NEATBOUND_EXPECTS(n >= 2, "lambda2 needs at least two states");

  // Start with a deterministic mean-zero vector not proportional to any
  // obvious symmetry axis.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = (i % 2 == 0 ? 1.0 : -1.0) + 0.25 * static_cast<double>(i) /
                                           static_cast<double>(n);
  }
  auto project = [&x]() {
    double mean = 0.0;
    for (const double v : x) mean += v;
    mean /= static_cast<double>(x.size());
    for (double& v : x) v -= mean;
  };
  project();
  double norm = l2_norm(x);
  NEATBOUND_ENSURES(norm > 0.0, "projection annihilated the start vector");
  for (double& v : x) v /= norm;

  std::vector<double> next(n, 0.0);
  SpectralResult result;
  // Complex subdominant eigenvalue pairs make the per-step decay ratio
  // oscillate around |λ₂|; the geometric mean of the ratios over a long
  // tail window converges to |λ₂| regardless.  Split the tail into two
  // halves and call the estimate converged when they agree.
  const int total = std::max(max_iterations, 64);
  const int warmup = total / 2;
  double log_first = 0.0, log_second = 0.0;
  int count_first = 0, count_second = 0;
  for (int iter = 0; iter < total; ++iter) {
    matrix.apply_left(x, next);
    x.swap(next);
    project();  // numerical drift back onto the mean-zero subspace
    norm = l2_norm(x);
    ++result.iterations;
    if (norm <= 1e-280) {
      // x collapsed: the chain has no subdominant component reachable from
      // the start vector; gap is total.
      result.lambda2 = 0.0;
      result.spectral_gap = 1.0;
      result.converged = true;
      return result;
    }
    for (double& v : x) v /= norm;
    if (iter >= warmup) {
      const bool first_half = iter < warmup + (total - warmup) / 2;
      (first_half ? log_first : log_second) += std::log(norm);
      (first_half ? count_first : count_second) += 1;
    }
  }
  const double rate_first = log_first / std::max(count_first, 1);
  const double rate_second = log_second / std::max(count_second, 1);
  result.lambda2 = std::exp((log_first + log_second) /
                            static_cast<double>(count_first + count_second));
  result.spectral_gap = 1.0 - result.lambda2;
  result.converged =
      std::fabs(rate_first - rate_second) <=
      std::max(tolerance * 1e6, 1e-4) * std::max(1.0, std::fabs(rate_first));
  return result;
}

double mixing_time_from_lambda2(double lambda2, double epsilon) {
  NEATBOUND_EXPECTS(lambda2 >= 0.0 && lambda2 < 1.0,
                    "lambda2 must be in [0,1)");
  NEATBOUND_EXPECTS(epsilon > 0.0 && epsilon < 1.0,
                    "epsilon must be in (0,1)");
  if (lambda2 == 0.0) return 1.0;
  return std::ceil(std::log(epsilon) / std::log(lambda2));
}

}  // namespace neatbound::markov
