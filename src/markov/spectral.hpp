// Spectral-gap estimation for finite Markov chains.
//
// The ε-mixing time τ(ε) entering the paper's Eq. (47) is governed by the
// second-largest eigenvalue modulus λ₂ of the transition matrix:
// asymptotically TV(t) ≈ C·|λ₂|^t, so τ(ε) ≈ ln(1/ε·C)/ln(1/|λ₂|).
// Estimating λ₂ lets us sanity-check the measured mixing times of C_F and
// extrapolate them to Δ beyond what the dense TV computation can afford.
#pragma once

#include <cstddef>

#include "markov/chain.hpp"

namespace neatbound::markov {

struct SpectralResult {
  double lambda2 = 0.0;       ///< estimated |λ₂|
  double spectral_gap = 0.0;  ///< 1 − |λ₂|
  int iterations = 0;
  bool converged = false;
};

/// Estimates |λ₂| by power iteration on the mean-zero subspace, which is
/// invariant under x ← xP (row sums are 1, so Σ(xP) = Σx) and excludes
/// the dominant left eigenvector π.  The decay ratio ‖xP‖/‖x‖ converges
/// to |λ₂| whenever the subdominant eigenvalue is simple and real; for
/// complex pairs the ratio oscillates and `converged` stays false (the
/// last estimate is still returned).
[[nodiscard]] SpectralResult estimate_lambda2(const TransitionMatrix& matrix,
                                              double tolerance = 1e-12,
                                              int max_iterations = 4096);

/// Mixing-time prediction from a spectral estimate:
/// t such that |λ₂|^t ≤ ε, i.e. ceil(ln ε / ln |λ₂|).
[[nodiscard]] double mixing_time_from_lambda2(double lambda2, double epsilon);

}  // namespace neatbound::markov
