// Generic finite Markov chains over dense row-stochastic matrices.
//
// Used to *independently* verify the paper's closed-form results: the
// suffix chain C_F of Fig. 2 is instantiated as a concrete transition
// matrix (src/chains) and its stationary distribution is solved
// numerically here, then compared against the closed form Eq. (37a–d).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "support/contracts.hpp"

namespace neatbound::markov {

/// Row-stochastic transition matrix P where P(i,j) = P[next=j | cur=i].
class TransitionMatrix {
 public:
  /// Creates an all-zero matrix with `n` states; fill with `set` then
  /// validate with `check_stochastic`.
  explicit TransitionMatrix(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  [[nodiscard]] double get(std::size_t from, std::size_t to) const {
    NEATBOUND_EXPECTS(from < n_ && to < n_, "state index out of range");
    return data_[from * n_ + to];
  }

  void set(std::size_t from, std::size_t to, double p) {
    NEATBOUND_EXPECTS(from < n_ && to < n_, "state index out of range");
    NEATBOUND_EXPECTS(p >= 0.0 && p <= 1.0 + 1e-12,
                      "transition probability out of [0,1]");
    data_[from * n_ + to] = p;
  }

  void add(std::size_t from, std::size_t to, double p) {
    set(from, to, get(from, to) + p);
  }

  [[nodiscard]] std::span<const double> row(std::size_t from) const {
    NEATBOUND_EXPECTS(from < n_, "state index out of range");
    return {data_.data() + from * n_, n_};
  }

  /// Sum of a row (should be 1 for a stochastic matrix).
  [[nodiscard]] double row_sum(std::size_t from) const;

  /// Throws ContractViolation if any row deviates from sum 1 by > tol.
  void check_stochastic(double tol = 1e-12) const;

  /// y = x · P (distribution evolution, left multiplication).
  void apply_left(std::span<const double> x, std::span<double> y) const;

 private:
  std::size_t n_;
  std::vector<double> data_;
};

/// An immutable Markov chain: a validated transition matrix plus optional
/// state names for diagnostics.
class MarkovChain {
 public:
  explicit MarkovChain(TransitionMatrix matrix,
                       std::vector<std::string> state_names = {});

  [[nodiscard]] std::size_t size() const noexcept { return matrix_.size(); }
  [[nodiscard]] const TransitionMatrix& matrix() const noexcept {
    return matrix_;
  }
  [[nodiscard]] const std::string& state_name(std::size_t i) const;

 private:
  TransitionMatrix matrix_;
  std::vector<std::string> state_names_;
};

}  // namespace neatbound::markov
