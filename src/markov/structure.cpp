#include "markov/structure.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stack>

namespace neatbound::markov {

namespace {
/// Adjacency lists of the positive-probability digraph.
std::vector<std::vector<std::size_t>> positive_adjacency(
    const TransitionMatrix& matrix) {
  const std::size_t n = matrix.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = matrix.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (row[j] > 0.0) adj[i].push_back(j);
    }
  }
  return adj;
}
}  // namespace

std::vector<std::size_t> strongly_connected_components(
    const TransitionMatrix& matrix) {
  const std::size_t n = matrix.size();
  const auto adj = positive_adjacency(matrix);

  // Iterative Tarjan: explicit stack of (node, child-cursor).
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> component(n, kUnvisited);
  std::stack<std::size_t> scc_stack;
  std::size_t next_index = 0;
  std::size_t next_component = 0;

  struct Frame {
    std::size_t node;
    std::size_t cursor;
  };

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    std::stack<Frame> frames;
    frames.push({root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.top();
      const std::size_t v = frame.node;
      if (frame.cursor < adj[v].size()) {
        const std::size_t w = adj[v][frame.cursor++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push(w);
          on_stack[w] = true;
          frames.push({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          // v is the root of an SCC; pop it.
          for (;;) {
            const std::size_t w = scc_stack.top();
            scc_stack.pop();
            on_stack[w] = false;
            component[w] = next_component;
            if (w == v) break;
          }
          ++next_component;
        }
        frames.pop();
        if (!frames.empty()) {
          const std::size_t parent = frames.top().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  return component;
}

bool is_irreducible(const TransitionMatrix& matrix) {
  const auto comp = strongly_connected_components(matrix);
  return std::all_of(comp.begin(), comp.end(),
                     [&comp](std::size_t c) { return c == comp[0]; });
}

std::size_t period(const TransitionMatrix& matrix) {
  NEATBOUND_EXPECTS(is_irreducible(matrix),
                    "period is defined here for irreducible chains");
  const auto adj = positive_adjacency(matrix);
  const std::size_t n = matrix.size();

  // BFS from state 0; for every edge u->v the value
  // (level(u) + 1 − level(v)) is a multiple of the period; gcd of all such
  // values over reachable edges equals the period for irreducible chains.
  std::vector<std::int64_t> level(n, -1);
  std::queue<std::size_t> queue;
  level[0] = 0;
  queue.push(0);
  std::int64_t g = 0;
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop();
    for (const std::size_t v : adj[u]) {
      if (level[v] == -1) {
        level[v] = level[u] + 1;
        queue.push(v);
      } else {
        g = std::gcd(g, level[u] + 1 - level[v]);
      }
    }
  }
  NEATBOUND_ENSURES(g != 0, "irreducible chain must contain a cycle");
  return static_cast<std::size_t>(g < 0 ? -g : g);
}

bool is_ergodic(const TransitionMatrix& matrix) {
  return is_irreducible(matrix) && period(matrix) == 1;
}

}  // namespace neatbound::markov
