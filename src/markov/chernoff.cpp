#include "markov/chernoff.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace neatbound::markov {

double pi_norm(std::span<const double> phi, std::span<const double> pi) {
  NEATBOUND_EXPECTS(phi.size() == pi.size(),
                    "phi and pi must have equal size");
  double total = 0.0;
  for (std::size_t i = 0; i < phi.size(); ++i) {
    if (phi[i] == 0.0) continue;
    NEATBOUND_EXPECTS(pi[i] > 0.0,
                      "pi must be positive wherever phi has mass");
    total += phi[i] * phi[i] / pi[i];
  }
  return std::sqrt(total);
}

double pi_norm_bound_from_min(double min_pi) {
  NEATBOUND_EXPECTS(min_pi > 0.0, "min stationary mass must be positive");
  return 1.0 / std::sqrt(min_pi);
}

namespace {
LogProb evaluate(const MarkovChernoffParams& p) {
  NEATBOUND_EXPECTS(p.stationary_mass > 0.0 && p.stationary_mass <= 1.0,
                    "stationary mass must be in (0,1]");
  NEATBOUND_EXPECTS(p.steps > 0.0, "steps must be positive");
  NEATBOUND_EXPECTS(p.delta > 0.0, "delta must be positive");
  NEATBOUND_EXPECTS(p.mixing_time >= 1.0, "mixing time must be >= 1");
  NEATBOUND_EXPECTS(p.phi_pi_norm >= 1.0 - 1e-12,
                    "pi-norm of a distribution is >= 1");
  NEATBOUND_EXPECTS(p.constant > 0.0, "leading constant must be positive");
  const double exponent = -p.delta * p.delta * p.stationary_mass * p.steps /
                          (72.0 * p.mixing_time);
  return LogProb::from_log(std::log(p.constant) + std::log(p.phi_pi_norm) +
                           exponent);
}
}  // namespace

LogProb markov_chernoff_lower(const MarkovChernoffParams& p) {
  NEATBOUND_EXPECTS(p.delta < 1.0, "lower-tail delta must be < 1");
  return evaluate(p);
}

LogProb markov_chernoff_upper(const MarkovChernoffParams& p) {
  return evaluate(p);
}

}  // namespace neatbound::markov
