#include "markov/chain.hpp"

#include <cmath>

namespace neatbound::markov {

TransitionMatrix::TransitionMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {
  NEATBOUND_EXPECTS(n > 0, "TransitionMatrix needs at least one state");
}

double TransitionMatrix::row_sum(std::size_t from) const {
  NEATBOUND_EXPECTS(from < n_, "state index out of range");
  double sum = 0.0;
  for (std::size_t j = 0; j < n_; ++j) sum += data_[from * n_ + j];
  return sum;
}

void TransitionMatrix::check_stochastic(double tol) const {
  for (std::size_t i = 0; i < n_; ++i) {
    const double s = row_sum(i);
    NEATBOUND_ENSURES(std::fabs(s - 1.0) <= tol,
                      "row " + std::to_string(i) + " sums to " +
                          std::to_string(s) + ", expected 1");
  }
}

void TransitionMatrix::apply_left(std::span<const double> x,
                                  std::span<double> y) const {
  NEATBOUND_EXPECTS(x.size() == n_ && y.size() == n_,
                    "vector size must match state count");
  for (std::size_t j = 0; j < n_; ++j) y[j] = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* row_ptr = data_.data() + i * n_;
    for (std::size_t j = 0; j < n_; ++j) y[j] += xi * row_ptr[j];
  }
}

MarkovChain::MarkovChain(TransitionMatrix matrix,
                         std::vector<std::string> state_names)
    : matrix_(std::move(matrix)), state_names_(std::move(state_names)) {
  matrix_.check_stochastic();
  if (state_names_.empty()) {
    state_names_.reserve(matrix_.size());
    for (std::size_t i = 0; i < matrix_.size(); ++i) {
      std::string name = "s";
      name += std::to_string(i);
      state_names_.push_back(std::move(name));
    }
  }
  NEATBOUND_EXPECTS(state_names_.size() == matrix_.size(),
                    "one name per state required");
}

const std::string& MarkovChain::state_name(std::size_t i) const {
  NEATBOUND_EXPECTS(i < state_names_.size(), "state index out of range");
  return state_names_[i];
}

}  // namespace neatbound::markov
