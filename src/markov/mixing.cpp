#include "markov/mixing.hpp"

#include <cmath>

namespace neatbound::markov {

double total_variation(std::span<const double> a, std::span<const double> b) {
  NEATBOUND_EXPECTS(a.size() == b.size(),
                    "TV distance needs equal-size distributions");
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += std::fabs(a[i] - b[i]);
  return 0.5 * total;
}

MixingResult mixing_time(const TransitionMatrix& matrix,
                         std::span<const double> pi, double epsilon,
                         std::size_t max_steps) {
  NEATBOUND_EXPECTS(epsilon > 0.0 && epsilon < 1.0,
                    "mixing_time requires epsilon in (0,1)");
  NEATBOUND_EXPECTS(pi.size() == matrix.size(),
                    "pi size must match state count");
  const std::size_t n = matrix.size();

  // Evolve all n point masses simultaneously: rows[i] = δᵢ · Pᵗ.
  std::vector<std::vector<double>> rows(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) rows[i][i] = 1.0;

  std::vector<double> scratch(n, 0.0);
  MixingResult result;
  for (std::size_t t = 0; t <= max_steps; ++t) {
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      worst = std::max(worst, total_variation(rows[i], pi));
    }
    if (worst <= epsilon) {
      result.time = t;
      result.converged = true;
      result.final_tv = worst;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) {
      matrix.apply_left(rows[i], scratch);
      rows[i].swap(scratch);
    }
  }
  result.time = max_steps;
  result.converged = false;
  // Recompute the worst TV for reporting.
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, total_variation(rows[i], pi));
  }
  result.final_tv = worst;
  return result;
}

double tv_from_state(const TransitionMatrix& matrix, std::size_t start,
                     std::size_t steps, std::span<const double> pi) {
  NEATBOUND_EXPECTS(start < matrix.size(), "state index out of range");
  std::vector<double> dist(matrix.size(), 0.0);
  dist[start] = 1.0;
  std::vector<double> scratch(matrix.size(), 0.0);
  for (std::size_t t = 0; t < steps; ++t) {
    matrix.apply_left(dist, scratch);
    dist.swap(scratch);
  }
  return total_variation(dist, pi);
}

}  // namespace neatbound::markov
