// Chernoff–Hoeffding bounds for Markov chains, after Chung, Lam, Liu &
// Mitzenmacher (2012), Theorem 3.1 — the concentration tool behind the
// paper's Inequality (47):
//
//   P[ X ≤ (1−δ)·μT ] ≤ c·‖φ‖_π · exp( −δ²·μT / (72·τ(ε)) )
//   P[ X ≥ (1+δ)·μT ] ≤ c·‖φ‖_π · exp( −δ²·μT / (72·τ(ε)) )
//
// where X counts visits to a target state over a T-step walk, μ is the
// stationary mass of the target, τ(ε) is the ε-mixing time (ε ≤ 1/8) and
// φ the initial distribution.  The bound evaluator returns log-space
// values since the exponent is typically very large.
#pragma once

#include <span>

#include "support/logprob.hpp"

namespace neatbound::markov {

/// ‖φ‖_π = sqrt( Σ_i φ(i)²/π(i) ) — the π-norm of the initial distribution.
[[nodiscard]] double pi_norm(std::span<const double> phi,
                             std::span<const double> pi);

/// Upper bound on ‖φ‖_π from Proposition 1 of the paper:
/// ‖φ‖_π ≤ 1/sqrt(min_i π(i)).
[[nodiscard]] double pi_norm_bound_from_min(double min_pi);

struct MarkovChernoffParams {
  double stationary_mass = 0.0;  ///< μ: stationary probability of the target
  double steps = 0.0;            ///< T: length of the walk
  double delta = 0.0;            ///< deviation fraction δ in (0,1) for lower
  double mixing_time = 1.0;      ///< τ(ε) with ε ≤ 1/8
  double phi_pi_norm = 1.0;      ///< ‖φ‖_π (≥ 1)
  double constant = 1.0;         ///< the leading constant c (≥ 1)
};

/// Lower-tail bound P[X ≤ (1−δ)μT] per Theorem 3.1 / the paper's Eq. (47).
[[nodiscard]] LogProb markov_chernoff_lower(const MarkovChernoffParams& p);

/// Upper-tail bound P[X ≥ (1+δ)μT] (same exponent shape).
[[nodiscard]] LogProb markov_chernoff_upper(const MarkovChernoffParams& p);

}  // namespace neatbound::markov
