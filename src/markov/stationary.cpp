#include "markov/stationary.hpp"

#include <cmath>

namespace neatbound::markov {

namespace {
void normalize_l1(std::vector<double>& v) {
  double sum = 0.0;
  for (const double x : v) sum += x;
  NEATBOUND_ENSURES(sum > 0.0, "cannot normalize a zero vector");
  for (double& x : v) x /= sum;
}

double l1_diff(std::span<const double> a, std::span<const double> b) {
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += std::fabs(a[i] - b[i]);
  return total;
}
}  // namespace

StationaryResult solve_stationary_power(const TransitionMatrix& matrix,
                                        const StationaryOptions& options) {
  const std::size_t n = matrix.size();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  StationaryResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    matrix.apply_left(pi, next);
    normalize_l1(next);
    const double change = l1_diff(pi, next);
    pi.swap(next);
    ++result.iterations;
    if (change <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.residual = stationarity_residual(matrix, pi);
  result.distribution = std::move(pi);
  return result;
}

StationaryResult solve_stationary_fixed_point(const TransitionMatrix& matrix,
                                              const StationaryOptions& options) {
  const std::size_t n = matrix.size();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  StationaryResult result;
  constexpr double kDamping = 0.5;  // mix old and new iterate for stability
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    matrix.apply_left(pi, next);
    for (std::size_t j = 0; j < n; ++j) {
      next[j] = kDamping * next[j] + (1.0 - kDamping) * pi[j];
    }
    normalize_l1(next);
    const double change = l1_diff(pi, next);
    pi.swap(next);
    ++result.iterations;
    if (change <= options.tolerance * kDamping) {
      result.converged = true;
      break;
    }
  }
  result.residual = stationarity_residual(matrix, pi);
  result.distribution = std::move(pi);
  return result;
}

StationaryResult solve_stationary_direct(const TransitionMatrix& matrix) {
  const std::size_t n = matrix.size();
  // Build (Pᵀ − I) with the last balance equation replaced by Σπ = 1
  // (the balance system is rank n−1 for an irreducible chain).
  std::vector<double> a(n * n, 0.0);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a[j * n + i] = matrix.get(i, j) - (i == j ? 1.0 : 0.0);
    }
  }
  for (std::size_t j = 0; j < n; ++j) a[(n - 1) * n + j] = 1.0;
  b[n - 1] = 1.0;

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    NEATBOUND_ENSURES(std::fabs(a[pivot * n + col]) > 1e-300,
                      "singular balance system (chain not irreducible?)");
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) {
        std::swap(a[pivot * n + k], a[col * n + k]);
      }
      std::swap(b[pivot], b[col]);
    }
    const double diag = a[col * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  StationaryResult result;
  result.distribution.assign(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (std::size_t k = row + 1; k < n; ++k) {
      sum -= a[row * n + k] * result.distribution[k];
    }
    result.distribution[row] = sum / a[row * n + row];
  }
  // Clean tiny negative rounding artifacts and renormalize.
  for (double& x : result.distribution) x = std::max(x, 0.0);
  normalize_l1(result.distribution);
  result.converged = true;
  result.iterations = 1;
  result.residual = stationarity_residual(matrix, result.distribution);
  return result;
}

double stationarity_residual(const TransitionMatrix& matrix,
                             std::span<const double> pi) {
  NEATBOUND_EXPECTS(pi.size() == matrix.size(),
                    "vector size must match state count");
  std::vector<double> image(pi.size(), 0.0);
  matrix.apply_left(pi, image);
  return l1_diff(pi, image);
}

}  // namespace neatbound::markov
