// Stationary-distribution solvers: π = πP, Σπ = 1.
//
// Two independent methods are provided so each can cross-check the other
// (and both cross-check the paper's closed forms):
//  * power iteration — robust, O(iter · n²);
//  * damped fixed-point (Jacobi-style) iteration on the balance equations,
//    a different numerical path with different rounding behaviour.
#pragma once

#include <vector>

#include "markov/chain.hpp"

namespace neatbound::markov {

struct StationaryOptions {
  double tolerance = 1e-14;  ///< L1 change per sweep at convergence
  int max_iterations = 200000;
};

struct StationaryResult {
  std::vector<double> distribution;
  int iterations = 0;
  bool converged = false;
  double residual = 0.0;  ///< final L1 difference ‖πP − π‖₁
};

/// Power iteration from the uniform distribution.
/// Requires an ergodic chain for a unique limit (checked by the caller or
/// via markov::is_ergodic).
[[nodiscard]] StationaryResult solve_stationary_power(
    const TransitionMatrix& matrix, const StationaryOptions& options = {});

/// Damped Jacobi iteration on π_j = Σ_i π_i P(i,j) with renormalization.
[[nodiscard]] StationaryResult solve_stationary_fixed_point(
    const TransitionMatrix& matrix, const StationaryOptions& options = {});

/// Direct solve of the balance equations (Pᵀ − I)π = 0, Σπ = 1 via
/// Gaussian elimination with partial pivoting — exact up to rounding,
/// O(n³); the reference answer the iterative solvers are tested against.
[[nodiscard]] StationaryResult solve_stationary_direct(
    const TransitionMatrix& matrix);

/// ‖πP − π‖₁ for an arbitrary probability vector π.
[[nodiscard]] double stationarity_residual(const TransitionMatrix& matrix,
                                           std::span<const double> pi);

}  // namespace neatbound::markov
