#include "markov/walk.hpp"

namespace neatbound::markov {

RandomWalk::RandomWalk(const TransitionMatrix& matrix, std::size_t start,
                       // neatbound-analyze: allow(rng-stream) —
                       // analysis-side walk (see walk.hpp)
                       Rng rng)
    : matrix_(matrix), current_(start), rng_(rng) {
  NEATBOUND_EXPECTS(start < matrix.size(), "start state out of range");
}

std::size_t RandomWalk::step() {
  const auto row = matrix_.row(current_);
  double u = rng_.uniform();
  // Inverse-CDF walk along the row; the final state absorbs any floating-
  // point slack so the step is total.
  for (std::size_t j = 0; j + 1 < row.size(); ++j) {
    if (u < row[j]) {
      current_ = j;
      return current_;
    }
    u -= row[j];
  }
  current_ = row.size() - 1;
  return current_;
}

std::vector<std::uint64_t> RandomWalk::visit_counts(std::uint64_t steps) {
  std::vector<std::uint64_t> counts(matrix_.size(), 0);
  for (std::uint64_t i = 0; i < steps; ++i) {
    ++counts[step()];
  }
  return counts;
}

}  // namespace neatbound::markov
