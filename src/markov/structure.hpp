// Structural properties of finite Markov chains.
//
// The paper asserts that C_F and C_{F‖P} are time-homogeneous, irreducible
// and ergodic (§V-A).  We verify irreducibility (single strongly connected
// component of the positive-probability digraph) and aperiodicity (gcd of
// cycle lengths = 1) mechanically, so the assertion is *checked*, not
// assumed, for every chain we construct.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/chain.hpp"

namespace neatbound::markov {

/// Strongly connected components of the positive-transition digraph,
/// computed with iterative Tarjan.  Returns component id per state
/// (0-based, reverse-topological order as Tarjan emits them).
[[nodiscard]] std::vector<std::size_t> strongly_connected_components(
    const TransitionMatrix& matrix);

/// True iff the chain is irreducible (exactly one SCC).
[[nodiscard]] bool is_irreducible(const TransitionMatrix& matrix);

/// Period of an irreducible chain: gcd over states of cycle lengths
/// through that state, computed via BFS level differences.
/// Precondition: matrix is irreducible.
[[nodiscard]] std::size_t period(const TransitionMatrix& matrix);

/// Irreducible + aperiodic (period 1).  Finite irreducible aperiodic
/// chains are ergodic (positive recurrent), matching the paper's usage.
[[nodiscard]] bool is_ergodic(const TransitionMatrix& matrix);

}  // namespace neatbound::markov
