// Total-variation distance and ε-mixing time.
//
// Section V-B of the paper invokes the ε-mixing time τ(ε, ᾱ, Δ) of C_{F‖P}
// inside the Chernoff–Hoeffding exponent (their Eq. 47).  We compute mixing
// times of the (tractable) suffix chain C_F exactly by evolving all point
// masses, and expose the τ value used when evaluating the bound.
#pragma once

#include <span>
#include <vector>

#include "markov/chain.hpp"

namespace neatbound::markov {

/// Total-variation distance ½‖a − b‖₁ between two distributions.
[[nodiscard]] double total_variation(std::span<const double> a,
                                     std::span<const double> b);

struct MixingResult {
  std::size_t time = 0;    ///< smallest t with worst-case TV ≤ epsilon
  bool converged = false;  ///< false if max_steps was hit first
  double final_tv = 0.0;   ///< worst-case TV at `time`
};

/// ε-mixing time: smallest t such that max over starting states i of
/// TV(δᵢ·Pᵗ, π) ≤ ε.  `pi` must be the stationary distribution.
[[nodiscard]] MixingResult mixing_time(const TransitionMatrix& matrix,
                                       std::span<const double> pi,
                                       double epsilon,
                                       std::size_t max_steps = 1 << 20);

/// TV(δᵢ·Pᵗ, π) for one starting state — diagnostic helper.
[[nodiscard]] double tv_from_state(const TransitionMatrix& matrix,
                                   std::size_t start, std::size_t steps,
                                   std::span<const double> pi);

}  // namespace neatbound::markov
