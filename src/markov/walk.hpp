// Random walks on finite Markov chains, used by tests/benches to compare
// empirical visit frequencies with stationary distributions — i.e. the
// Monte-Carlo counterpart of the paper's C(t₀, t₀+T−1) counting argument.
#pragma once

#include <cstdint>
#include <vector>

#include "markov/chain.hpp"
#include "support/rng.hpp"

namespace neatbound::markov {

class RandomWalk {
 public:
  /// Starts at `start`; the walk owns its RNG stream.
  // neatbound-analyze: allow(rng-stream) — analysis-side Monte Carlo
  // cross-check, never batched or replayed out of order; a
  // crng::Purpose::kWalk migration is reserved but not yet scheduled.
  RandomWalk(const TransitionMatrix& matrix, std::size_t start, Rng rng);

  /// Takes one step; returns the new state.
  std::size_t step();

  [[nodiscard]] std::size_t current() const noexcept { return current_; }

  /// Runs `steps` steps, returning per-state visit counts of the states
  /// *entered* (the start state is not counted).
  [[nodiscard]] std::vector<std::uint64_t> visit_counts(std::uint64_t steps);

 private:
  const TransitionMatrix& matrix_;
  std::size_t current_;
  // neatbound-analyze: allow(rng-stream) — analysis-side walk (above)
  Rng rng_;
};

}  // namespace neatbound::markov
