// Hitting and return times of finite Markov chains.
//
// Why this matters for the paper: the Kiffer et al. renewal argument the
// paper critiques works with expected waiting times ℓ between (isolated)
// honest blocks; the flagged error is precisely using 1/(pμn) where the
// chain's true expected waiting time is 1/α.  Kac's formula — the expected
// return time of a state equals 1/π(state) — lets us compute such waiting
// times *from the chain itself* and check every closed form independently
// (e.g. the expected gap between convergence opportunities is
// 1/(ᾱ^{2Δ}α₁) on C_{F‖P}).
#pragma once

#include <cstddef>
#include <vector>

#include "markov/chain.hpp"

namespace neatbound::markov {

/// Expected number of steps to first reach `target` from each state
/// (0 for the target itself).  First-step analysis:
///   h(target) = 0;  h(i) = 1 + Σ_j P(i,j)·h(j)  for i ≠ target,
/// solved directly by Gaussian elimination with partial pivoting.
/// Requires every state to reach `target` (e.g. an irreducible chain).
[[nodiscard]] std::vector<double> expected_hitting_times(
    const TransitionMatrix& matrix, std::size_t target);

/// Expected return time of `state`: 1 + Σ_j P(state, j)·h(j) where h is
/// the hitting-time vector of `state`.
[[nodiscard]] double expected_return_time(const TransitionMatrix& matrix,
                                          std::size_t state);

}  // namespace neatbound::markov
