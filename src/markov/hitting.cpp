#include "markov/hitting.hpp"

#include <cmath>

namespace neatbound::markov {

std::vector<double> expected_hitting_times(const TransitionMatrix& matrix,
                                           std::size_t target) {
  const std::size_t n = matrix.size();
  NEATBOUND_EXPECTS(target < n, "target state out of range");

  // Unknowns: h(i) for i ≠ target (n−1 of them).  Build the dense system
  //   h(i) − Σ_{j≠target} P(i,j)·h(j) = 1.
  const std::size_t m = n - 1;
  auto pack = [target](std::size_t state) {
    return state < target ? state : state - 1;
  };
  std::vector<double> a(m * m, 0.0);
  std::vector<double> b(m, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == target) continue;
    const std::size_t row = pack(i);
    a[row * m + row] = 1.0;
    const auto p_row = matrix.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == target || p_row[j] == 0.0) continue;
      a[row * m + pack(j)] -= p_row[j];
    }
  }

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < m; ++row) {
      if (std::fabs(a[row * m + col]) > std::fabs(a[pivot * m + col])) {
        pivot = row;
      }
    }
    NEATBOUND_ENSURES(std::fabs(a[pivot * m + col]) > 1e-300,
                      "hitting-time system singular: some state cannot "
                      "reach the target");
    if (pivot != col) {
      for (std::size_t k = 0; k < m; ++k) {
        std::swap(a[pivot * m + k], a[col * m + k]);
      }
      std::swap(b[pivot], b[col]);
    }
    const double diag = a[col * m + col];
    for (std::size_t row = col + 1; row < m; ++row) {
      const double factor = a[row * m + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < m; ++k) {
        a[row * m + k] -= factor * a[col * m + k];
      }
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> h_packed(m, 0.0);
  for (std::size_t row = m; row-- > 0;) {
    double sum = b[row];
    for (std::size_t k = row + 1; k < m; ++k) {
      sum -= a[row * m + k] * h_packed[k];
    }
    h_packed[row] = sum / a[row * m + row];
  }

  std::vector<double> h(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != target) h[i] = h_packed[pack(i)];
  }
  return h;
}

double expected_return_time(const TransitionMatrix& matrix,
                            std::size_t state) {
  const auto h = expected_hitting_times(matrix, state);
  double total = 1.0;
  const auto row = matrix.row(state);
  for (std::size_t j = 0; j < matrix.size(); ++j) {
    total += row[j] * h[j];
  }
  return total;
}

}  // namespace neatbound::markov
