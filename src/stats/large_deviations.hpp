// Large-deviation machinery from the paper's Section V-C.
//
// The adversary's block count A(t₀, t₀+T−1) is Binomial(Tνn, p); the paper
// bounds its upper tail with the Arratia–Gordon inequality (their Eq. 49)
// driven by the Bernoulli relative entropy D((1+δ₃)p ‖ p) (their Eq. 48).
// This header implements those quantities plus the standard multiplicative
// Chernoff bounds used for cross-checks.
#pragma once

#include "support/logprob.hpp"

namespace neatbound::stats {

/// Bernoulli relative entropy D(a ‖ p) = a·ln(a/p) + (1−a)·ln((1−a)/(1−p)).
/// Defined for a, p ∈ [0,1] with the usual 0·ln 0 = 0 conventions; +∞ when
/// the support condition fails (a > 0, p = 0 etc.).
[[nodiscard]] double bernoulli_relative_entropy(double a, double p);

/// The paper's Eq. (48): D((1+δ₃)p ‖ p); requires (1+δ₃)p ≤ 1.
[[nodiscard]] double relative_entropy_scaled(double p, double delta3);

/// Arratia–Gordon upper-tail bound, the paper's Eq. (49):
///   P[Binomial(N, p) ≥ (1+δ₃)·Np] ≤ exp(−N·D((1+δ₃)p ‖ p)).
/// Returned in log space since the bound is often astronomically small.
[[nodiscard]] LogProb binomial_upper_tail_bound(double trials, double p,
                                                double delta3);

/// Arratia–Gordon lower-tail bound:
///   P[Binomial(N, p) ≤ (1−δ)·Np] ≤ exp(−N·D((1−δ)p ‖ p)).
[[nodiscard]] LogProb binomial_lower_tail_bound(double trials, double p,
                                                double delta);

/// Multiplicative Chernoff upper bound (weaker but simpler):
///   P[X ≥ (1+δ)·m] ≤ exp(−m·δ²/(2+δ)),  m = Np.
[[nodiscard]] LogProb chernoff_upper_bound(double mean, double delta);

/// Multiplicative Chernoff lower bound: P[X ≤ (1−δ)m] ≤ exp(−m·δ²/2).
[[nodiscard]] LogProb chernoff_lower_bound(double mean, double delta);

}  // namespace neatbound::stats
