// Batch-means analysis for dependent (Markov) sequences.
//
// The per-round indicators the paper studies — "this round completed a
// convergence opportunity" — are *not* independent: they are functions of
// a Markov chain (C_{F‖P}).  A naive stderr of their mean understates the
// error by a factor of ~sqrt(integrated autocorrelation time).  The
// batch-means method splits the series into B contiguous batches, treats
// batch averages as approximately independent, and derives a defensible
// confidence interval; comparing batch variance with the naive variance
// also estimates the integrated autocorrelation time itself — which for
// C_{F‖P} is related to the mixing time entering the paper's Eq. (47).
#pragma once

#include <cstddef>
#include <span>

namespace neatbound::stats {

struct BatchMeansResult {
  double mean = 0.0;
  double stderr_mean = 0.0;       ///< batch-means standard error
  double naive_stderr = 0.0;      ///< iid-assumption standard error
  double autocorrelation_time = 1.0;  ///< (batch stderr / naive stderr)²
  std::size_t batches = 0;
  std::size_t batch_size = 0;
};

/// Batch-means estimate of the mean of a dependent series.
/// `batches` contiguous batches of equal size are used (a trailing
/// remainder shorter than one batch is dropped).  Requires at least
/// 2 batches with at least 2 elements each.
[[nodiscard]] BatchMeansResult batch_means(std::span<const double> series,
                                           std::size_t batches = 32);

/// Sample autocovariance at a given lag (biased, 1/n normalization).
[[nodiscard]] double autocovariance(std::span<const double> series,
                                    std::size_t lag);

/// Integrated autocorrelation time via the initial-positive-sequence
/// truncation: 1 + 2·Σ ρ(k) until ρ(k) first drops below 0.
[[nodiscard]] double integrated_autocorrelation_time(
    std::span<const double> series, std::size_t max_lag = 1000);

}  // namespace neatbound::stats
