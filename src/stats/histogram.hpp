// Fixed-bin histogram for simulator diagnostics (e.g. distribution of
// fork depths, inter-block gaps).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace neatbound::stats {

class Histogram {
 public:
  /// Bins [lo, hi) split into `bins` equal cells, plus under/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t total_count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Fraction of observations in bin i (0 if empty histogram).
  [[nodiscard]] double bin_fraction(std::size_t i) const;

  /// Multi-line ASCII rendering with proportional bars.
  [[nodiscard]] std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace neatbound::stats
