#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace neatbound::stats {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStatsState RunningStats::state() const noexcept {
  return {count_, mean_, m2_, min_, max_};
}

RunningStats RunningStats::from_state(const RunningStatsState& state) noexcept {
  RunningStats stats;
  stats.count_ = state.count;
  stats.mean_ = state.mean;
  stats.m2_ = state.m2;
  stats.min_ = state.min;
  stats.max_ = state.max;
  return stats;
}

double quantile(std::span<const double> sample, double q) {
  NEATBOUND_EXPECTS(!sample.empty(), "quantile of empty sample");
  NEATBOUND_EXPECTS(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1]");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> sample) noexcept {
  if (sample.empty()) return 0.0;
  double total = 0.0;
  for (const double x : sample) total += x;
  return total / static_cast<double>(sample.size());
}

}  // namespace neatbound::stats
