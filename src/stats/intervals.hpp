// Confidence intervals for simulation estimates.
#pragma once

#include <cstdint>

namespace neatbound::stats {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  [[nodiscard]] bool contains(double x) const noexcept {
    return lo <= x && x <= hi;
  }
  [[nodiscard]] double width() const noexcept { return hi - lo; }
};

/// Wilson score interval for a binomial proportion.
/// Robust for small successes/trials counts (unlike the Wald interval),
/// which is exactly the regime of rare-event rates like ᾱ^{2Δ}α₁.
[[nodiscard]] Interval wilson_interval(std::uint64_t successes,
                                       std::uint64_t trials,
                                       double z = 1.959963984540054);

/// Half-width of the Wilson interval — the quantity sequential-stopping
/// rules compare against their precision target.
[[nodiscard]] double wilson_half_width(std::uint64_t successes,
                                       std::uint64_t trials,
                                       double z = 1.959963984540054);

/// Sequential-stopping decision for a binomial estimate: true when the
/// Wilson half-width at `z` has reached `half_width_target`.  A target
/// of 0 (or negative) never stops — the fixed-budget degenerate case —
/// because the half-width is strictly positive for any finite trials.
/// The decision is monotone: once true for a trial count it stays true
/// for every larger count of the same proportion, and it is monotone in
/// the target (a looser target stops no later than a tighter one).
[[nodiscard]] bool precision_reached(std::uint64_t successes,
                                     std::uint64_t trials,
                                     double half_width_target,
                                     double z = 1.959963984540054);

/// Normal-approximation interval for a sample mean given mean/stderr.
[[nodiscard]] Interval mean_interval(double mean, double stderr_mean,
                                     double z = 1.959963984540054);

/// Two-sided z-value for a given confidence level (0.90, 0.95, 0.99, 0.999);
/// other levels are interpolated from the normal quantile approximation.
[[nodiscard]] double z_for_confidence(double level);

}  // namespace neatbound::stats
