#include "stats/intervals.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace neatbound::stats {

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z) {
  NEATBOUND_EXPECTS(trials > 0, "wilson_interval requires trials > 0");
  NEATBOUND_EXPECTS(successes <= trials, "successes must not exceed trials");
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, centre - half), std::min(1.0, centre + half)};
}

double wilson_half_width(std::uint64_t successes, std::uint64_t trials,
                         double z) {
  return wilson_interval(successes, trials, z).width() / 2.0;
}

bool precision_reached(std::uint64_t successes, std::uint64_t trials,
                       double half_width_target, double z) {
  if (half_width_target <= 0.0) return false;
  return wilson_half_width(successes, trials, z) <= half_width_target;
}

Interval mean_interval(double mean, double stderr_mean, double z) {
  NEATBOUND_EXPECTS(stderr_mean >= 0.0, "stderr must be non-negative");
  return {mean - z * stderr_mean, mean + z * stderr_mean};
}

double z_for_confidence(double level) {
  NEATBOUND_EXPECTS(level > 0.0 && level < 1.0,
                    "confidence level must be in (0,1)");
  // Acklam-style rational approximation of the normal quantile at
  // (1+level)/2; accurate to ~1e-9 which is far beyond what CI display needs.
  const double p = (1.0 + level) / 2.0;
  // Coefficients for the central region approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace neatbound::stats
