// Discrete distributions in log space.
//
// The paper's per-round block counts are Binomial(μn, p) (honest) and
// Binomial(νn, p) (adversary) with p as small as 10^-20, so pmf/cdf values
// are only representable in log space.  All mass functions here return
// LogProb and are exact up to lgamma rounding.
#pragma once

#include <cstdint>

#include "support/logprob.hpp"

namespace neatbound::stats {

/// Binomial(n, p) with real-valued n ≥ 0 (the paper freely uses μn, νn,
/// which need not be integers); pmf defined via gamma functions.
class Binomial {
 public:
  Binomial(double n, double p);

  [[nodiscard]] double trials() const noexcept { return n_; }
  [[nodiscard]] double success_probability() const noexcept { return p_; }
  [[nodiscard]] double mean() const noexcept { return n_ * p_; }
  [[nodiscard]] double variance() const noexcept { return n_ * p_ * (1 - p_); }

  /// P[X = k].
  [[nodiscard]] LogProb pmf(double k) const;

  /// P[X ≤ k] by direct summation (suitable for the small-k regime the
  /// library lives in: per-round means are ≪ 1).
  [[nodiscard]] LogProb cdf(std::uint64_t k) const;

  /// P[X ≥ k] = 1 − P[X ≤ k−1], computed by complement in log space.
  [[nodiscard]] LogProb sf(std::uint64_t k) const;

  /// P[X = 0] = (1−p)^n — the paper's ᾱ when (n,p) = (μn, p).
  [[nodiscard]] LogProb prob_zero() const;

  /// P[X = 1] = np(1−p)^{n−1} — the paper's α₁.
  [[nodiscard]] LogProb prob_one() const;

  /// P[X ≥ 1] = 1 − (1−p)^n — the paper's α.
  [[nodiscard]] LogProb prob_positive() const;

 private:
  double n_;
  double p_;
};

/// Geometric on {0, 1, ...}: failures before first success.
class Geometric {
 public:
  explicit Geometric(double p);
  [[nodiscard]] LogProb pmf(std::uint64_t k) const;
  [[nodiscard]] LogProb sf(std::uint64_t k) const;  ///< P[X ≥ k] = (1−p)^k
  [[nodiscard]] double mean() const noexcept { return (1 - p_) / p_; }

 private:
  double p_;
};

/// Poisson(λ) — used as the limit check for Binomial(n, p) with np = λ.
class Poisson {
 public:
  explicit Poisson(double lambda);
  [[nodiscard]] LogProb pmf(std::uint64_t k) const;
  [[nodiscard]] double mean() const noexcept { return lambda_; }

 private:
  double lambda_;
};

}  // namespace neatbound::stats
