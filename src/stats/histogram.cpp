#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/contracts.hpp"

namespace neatbound::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  NEATBOUND_EXPECTS(hi > lo, "Histogram requires hi > lo");
  NEATBOUND_EXPECTS(bins > 0, "Histogram requires at least one bin");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const {
  NEATBOUND_EXPECTS(i < counts_.size(), "bin index out of range");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  NEATBOUND_EXPECTS(i < counts_.size(), "bin index out of range");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i + 1);
}

double Histogram::bin_fraction(std::size_t i) const {
  NEATBOUND_EXPECTS(i < counts_.size(), "bin index out of range");
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::uint64_t max_count = 1;
  for (const auto c : counts_) max_count = std::max(max_count, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) /
                     static_cast<double>(max_count) *
                     static_cast<double>(max_bar_width)));
    std::snprintf(line, sizeof(line), "[%10.4g, %10.4g) %10llu ", bin_lo(i),
                  bin_hi(i), static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  if (underflow_ > 0 || overflow_ > 0) {
    std::snprintf(line, sizeof(line), "underflow=%llu overflow=%llu\n",
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace neatbound::stats
