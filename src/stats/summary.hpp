// Streaming and batch summary statistics for simulator output.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace neatbound::stats {

/// The raw accumulator state of a RunningStats, exposed for exact
/// serialization (experiment checkpoints).  Round-tripping every double
/// bit-exactly and resuming the add() stream reproduces the accumulator
/// a single uninterrupted stream would have built.
struct RunningStatsState {
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Welford streaming mean/variance — numerically stable one-pass updates.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance (n−1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than 2 samples.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator (parallel reduction friendly).
  void merge(const RunningStats& other) noexcept;

  /// Snapshot of the internal accumulator, for exact persistence.
  [[nodiscard]] RunningStatsState state() const noexcept;
  /// Rebuilds an accumulator from a snapshot; the inverse of state().
  [[nodiscard]] static RunningStats from_state(
      const RunningStatsState& state) noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated quantile of a sample; q in [0,1]. Copies + sorts.
[[nodiscard]] double quantile(std::span<const double> sample, double q);

/// Convenience: mean of a sample (0 for empty).
[[nodiscard]] double mean_of(std::span<const double> sample) noexcept;

}  // namespace neatbound::stats
