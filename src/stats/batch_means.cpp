#include "stats/batch_means.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace neatbound::stats {

BatchMeansResult batch_means(std::span<const double> series,
                             std::size_t batches) {
  NEATBOUND_EXPECTS(batches >= 2, "batch means needs >= 2 batches");
  const std::size_t batch_size = series.size() / batches;
  NEATBOUND_EXPECTS(batch_size >= 2,
                    "series too short for the requested batch count");
  const std::size_t used = batches * batch_size;

  BatchMeansResult result;
  result.batches = batches;
  result.batch_size = batch_size;

  double grand = 0.0;
  for (std::size_t i = 0; i < used; ++i) grand += series[i];
  grand /= static_cast<double>(used);
  result.mean = grand;

  // Batch averages and their variance around the grand mean.
  double batch_var = 0.0;
  for (std::size_t b = 0; b < batches; ++b) {
    double avg = 0.0;
    for (std::size_t i = 0; i < batch_size; ++i) {
      avg += series[b * batch_size + i];
    }
    avg /= static_cast<double>(batch_size);
    batch_var += (avg - grand) * (avg - grand);
  }
  batch_var /= static_cast<double>(batches - 1);
  result.stderr_mean = std::sqrt(batch_var / static_cast<double>(batches));

  // Naive iid stderr for comparison.
  double var = 0.0;
  for (std::size_t i = 0; i < used; ++i) {
    var += (series[i] - grand) * (series[i] - grand);
  }
  var /= static_cast<double>(used - 1);
  result.naive_stderr = std::sqrt(var / static_cast<double>(used));

  if (result.naive_stderr > 0.0) {
    const double ratio = result.stderr_mean / result.naive_stderr;
    result.autocorrelation_time = ratio * ratio;
  }
  return result;
}

double autocovariance(std::span<const double> series, std::size_t lag) {
  NEATBOUND_EXPECTS(lag < series.size(),
                    "lag must be smaller than the series length");
  const std::size_t n = series.size();
  double mean = 0.0;
  for (const double x : series) mean += x;
  mean /= static_cast<double>(n);
  double total = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    total += (series[i] - mean) * (series[i + lag] - mean);
  }
  return total / static_cast<double>(n);
}

double integrated_autocorrelation_time(std::span<const double> series,
                                       std::size_t max_lag) {
  NEATBOUND_EXPECTS(series.size() >= 4, "series too short");
  const double c0 = autocovariance(series, 0);
  if (c0 <= 0.0) return 1.0;  // constant series
  double tau = 1.0;
  const std::size_t limit = std::min(max_lag, series.size() - 1);
  for (std::size_t lag = 1; lag <= limit; ++lag) {
    const double rho = autocovariance(series, lag) / c0;
    if (rho <= 0.0) break;  // initial positive sequence truncation
    tau += 2.0 * rho;
  }
  return tau;
}

}  // namespace neatbound::stats
