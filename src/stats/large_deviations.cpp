#include "stats/large_deviations.hpp"

#include <cmath>
#include <limits>

namespace neatbound::stats {

double bernoulli_relative_entropy(double a, double p) {
  NEATBOUND_EXPECTS(a >= 0.0 && a <= 1.0, "D(a||p) requires a in [0,1]");
  NEATBOUND_EXPECTS(p >= 0.0 && p <= 1.0, "D(a||p) requires p in [0,1]");
  const double inf = std::numeric_limits<double>::infinity();
  if (a > 0.0 && p == 0.0) return inf;
  if (a < 1.0 && p == 1.0) return inf;
  double total = 0.0;
  if (a > 0.0) total += a * std::log(a / p);
  if (a < 1.0) total += (1.0 - a) * std::log((1.0 - a) / (1.0 - p));
  // Relative entropy is non-negative; clamp away −0 and rounding dips.
  return total < 0.0 ? 0.0 : total;
}

double relative_entropy_scaled(double p, double delta3) {
  NEATBOUND_EXPECTS(delta3 > -1.0, "delta3 must exceed -1");
  const double a = (1.0 + delta3) * p;
  NEATBOUND_EXPECTS(a <= 1.0, "(1+delta3)p must be <= 1");
  return bernoulli_relative_entropy(a, p);
}

LogProb binomial_upper_tail_bound(double trials, double p, double delta3) {
  NEATBOUND_EXPECTS(trials >= 0.0, "trials must be >= 0");
  NEATBOUND_EXPECTS(delta3 > 0.0, "upper tail requires delta3 > 0");
  const double d = relative_entropy_scaled(p, delta3);
  return LogProb::from_log(-trials * d);
}

LogProb binomial_lower_tail_bound(double trials, double p, double delta) {
  NEATBOUND_EXPECTS(trials >= 0.0, "trials must be >= 0");
  NEATBOUND_EXPECTS(delta > 0.0 && delta < 1.0,
                    "lower tail requires delta in (0,1)");
  const double a = (1.0 - delta) * p;
  const double d = bernoulli_relative_entropy(a, p);
  return LogProb::from_log(-trials * d);
}

LogProb chernoff_upper_bound(double mean, double delta) {
  NEATBOUND_EXPECTS(mean >= 0.0 && delta > 0.0,
                    "chernoff_upper_bound requires mean >= 0, delta > 0");
  return LogProb::from_log(-mean * delta * delta / (2.0 + delta));
}

LogProb chernoff_lower_bound(double mean, double delta) {
  NEATBOUND_EXPECTS(mean >= 0.0 && delta > 0.0 && delta < 1.0,
                    "chernoff_lower_bound requires delta in (0,1)");
  return LogProb::from_log(-mean * delta * delta / 2.0);
}

}  // namespace neatbound::stats
