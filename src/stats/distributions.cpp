#include "stats/distributions.hpp"

#include <cmath>

#include "support/math.hpp"

namespace neatbound::stats {

Binomial::Binomial(double n, double p) : n_(n), p_(p) {
  NEATBOUND_EXPECTS(n >= 0.0, "Binomial requires n >= 0");
  NEATBOUND_EXPECTS(p >= 0.0 && p <= 1.0, "Binomial requires p in [0,1]");
}

LogProb Binomial::pmf(double k) const {
  NEATBOUND_EXPECTS(k >= 0.0 && k <= n_, "pmf requires 0 <= k <= n");
  if (p_ == 0.0) return k == 0.0 ? LogProb::one() : LogProb::zero();
  if (p_ == 1.0) return k == n_ ? LogProb::one() : LogProb::zero();
  const double log_pmf = log_binomial_coefficient(n_, k) +
                         k * std::log(p_) + (n_ - k) * std::log1p(-p_);
  return LogProb::from_log(log_pmf);
}

LogProb Binomial::cdf(std::uint64_t k) const {
  LogProb total = LogProb::zero();
  const double kd = static_cast<double>(k);
  for (double i = 0.0; i <= kd && i <= n_; i += 1.0) {
    total += pmf(i);
  }
  // Clamp tiny log-sum-exp overshoot above 1.
  return total.log() > 0.0 ? LogProb::one() : total;
}

LogProb Binomial::sf(std::uint64_t k) const {
  if (k == 0) return LogProb::one();
  return cdf(k - 1).complement();
}

LogProb Binomial::prob_zero() const { return pow_one_minus(p_, n_); }

LogProb Binomial::prob_one() const {
  if (p_ == 0.0 || n_ == 0.0) return LogProb::zero();
  return LogProb::from_linear(n_ * p_) * pow_one_minus(p_, n_ - 1.0);
}

LogProb Binomial::prob_positive() const { return prob_zero().complement(); }

Geometric::Geometric(double p) : p_(p) {
  NEATBOUND_EXPECTS(p > 0.0 && p <= 1.0, "Geometric requires p in (0,1]");
}

LogProb Geometric::pmf(std::uint64_t k) const {
  return pow_one_minus(p_, static_cast<double>(k)) * LogProb::from_linear(p_);
}

LogProb Geometric::sf(std::uint64_t k) const {
  return pow_one_minus(p_, static_cast<double>(k));
}

Poisson::Poisson(double lambda) : lambda_(lambda) {
  NEATBOUND_EXPECTS(lambda >= 0.0, "Poisson requires lambda >= 0");
}

LogProb Poisson::pmf(std::uint64_t k) const {
  if (lambda_ == 0.0) return k == 0 ? LogProb::one() : LogProb::zero();
  const double kd = static_cast<double>(k);
  return LogProb::from_log(kd * std::log(lambda_) - lambda_ -
                           std::lgamma(kd + 1.0));
}

}  // namespace neatbound::stats
