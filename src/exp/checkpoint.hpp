// Checkpoint/resume for long sweeps: periodic JSON snapshots of every
// grid point's accumulator state, so a killed run restarts from the last
// completed wave instead of recomputing.
//
// Exactness contract: every double in the snapshot is serialized with 17
// significant digits and parsed back with the correctly-rounded strtod,
// so a resumed accumulator is bit-identical to the in-memory one — the
// adaptive sweep's "resumed run == uninterrupted run" guarantee hangs on
// this round trip.
//
// A checkpoint is only meaningful for the exact sweep that wrote it, so
// the document carries a fingerprint over the grid (axis names/values),
// every cell's resolved engine configuration, the adaptive options and
// the violation depth; load_sweep_checkpoint refuses a mismatch instead
// of silently resuming the wrong experiment.
//
// Writes are atomic-by-rename: the document lands in "<path>.tmp" and is
// renamed over the target, so a kill mid-write leaves the previous
// complete checkpoint in place.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace neatbound::exp {

/// One grid cell's resumable state.
struct CellCheckpoint {
  std::uint32_t seeds_done = 0;   ///< engine runs already folded in
  std::uint64_t violations = 0;   ///< runs with violation_depth > T
  bool stopped = false;           ///< no further seeds will be scheduled
  bool stopped_early = false;     ///< stopped by the precision target
  sim::ExperimentSummary summary; ///< accumulators over seeds_done runs
};

/// Snapshot of a whole adaptive sweep between waves.
struct SweepCheckpoint {
  std::uint64_t fingerprint = 0;  ///< see sweep_fingerprint()
  std::uint64_t waves_done = 0;   ///< completed scheduling waves
  std::vector<CellCheckpoint> cells;  ///< one per grid cell, grid order
};

/// FNV-1a over a canonical description of the sweep: axis names/values,
/// per-cell engine parameters + adversary kind + base seed, the adaptive
/// schedule (min/batch/max seeds, half-width target, confidence),
/// violation_t, and the caller's fingerprint_context (component
/// identity for scenario runs).  Doubles are folded in at full
/// precision.
class FingerprintBuilder {
 public:
  FingerprintBuilder& text(const std::string& piece);
  FingerprintBuilder& number(double value);
  FingerprintBuilder& integer(std::uint64_t value);
  [[nodiscard]] std::uint64_t finish() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;  ///< FNV-1a offset basis
};

/// Writes the checkpoint document (atomic-by-rename).  Throws
/// std::runtime_error when the file cannot be written.
void save_sweep_checkpoint(const std::string& path,
                           const SweepCheckpoint& checkpoint);

/// Reads a checkpoint back.  Throws std::runtime_error on unreadable or
/// malformed files, on a format-version mismatch, and — when
/// `expected_fingerprint` is non-zero — on a fingerprint mismatch.
[[nodiscard]] SweepCheckpoint load_sweep_checkpoint(
    const std::string& path, std::uint64_t expected_fingerprint = 0);

/// Serializes a double with enough digits (%.17g) that the strict JSON
/// reader's strtod reproduces the exact bit pattern.  Exposed for tests.
[[nodiscard]] std::string exact_double_repr(double value);

}  // namespace neatbound::exp
