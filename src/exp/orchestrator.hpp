// The experiment orchestrator: runs a SweepGrid of ExperimentConfigs on a
// single shared work pool whose unit of work is one (grid-point × seed)
// engine run — so a sweep with 21 cells × 6 seeds keeps every thread busy
// on 126 independent jobs instead of parallelizing only within one cell.
//
// Determinism: seed k of cell i always runs engine seed base_seed + k of
// that cell's config, results land in a (cell, seed)-indexed slot, and
// aggregation replays them sequentially in seed order with the runner's
// own accumulate_run — the summaries are bit-identical to calling
// sim::run_experiment on each cell, regardless of thread count or
// scheduling.  Worker exceptions propagate to the caller (first one wins)
// after all workers have joined.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "exp/grid.hpp"
#include "sim/runner.hpp"

namespace neatbound::exp {

/// Maps one grid point to the experiment to run there (engine parameters,
/// adversary kind, seed count).  Called once per point, up front, on the
/// calling thread.
using ConfigBuilder =
    std::function<sim::ExperimentConfig(const GridPoint&)>;

/// Per-point adversary construction hook: receives the point's full
/// experiment config plus the per-seed engine config (seed already set).
/// Must be callable concurrently.
using SweepAdversaryFactory = std::function<std::unique_ptr<sim::Adversary>(
    const sim::ExperimentConfig&, const sim::EngineConfig&)>;

/// The factory the *_with-less entry points use: each cell's adversary
/// built from its config.adversary kind via the runner's default
/// construction.  Shared by run_sweep, run_sweep_adaptive and
/// localize_frontier so default adversary wiring cannot diverge between
/// the plain and adaptive paths.
[[nodiscard]] SweepAdversaryFactory default_sweep_adversary_factory();

struct SweepOptions {
  std::uint64_t violation_t = 8;  ///< consistency predicate depth
  unsigned threads = 0;           ///< workers; 0 = hardware concurrency
};

/// One grid cell's outcome: the point, the config it ran, the aggregate.
struct SweepCell {
  GridPoint point;
  sim::ExperimentConfig config;
  sim::ExperimentSummary summary;
};

/// Runs every (cell × seed) engine job on one pool and returns the cells
/// in grid order.  The adversary for each run comes from the factory.
[[nodiscard]] std::vector<SweepCell> run_sweep_with(
    const SweepGrid& grid, const ConfigBuilder& build,
    const SweepOptions& options, const SweepAdversaryFactory& factory);

/// Same, with each cell's adversary built from its config.adversary kind
/// (the runner's default factory).
[[nodiscard]] std::vector<SweepCell> run_sweep(const SweepGrid& grid,
                                               const ConfigBuilder& build,
                                               const SweepOptions& options);

}  // namespace neatbound::exp
