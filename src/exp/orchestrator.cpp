#include "exp/orchestrator.hpp"

#include <utility>

#include "sim/engine.hpp"
#include "support/parallel.hpp"

namespace neatbound::exp {

std::vector<SweepCell> run_sweep_with(const SweepGrid& grid,
                                      const ConfigBuilder& build,
                                      const SweepOptions& options,
                                      const SweepAdversaryFactory& factory) {
  const std::size_t cells = grid.size();

  // Materialize every cell's config up front (single-threaded: builders
  // may capture mutable bench state) and lay the (cell × seed) jobs out
  // flat: job j covers cell job_cell[j], seed j - first_job[cell].
  std::vector<SweepCell> out;
  out.reserve(cells);
  std::vector<std::size_t> first_job(cells + 1, 0);
  for (std::size_t i = 0; i < cells; ++i) {
    GridPoint point = grid.point(i);
    sim::ExperimentConfig config = build(point);
    first_job[i + 1] = first_job[i] + config.seeds;
    out.push_back({std::move(point), config, {}});
  }
  const std::size_t total_jobs = first_job[cells];
  std::vector<std::size_t> job_cell(total_jobs);
  for (std::size_t i = 0; i < cells; ++i) {
    for (std::size_t j = first_job[i]; j < first_job[i + 1]; ++j) {
      job_cell[j] = i;
    }
  }

  std::vector<sim::RunResult> results(total_jobs);
  parallel_for_indexed(total_jobs, options.threads, [&](std::size_t j) {
    const SweepCell& cell = out[job_cell[j]];
    const std::size_t k = j - first_job[job_cell[j]];
    sim::EngineConfig engine_config = cell.config.engine;
    engine_config.seed = cell.config.base_seed + k;
    sim::ExecutionEngine engine(engine_config,
                                factory(cell.config, engine_config));
    results[j] = engine.run();
  });

  // Seed-ordered aggregation per cell, via the runner's accumulator —
  // bit-identical to the serial per-cell path.
  for (std::size_t i = 0; i < cells; ++i) {
    for (std::size_t j = first_job[i]; j < first_job[i + 1]; ++j) {
      sim::accumulate_run(out[i].summary, results[j], options.violation_t);
    }
  }
  return out;
}

SweepAdversaryFactory default_sweep_adversary_factory() {
  return [](const sim::ExperimentConfig& config,
            const sim::EngineConfig& engine_config) {
    return sim::make_default_adversary(config.adversary, engine_config);
  };
}

std::vector<SweepCell> run_sweep(const SweepGrid& grid,
                                 const ConfigBuilder& build,
                                 const SweepOptions& options) {
  return run_sweep_with(grid, build, options,
                        default_sweep_adversary_factory());
}

}  // namespace neatbound::exp
