#include "exp/bench_io.hpp"

#include <iostream>
#include <memory>
#include <stdexcept>

namespace neatbound::exp {

namespace {
/// Bare "--csv" (no value) parses as the string "true"; writing a file
/// literally named "true" is never what the user meant.
std::string path_flag(CliArgs& args, const std::string& name) {
  std::string path = args.get_string(name, "");
  if (path == "true") {
    throw std::runtime_error("CliArgs: flag --" + name + " expects a path");
  }
  return path;
}
}  // namespace

BenchOptions parse_bench_options(CliArgs& args) {
  BenchOptions options;
  const std::uint64_t threads = args.get_uint("threads", options.threads);
  // Cap far above any real machine so a fat-fingered value errors instead
  // of wrapping through the unsigned cast (2^32 would become 0 = "auto").
  if (threads > 4096) {
    throw std::runtime_error(
        "CliArgs: flag --threads out of range (max 4096)");
  }
  options.threads = static_cast<unsigned>(threads);
  options.csv_path = path_flag(args, "csv");
  options.json_path = path_flag(args, "json");
  return options;
}

BenchReporter::BenchReporter(const std::string& bench_name,
                             const BenchOptions& options)
    : threads_(options.threads),
      // elapsed_seconds metadata only; parity tests normalize it out.
      // determinism-lint: allow(raw-steady-clock)
      start_(std::chrono::steady_clock::now()) {
  sinks_.add(std::make_unique<TableSink>(std::cout));
  if (!options.csv_path.empty()) {
    sinks_.add(std::make_unique<CsvSink>(options.csv_path));
  }
  if (!options.json_path.empty()) {
    auto json = std::make_unique<JsonSink>(options.json_path, bench_name);
    json_ = json.get();
    sinks_.add(std::move(json));
  }
}

void BenchReporter::begin_section(const std::string& name,
                                  const std::vector<std::string>& headers) {
  sinks_.begin_section(name, headers);
}

void BenchReporter::add_row(const std::vector<std::string>& cells) {
  sinks_.add_row(cells);
}

void BenchReporter::set_meta(const std::string& key, const std::string& value) {
  if (json_ != nullptr) json_->set_meta(key, value);
}

void BenchReporter::set_meta_number(const std::string& key, double value) {
  if (json_ != nullptr) json_->set_meta_number(key, value);
}

// neatbound-analyze: allow(contract-coverage) — thin delegation: stamps
// two metadata numbers and forwards to SinkSet::finish; the sinks check
// their own write postconditions.
void BenchReporter::finish() {
  if (json_ != nullptr) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::duration<double>>(
        // determinism-lint: allow(raw-steady-clock) — see constructor.
        std::chrono::steady_clock::now() - start_);
    json_->set_meta_number("threads_requested", static_cast<double>(threads_));
    json_->set_meta_number("elapsed_seconds", elapsed.count());
  }
  sinks_.finish();
}

}  // namespace neatbound::exp
