// Pluggable result sinks for the experiment orchestrator.
//
// Bench output is a sequence of *sections* — named tables whose headers
// may differ — and every sink consumes that same stream:
//   * TableSink — the classic fixed-width stdout tables,
//   * CsvSink   — one CSV file, a `section` column first, header row
//                 re-emitted whenever a section changes the schema,
//   * JsonSink  — one machine-readable summary document (sections, rows,
//                 plus free-form metadata like wall-clock seconds) — the
//                 format the BENCH_*.json perf trajectory consumes,
//   * SinkSet   — fan-out composite the benches actually hold.
#pragma once

#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "support/table.hpp"

namespace neatbound::exp {

/// Consumer of sectioned tabular results.  Calls arrive strictly as
/// begin_section (add_row)* … finish; implementations may buffer.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Starts a new table; `headers` may differ between sections.
  virtual void begin_section(const std::string& name,
                             const std::vector<std::string>& headers) = 0;
  /// Appends one row to the current section (must match its header width).
  virtual void add_row(const std::vector<std::string>& cells) = 0;
  /// Called exactly once after the last row; flushes/writes output.
  virtual void finish() = 0;
};

/// Streams fixed-width tables to an ostream: "## name" then the table,
/// rendered when the section completes (next begin_section or finish).
class TableSink final : public ResultSink {
 public:
  explicit TableSink(std::ostream& os) : os_(os) {}

  void begin_section(const std::string& name,
                     const std::vector<std::string>& headers) override;
  void add_row(const std::vector<std::string>& cells) override;
  void finish() override;

 private:
  void flush_section();
  std::ostream& os_;
  std::string section_;
  std::optional<TablePrinter> table_;
};

/// Writes every section into one CSV file.  A leading `section` column
/// is added as soon as any section has a name (unnamed-only files stay a
/// plain CSV of the bench's own columns); the header row is (re)written
/// at the start of the file and again whenever a new section changes the
/// column set, so single-schema benches produce a one-header CSV.
class CsvSink final : public ResultSink {
 public:
  /// Throws std::runtime_error if the file cannot be opened.
  explicit CsvSink(const std::string& path);

  void begin_section(const std::string& name,
                     const std::vector<std::string>& headers) override;
  void add_row(const std::vector<std::string>& cells) override;
  void finish() override;

 private:
  std::ofstream out_;
  std::string path_;
  std::string section_;
  std::vector<std::string> headers_;
  bool header_written_ = false;
  bool section_column_ = false;
};

/// Buffers everything and writes one JSON document at finish():
///   {"bench": …, "meta": {…}, "sections":
///     [{"name": …, "headers": […], "rows": [[…], …]}, …]}
/// Cells stay strings (exactly the formatted table cells) so the JSON is
/// a lossless mirror of the printed output.
class JsonSink final : public ResultSink {
 public:
  JsonSink(std::string path, std::string bench_name);

  void begin_section(const std::string& name,
                     const std::vector<std::string>& headers) override;
  void add_row(const std::vector<std::string>& cells) override;
  void finish() override;

  /// Free-form metadata merged into the document's "meta" object.
  void set_meta(const std::string& key, const std::string& value);
  void set_meta_number(const std::string& key, double value);

 private:
  struct Section {
    std::string name;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  std::string path_;
  std::string bench_name_;
  /// key → pre-serialized JSON value (quoted string or bare number).
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<Section> sections_;
};

/// Owning fan-out composite: forwards every call to each attached sink.
class SinkSet final : public ResultSink {
 public:
  void add(std::unique_ptr<ResultSink> sink);
  [[nodiscard]] std::size_t sink_count() const noexcept {
    return sinks_.size();
  }

  void begin_section(const std::string& name,
                     const std::vector<std::string>& headers) override;
  void add_row(const std::vector<std::string>& cells) override;
  void finish() override;

 private:
  std::vector<std::unique_ptr<ResultSink>> sinks_;
};

/// JSON string escaping (quotes, backslashes, control characters), made
/// public for tests.
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace neatbound::exp
