// Named-axis sweep grids: the declarative half of the experiment
// orchestrator.  A bench declares its parameter axes once
//
//   SweepGrid grid;
//   grid.axis("nu", {0.15, 0.3, 0.4});
//   grid.axis("multiple", {0.4, 0.7, 1.0});
//
// and the grid enumerates the cartesian product in row-major order (the
// last axis varies fastest), matching the nesting order of the serial
// for-loops the benches used to hand-write — so migrated output keeps the
// exact row order.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace neatbound::exp {

/// One cell of the cartesian product: the value of every axis, plus the
/// cell's row-major index.  Self-contained — it carries its own copy of
/// the axis names, so points (and the SweepCells holding them) stay
/// valid after the grid they came from is gone.
class GridPoint {
 public:
  /// An empty point (no axes, index 0) — the placeholder value adaptive
  /// cell states start from before a real point is assigned.
  GridPoint() = default;
  GridPoint(std::vector<std::string> names, std::size_t index,
            std::vector<double> values);

  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  /// Value of the named axis; throws std::out_of_range for unknown names.
  [[nodiscard]] double value(const std::string& axis) const;
  /// Value by axis position (0 = first/outermost axis).
  [[nodiscard]] double value(std::size_t axis) const;
  [[nodiscard]] std::size_t axis_count() const noexcept {
    return values_.size();
  }

 private:
  std::vector<std::string> names_;
  std::size_t index_ = 0;
  std::vector<double> values_;
};

/// Cartesian product of named axes.  Axes hold doubles; categorical axes
/// (adversary kinds, …) are encoded as indices into a bench-side array.
class SweepGrid {
 public:
  /// Appends an axis; throws std::invalid_argument on empty values or a
  /// duplicate name.  Returns *this for chaining.
  SweepGrid& axis(std::string name, std::vector<double> values);

  [[nodiscard]] std::size_t axis_count() const noexcept {
    return names_.size();
  }
  /// Number of grid points: the product of axis sizes (1 for no axes —
  /// the empty product, a single all-defaults point).
  [[nodiscard]] std::size_t size() const noexcept;

  [[nodiscard]] const std::string& axis_name(std::size_t i) const;
  [[nodiscard]] const std::vector<double>& axis_values(std::size_t i) const;
  /// Position of the named axis; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t axis_index(const std::string& name) const;

  /// The index-th point in row-major order (last axis fastest).
  [[nodiscard]] GridPoint point(std::size_t index) const;
  /// All points, in order.
  [[nodiscard]] std::vector<GridPoint> points() const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> values_;
};

}  // namespace neatbound::exp
