// Adaptive experiment control: confidence-interval-driven sequential
// stopping, frontier bisection, and checkpoint/resume — the layer that
// spends engine runs where the estimate is still uncertain instead of
// burning a fixed seed budget uniformly over the grid.
//
// Sequential stopping.  Seeds are scheduled in *waves* on the same
// (cell × seed) pool run_sweep_with uses: wave 0 gives every cell
// min_seeds runs, each later wave adds `batch` runs to every cell whose
// Wilson interval on P[violation depth > T] is still wider than the
// half-width target (and which is below max_seeds).  Seed k of cell g
// always runs engine seed base_seed + k of that cell's config — the
// stream a seed consumes is a function of (cell, k) only, never of the
// schedule — and per-cell aggregation replays results in seed order, so:
//   * serial and parallel runs are bit-identical;
//   * a cell that stopped after m seeds carries exactly the summary a
//     fixed budget of m seeds would have produced (truncation identity);
//   * stopping decisions happen only at wave boundaries, from data of
//     the cell's own completed seeds, so they are deterministic too.
//
// Checkpoint/resume.  With a checkpoint path set, the sweep snapshots
// every cell's accumulator state after each wave (see exp/checkpoint.hpp
// for the exactness contract); with resume set, a matching snapshot is
// loaded and only the remaining waves run.  A resumed run's result is
// bit-identical to an uninterrupted one.
//
// Frontier refinement.  Given one sweep axis and a violation-probability
// threshold, localize_frontier_with scans each line of the coarse grid
// for a bracket (adjacent points whose estimates straddle the threshold)
// and recursively bisects the bracket — evaluating midpoints with the
// same sequential-stopping rule — until the crossing is pinned to the
// requested axis tolerance.  The result reports both the engine runs
// actually spent and the cost of the dense uniform grid that would reach
// the same resolution.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/orchestrator.hpp"
#include "stats/intervals.hpp"

namespace neatbound::exp {

/// One wave boundary's progress, as passed to AdaptiveOptions::progress.
/// Pure observation: values are computed from cell state the stopping
/// rule already settled, after the checkpoint (if any) was written.
struct WaveProgress {
  std::uint64_t wave = 0;          ///< waves completed so far (resumed incl.)
  std::size_t cells_total = 0;
  std::size_t cells_stopped = 0;
  std::uint64_t seeds_spent = 0;   ///< Σ seeds_done over all cells
  /// Widest current Wilson half-width among still-open cells; 0 when
  /// every cell has stopped.
  double widest_half_width = 0.0;
};

struct AdaptiveOptions {
  std::uint32_t min_seeds = 4;   ///< wave-0 budget for every cell
  std::uint32_t batch = 4;       ///< seeds added per later wave
  std::uint32_t max_seeds = 64;  ///< hard per-cell cap
  /// Target Wilson half-width on P[violation depth > T]; 0 disables
  /// early stopping (every cell runs exactly max_seeds — the fixed-budget
  /// degenerate case, which is how checkpointing plugs under plain
  /// sweeps).
  double half_width = 0.05;
  double confidence = 0.95;  ///< level of the stopping/reporting interval
  std::string checkpoint_path;  ///< "" = no checkpointing
  /// Folded into the checkpoint fingerprint.  The automatic fingerprint
  /// covers the grid and each cell's engine config; anything else the
  /// builder or adversary factory depends on (scenario adversary /
  /// network components and their parameters, custom factory state)
  /// must be described here, or a checkpoint from a differently-wired
  /// sweep would resume silently.
  std::string fingerprint_context;
  /// Load checkpoint_path if it exists and resume from it (a missing
  /// file starts fresh, so first runs and resumes share one invocation).
  bool resume = false;
  /// Stop (checkpoint intact, result incomplete) after this many waves;
  /// 0 = run to completion.  This is the deterministic "kill" hook the
  /// resume tests and the CI round-trip use.
  std::uint32_t stop_after_waves = 0;
  /// Cross-seed batch width W: a wave's seeds for one cell are chunked
  /// into groups of ≤ W and each group runs as one lockstep batched pass
  /// (sim/batch_engine.hpp) instead of W separate engine runs.  Results
  /// are bit-identical for every W — batching is an execution detail, so
  /// it is NOT part of the checkpoint fingerprint and a checkpoint may be
  /// resumed under a different width.  Only counter-RNG cells batch;
  /// legacy cells fall back to per-seed runs.  0 and 1 both mean
  /// per-seed.
  std::uint32_t batch_seeds = 1;
  /// Invoked once per completed wave, after stopping decisions and the
  /// checkpoint write.  Observation only — it cannot influence the
  /// schedule, is not part of the checkpoint fingerprint, and a callback
  /// that writes to stderr keeps stdout streams (CSV/JSON) clean.
  std::function<void(const WaveProgress&)> progress;
};

/// One finished cell: the plain sweep cell plus the adaptive verdict.
struct AdaptiveCell {
  SweepCell cell;
  std::uint32_t seeds_used = 0;
  std::uint64_t violations = 0;  ///< runs with violation_depth > T
  bool stopped_early = false;    ///< precision target met before max_seeds
  stats::Interval ci;  ///< Wilson interval on P[depth > T] at `confidence`
};

struct AdaptiveSweepResult {
  std::vector<AdaptiveCell> cells;  ///< grid order
  std::uint64_t engine_runs = 0;    ///< Σ seeds_used (resumed seeds included)
  std::uint64_t waves = 0;          ///< scheduling waves completed in total
  /// False when stop_after_waves interrupted the sweep; the checkpoint
  /// (if any) holds the partial state and cells are a snapshot.
  bool complete = true;
};

/// Runs the grid adaptively on one parallel_for_indexed pool; adversaries
/// come from `factory` exactly as in run_sweep_with.
[[nodiscard]] AdaptiveSweepResult run_sweep_adaptive_with(
    const SweepGrid& grid, const ConfigBuilder& build,
    const SweepOptions& options, const AdaptiveOptions& adaptive,
    const SweepAdversaryFactory& factory);

/// Same, with each cell's adversary built from its config.adversary kind.
[[nodiscard]] AdaptiveSweepResult run_sweep_adaptive(
    const SweepGrid& grid, const ConfigBuilder& build,
    const SweepOptions& options, const AdaptiveOptions& adaptive);

struct FrontierOptions {
  std::string axis;        ///< grid axis to bisect along
  double threshold = 0.5;  ///< P[depth > T] level that defines the frontier
  double tolerance = 0.05; ///< stop when the bracket is this narrow
  std::uint32_t max_bisections = 32;  ///< safety cap per bracket
};

/// One localized crossing: the line of the grid it lives on (identified
/// by the coarse point on the bracket's low side) and the refined
/// bracket [lo, hi] on the bisect axis with the estimates at its ends.
struct FrontierRow {
  GridPoint anchor;     ///< coarse cell at the bracket's low side
  bool bracketed = false;  ///< false: no crossing on this line
  double lo = 0.0;
  double hi = 0.0;
  double estimate_lo = 0.0;  ///< P[depth > T] estimate at lo
  double estimate_hi = 0.0;  ///< P[depth > T] estimate at hi
  std::uint64_t refine_runs = 0;  ///< engine runs spent on midpoints
};

struct FrontierResult {
  AdaptiveSweepResult coarse;      ///< the full coarse adaptive sweep
  std::vector<FrontierRow> rows;   ///< one per grid line, line order
  std::uint64_t engine_runs = 0;   ///< coarse + refinement
  /// Cost of the uniform dense grid reaching the same axis resolution:
  /// one point per `tolerance` step over the coarse axis span, times
  /// max_seeds, per line.
  std::uint64_t dense_equivalent_runs = 0;
};

/// Coarse adaptive sweep + bisection refinement.  Midpoint configs come
/// from `build` on synthetic grid points (same axes, interpolated value
/// on the bisect axis, index past the coarse grid).  Checkpointing, if
/// configured, covers the coarse phase; refinement re-runs are bounded
/// by max_bisections × max_seeds per line.  Throws std::invalid_argument
/// when options.axis is not a grid axis.
[[nodiscard]] FrontierResult localize_frontier_with(
    const SweepGrid& grid, const ConfigBuilder& build,
    const SweepOptions& options, const AdaptiveOptions& adaptive,
    const FrontierOptions& frontier, const SweepAdversaryFactory& factory);

[[nodiscard]] FrontierResult localize_frontier(
    const SweepGrid& grid, const ConfigBuilder& build,
    const SweepOptions& options, const AdaptiveOptions& adaptive,
    const FrontierOptions& frontier);

}  // namespace neatbound::exp
