#include "exp/sinks.hpp"

#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "support/contracts.hpp"
#include "support/csv.hpp"

namespace neatbound::exp {

// --- TableSink -------------------------------------------------------------

// neatbound-analyze: allow(contract-coverage) — total by design: an
// already-open section is flushed first, and any name/headers pair is a
// valid section; there is no precondition to assert.
void TableSink::begin_section(const std::string& name,
                              const std::vector<std::string>& headers) {
  flush_section();
  section_ = name;
  table_.emplace(headers);
}

void TableSink::add_row(const std::vector<std::string>& cells) {
  NEATBOUND_EXPECTS(table_.has_value(), "add_row before begin_section");
  table_->add_row(cells);
}

void TableSink::flush_section() {
  if (!table_.has_value()) return;
  if (!section_.empty()) os_ << "\n## " << section_ << '\n';
  table_->print(os_);
  table_.reset();
}

void TableSink::finish() { flush_section(); }

// --- CsvSink ---------------------------------------------------------------

CsvSink::CsvSink(const std::string& path) : out_(path), path_(path) {
  if (!out_) {
    throw std::runtime_error("CsvSink: cannot open " + path);
  }
}

void CsvSink::begin_section(const std::string& name,
                            const std::vector<std::string>& headers) {
  NEATBOUND_EXPECTS(!headers.empty(), "CSV section needs at least one column");
  section_ = name;
  const bool want_section_column = section_column_ || !name.empty();
  if (!header_written_ || headers != headers_ ||
      want_section_column != section_column_) {
    headers_ = headers;
    section_column_ = want_section_column;
    std::vector<std::string> row;
    if (section_column_) row.push_back("section");
    row.insert(row.end(), headers.begin(), headers.end());
    out_ << csv_format_row(row) << '\n';
    header_written_ = true;
  }
}

void CsvSink::add_row(const std::vector<std::string>& cells) {
  NEATBOUND_EXPECTS(header_written_, "add_row before begin_section");
  NEATBOUND_EXPECTS(cells.size() == headers_.size(),
                    "CSV row width must match section header");
  std::vector<std::string> row;
  if (section_column_) row.push_back(section_);
  row.insert(row.end(), cells.begin(), cells.end());
  out_ << csv_format_row(row) << '\n';
}

// neatbound-analyze: allow(contract-coverage) — the postcondition (all
// rows reached the file) is checked by the typed runtime_error throw on
// stream failure, which callers rely on catching.
void CsvSink::finish() {
  out_.flush();
  if (!out_) {
    throw std::runtime_error("CsvSink: write failed for " + path_);
  }
}

// --- JsonSink --------------------------------------------------------------

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {
std::string json_string(const std::string& text) {
  return '"' + json_escape(text) + '"';
}

std::string json_string_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_string(items[i]);
  }
  out += ']';
  return out;
}
}  // namespace

JsonSink::JsonSink(std::string path, std::string bench_name)
    : path_(std::move(path)), bench_name_(std::move(bench_name)) {}

void JsonSink::begin_section(const std::string& name,
                             const std::vector<std::string>& headers) {
  sections_.push_back({name, headers, {}});
}

void JsonSink::add_row(const std::vector<std::string>& cells) {
  NEATBOUND_EXPECTS(!sections_.empty(), "add_row before begin_section");
  NEATBOUND_EXPECTS(cells.size() == sections_.back().headers.size(),
                    "JSON row width must match section header");
  sections_.back().rows.push_back(cells);
}

void JsonSink::set_meta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, json_string(value));
}

void JsonSink::set_meta_number(const std::string& key, double value) {
  char buf[64];
  const int written = std::snprintf(buf, sizeof buf, "%.12g", value);
  NEATBOUND_ENSURES(written > 0 && written < static_cast<int>(sizeof buf),
                    "formatted metadata number must fit the buffer");
  meta_.emplace_back(key, buf);
}

// neatbound-analyze: allow(contract-coverage) — postcondition (document
// written) is checked by the typed runtime_error throws on open/write
// failure; the JSON shape itself is covered by the sink tests.
void JsonSink::finish() {
  std::ofstream out(path_);
  if (!out) {
    throw std::runtime_error("JsonSink: cannot open " + path_);
  }
  out << "{\n  \"bench\": " << json_string(bench_name_) << ",\n";
  out << "  \"meta\": {";
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    if (i > 0) out << ',';
    out << "\n    " << json_string(meta_[i].first) << ": " << meta_[i].second;
  }
  out << (meta_.empty() ? "" : "\n  ") << "},\n";
  out << "  \"sections\": [";
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    const Section& section = sections_[s];
    if (s > 0) out << ',';
    out << "\n    {\n      \"name\": " << json_string(section.name)
        << ",\n      \"headers\": " << json_string_array(section.headers)
        << ",\n      \"rows\": [";
    for (std::size_t r = 0; r < section.rows.size(); ++r) {
      if (r > 0) out << ',';
      out << "\n        " << json_string_array(section.rows[r]);
    }
    out << (section.rows.empty() ? "" : "\n      ") << "]\n    }";
  }
  out << (sections_.empty() ? "" : "\n  ") << "]\n}\n";
  if (!out) {
    throw std::runtime_error("JsonSink: write failed for " + path_);
  }
}

// --- SinkSet ---------------------------------------------------------------

// neatbound-analyze: allow(hot-alloc) — cold setup-time registration;
// it reaches the hot closure only through the text front end's
// name-based call graph (BlockStore::add shares the name `add`).
void SinkSet::add(std::unique_ptr<ResultSink> sink) {
  sinks_.push_back(std::move(sink));
}

void SinkSet::begin_section(const std::string& name,
                            const std::vector<std::string>& headers) {
  for (const auto& sink : sinks_) sink->begin_section(name, headers);
}

void SinkSet::add_row(const std::vector<std::string>& cells) {
  for (const auto& sink : sinks_) sink->add_row(cells);
}

void SinkSet::finish() {
  for (const auto& sink : sinks_) sink->finish();
}

}  // namespace neatbound::exp
