#include "exp/grid.hpp"

#include <stdexcept>
#include <utility>

namespace neatbound::exp {

GridPoint::GridPoint(std::vector<std::string> names, std::size_t index,
                     std::vector<double> values)
    : names_(std::move(names)), index_(index), values_(std::move(values)) {}

double GridPoint::value(const std::string& axis) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == axis) return values_[i];
  }
  throw std::out_of_range("GridPoint: no axis named '" + axis + "'");
}

double GridPoint::value(std::size_t axis) const { return values_.at(axis); }

// neatbound-analyze: allow(contract-coverage) — preconditions (non-empty
// values, no duplicate axis) are enforced right below via typed
// std::invalid_argument throws that callers catch as part of the API.
SweepGrid& SweepGrid::axis(std::string name, std::vector<double> values) {
  if (values.empty()) {
    throw std::invalid_argument("SweepGrid: axis '" + name +
                                "' needs at least one value");
  }
  for (const std::string& existing : names_) {
    if (existing == name) {
      throw std::invalid_argument("SweepGrid: duplicate axis '" + name + "'");
    }
  }
  names_.push_back(std::move(name));
  values_.push_back(std::move(values));
  return *this;
}

std::size_t SweepGrid::size() const noexcept {
  std::size_t product = 1;
  for (const auto& axis : values_) product *= axis.size();
  return product;
}

const std::string& SweepGrid::axis_name(std::size_t i) const {
  return names_.at(i);
}

const std::vector<double>& SweepGrid::axis_values(std::size_t i) const {
  return values_.at(i);
}

std::size_t SweepGrid::axis_index(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  throw std::out_of_range("SweepGrid: no axis named '" + name + "'");
}

GridPoint SweepGrid::point(std::size_t index) const {
  if (index >= size()) {
    throw std::out_of_range("SweepGrid: point index out of range");
  }
  std::vector<double> values(values_.size());
  std::size_t rest = index;
  for (std::size_t i = values_.size(); i-- > 0;) {
    const auto& axis = values_[i];
    values[i] = axis[rest % axis.size()];
    rest /= axis.size();
  }
  return GridPoint(names_, index, std::move(values));
}

std::vector<GridPoint> SweepGrid::points() const {
  std::vector<GridPoint> out;
  const std::size_t n = size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(point(i));
  return out;
}

}  // namespace neatbound::exp
