#include "exp/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "exp/checkpoint.hpp"
#include "sim/batch_engine.hpp"
#include "sim/engine.hpp"
#include "support/contracts.hpp"
#include "support/invariant.hpp"
#include "support/parallel.hpp"

namespace neatbound::exp {

namespace {

/// Mutable per-cell state of the wave loop; becomes an AdaptiveCell.
struct CellState {
  GridPoint point;
  sim::ExperimentConfig config;
  sim::ExperimentSummary summary;
  std::uint32_t seeds_done = 0;
  std::uint64_t violations = 0;
  bool stopped = false;
  bool stopped_early = false;
};

void validate_adaptive(const AdaptiveOptions& adaptive) {
  NEATBOUND_EXPECTS(adaptive.min_seeds >= 1,
                    "adaptive: min_seeds must be >= 1");
  NEATBOUND_EXPECTS(adaptive.batch >= 1, "adaptive: batch must be >= 1");
  NEATBOUND_EXPECTS(adaptive.max_seeds >= adaptive.min_seeds,
                    "adaptive: max_seeds must be >= min_seeds");
  NEATBOUND_EXPECTS(
      adaptive.confidence > 0.0 && adaptive.confidence < 1.0,
      "adaptive: confidence must be in (0,1)");
  NEATBOUND_EXPECTS(adaptive.half_width >= 0.0,
                    "adaptive: half_width must be >= 0");
}

/// Canonical sweep description the checkpoint fingerprint hashes; any
/// change to it makes old checkpoints unresumable (by design).
std::uint64_t sweep_fingerprint(const SweepGrid& grid,
                                const std::vector<CellState>& cells,
                                const SweepOptions& options,
                                const AdaptiveOptions& adaptive) {
  FingerprintBuilder fp;
  fp.text("grid");
  for (std::size_t i = 0; i < grid.axis_count(); ++i) {
    fp.text(grid.axis_name(i));
    for (const double value : grid.axis_values(i)) fp.number(value);
  }
  fp.text("cells");
  for (const CellState& cell : cells) {
    const sim::EngineConfig& engine = cell.config.engine;
    fp.integer(engine.miner_count)
        .number(engine.adversary_fraction)
        .number(engine.p)
        .integer(engine.delta)
        .integer(engine.rounds)
        // rng_mode shapes trajectories, so checkpoints must not resume
        // across it.  batch_seeds is deliberately NOT hashed: batching is
        // bit-identical to serial, so resuming under a different width is
        // sound.
        .integer(static_cast<std::uint64_t>(engine.rng_mode))
        .integer(static_cast<std::uint64_t>(cell.config.adversary))
        .integer(cell.config.base_seed);
  }
  fp.text("options").integer(options.violation_t);
  fp.text("adaptive")
      .integer(adaptive.min_seeds)
      .integer(adaptive.batch)
      .integer(adaptive.max_seeds)
      .number(adaptive.half_width)
      .number(adaptive.confidence);
  fp.text("context").text(adaptive.fingerprint_context);
  return fp.finish();
}

void restore_cells(std::vector<CellState>& cells,
                   const SweepCheckpoint& checkpoint,
                   const std::string& path) {
  if (checkpoint.cells.size() != cells.size()) {
    throw std::runtime_error(path + ": checkpoint has " +
                             std::to_string(checkpoint.cells.size()) +
                             " cells, sweep has " +
                             std::to_string(cells.size()));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellCheckpoint& saved = checkpoint.cells[i];
    cells[i].summary = saved.summary;
    cells[i].seeds_done = saved.seeds_done;
    cells[i].violations = saved.violations;
    cells[i].stopped = saved.stopped;
    cells[i].stopped_early = saved.stopped_early;
  }
}

SweepCheckpoint snapshot_cells(const std::vector<CellState>& cells,
                               std::uint64_t fingerprint,
                               std::uint64_t waves_done) {
  SweepCheckpoint checkpoint;
  checkpoint.fingerprint = fingerprint;
  checkpoint.waves_done = waves_done;
  checkpoint.cells.reserve(cells.size());
  for (const CellState& cell : cells) {
    checkpoint.cells.push_back({cell.seeds_done, cell.violations,
                                cell.stopped, cell.stopped_early,
                                cell.summary});
  }
  return checkpoint;
}

struct WaveLoopOutcome {
  std::uint64_t waves_total = 0;  ///< including waves restored from disk
  bool complete = true;
};

/// The shared wave loop: schedules seed batches for unstopped cells,
/// runs each wave's (cell × seed) jobs on one pool, folds results in
/// seed order, applies the stopping rule at the wave boundary, and
/// checkpoints.  Both the public adaptive sweep and the frontier
/// midpoint evaluations run through this.
WaveLoopOutcome run_waves(std::vector<CellState>& cells,
                          const SweepOptions& options,
                          const AdaptiveOptions& adaptive,
                          const SweepAdversaryFactory& factory,
                          std::uint64_t fingerprint) {
  const double z = stats::z_for_confidence(adaptive.confidence);
  WaveLoopOutcome outcome;

  if (adaptive.resume && !adaptive.checkpoint_path.empty() &&
      std::filesystem::exists(adaptive.checkpoint_path)) {
    // Fingerprint precondition: a resumable run must hash its own sweep
    // description — resuming with the 0 sentinel would skip the foreign-
    // checkpoint rejection in load_sweep_checkpoint entirely.
    NEATBOUND_INVARIANT(fingerprint != 0,
                        "resume requires a non-zero sweep fingerprint");
    const SweepCheckpoint checkpoint =
        load_sweep_checkpoint(adaptive.checkpoint_path, fingerprint);
    restore_cells(cells, checkpoint, adaptive.checkpoint_path);
    outcome.waves_total = checkpoint.waves_done;
    NEATBOUND_INVARIANT(
        std::all_of(cells.begin(), cells.end(),
                    [&](const CellState& cell) {
                      return cell.seeds_done <= adaptive.max_seeds &&
                             (!cell.stopped_early || cell.stopped);
                    }),
        "restored cell state inconsistent (seed budget or stop flags)");
  }

  std::uint32_t waves_this_process = 0;
  while (true) {
    // Plan the wave: cell-major, seed-ascending — the fold order below.
    // A job is a chunk of ≤ batch_seeds consecutive seeds of one cell;
    // counter-RNG cells run each chunk as one lockstep batched pass
    // (sim/batch_engine.hpp, bit-identical to per-seed runs), legacy
    // cells always chunk per seed.
    struct WaveJob {
      std::size_t cell;
      std::uint32_t first;
      std::uint32_t count;
    };
    std::vector<WaveJob> jobs;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellState& cell = cells[i];
      if (cell.stopped) continue;
      const std::uint32_t target =
          cell.seeds_done == 0
              ? adaptive.min_seeds
              : std::min(cell.seeds_done + adaptive.batch,
                         adaptive.max_seeds);
      const std::uint32_t width =
          cell.config.engine.rng_mode == sim::RngMode::kCounter
              ? std::max<std::uint32_t>(adaptive.batch_seeds, 1)
              : 1;
      for (std::uint32_t k = cell.seeds_done; k < target;) {
        const std::uint32_t count = std::min(width, target - k);
        jobs.push_back({i, k, count});
        k += count;
      }
    }
    if (jobs.empty()) break;

    // Seed k of cell i always consumes engine seed base_seed + k of that
    // cell's config — independent of which wave (or chunk) scheduled it.
    std::vector<std::vector<sim::RunResult>> results(jobs.size());
    parallel_for_indexed(jobs.size(), options.threads, [&](std::size_t j) {
      const WaveJob& job = jobs[j];
      const sim::ExperimentConfig& cell_config = cells[job.cell].config;
      if (job.count > 1) {
        std::vector<std::uint64_t> seeds(job.count);
        for (std::uint32_t d = 0; d < job.count; ++d) {
          seeds[d] = cell_config.base_seed + job.first + d;
        }
        results[j] = sim::run_batch(
            cell_config.engine, seeds,
            [&](const sim::EngineConfig& engine_config) {
              return factory(cell_config, engine_config);
            });
      } else {
        sim::EngineConfig engine_config = cell_config.engine;
        engine_config.seed = cell_config.base_seed + job.first;
        sim::ExecutionEngine engine(engine_config,
                                    factory(cell_config, engine_config));
        results[j].push_back(engine.run());
      }
    });

    // Seed-ordered fold (jobs are cell-major, ascending k) — identical
    // to the serial fixed-budget accumulation truncated at seeds_done.
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      CellState& cell = cells[jobs[j].cell];
      for (std::size_t d = 0; d < results[j].size(); ++d) {
        // The serial≡parallel bit-identity hangs on folding seed k as the
        // cell's k-th accumulation, whatever order the pool ran the jobs.
        NEATBOUND_INVARIANT(cell.seeds_done == jobs[j].first + d,
                            "wave fold out of seed order");
        sim::accumulate_run(cell.summary, results[j][d],
                            options.violation_t);
        if (results[j][d].violation_depth > options.violation_t) {
          ++cell.violations;
        }
        ++cell.seeds_done;
      }
    }

    // Stopping decisions happen only here, at the wave boundary, from
    // the cell's own completed seeds — deterministic and schedule-free.
    for (CellState& cell : cells) {
      if (cell.stopped || cell.seeds_done == 0) continue;
      if (cell.seeds_done >= adaptive.min_seeds &&
          stats::precision_reached(cell.violations, cell.seeds_done,
                                   adaptive.half_width, z)) {
        cell.stopped = true;
        cell.stopped_early = cell.seeds_done < adaptive.max_seeds;
      } else if (cell.seeds_done >= adaptive.max_seeds) {
        cell.stopped = true;
      }
    }

    ++waves_this_process;
    ++outcome.waves_total;
    if (!adaptive.checkpoint_path.empty()) {
      // Same precondition as resume: never write a checkpoint that a
      // later load could not verify against its sweep.
      NEATBOUND_INVARIANT(fingerprint != 0,
                          "checkpointing requires a non-zero fingerprint");
      save_sweep_checkpoint(
          adaptive.checkpoint_path,
          snapshot_cells(cells, fingerprint, outcome.waves_total));
    }
    if (adaptive.progress) {
      WaveProgress progress;
      progress.wave = outcome.waves_total;
      progress.cells_total = cells.size();
      for (const CellState& cell : cells) {
        if (cell.stopped) ++progress.cells_stopped;
        progress.seeds_spent += cell.seeds_done;
        if (!cell.stopped && cell.seeds_done > 0) {
          progress.widest_half_width = std::max(
              progress.widest_half_width,
              stats::wilson_half_width(cell.violations, cell.seeds_done, z));
        }
      }
      adaptive.progress(progress);
    }
    if (adaptive.stop_after_waves != 0 &&
        waves_this_process >= adaptive.stop_after_waves &&
        std::any_of(cells.begin(), cells.end(),
                    [](const CellState& c) { return !c.stopped; })) {
      outcome.complete = false;
      break;
    }
  }
  return outcome;
}

std::vector<CellState> build_cells(const SweepGrid& grid,
                                   const ConfigBuilder& build) {
  std::vector<CellState> cells;
  cells.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    GridPoint point = grid.point(i);
    sim::ExperimentConfig config = build(point);
    cells.push_back({std::move(point), config, {}, 0, 0, false, false});
  }
  return cells;
}

AdaptiveCell finish_cell(CellState&& cell, double z) {
  AdaptiveCell out;
  out.seeds_used = cell.seeds_done;
  out.violations = cell.violations;
  out.stopped_early = cell.stopped_early;
  if (cell.seeds_done > 0) {
    out.ci = stats::wilson_interval(cell.violations, cell.seeds_done, z);
  }
  // The cell becomes exactly the fixed-budget cell it is bit-identical
  // to: config.seeds reflects the seeds actually folded in.
  cell.config.seeds = cell.seeds_done;
  out.cell = {std::move(cell.point), cell.config, cell.summary};
  return out;
}

}  // namespace

AdaptiveSweepResult run_sweep_adaptive_with(
    const SweepGrid& grid, const ConfigBuilder& build,
    const SweepOptions& options, const AdaptiveOptions& adaptive,
    const SweepAdversaryFactory& factory) {
  validate_adaptive(adaptive);
  std::vector<CellState> cells = build_cells(grid, build);
  const std::uint64_t fingerprint =
      sweep_fingerprint(grid, cells, options, adaptive);
  const WaveLoopOutcome outcome =
      run_waves(cells, options, adaptive, factory, fingerprint);

  AdaptiveSweepResult result;
  result.waves = outcome.waves_total;
  result.complete = outcome.complete;
  const double z = stats::z_for_confidence(adaptive.confidence);
  result.cells.reserve(cells.size());
  for (CellState& cell : cells) {
    result.engine_runs += cell.seeds_done;
    result.cells.push_back(finish_cell(std::move(cell), z));
  }
  return result;
}

AdaptiveSweepResult run_sweep_adaptive(const SweepGrid& grid,
                                       const ConfigBuilder& build,
                                       const SweepOptions& options,
                                       const AdaptiveOptions& adaptive) {
  return run_sweep_adaptive_with(grid, build, options, adaptive,
                                 default_sweep_adversary_factory());
}

namespace {

/// Frontier midpoint evaluation: a one-cell adaptive run (no
/// checkpointing — refinement is cheap relative to the coarse sweep and
/// re-runs deterministically).
struct MidpointEstimate {
  double phat = 0.0;
  std::uint64_t runs = 0;
};

MidpointEstimate evaluate_midpoint(const GridPoint& point,
                                   const ConfigBuilder& build,
                                   const SweepOptions& options,
                                   const AdaptiveOptions& adaptive,
                                   const SweepAdversaryFactory& factory) {
  AdaptiveOptions local = adaptive;
  local.checkpoint_path.clear();
  local.resume = false;
  local.stop_after_waves = 0;
  local.progress = nullptr;  // midpoint waves are internal, not user-visible
  std::vector<CellState> cell;
  cell.push_back({point, build(point), {}, 0, 0, false, false});
  (void)run_waves(cell, options, local, factory, 0);
  MidpointEstimate estimate;
  estimate.runs = cell[0].seeds_done;
  estimate.phat = static_cast<double>(cell[0].violations) /
                  static_cast<double>(cell[0].seeds_done);
  return estimate;
}

GridPoint synthetic_point(const SweepGrid& grid, std::size_t index,
                          const std::vector<double>& values) {
  std::vector<std::string> names;
  names.reserve(grid.axis_count());
  for (std::size_t i = 0; i < grid.axis_count(); ++i) {
    names.push_back(grid.axis_name(i));
  }
  return GridPoint(std::move(names), index, values);
}

}  // namespace

FrontierResult localize_frontier_with(const SweepGrid& grid,
                                      const ConfigBuilder& build,
                                      const SweepOptions& options,
                                      const AdaptiveOptions& adaptive,
                                      const FrontierOptions& frontier,
                                      const SweepAdversaryFactory& factory) {
  bool axis_found = false;
  std::size_t axis_pos = 0;
  for (std::size_t i = 0; i < grid.axis_count(); ++i) {
    if (grid.axis_name(i) == frontier.axis) {
      axis_found = true;
      axis_pos = i;
    }
  }
  if (!axis_found) {
    throw std::invalid_argument("frontier axis \"" + frontier.axis +
                                "\" is not a grid axis");
  }
  if (!(frontier.tolerance > 0.0)) {
    throw std::invalid_argument("frontier tolerance must be positive");
  }

  FrontierResult result;
  result.coarse =
      run_sweep_adaptive_with(grid, build, options, adaptive, factory);
  result.engine_runs = result.coarse.engine_runs;
  if (!result.coarse.complete) return result;  // interrupted coarse phase

  // Group the coarse cells into lines: cells agreeing on every axis but
  // the bisect axis, kept in grid order within and across lines.
  struct Line {
    std::vector<double> key;  ///< the other axes' values
    std::vector<const AdaptiveCell*> cells;
  };
  std::vector<Line> lines;
  for (const AdaptiveCell& adaptive_cell : result.coarse.cells) {
    std::vector<double> key;
    key.reserve(grid.axis_count() - 1);
    for (std::size_t a = 0; a < grid.axis_count(); ++a) {
      if (a != axis_pos) key.push_back(adaptive_cell.cell.point.value(a));
    }
    auto line = std::find_if(lines.begin(), lines.end(),
                             [&](const Line& l) { return l.key == key; });
    if (line == lines.end()) {
      lines.push_back({std::move(key), {}});
      line = std::prev(lines.end());
    }
    line->cells.push_back(&adaptive_cell);
  }

  std::size_t synthetic_index = grid.size();
  for (const Line& line : lines) {
    FrontierRow row{line.cells.front()->cell.point, false, 0, 0, 0, 0, 0};

    // Dense-grid cost of this line at the requested resolution.
    const double first = line.cells.front()->cell.point.value(axis_pos);
    const double last = line.cells.back()->cell.point.value(axis_pos);
    const double span = std::fabs(last - first);
    const std::uint64_t dense_points =
        static_cast<std::uint64_t>(std::floor(span / frontier.tolerance)) + 1;
    result.dense_equivalent_runs +=
        std::max<std::uint64_t>(dense_points, line.cells.size()) *
        adaptive.max_seeds;

    const auto phat_of = [](const AdaptiveCell& c) {
      return static_cast<double>(c.violations) /
             static_cast<double>(c.seeds_used);
    };
    const auto above = [&](double phat) {
      return phat >= frontier.threshold;
    };

    // First adjacent pair straddling the threshold, in declared axis
    // order (benches declare the bisect axis monotone).
    for (std::size_t i = 0; i + 1 < line.cells.size(); ++i) {
      const double p_a = phat_of(*line.cells[i]);
      const double p_b = phat_of(*line.cells[i + 1]);
      if (above(p_a) == above(p_b)) continue;

      row.bracketed = true;
      row.anchor = line.cells[i]->cell.point;
      row.lo = line.cells[i]->cell.point.value(axis_pos);
      row.hi = line.cells[i + 1]->cell.point.value(axis_pos);
      row.estimate_lo = p_a;
      row.estimate_hi = p_b;
      std::uint32_t bisections = 0;
      while (std::fabs(row.hi - row.lo) > frontier.tolerance &&
             bisections < frontier.max_bisections) {
        const double mid = 0.5 * (row.lo + row.hi);
        std::vector<double> values;
        values.reserve(grid.axis_count());
        std::size_t key_slot = 0;
        for (std::size_t a = 0; a < grid.axis_count(); ++a) {
          values.push_back(a == axis_pos ? mid : line.key[key_slot++]);
        }
        const MidpointEstimate estimate = evaluate_midpoint(
            synthetic_point(grid, synthetic_index++, values), build,
            options, adaptive, factory);
        row.refine_runs += estimate.runs;
        if (above(estimate.phat) == above(row.estimate_lo)) {
          row.lo = mid;
          row.estimate_lo = estimate.phat;
        } else {
          row.hi = mid;
          row.estimate_hi = estimate.phat;
        }
        ++bisections;
      }
      break;
    }
    result.engine_runs += row.refine_runs;
    result.rows.push_back(std::move(row));
  }
  return result;
}

FrontierResult localize_frontier(const SweepGrid& grid,
                                 const ConfigBuilder& build,
                                 const SweepOptions& options,
                                 const AdaptiveOptions& adaptive,
                                 const FrontierOptions& frontier) {
  return localize_frontier_with(grid, build, options, adaptive, frontier,
                                default_sweep_adversary_factory());
}

}  // namespace neatbound::exp
