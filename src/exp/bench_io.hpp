// Uniform bench-harness I/O: every engine bench accepts the same three
// orchestration flags and reports through the same sink stack.
//
//   --threads N   workers for the sweep pool (0 = hardware concurrency)
//   --csv PATH    mirror every table into one CSV file
//   --json PATH   write the machine-readable summary document
//
// The stdout table sink is always attached, so default behaviour matches
// the pre-orchestrator output; the JSON document additionally records the
// requested thread count and wall-clock seconds — the fields the
// BENCH_*.json perf trajectory tracks.  (`threads_requested` is the raw
// flag value: each pool clamps its actual worker count to its job count,
// so the number of threads that really ran can be smaller and can differ
// between a bench's sections.)
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "exp/sinks.hpp"
#include "support/cli.hpp"

namespace neatbound::exp {

struct BenchOptions {
  unsigned threads = 0;  ///< 0 = hardware concurrency
  std::string csv_path;
  std::string json_path;
};

/// Consumes --threads/--csv/--json from `args` (call before
/// reject_unconsumed).
[[nodiscard]] BenchOptions parse_bench_options(CliArgs& args);

/// The ResultSink a bench holds: stdout table + optional CSV + optional
/// JSON, with wall-clock timing from construction to finish().
class BenchReporter final : public ResultSink {
 public:
  /// Throws std::runtime_error if an output file cannot be opened.
  BenchReporter(const std::string& bench_name, const BenchOptions& options);

  void begin_section(const std::string& name,
                     const std::vector<std::string>& headers) override;
  void add_row(const std::vector<std::string>& cells) override;
  /// Flushes tables/files; stamps threads_requested + elapsed_seconds
  /// into the JSON meta.  Must be called before process exit for file
  /// sinks to be complete.
  void finish() override;

  /// Extra JSON metadata (no-ops without --json).
  void set_meta(const std::string& key, const std::string& value);
  void set_meta_number(const std::string& key, double value);

 private:
  SinkSet sinks_;
  JsonSink* json_ = nullptr;  ///< borrowed from sinks_
  unsigned threads_;          ///< as requested (0 = auto), not as clamped
  // determinism-lint: allow(raw-steady-clock) — elapsed_seconds metadata.
  std::chrono::steady_clock::time_point start_;
};

}  // namespace neatbound::exp
