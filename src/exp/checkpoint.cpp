#include "exp/checkpoint.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "support/json.hpp"
#include "support/telemetry.hpp"

namespace neatbound::exp {

namespace {

constexpr const char* kFormatTag = "neatbound-sweep-checkpoint-v1";

/// The ExperimentSummary fields, in the fixed serialization order.  Names
/// are written into the document so a hand-inspected checkpoint reads
/// like the report columns do.
struct SummaryField {
  const char* name;
  stats::RunningStats sim::ExperimentSummary::* member;
};

constexpr SummaryField kSummaryFields[] = {
    {"convergence_opportunities",
     &sim::ExperimentSummary::convergence_opportunities},
    {"adversary_blocks", &sim::ExperimentSummary::adversary_blocks},
    {"honest_blocks", &sim::ExperimentSummary::honest_blocks},
    {"violation_depth", &sim::ExperimentSummary::violation_depth},
    {"max_reorg_depth", &sim::ExperimentSummary::max_reorg_depth},
    {"max_divergence", &sim::ExperimentSummary::max_divergence},
    {"disagreement_rounds", &sim::ExperimentSummary::disagreement_rounds},
    {"chain_growth", &sim::ExperimentSummary::chain_growth},
    {"chain_quality", &sim::ExperimentSummary::chain_quality},
    {"best_height", &sim::ExperimentSummary::best_height},
    {"violation_exceeds_t", &sim::ExperimentSummary::violation_exceeds_t},
};

std::string hex_repr(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::uint64_t parse_hex(const std::string& text, const std::string& path) {
  std::uint64_t value = 0;
  const char* first = text.c_str() + 2;
  const char* last = text.c_str() + text.size();
  const auto [end, ec] =
      text.rfind("0x", 0) == 0 && text.size() == 18
          ? std::from_chars(first, last, value, 16)
          : std::from_chars_result{nullptr, std::errc::invalid_argument};
  if (ec != std::errc{} || end != last) {
    throw std::runtime_error(path + ": malformed checkpoint fingerprint \"" +
                             text + "\"");
  }
  return value;
}

void write_stats(std::ostream& os, const stats::RunningStats& stats) {
  const stats::RunningStatsState state = stats.state();
  os << '[' << state.count << ',' << exact_double_repr(state.mean) << ','
     << exact_double_repr(state.m2) << ',' << exact_double_repr(state.min)
     << ',' << exact_double_repr(state.max) << ']';
}

stats::RunningStats read_stats(const support::JsonValue& value,
                               const std::string& path) {
  const auto& array = value.as_array();
  if (array.size() != 5) {
    throw std::runtime_error(path +
                             ": summary field must be a 5-element array "
                             "[count, mean, m2, min, max]");
  }
  stats::RunningStatsState state;
  state.count = array[0].as_uint();
  state.mean = array[1].as_number();
  state.m2 = array[2].as_number();
  state.min = array[3].as_number();
  state.max = array[4].as_number();
  return stats::RunningStats::from_state(state);
}

}  // namespace

// neatbound-analyze: allow(contract-coverage) — total function: every
// byte sequence is a valid fingerprint contribution, and the FNV-1a
// fold has no internal invariant beyond the running hash itself.
FingerprintBuilder& FingerprintBuilder::text(const std::string& piece) {
  for (const char c : piece) {
    hash_ ^= static_cast<unsigned char>(c);
    hash_ *= 1099511628211ULL;  // FNV-1a prime
  }
  // Terminator so concatenated pieces cannot collide by re-splitting.
  hash_ ^= 0xffU;
  hash_ *= 1099511628211ULL;
  return *this;
}

FingerprintBuilder& FingerprintBuilder::number(double value) {
  return text(exact_double_repr(value));
}

FingerprintBuilder& FingerprintBuilder::integer(std::uint64_t value) {
  return text(std::to_string(value));
}

std::string exact_double_repr(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

void save_sweep_checkpoint(const std::string& path,
                           const SweepCheckpoint& checkpoint) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) {
      throw std::runtime_error("checkpoint: cannot open " + tmp +
                               " for writing");
    }
    os << "{\n  \"format\": \"" << kFormatTag << "\",\n  \"fingerprint\": \""
       << hex_repr(checkpoint.fingerprint) << "\",\n  \"waves_done\": "
       << checkpoint.waves_done << ",\n  \"cells\": [";
    for (std::size_t i = 0; i < checkpoint.cells.size(); ++i) {
      const CellCheckpoint& cell = checkpoint.cells[i];
      os << (i == 0 ? "\n" : ",\n") << "    {\"seeds_done\": "
         << cell.seeds_done << ", \"violations\": " << cell.violations
         << ", \"stopped\": " << (cell.stopped ? "true" : "false")
         << ", \"stopped_early\": " << (cell.stopped_early ? "true" : "false")
         << ",\n     \"summary\": {";
      bool first = true;
      for (const SummaryField& field : kSummaryFields) {
        os << (first ? "\n" : ",\n") << "       \"" << field.name << "\": ";
        write_stats(os, cell.summary.*field.member);
        first = false;
      }
      os << "}";
      if (telemetry::enabled()) {
        // Counters only: phase wall times are nondeterministic and must
        // not enter the resume state.  Telemetry-OFF builds skip the key
        // entirely, so their checkpoints stay byte-identical to builds
        // that predate the telemetry layer.
        os << ",\n     \"telemetry\": {\"runs\": "
           << cell.summary.telemetry.runs << ", \"counters\": [";
        for (std::size_t c = 0; c < telemetry::kCounterCount; ++c) {
          os << (c == 0 ? "" : ", ") << cell.summary.telemetry.counters[c];
        }
        os << "]}";
      }
      os << "}";
    }
    os << "\n  ]\n}\n";
    if (!os.flush()) {
      throw std::runtime_error("checkpoint: write to " + tmp + " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint: cannot rename " + tmp + " to " +
                             path);
  }
}

SweepCheckpoint load_sweep_checkpoint(const std::string& path,
                                      std::uint64_t expected_fingerprint) {
  const support::JsonValue document = support::load_json_file(path);
  const std::string format = document.at("format").as_string();
  if (format != kFormatTag) {
    throw std::runtime_error(path + ": unsupported checkpoint format \"" +
                             format + "\" (want " + kFormatTag + ")");
  }
  SweepCheckpoint checkpoint;
  checkpoint.fingerprint =
      parse_hex(document.at("fingerprint").as_string(), path);
  if (expected_fingerprint != 0 &&
      checkpoint.fingerprint != expected_fingerprint) {
    throw std::runtime_error(
        path + ": checkpoint fingerprint " +
        hex_repr(checkpoint.fingerprint) + " does not match this sweep (" +
        hex_repr(expected_fingerprint) +
        ") — grid, engine parameters, components or adaptive options "
        "changed");
  }
  checkpoint.waves_done = document.at("waves_done").as_uint();
  for (const support::JsonValue& entry : document.at("cells").as_array()) {
    CellCheckpoint cell;
    cell.seeds_done =
        static_cast<std::uint32_t>(entry.at("seeds_done").as_uint());
    cell.violations = entry.at("violations").as_uint();
    cell.stopped = entry.at("stopped").as_bool();
    cell.stopped_early = entry.at("stopped_early").as_bool();
    const support::JsonValue& summary = entry.at("summary");
    for (const SummaryField& field : kSummaryFields) {
      cell.summary.*field.member = read_stats(summary.at(field.name), path);
    }
    // Optional key: absent in telemetry-OFF checkpoints (accumulator
    // stays all-zero) and in files written before the telemetry layer.
    if (const support::JsonValue* tel = entry.find("telemetry")) {
      cell.summary.telemetry.runs = tel->at("runs").as_uint();
      const auto& counters = tel->at("counters").as_array();
      if (counters.size() != telemetry::kCounterCount) {
        throw std::runtime_error(
            path + ": telemetry counters array has " +
            std::to_string(counters.size()) + " entries, want " +
            std::to_string(telemetry::kCounterCount));
      }
      for (std::size_t c = 0; c < telemetry::kCounterCount; ++c) {
        cell.summary.telemetry.counters[c] = counters[c].as_uint();
      }
    }
    checkpoint.cells.push_back(cell);
  }
  return checkpoint;
}

}  // namespace neatbound::exp
