#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/contracts.hpp"

namespace neatbound {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NEATBOUND_EXPECTS(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  NEATBOUND_EXPECTS(cells.size() == headers_.size(),
                    "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      // Right-align all cells; headers and text read fine either way and
      // numeric columns line up on the decimal side.
      const std::size_t pad = widths[c] - row[c].size();
      for (std::size_t i = 0; i < pad; ++i) os << ' ';
      os << row[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

namespace {
std::string format_with(const char* spec, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}
}  // namespace

std::string format_general(double v, int digits) {
  char spec[16];
  std::snprintf(spec, sizeof(spec), "%%.%dg", digits);
  return format_with(spec, v);
}

std::string format_fixed(double v, int digits) {
  char spec[16];
  std::snprintf(spec, sizeof(spec), "%%.%df", digits);
  return format_with(spec, v);
}

std::string format_sci(double v, int digits) {
  char spec[16];
  std::snprintf(spec, sizeof(spec), "%%.%de", digits);
  return format_with(spec, v);
}

}  // namespace neatbound
