// Minimal CSV writer: every bench harness can optionally dump its series to
// a CSV file (for external plotting) in addition to the stdout table.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace neatbound {

/// Serializes one row with RFC-4180 quoting (cells containing , " or
/// newline are quoted, embedded quotes doubled).  No trailing newline.
[[nodiscard]] std::string csv_format_row(const std::vector<std::string>& cells);

/// RFC-4180-style CSV writer (quotes cells containing , " or newline).
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  /// Flushes and closes; called by the destructor if not called explicitly.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  void write_row(const std::vector<std::string>& cells);
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace neatbound
