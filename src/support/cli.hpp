// Tiny command-line flag parser for bench harnesses and examples.
// Supports --name=value and --name value; unknown flags are an error so
// typos never silently fall back to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace neatbound {

class CliArgs {
 public:
  /// Parses argv; throws std::runtime_error on malformed input.
  CliArgs(int argc, const char* const* argv);

  /// Typed getters with defaults; record which flags were consumed.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& default_value);
  [[nodiscard]] double get_double(const std::string& name,
                                  double default_value);
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t default_value);
  [[nodiscard]] std::uint64_t get_uint(const std::string& name,
                                       std::uint64_t default_value);
  [[nodiscard]] bool get_bool(const std::string& name, bool default_value);

  /// True if the flag was provided.  Probing counts as consumption, so a
  /// flag handled only through has() does not trip reject_unconsumed().
  [[nodiscard]] bool has(const std::string& name) const;

  /// Throws if any provided flag was never consumed by a getter — catches
  /// misspelled flags. Call after all getters.
  void reject_unconsumed() const;

 private:
  std::map<std::string, std::string> values_;
  /// mutable so the const probe has() can record consumption too.
  mutable std::set<std::string> consumed_;
};

}  // namespace neatbound
