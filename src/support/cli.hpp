// Tiny command-line flag parser for bench harnesses and examples.
// Supports --name=value and --name value; unknown flags are an error so
// typos never silently fall back to defaults.
//
// Every typed getter registers its flag (name, type, default, optional
// help text), so usage output is generated automatically:
//   * `--help` → handle_help() prints the registered flags and returns
//     true (callers return 0);
//   * an unknown flag → reject_unconsumed() throws with the same usage
//     text appended, so a typo'd invocation shows what would have worked.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace neatbound {

class CliArgs {
 public:
  /// Parses argv; throws std::runtime_error on malformed input.
  CliArgs(int argc, const char* const* argv);

  /// Typed getters with defaults; record which flags were consumed and
  /// register the flag for usage output.  `help` is an optional one-line
  /// description shown by --help.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& default_value,
                                       const std::string& help = "");
  [[nodiscard]] double get_double(const std::string& name,
                                  double default_value,
                                  const std::string& help = "");
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t default_value,
                                     const std::string& help = "");
  [[nodiscard]] std::uint64_t get_uint(const std::string& name,
                                       std::uint64_t default_value,
                                       const std::string& help = "");
  [[nodiscard]] bool get_bool(const std::string& name, bool default_value,
                              const std::string& help = "");

  /// Optional-valued getters for flags whose absence means "use another
  /// source" (a config file, a spec default).  Registered without a
  /// default value, so --help shows none.
  [[nodiscard]] std::optional<std::uint64_t> get_opt_uint(
      const std::string& name, const std::string& help = "");
  [[nodiscard]] std::optional<double> get_opt_double(
      const std::string& name, const std::string& help = "");

  /// True if the flag was provided.  Probing counts as consumption, so a
  /// flag handled only through has() does not trip reject_unconsumed().
  [[nodiscard]] bool has(const std::string& name) const;

  /// Usage text generated from every getter call so far: one line per
  /// registered flag with its type, default and help text.
  [[nodiscard]] std::string usage() const;

  /// If --help was passed, prints usage to `os` and returns true (the
  /// caller should exit successfully).  Call after all getters so the
  /// flag registry is complete, before reject_unconsumed().
  [[nodiscard]] bool handle_help(std::ostream& os) const;

  /// Throws if any provided flag was never consumed by a getter — catches
  /// misspelled flags; the message lists the known flags. Call after all
  /// getters.
  void reject_unconsumed() const;

 private:
  struct FlagInfo {
    std::string name;
    std::string type;
    std::string default_repr;
    std::string help;
  };
  void register_flag(const std::string& name, const char* type,
                     std::string default_repr, const std::string& help);
  [[nodiscard]] static double parse_double(const std::string& name,
                                           const std::string& text);
  [[nodiscard]] static std::uint64_t parse_uint(const std::string& name,
                                                const std::string& text);

  std::map<std::string, std::string> values_;
  /// mutable so the const probe has() can record consumption too.
  mutable std::set<std::string> consumed_;
  std::vector<FlagInfo> registered_;  ///< in first-use order
};

}  // namespace neatbound
