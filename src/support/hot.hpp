#ifndef NEATBOUND_SUPPORT_HOT_HPP
#define NEATBOUND_SUPPORT_HOT_HPP

// NEATBOUND_HOT marks a function as part of the engine's per-round hot
// path.  The marker is consumed by scripts/neatbound_analyze.py:
//
//   * the function and everything reachable from it through the project
//     call graph must be allocation-free (rule `hot-alloc`; amortized
//     growth paths carry a `// neatbound-analyze: allow(hot-alloc)`
//     with a written rationale);
//   * accessor-named hot members must be const, and hot leaf functions
//     (no project calls, no contracts, no allocation) must be noexcept
//     (rule `hot-hygiene`).
//
// Under Clang the marker is also emitted into the AST as an annotate
// attribute so the libclang front end can read it without text
// matching.  GCC has no `annotate` attribute (and -Werror would turn
// the resulting -Wattributes warning fatal), so elsewhere the macro
// compiles to nothing — the analyzer's text front end matches the
// token itself.
#if defined(__clang__)
#define NEATBOUND_HOT __attribute__((annotate("neatbound_hot")))
#else
#define NEATBOUND_HOT
#endif

#endif  // NEATBOUND_SUPPORT_HOT_HPP
