// Fixed-width ASCII table printer used by the bench harnesses to emit the
// paper's tables/series in a uniform, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace neatbound {

/// Column-oriented table with automatic width computation.
///
/// Usage:
///   TablePrinter t({"c", "nu_max (ours)", "nu_max (PSS)"});
///   t.add_row({format_sci(c), format_fixed(a, 6), format_fixed(b, 6)});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header rule, right-aligned numeric-looking cells.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats with `digits` significant digits in general format (%.Ng).
[[nodiscard]] std::string format_general(double v, int digits = 6);

/// Fixed-point with `digits` decimals.
[[nodiscard]] std::string format_fixed(double v, int digits = 6);

/// Scientific with `digits` decimals.
[[nodiscard]] std::string format_sci(double v, int digits = 3);

}  // namespace neatbound
