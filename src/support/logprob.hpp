// Log-space probability arithmetic.
//
// At the paper's parameter scale (Δ = 10^13, p ≈ 10^-18 … 10^-20) the
// quantities in Theorem 1 — e.g. ᾱ^{2Δ} = (1-p)^{2Δμn} — underflow IEEE
// doubles by thousands of orders of magnitude even though the *final*
// comparisons are well conditioned (ᾱ^{2Δ} ≈ e^{-2μ/c}).  LogProb stores
// ln(x) for x ≥ 0 and provides exact-in-log-space *, /, pow and stable
// +, − via log-sum-exp.  Zero is representable (ln 0 = −∞).
//
// LogProb is a regular value type: copyable, comparable, hashable-free.
// Values > 1 are permitted (the type models non-negative reals, not only
// probabilities) because intermediate expressions like (1+δ)pνn can
// transiently exceed 1.
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>
#include <limits>

#include "support/contracts.hpp"

namespace neatbound {

class LogProb {
 public:
  /// Default-constructs zero (ln 0 = −∞).
  constexpr LogProb() noexcept
      : log_(-std::numeric_limits<double>::infinity()) {}

  /// Constructs from a linear-space non-negative value.
  static LogProb from_linear(double value) {
    NEATBOUND_EXPECTS(value >= 0.0 && !std::isnan(value),
                      "LogProb requires a non-negative value");
    return LogProb(std::log(value));
  }

  /// Constructs from a natural-log value (may be −∞ for zero, but not NaN).
  static LogProb from_log(double log_value) {
    NEATBOUND_EXPECTS(!std::isnan(log_value), "LogProb log value is NaN");
    return LogProb(log_value);
  }

  static constexpr LogProb zero() noexcept { return LogProb(); }
  static LogProb one() { return LogProb(0.0); }

  /// ln(x); −∞ for zero.
  [[nodiscard]] double log() const noexcept { return log_; }

  /// Linear-space value; underflows to 0 / overflows to +inf as doubles do.
  [[nodiscard]] double linear() const noexcept { return std::exp(log_); }

  [[nodiscard]] bool is_zero() const noexcept {
    return std::isinf(log_) && log_ < 0;
  }

  /// Multiplication: ln(xy) = ln x + ln y.
  friend LogProb operator*(LogProb a, LogProb b) noexcept {
    if (a.is_zero() || b.is_zero()) return zero();
    return LogProb(a.log_ + b.log_);
  }
  LogProb& operator*=(LogProb o) noexcept { return *this = *this * o; }

  /// Division; dividing by zero is a contract violation.
  friend LogProb operator/(LogProb a, LogProb b) {
    NEATBOUND_EXPECTS(!b.is_zero(), "LogProb division by zero");
    if (a.is_zero()) return zero();
    return LogProb(a.log_ - b.log_);
  }
  LogProb& operator/=(LogProb o) { return *this = *this / o; }

  /// Addition via log-sum-exp: ln(x+y) = m + ln(1 + e^{min-m}), m = max.
  friend LogProb operator+(LogProb a, LogProb b) noexcept {
    if (a.is_zero()) return b;
    if (b.is_zero()) return a;
    const double hi = a.log_ > b.log_ ? a.log_ : b.log_;
    const double lo = a.log_ > b.log_ ? b.log_ : a.log_;
    return LogProb(hi + std::log1p(std::exp(lo - hi)));
  }
  LogProb& operator+=(LogProb o) noexcept { return *this = *this + o; }

  /// Subtraction; requires a ≥ b. ln(x−y) = ln x + ln(1 − e^{ln y − ln x}).
  friend LogProb operator-(LogProb a, LogProb b) {
    if (b.is_zero()) return a;
    NEATBOUND_EXPECTS(a.log_ >= b.log_,
                      "LogProb subtraction would produce a negative value");
    if (a.log_ == b.log_) return zero();
    return LogProb(a.log_ + std::log1p(-std::exp(b.log_ - a.log_)));
  }
  LogProb& operator-=(LogProb o) { return *this = *this - o; }

  /// x^e for real exponent (e may be huge, e.g. 2Δ = 2·10^13).
  [[nodiscard]] LogProb pow(double exponent) const {
    if (is_zero()) {
      NEATBOUND_EXPECTS(exponent > 0.0, "0^e requires e > 0");
      return zero();
    }
    return LogProb(log_ * exponent);
  }

  /// Complement 1 − x for x ∈ [0, 1].
  [[nodiscard]] LogProb complement() const {
    NEATBOUND_EXPECTS(log_ <= 0.0, "complement() requires value <= 1");
    if (is_zero()) return one();
    if (log_ == 0.0) return zero();
    // ln(1 − e^{ln x}); expm1-based branch keeps precision when x ≈ 1.
    if (log_ > -0.6931471805599453 /* ln 2 */) {
      return LogProb(std::log(-std::expm1(log_)));
    }
    return LogProb(std::log1p(-std::exp(log_)));
  }

  friend auto operator<=>(LogProb a, LogProb b) noexcept {
    return a.log_ <=> b.log_;
  }
  friend bool operator==(LogProb a, LogProb b) noexcept = default;

 private:
  constexpr explicit LogProb(double log_value) noexcept : log_(log_value) {}
  double log_;
};

std::ostream& operator<<(std::ostream& os, LogProb p);

/// (1 − p)^k computed stably as e^{k·log1p(−p)}; p ∈ [0,1), k ≥ 0 (real).
LogProb pow_one_minus(double p, double k);

}  // namespace neatbound
