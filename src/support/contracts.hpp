// Contract-checking macros in the style of the C++ Core Guidelines GSL
// Expects/Ensures, but throwing so that tests can observe violations.
//
// NEATBOUND_EXPECTS(cond, msg) — precondition on function arguments.
// NEATBOUND_ENSURES(cond, msg) — postcondition / internal invariant.
//
// Both throw neatbound::ContractViolation (derived from std::logic_error).
// They are always on: every check in this library guards either user input
// or a mathematical invariant whose silent violation would corrupt results.
#pragma once

#include <stdexcept>
#include <string>

namespace neatbound {

/// Thrown when a precondition or invariant check fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line,
                                       const std::string& msg) {
  throw ContractViolation(std::string(kind) + " failed: (" + cond + ") at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace neatbound

#define NEATBOUND_EXPECTS(cond, msg)                                        \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::neatbound::detail::contract_fail("precondition", #cond, __FILE__,   \
                                         __LINE__, (msg));                  \
    }                                                                       \
  } while (false)

#define NEATBOUND_ENSURES(cond, msg)                                        \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::neatbound::detail::contract_fail("invariant", #cond, __FILE__,      \
                                         __LINE__, (msg));                  \
    }                                                                       \
  } while (false)
