#include "support/telemetry.hpp"

#include <ostream>

namespace neatbound::telemetry {

namespace {

constexpr const char* kCounterNames[] = {
    "honest_blocks_mined",  "adversary_blocks_mined",
    "deliveries",           "duplicate_deliveries",
    "orphans_buffered",     "orphans_activated",
    "adoptions",            "reorgs",
    "calendar_scheduled",   "calendar_grows",
    "ancestry_queries",     "skip_rows_built",
    "quiet_rounds_skipped",
};
static_assert(sizeof(kCounterNames) / sizeof(kCounterNames[0]) ==
                  kCounterCount,
              "counter_name table out of lockstep with enum Counter");

constexpr const char* kPhaseNames[] = {
    "deliver", "mine", "schedule", "adversary", "metrics",
};
static_assert(sizeof(kPhaseNames) / sizeof(kPhaseNames[0]) == kPhaseCount,
              "phase_name table out of lockstep with enum Phase");

}  // namespace

const char* counter_name(Counter counter) noexcept {
  return kCounterNames[static_cast<std::size_t>(counter)];
}

const char* phase_name(Phase phase) noexcept {
  return kPhaseNames[static_cast<std::size_t>(phase)];
}

void TelemetryAccumulator::add(const TelemetrySnapshot& snapshot) noexcept {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    counters[i] += snapshot.counters[i];
  }
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phase_nanos[i] += snapshot.phase_nanos[i];
  }
  ++runs;
}

void TelemetryAccumulator::merge(const TelemetryAccumulator& other) noexcept {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    counters[i] += other.counters[i];
  }
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phase_nanos[i] += other.phase_nanos[i];
  }
  runs += other.runs;
}

namespace {

// Chrome-trace timestamps are microseconds; emit nanosecond precision as
// fixed-point fractional µs (always three fraction digits).  Integer
// arithmetic end to end: streaming a double would fall into scientific
// notation with ~10 µs rounding once a rebased timestamp passes ~1e6 µs.
void write_micros(std::ostream& os, std::uint64_t ns) {
  const std::uint64_t frac = ns % 1000;
  os << ns / 1000 << '.' << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + frac / 10 % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

void write_chrome_trace(std::ostream& os, std::span<const PhaseEvent> events,
                        const TelemetrySnapshot& snapshot) {
  // Rebased so the timeline starts at 0.
  const std::uint64_t origin = events.empty() ? 0 : events.front().start_ns;
  os << "{\"traceEvents\":[\n";
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\","
        "\"args\":{\"name\":\"neatbound engine run\"}}";
  for (const PhaseEvent& event : events) {
    os << ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\""
       << phase_name(event.phase) << "\",\"ts\":";
    write_micros(os, event.start_ns - origin);
    os << ",\"dur\":";
    write_micros(os, event.duration_ns);
    os << "}";
  }
  os << ",\n{\"ph\":\"I\",\"pid\":1,\"tid\":1,\"ts\":0,\"s\":\"g\","
        "\"name\":\"counters\",\"args\":{";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    os << (i == 0 ? "" : ",") << "\""
       << counter_name(static_cast<Counter>(i)) << "\":"
       << snapshot.counters[i];
  }
  os << "}},\n{\"ph\":\"I\",\"pid\":1,\"tid\":1,\"ts\":0,\"s\":\"g\","
        "\"name\":\"phase_totals_ns\",\"args\":{";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    os << (i == 0 ? "" : ",") << "\"" << phase_name(static_cast<Phase>(i))
       << "\":" << snapshot.phase_nanos[i];
  }
  os << "}}\n]}\n";
}

}  // namespace neatbound::telemetry
