#include "support/logprob.hpp"

#include <ostream>

namespace neatbound {

std::ostream& operator<<(std::ostream& os, LogProb p) {
  // Render linearly when representable, otherwise as exp(ln-value).
  const double lin = p.linear();
  if (lin > 0.0 || p.is_zero()) {
    return os << lin;
  }
  return os << "exp(" << p.log() << ")";
}

LogProb pow_one_minus(double p, double k) {
  NEATBOUND_EXPECTS(p >= 0.0 && p < 1.0, "pow_one_minus requires p in [0,1)");
  NEATBOUND_EXPECTS(k >= 0.0, "pow_one_minus requires k >= 0");
  return LogProb::from_log(k * std::log1p(-p));
}

}  // namespace neatbound
