#include "support/crng.hpp"

#include <cmath>

namespace neatbound::crng {

namespace {

// Philox4x64 round constants (Random123 / Salmon et al., SC'11).
constexpr std::uint64_t kMult0 = 0xD2E7470EE14C6C93ULL;
constexpr std::uint64_t kMult1 = 0xCA5A826395121157ULL;
constexpr std::uint64_t kWeyl0 = 0x9E3779B97F4A7C15ULL;  // golden ratio
constexpr std::uint64_t kWeyl1 = 0xBB67AE8584CAA73BULL;  // sqrt(3) - 1

struct HiLo {
  std::uint64_t hi;
  std::uint64_t lo;
};

inline HiLo mulhilo(std::uint64_t a, std::uint64_t b) noexcept {
  const unsigned __int128 product =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  return {static_cast<std::uint64_t>(product >> 64),
          static_cast<std::uint64_t>(product)};
}

}  // namespace

Block philox4x64(const Counter& counter, const Key& key) noexcept {
  std::uint64_t c0 = counter.a;
  std::uint64_t c1 = counter.b;
  std::uint64_t c2 = counter.purpose;
  std::uint64_t c3 = counter.slot;
  std::uint64_t k0 = key.cell;
  std::uint64_t k1 = key.seed;
  for (int round = 0; round < 10; ++round) {
    const HiLo p0 = mulhilo(kMult0, c0);
    const HiLo p1 = mulhilo(kMult1, c2);
    c0 = p1.hi ^ c1 ^ k0;
    c1 = p1.lo;
    c2 = p0.hi ^ c3 ^ k1;
    c3 = p0.lo;
    k0 += kWeyl0;
    k1 += kWeyl1;
  }
  return {c0, c1, c2, c3};
}

std::uint64_t draw(const Key& key, const Counter& counter) noexcept {
  return philox4x64(counter, key)[0];
}

std::uint64_t Stream::bits() noexcept {
  if (lane_ == 4) {
    buffer_ = philox4x64(prefix_, key_);
    ++prefix_.slot;
    lane_ = 0;
  }
  return buffer_[lane_++];
}

std::uint64_t Stream::uniform_below(std::uint64_t bound) {
  NEATBOUND_EXPECTS(bound > 0, "uniform_below requires bound > 0");
  // Classic rejection: discard draws below 2^64 mod bound so that the
  // final modulo is unbiased.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = bits();
    if (r >= threshold) return r % bound;
  }
}

bool Stream::bernoulli(double p) {
  NEATBOUND_EXPECTS(p >= 0.0 && p <= 1.0, "bernoulli requires p in [0,1]");
  return uniform() < p;
}

std::uint64_t Stream::binomial_inversion(std::uint64_t n, double p) {
  // BINV: walk the pmf from k = 0, subtracting from a uniform variate.
  // Expected iterations ≈ np + 1; only called for np ≤ kInversionCutoff.
  const double q = 1.0 - p;
  const double s = p / q;
  double f = std::exp(static_cast<double>(n) * std::log1p(-p));  // q^n
  double u = uniform();
  std::uint64_t k = 0;
  while (u > f && k < n) {
    u -= f;
    ++k;
    f *= s * (static_cast<double>(n - k + 1) / static_cast<double>(k));
  }
  return k;
}

std::uint64_t Stream::binomial(std::uint64_t n, double p) {
  NEATBOUND_EXPECTS(p >= 0.0 && p <= 1.0, "binomial requires p in [0,1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  // Exploit symmetry so the inversion walks the short tail.
  if (p > 0.5) return n - binomial(n, 1.0 - p);
  // Split into chunks whose mean stays below the inversion cutoff; each
  // split is exact (Binomial(a+b, p) =d Binomial(a, p) + Binomial(b, p)).
  const double max_trials_fp = kInversionCutoff / p;
  const std::uint64_t max_trials =
      max_trials_fp >= static_cast<double>(n)
          ? n
          : static_cast<std::uint64_t>(max_trials_fp);
  std::uint64_t total = 0;
  std::uint64_t remaining = n;
  while (remaining > max_trials) {
    total += binomial_inversion(max_trials, p);
    remaining -= max_trials;
  }
  return total + binomial_inversion(remaining, p);
}

std::uint64_t Stream::geometric_failures(double p) {
  NEATBOUND_EXPECTS(p > 0.0 && p <= 1.0,
                    "geometric_failures requires p in (0,1]");
  if (p == 1.0) return 0;
  // Inversion: floor(ln U / ln(1-p)).
  const double u = 1.0 - uniform();  // in (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

}  // namespace neatbound::crng
