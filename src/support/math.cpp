#include "support/math.hpp"

#include <algorithm>
#include <limits>

namespace neatbound {

double log_add_exp(double log_a, double log_b) noexcept {
  if (std::isinf(log_a) && log_a < 0) return log_b;
  if (std::isinf(log_b) && log_b < 0) return log_a;
  const double hi = std::max(log_a, log_b);
  const double lo = std::min(log_a, log_b);
  return hi + std::log1p(std::exp(lo - hi));
}

double log_sub_exp(double log_a, double log_b) {
  if (std::isinf(log_b) && log_b < 0) return log_a;
  NEATBOUND_EXPECTS(log_a >= log_b, "log_sub_exp requires a >= b");
  if (log_a == log_b) return -std::numeric_limits<double>::infinity();
  return log_a + log1m_exp(log_b - log_a);
}

double log_binomial_coefficient(double n, double k) {
  NEATBOUND_EXPECTS(n >= 0 && k >= 0 && k <= n,
                    "log_binomial_coefficient requires 0 <= k <= n");
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

double log1m_exp(double x) {
  NEATBOUND_EXPECTS(x < 0.0, "log1m_exp requires x < 0");
  // For x > -ln 2 use expm1 (1 - e^x is small); otherwise log1p.
  constexpr double kLn2 = 0.6931471805599453;
  if (x > -kLn2) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

double relative_error(double a, double b) noexcept {
  const double scale =
      std::max({std::fabs(a), std::fabs(b), std::numeric_limits<double>::min()});
  if (a == b) return 0.0;
  return std::fabs(a - b) / scale;
}

bool approx_equal(double a, double b, double rel_tol) noexcept {
  return relative_error(a, b) <= rel_tol;
}

BisectionResult bisect_last_true(const std::function<bool(double)>& pred,
                                 double lo, double hi, double tol,
                                 int max_iter) {
  NEATBOUND_EXPECTS(lo <= hi, "bisect_last_true requires lo <= hi");
  if (!pred(lo)) return {lo, false};
  if (pred(hi)) return {hi, false};
  // Invariant: pred(lo) true, pred(hi) false.
  for (int i = 0; i < max_iter && (hi - lo) > tol * std::max(1.0, std::fabs(lo));
       ++i) {
    const double mid = lo + 0.5 * (hi - lo);
    if (pred(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return {lo, true};
}

BisectionResult bisect_last_true_log(const std::function<bool(double)>& pred,
                                     double lo, double hi, double log10_tol,
                                     int max_iter) {
  NEATBOUND_EXPECTS(lo > 0.0 && hi > lo,
                    "bisect_last_true_log requires 0 < lo < hi");
  auto pred_log = [&pred](double lg) { return pred(std::pow(10.0, lg)); };
  const BisectionResult r = bisect_last_true(pred_log, std::log10(lo),
                                             std::log10(hi), log10_tol,
                                             max_iter);
  return {std::pow(10.0, r.value), r.converged};
}

}  // namespace neatbound
