// Zero-overhead engine telemetry: allocation-free counters and phase
// timers for the round-structured hot path.
//
// NEATBOUND_COUNT / NEATBOUND_PHASE_SCOPE follow the NEATBOUND_INVARIANT
// activation pattern (support/invariant.hpp): the CMake cache variable
// NEATBOUND_TELEMETRY (AUTO | ON | OFF) sets NEATBOUND_TELEMETRY_ENABLED
// tree-wide, and when it is 0 — the default in *every* configuration,
// Debug included — the macros expand to `do { } while (false)`: no code,
// no data, no clock reads.  The perf trajectory (BENCH_history.jsonl)
// tracks the OFF configuration; the ON overhead contract (≤10% on
// bench_engine_throughput) is documented in docs/observability.md.
//
// Design constraints, in priority order:
//   1. Telemetry values NEVER feed back into simulation state.  Nothing
//      here is readable from the engine's decision paths; fixed-seed
//      trajectories are bit-identical with telemetry on or off.
//   2. Allocation-free on the hot path.  All state lives in fixed-size
//      thread_local arrays ("pre-sized registries"); counter bumps are
//      single array increments, phase scopes are two steady_clock reads
//      plus an array store.  This keeps instrumented NEATBOUND_HOT
//      functions clean under the hot-alloc analyzer rule.
//   3. Deterministic folding.  A run's TelemetrySnapshot is captured on
//      the thread that ran it (registers are thread_local, reset per
//      run) and folded across seeds in seed order by the same
//      accumulate_run path the RunningStats summaries use, so counter
//      aggregates are identical for serial and parallel sweeps.
//      Phase times are wall-clock and therefore never deterministic;
//      they are reported but excluded from checkpoints.
//
// steady_clock appears ONLY in this header/its .cpp: the determinism
// lint (scripts/check_determinism.py, rule raw-steady-clock) enforces
// that everywhere else in src/ and cli/ routes timing through here or
// carries an explicit rationale.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>

#if !defined(NEATBOUND_TELEMETRY_ENABLED)
#define NEATBOUND_TELEMETRY_ENABLED 0
#endif

#if NEATBOUND_TELEMETRY_ENABLED
#include <chrono>
#endif

namespace neatbound::telemetry {

/// Engine event counters.  Add new entries before kCount and name them in
/// counter_name() (telemetry.cpp keeps the two in lockstep with a
/// static_assert on the table size).
enum class Counter : std::uint8_t {
  kHonestBlocksMined = 0,  ///< honest oracle successes
  kAdversaryBlocksMined,   ///< adversary oracle successes (incl. withheld)
  kDeliveries,             ///< calendar deliveries applied to a view
  kDuplicateDeliveries,    ///< deliveries dropped by the knows() fast path
  kOrphansBuffered,        ///< blocks parked awaiting an unknown parent
  kOrphansActivated,       ///< blocks woken from the orphan buffer
  kAdoptions,              ///< tip changes under the longest-chain rule
  kReorgs,                 ///< adoptions that abandoned >= 1 block
  kCalendarScheduled,      ///< DeliveryCalendar::schedule calls
  kCalendarGrows,          ///< calendar ring re-bucketings
  kAncestryQueries,        ///< BlockStore skip-table ancestry lookups
  kSkipRowsBuilt,          ///< binary-lifting rows added to the store
  kQuietRoundsSkipped,     ///< rounds committed by the quiet fast path
  kCount,
};
inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Engine round phases, as scoped in ExecutionEngine::run and its
/// callees.  Scopes nest (kSchedule runs inside kMine; orphan activation
/// and tip adoption are counter-tracked sub-steps of kDeliver — timing
/// them per event would break the overhead contract), so phase times are
/// inclusive wall time of each scope, not a partition of the round.
enum class Phase : std::uint8_t {
  kDeliver = 0,  ///< applying due deliveries (includes activate/adopt)
  kMine,         ///< honest mining draws + block creation
  kSchedule,     ///< broadcast scheduling of a fresh honest block
  kAdversary,    ///< the adversary's turn
  kMetrics,      ///< per-round consistency observation
  kCount,
};
inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

[[nodiscard]] const char* counter_name(Counter counter) noexcept;
[[nodiscard]] const char* phase_name(Phase phase) noexcept;

/// One run's telemetry: counter values plus inclusive per-phase wall time.
/// Exists (as all zeros) in telemetry-OFF builds so RunResult and the
/// fold layer need no conditional compilation.
struct TelemetrySnapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kPhaseCount> phase_nanos{};
};

/// One timed scope instance, for the Chrome-trace timeline.  Timestamps
/// are steady_clock nanos (origin arbitrary; the exporter rebases).
struct PhaseEvent {
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  Phase phase = Phase::kDeliver;
};

/// Pre-sized per-thread event registry: recording stops (timers keep
/// accumulating) once a run has produced this many scope instances, so
/// the timeline is bounded and the hot path never allocates.
inline constexpr std::size_t kMaxPhaseEvents = 4096;

/// True when the macros are live in this build — lets tests skip (or
/// assert) the counting cases per configuration.
inline constexpr bool enabled() noexcept {
  return NEATBOUND_TELEMETRY_ENABLED != 0;
}

/// Deterministic seed-ordered fold of per-run snapshots: plain sums, so
/// add/merge are associative and commutative — (a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)
/// — and any grouping of the same runs produces identical totals.  This
/// is the RunningStats-style merge the sink/report layer surfaces as
/// opt-in meta columns.
struct TelemetryAccumulator {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kPhaseCount> phase_nanos{};
  std::uint64_t runs = 0;

  void add(const TelemetrySnapshot& snapshot) noexcept;
  void merge(const TelemetryAccumulator& other) noexcept;
};

/// Writes a run's phase timeline as a Chrome-trace JSON document
/// ("traceEvents" array of complete "X" events, microsecond timestamps
/// rebased to the first scope) that opens directly in chrome://tracing
/// and Perfetto.  The counter values ride along as the args of one
/// instant event, and the per-phase totals as another.  In a
/// telemetry-OFF build the document is valid but empty of events.
void write_chrome_trace(std::ostream& os, std::span<const PhaseEvent> events,
                        const TelemetrySnapshot& snapshot);

#if NEATBOUND_TELEMETRY_ENABLED

namespace detail {

/// The pre-sized per-thread registry.  thread_local so parallel sweep
/// workers never contend; the engine resets it at run() entry and
/// snapshots it at run() exit, both on the worker's own thread.
struct Registers {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kPhaseCount> phase_nanos{};
  std::array<PhaseEvent, kMaxPhaseEvents> events{};
  std::size_t event_count = 0;
};

inline Registers& registers() noexcept {
  thread_local Registers instance;
  return instance;
}

}  // namespace detail

inline void bump(Counter counter, std::uint64_t by = 1) noexcept {
  detail::registers().counters[static_cast<std::size_t>(counter)] += by;
}

/// RAII phase timer: two steady_clock reads per scope plus one bounded
/// registry store.  steady_clock (not system_clock) so the duration is
/// immune to wall-clock steps; the determinism lint allows it only here.
class PhaseScope {
 public:
  explicit PhaseScope(Phase phase) noexcept
      : phase_(phase), start_(std::chrono::steady_clock::now()) {}

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  ~PhaseScope() noexcept {
    const auto end = std::chrono::steady_clock::now();
    const auto duration = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count());
    detail::Registers& regs = detail::registers();
    regs.phase_nanos[static_cast<std::size_t>(phase_)] += duration;
    if (regs.event_count < kMaxPhaseEvents) {
      const auto start_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              start_.time_since_epoch())
              .count());
      regs.events[regs.event_count++] = {start_ns, duration, phase_};
    }
  }

 private:
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
};

/// Clears this thread's registry (counters, timers, event log).  The
/// engine calls it at run() entry so a snapshot covers exactly one run.
inline void reset() noexcept {
  detail::Registers& regs = detail::registers();
  regs.counters = {};
  regs.phase_nanos = {};
  regs.event_count = 0;
}

/// This thread's registry as a value — counters + phase times since the
/// last reset().
[[nodiscard]] inline TelemetrySnapshot snapshot() noexcept {
  const detail::Registers& regs = detail::registers();
  return {regs.counters, regs.phase_nanos};
}

/// The bounded per-scope timeline since the last reset(), on this thread.
/// Valid until the next reset() on the same thread.
[[nodiscard]] inline std::span<const PhaseEvent> phase_events() noexcept {
  const detail::Registers& regs = detail::registers();
  return {regs.events.data(), regs.event_count};
}

#define NEATBOUND_COUNT(counter) \
  ::neatbound::telemetry::bump(::neatbound::telemetry::Counter::counter)
#define NEATBOUND_COUNT_ADD(counter, by)                                  \
  ::neatbound::telemetry::bump(::neatbound::telemetry::Counter::counter, \
                               (by))
#define NEATBOUND_TELEMETRY_CONCAT2(a, b) a##b
#define NEATBOUND_TELEMETRY_CONCAT(a, b) NEATBOUND_TELEMETRY_CONCAT2(a, b)
#define NEATBOUND_PHASE_SCOPE(phase)                     \
  const ::neatbound::telemetry::PhaseScope               \
      NEATBOUND_TELEMETRY_CONCAT(neatbound_phase_scope_, \
                                 __LINE__) {             \
    ::neatbound::telemetry::Phase::phase                 \
  }

#else  // !NEATBOUND_TELEMETRY_ENABLED

/// OFF-build stand-in: an empty type, so sizeof pins the zero-state in
/// tests.  Never instantiated by the macros (they expand to nothing).
class PhaseScope {};

inline void reset() noexcept {}

[[nodiscard]] inline TelemetrySnapshot snapshot() noexcept { return {}; }

[[nodiscard]] inline std::span<const PhaseEvent> phase_events() noexcept {
  return {};
}

// True no-ops: the counter/phase name is not evaluated, mirroring
// NEATBOUND_INVARIANT's OFF expansion.  Arguments must therefore be
// side-effect free — enforced by clang-tidy's bugprone-assert-side-effect
// (both macros are on its AssertMacros list in .clang-tidy).
#define NEATBOUND_COUNT(counter) \
  do {                           \
  } while (false)
#define NEATBOUND_COUNT_ADD(counter, by) \
  do {                                   \
  } while (false)
#define NEATBOUND_PHASE_SCOPE(phase) \
  do {                               \
  } while (false)

#endif  // NEATBOUND_TELEMETRY_ENABLED

}  // namespace neatbound::telemetry
