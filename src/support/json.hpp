// Minimal, dependency-free JSON reader shared by the configuration-file
// consumers (scenario specs, experiment checkpoints).
//
// Supports the full JSON value grammar (null, booleans, numbers, strings,
// arrays, objects) with two deliberate strictures that suit configuration
// files: duplicate object keys are an error, and object key order is
// preserved (scenario meta blocks are emitted in file order).  String
// escapes cover the JSON set; \uXXXX is accepted for ASCII code points
// only — scenario files are ASCII by construction.
//
// Errors throw std::runtime_error with a line:column position.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace neatbound::support {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(Array items);
  static JsonValue make_object(Object members);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] const char* kind_name() const noexcept;
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  // Checked accessors; throw std::runtime_error on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// as_number, additionally required to be a non-negative integer that
  /// fits the return type exactly.
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Object member lookup; throws when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Reads and parses a file; errors are prefixed with the path.
[[nodiscard]] JsonValue load_json_file(const std::string& path);

}  // namespace neatbound::support
