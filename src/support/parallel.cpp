#include "support/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace neatbound {

unsigned resolve_thread_count(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for_indexed(std::size_t count, unsigned threads,
                          const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  threads = resolve_thread_count(threads);
  if (static_cast<std::size_t>(threads) > count) {
    threads = static_cast<unsigned>(count);
  }
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace neatbound
