// Counter-based pseudo-random number generation (Philox4x64-10).
//
// Unlike support/rng.hpp's sequential streams, every draw here is a pure
// function of (key, counter): there is no hidden state to thread through
// the simulator, so any draw is addressable out of order, from any
// thread, and identically whether runs execute one seed at a time or W
// seeds in lockstep (sim/batch_engine.hpp).  The simulator keys draws as
//
//   key     = (cell, seed)            cell = hash of the engine params
//   counter = (a, b, purpose, slot)   a = round or flat draw index,
//                                     b = actor (miner / query / edge)
//
// so replay and checkpoint resume stay bit-exact: draw addresses depend
// only on *where* in the simulation a draw happens, never on how many
// draws happened before it.
//
// The generator is Philox4x64 with 10 rounds and the Random123 constants
// (Salmon et al., SC'11).  It is pinned against vectors produced by an
// independent implementation (scripts/gen_crng_vectors.py, including the
// upstream Random123 kat_vectors rows) in tests/support/test_crng.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "support/contracts.hpp"

namespace neatbound::crng {

/// 128-bit key: which random function we are evaluating.
struct Key {
  std::uint64_t cell = 0;  ///< grid-cell identity (hash of engine params)
  std::uint64_t seed = 0;  ///< per-run seed within the cell
};

/// 256-bit counter: which draw of that function we are asking for.
struct Counter {
  std::uint64_t a = 0;        ///< round number or flat draw index
  std::uint64_t b = 0;        ///< actor: miner id, query id, edge id, ...
  std::uint64_t purpose = 0;  ///< draw namespace (see Purpose)
  std::uint64_t slot = 0;     ///< block index within (a, b, purpose)
};

/// Disjoint draw namespaces.  Every consumer owns one value, so no two
/// subsystems can ever collide on a counter no matter how (a, b) are
/// assigned.  Values are part of the pinned-trajectory contract: renaming
/// is free, renumbering changes every counter-mode result.
enum class Purpose : std::uint64_t {
  kHonestGap = 1,       ///< gaps between honest mining successes
  kHonestBlock = 2,     ///< per-success honest block draws (nonce, ...)
  kAdversaryGap = 3,    ///< gaps between adversary query successes
  kAdversaryBlock = 4,  ///< per-success adversary block draws
  kNetDelay = 5,        ///< per-message delivery delays
  kAggregate = 6,       ///< sim/aggregate.cpp per-round binomials
  kWalk = 7,            ///< markov/walk.cpp step draws
  kGeneric = 8,         ///< free-form Streams (tests, tools)
};

/// One Philox output block: four independent uniform 64-bit words.
using Block = std::array<std::uint64_t, 4>;

/// Philox4x64-10 keyed permutation: the full 256-bit output block for a
/// (counter, key) pair.  Pure function; ~20 multiplications.
[[nodiscard]] Block philox4x64(const Counter& counter, const Key& key) noexcept;

/// Single-word convenience: lane 0 of the output block.  Use philox4x64
/// directly when a call site can consume several lanes.
[[nodiscard]] std::uint64_t draw(const Key& key, const Counter& counter) noexcept;

/// Maps 64 random bits to a uniform double in [0, 1) with 53 bits of
/// precision — the same mapping as support::Rng::uniform(), so counter
/// and legacy modes share one real-valued draw convention.
[[nodiscard]] inline double to_unit(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Sequential adapter over one (key, a, b, purpose) counter subspace, for
/// distributions whose draw count is data-dependent (rejection sampling,
/// BINV inversion).  Consumes lanes of slot 0, 1, 2, ... in order; two
/// Streams on the same subspace produce identical sequences, and Streams
/// on different subspaces are independent.  The distribution arithmetic
/// mirrors support::Rng exactly (same mappings, cutoffs and inversions),
/// only the bit source differs.
class Stream {
 public:
  Stream(Key key, std::uint64_t a, std::uint64_t b, Purpose purpose) noexcept
      : key_(key),
        prefix_{a, b, static_cast<std::uint64_t>(purpose), 0} {}

  /// Next 64 random bits of the subspace.
  [[nodiscard]] std::uint64_t bits() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform() noexcept { return to_unit(bits()); }

  /// Uniform integer in [0, bound); bound must be > 0. Unbiased (rejection).
  [[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound);

  /// Bernoulli(p).
  [[nodiscard]] bool bernoulli(double p);

  /// Binomial(n, p) — exact distribution (BINV with recursive splitting,
  /// identical arithmetic to support::Rng::binomial).
  [[nodiscard]] std::uint64_t binomial(std::uint64_t n, double p);

  /// Geometric: number of Bernoulli(p) failures before the first success.
  [[nodiscard]] std::uint64_t geometric_failures(double p);

 private:
  static constexpr double kInversionCutoff = 64.0;
  [[nodiscard]] std::uint64_t binomial_inversion(std::uint64_t n, double p);

  Key key_;
  Counter prefix_;   ///< slot field = index of the next unfetched block
  Block buffer_{};   ///< lanes of the most recently fetched block
  unsigned lane_ = 4;  ///< next unconsumed lane in buffer_ (4 = empty)
};

}  // namespace neatbound::crng
