// Compiled-in structural invariants for the engine's hot-path data
// structures.
//
// NEATBOUND_INVARIANT(cond, msg) is the third tier of the repo's checking
// ladder:
//
//   NEATBOUND_EXPECTS   precondition on caller-supplied arguments — always
//                       on (support/contracts.hpp);
//   NEATBOUND_ENSURES   postcondition on a computed result — always on;
//   NEATBOUND_INVARIANT internal structural consistency of a data
//                       structure across mutations (column lockstep,
//                       intrusive-list ↔ bitset agreement, ring capacity).
//                       Active in Debug and sanitized builds, compiled out
//                       (condition unevaluated) in Release.
//
// The split exists because invariants sit on the T×n hot path: they are
// exactly the checks whose silent violation produced the PR 4 orphan-buffer
// corruption, but paying for them on every delivery in Release would erase
// the perf work they protect.  A violation therefore fails loudly at the
// *mutation site* in every checking build, and costs nothing in the
// configuration the perf trajectory (BENCH_history.jsonl) tracks.
//
// Activation — the macro NEATBOUND_CHECK_INVARIANTS (0 or 1):
//   * set tree-wide by the CMake cache variable of the same name
//     (AUTO | ON | OFF; AUTO turns checks on for Debug and any
//     NEATBOUND_SANITIZE build);
//   * when CMake leaves it unset (AUTO, unsanitized), it defaults from
//     NDEBUG below — Debug on, Release off.
// It must be consistent across every TU of a build (CMake sets it globally)
// because the macro expands inside headers.
//
// Failures throw neatbound::ContractViolation (via contracts.hpp) so tests
// can provoke and observe them; under a sanitizer the throw also leaves a
// clean stack for the report.
#pragma once

#include "support/contracts.hpp"

#if !defined(NEATBOUND_CHECK_INVARIANTS)
#if defined(NDEBUG)
#define NEATBOUND_CHECK_INVARIANTS 0
#else
#define NEATBOUND_CHECK_INVARIANTS 1
#endif
#endif

#if NEATBOUND_CHECK_INVARIANTS
#define NEATBOUND_INVARIANT(cond, msg)                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::neatbound::detail::contract_fail("structural invariant", #cond,     \
                                         __FILE__, __LINE__, (msg));        \
    }                                                                       \
  } while (false)
#else
#define NEATBOUND_INVARIANT(cond, msg) \
  do {                                 \
  } while (false)
#endif

namespace neatbound {

/// True when NEATBOUND_INVARIANT is active in this build — lets tests skip
/// the provoke-and-observe cases in configurations that compiled the
/// checks out instead of failing confusingly.
inline constexpr bool invariant_checks_enabled() noexcept {
  return NEATBOUND_CHECK_INVARIANTS != 0;
}

}  // namespace neatbound
