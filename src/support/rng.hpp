// Deterministic, platform-independent pseudo-random number generation.
//
// The library never uses std::*_distribution: their output sequences are
// implementation-defined, which would make seed-pinned tests and recorded
// experiment outputs non-reproducible across standard libraries.  Instead
// we implement splitmix64 (seeding / hashing) and xoshiro256** (bulk
// generation) plus the handful of distributions the simulator needs.
#pragma once

#include <array>
#include <cstdint>

#include "support/contracts.hpp"

namespace neatbound {

/// splitmix64 step: advances `state` and returns the next 64-bit output.
/// Also serves as a high-quality 64-bit mixing function.
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// Stateless mix of a single 64-bit value (the splitmix64 output function).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// xoshiro256** 1.0 — fast, 256-bit state, passes BigCrush.
class Xoshiro256 {
 public:
  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  [[nodiscard]] std::uint64_t next() noexcept;

  /// Jump function: advances 2^128 steps; used to derive parallel streams.
  void jump() noexcept;

  /// Convenience: an independent stream derived from this one.
  [[nodiscard]] Xoshiro256 split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Random variate generation on top of Xoshiro256.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform() noexcept;

  /// Uniform integer in [0, bound); bound must be > 0. Unbiased (rejection).
  [[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound);

  /// Bernoulli(p).
  [[nodiscard]] bool bernoulli(double p);

  /// Binomial(n, p) — exact distribution.
  ///
  /// Uses BINV sequential inversion, O(1 + np) expected time, when
  /// np ≤ kInversionCutoff; otherwise splits the trial count recursively
  /// (Binomial(n,p) = Binomial(n/2,p) + Binomial(n−n/2,p)) so that each
  /// leaf is inverted cheaply.  Exactness matters: the paper's per-round
  /// block counts are Binomial(μn, p) and Binomial(νn, p) with tiny p, and
  /// the tails (P[X=1] vs P[X>1]) are precisely what the analysis counts.
  [[nodiscard]] std::uint64_t binomial(std::uint64_t n, double p);

  /// Geometric: number of Bernoulli(p) failures before the first success.
  [[nodiscard]] std::uint64_t geometric_failures(double p);

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t bits() noexcept { return gen_.next(); }

  /// Derives an independent child stream (for per-component RNGs).
  [[nodiscard]] Rng split() noexcept;

 private:
  static constexpr double kInversionCutoff = 64.0;
  [[nodiscard]] std::uint64_t binomial_inversion(std::uint64_t n, double p);
  Xoshiro256 gen_;
};

}  // namespace neatbound
