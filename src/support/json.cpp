#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace neatbound::support {

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(Array items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(Object members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

const char* JsonValue::kind_name() const noexcept {
  switch (kind_) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

namespace {
[[noreturn]] void kind_error(const char* want, const char* got) {
  throw std::runtime_error(std::string("JSON: expected ") + want + ", have " +
                           got);
}
}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) kind_error("bool", kind_name());
  return bool_;
}

double JsonValue::as_number() const {
  if (!is_number()) kind_error("number", kind_name());
  return number_;
}

std::uint64_t JsonValue::as_uint() const {
  const double n = as_number();
  if (!(n >= 0.0) || n != std::floor(n) || n > 9.007199254740992e15) {
    throw std::runtime_error(
        "JSON: expected a non-negative integer, have " + std::to_string(n));
  }
  return static_cast<std::uint64_t>(n);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) kind_error("string", kind_name());
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) kind_error("array", kind_name());
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) kind_error("object", kind_name());
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("JSON: missing key \"" + std::string(key) +
                             "\"");
  }
  return *v;
}

namespace {

/// Recursive-descent parser over a string_view with line/column tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw std::runtime_error("JSON parse error at " + std::to_string(line) +
                             ":" + std::to_string(column) + ": " + message);
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept {
    return at_end() ? '\0' : text_[pos_];
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    if (at_end()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      for (const auto& [name, value] : members) {
        if (name == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape digit");
            }
          }
          if (code > 0x7f) {
            fail("\\u escapes beyond ASCII are not supported");
          }
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      pos_ = start;
      fail("invalid value");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    // strtod on the exact token: correctly-rounded, so "0.15" parses to
    // the same double as the C++ literal 0.15 — scenario grids reproduce
    // hand-written bench grids bit-for-bit.
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return JsonValue::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_json(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace neatbound::support
