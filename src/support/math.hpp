// Numeric helpers shared across the analytic modules: stable log-domain
// primitives, log-binomial coefficients, and a monotone-predicate bisection
// used by every bound-frontier solver in src/bounds.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>

#include "support/contracts.hpp"

namespace neatbound {

/// ln(a + b) given ln a and ln b (either may be −∞).
[[nodiscard]] double log_add_exp(double log_a, double log_b) noexcept;

/// ln(a − b) given ln a ≥ ln b; contract violation otherwise.
[[nodiscard]] double log_sub_exp(double log_a, double log_b);

/// ln C(n, k) via lgamma; exact enough for n up to ~10^15.
[[nodiscard]] double log_binomial_coefficient(double n, double k);

/// ln(1 − e^x) for x < 0, stable near both ends.
[[nodiscard]] double log1m_exp(double x);

/// Relative error |a−b| / max(|a|,|b|,eps); 0 when both are 0.
[[nodiscard]] double relative_error(double a, double b) noexcept;

/// True when a and b agree to within `rel_tol` relative error (or both 0).
[[nodiscard]] bool approx_equal(double a, double b, double rel_tol) noexcept;

struct BisectionResult {
  double value = 0.0;      ///< located boundary point
  bool converged = false;  ///< false if the bracket never straddled
};

/// Finds the frontier of a monotone predicate on [lo, hi].
///
/// `pred` must be monotone: there is a boundary x* such that pred holds on
/// one side and fails on the other.  Returns the largest point (within
/// `tol`) where `pred` is true, assuming pred(lo) == true and
/// pred(hi) == false.  If pred(lo) is false the result is `lo` with
/// converged=false; if pred(hi) is true the result is `hi` with
/// converged=false (the frontier lies outside the bracket).
[[nodiscard]] BisectionResult bisect_last_true(
    const std::function<bool(double)>& pred, double lo, double hi,
    double tol = 1e-13, int max_iter = 200);

/// Same, but bisects on a log10 grid: useful when the bracket spans many
/// orders of magnitude (e.g. ν ∈ [10⁻⁶³, ½]).  Requires 0 < lo < hi.
[[nodiscard]] BisectionResult bisect_last_true_log(
    const std::function<bool(double)>& pred, double lo, double hi,
    double log10_tol = 1e-12, int max_iter = 300);

}  // namespace neatbound
