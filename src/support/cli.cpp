#include "support/cli.hpp"

#include <stdexcept>

namespace neatbound {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::runtime_error("CliArgs: expected --flag, got '" + arg + "'");
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& default_value) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

double CliArgs::get_double(const std::string& name, double default_value) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::runtime_error("CliArgs: flag --" + name +
                             " expects a number, got '" + it->second + "'");
  }
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t default_value) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::runtime_error("CliArgs: flag --" + name +
                             " expects an integer, got '" + it->second + "'");
  }
}

std::uint64_t CliArgs::get_uint(const std::string& name,
                                std::uint64_t default_value) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  // std::stoull wraps negative input instead of failing, so reject a
  // leading '-' up front (skipping the same whitespace set stoull does);
  // parse unsigned directly to keep (INT64_MAX, UINT64_MAX] representable.
  const std::size_t first = it->second.find_first_not_of(" \t\n\v\f\r");
  if (first != std::string::npos && it->second[first] == '-') {
    throw std::runtime_error("CliArgs: flag --" + name + " must be >= 0");
  }
  try {
    std::size_t parsed = 0;
    const std::uint64_t v = std::stoull(it->second, &parsed);
    if (parsed != it->second.size()) {
      throw std::runtime_error("trailing characters");
    }
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("CliArgs: flag --" + name +
                             " expects an unsigned integer, got '" +
                             it->second + "'");
  }
}

bool CliArgs::get_bool(const std::string& name, bool default_value) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::runtime_error("CliArgs: flag --" + name +
                           " expects true/false, got '" + it->second + "'");
}

bool CliArgs::has(const std::string& name) const {
  consumed_.insert(name);
  return values_.count(name) > 0;
}

void CliArgs::reject_unconsumed() const {
  for (const auto& [name, value] : values_) {
    if (consumed_.count(name) == 0) {
      throw std::runtime_error("CliArgs: unknown flag --" + name);
    }
  }
}

}  // namespace neatbound
