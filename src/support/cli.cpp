#include "support/cli.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace neatbound {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::runtime_error("CliArgs: expected --flag, got '" + arg + "'");
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

void CliArgs::register_flag(const std::string& name, const char* type,
                            std::string default_repr,
                            const std::string& help) {
  for (const FlagInfo& info : registered_) {
    if (info.name == name) return;  // first registration wins
  }
  registered_.push_back({name, type, std::move(default_repr), help});
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& default_value,
                                const std::string& help) {
  register_flag(name, "string",
                default_value.empty() ? "" : "\"" + default_value + "\"",
                help);
  consumed_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

double CliArgs::parse_double(const std::string& name,
                             const std::string& text) {
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    throw std::runtime_error("CliArgs: flag --" + name +
                             " expects a number, got '" + text + "'");
  }
}

double CliArgs::get_double(const std::string& name, double default_value,
                           const std::string& help) {
  {
    std::ostringstream repr;
    repr << default_value;
    register_flag(name, "number", repr.str(), help);
  }
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return parse_double(name, it->second);
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t default_value,
                              const std::string& help) {
  register_flag(name, "int", std::to_string(default_value), help);
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::runtime_error("CliArgs: flag --" + name +
                             " expects an integer, got '" + it->second + "'");
  }
}

std::uint64_t CliArgs::parse_uint(const std::string& name,
                                  const std::string& text) {
  // std::stoull wraps negative input instead of failing, so reject a
  // leading '-' up front (skipping the same whitespace set stoull does);
  // parse unsigned directly to keep (INT64_MAX, UINT64_MAX] representable.
  const std::size_t first = text.find_first_not_of(" \t\n\v\f\r");
  if (first != std::string::npos && text[first] == '-') {
    throw std::runtime_error("CliArgs: flag --" + name + " must be >= 0");
  }
  try {
    std::size_t parsed = 0;
    const std::uint64_t v = std::stoull(text, &parsed);
    if (parsed != text.size()) {
      throw std::runtime_error("trailing characters");
    }
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("CliArgs: flag --" + name +
                             " expects an unsigned integer, got '" + text +
                             "'");
  }
}

std::uint64_t CliArgs::get_uint(const std::string& name,
                                std::uint64_t default_value,
                                const std::string& help) {
  register_flag(name, "uint", std::to_string(default_value), help);
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return parse_uint(name, it->second);
}

std::optional<std::uint64_t> CliArgs::get_opt_uint(const std::string& name,
                                                   const std::string& help) {
  register_flag(name, "uint", "", help);
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return parse_uint(name, it->second);
}

std::optional<double> CliArgs::get_opt_double(const std::string& name,
                                              const std::string& help) {
  register_flag(name, "number", "", help);
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return parse_double(name, it->second);
}

bool CliArgs::get_bool(const std::string& name, bool default_value,
                       const std::string& help) {
  register_flag(name, "bool", default_value ? "true" : "false", help);
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::runtime_error("CliArgs: flag --" + name +
                           " expects true/false, got '" + it->second + "'");
}

bool CliArgs::has(const std::string& name) const {
  consumed_.insert(name);
  return values_.count(name) > 0;
}

std::string CliArgs::usage() const {
  std::ostringstream os;
  os << "flags:\n";
  std::size_t width = 4;  // at least as wide as "help"
  for (const FlagInfo& info : registered_) {
    width = std::max(width, info.name.size() + info.type.size() + 3);
  }
  for (const FlagInfo& info : registered_) {
    const std::string head = info.name + " <" + info.type + ">";
    os << "  --" << head << std::string(width - head.size() + 2, ' ');
    if (!info.default_repr.empty()) {
      os << "(default: " << info.default_repr << ")";
    }
    if (!info.help.empty()) {
      os << (info.default_repr.empty() ? "" : "  ") << info.help;
    }
    os << '\n';
  }
  os << "  --help" << std::string(width - 4 + 2, ' ')
     << "show this message and exit\n";
  return os.str();
}

bool CliArgs::handle_help(std::ostream& os) const {
  if (!has("help")) return false;
  os << usage();
  return true;
}

void CliArgs::reject_unconsumed() const {
  for (const auto& [name, value] : values_) {
    if (consumed_.count(name) == 0) {
      throw std::runtime_error("CliArgs: unknown flag --" + name + "\n" +
                               usage());
    }
  }
}

}  // namespace neatbound
