// Shared work pool for index-addressed task sets: the engine runner and
// the experiment orchestrator both schedule independent jobs 0..count-1
// over a fixed set of worker threads pulling from one atomic counter.
// Unlike a naive thread loop, a worker exception does not std::terminate
// the process: the first exception is captured, every worker is joined,
// and the exception is rethrown in the calling thread.
#pragma once

#include <cstddef>
#include <functional>

namespace neatbound {

/// Maps the conventional "0 means auto" thread request onto a concrete
/// worker count: 0 → std::thread::hardware_concurrency() (at least 1).
[[nodiscard]] unsigned resolve_thread_count(unsigned requested) noexcept;

/// Invokes `fn(i)` exactly once for every i in [0, count) using
/// min(threads, count) workers (threads is resolved via
/// resolve_thread_count first).  With one worker the calls happen inline
/// on the calling thread, in index order — the serial fallback.
///
/// Exception safety: if any invocation throws, workers stop pulling new
/// indices, all threads are joined, and the first captured exception is
/// rethrown here.  Already-started invocations still run to completion,
/// so `fn` must leave shared state consistent on its own.
void parallel_for_indexed(std::size_t count, unsigned threads,
                          const std::function<void(std::size_t)>& fn);

}  // namespace neatbound
