#include "support/rng.hpp"

#include <cmath>

namespace neatbound {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  return mix64(state);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (void)next();
    }
  }
  s_ = acc;
}

Xoshiro256 Xoshiro256::split() noexcept {
  Xoshiro256 child = *this;
  child.jump();
  // Decorrelate this stream from the child by advancing once.
  (void)next();
  return child;
}

double Rng::uniform() noexcept {
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  NEATBOUND_EXPECTS(bound > 0, "uniform_below requires bound > 0");
  // Classic rejection: discard draws below 2^64 mod bound so that the
  // final modulo is unbiased.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = gen_.next();
    if (r >= threshold) return r % bound;
  }
}

bool Rng::bernoulli(double p) {
  NEATBOUND_EXPECTS(p >= 0.0 && p <= 1.0, "bernoulli requires p in [0,1]");
  return uniform() < p;
}

std::uint64_t Rng::binomial_inversion(std::uint64_t n, double p) {
  // BINV: walk the pmf from k = 0, subtracting from a uniform variate.
  // Expected iterations ≈ np + 1.  Numerically safe for np ≤ ~700 since
  // q^n stays above the double underflow threshold there; we only call it
  // for np ≤ kInversionCutoff.
  const double q = 1.0 - p;
  const double s = p / q;
  double f = std::exp(static_cast<double>(n) * std::log1p(-p));  // q^n
  double u = uniform();
  std::uint64_t k = 0;
  while (u > f && k < n) {
    u -= f;
    ++k;
    f *= s * (static_cast<double>(n - k + 1) / static_cast<double>(k));
  }
  return k;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  NEATBOUND_EXPECTS(p >= 0.0 && p <= 1.0, "binomial requires p in [0,1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  // Exploit symmetry so the inversion walks the short tail.
  if (p > 0.5) return n - binomial(n, 1.0 - p);
  // Split into chunks whose mean stays below the inversion cutoff.  Each
  // split is exact: Binomial(a+b, p) =d Binomial(a, p) + Binomial(b, p)
  // with independent summands.
  const double max_trials_fp = kInversionCutoff / p;
  const std::uint64_t max_trials =
      max_trials_fp >= static_cast<double>(n)
          ? n
          : static_cast<std::uint64_t>(max_trials_fp);
  std::uint64_t total = 0;
  std::uint64_t remaining = n;
  while (remaining > max_trials) {
    total += binomial_inversion(max_trials, p);
    remaining -= max_trials;
  }
  return total + binomial_inversion(remaining, p);
}

std::uint64_t Rng::geometric_failures(double p) {
  NEATBOUND_EXPECTS(p > 0.0 && p <= 1.0,
                    "geometric_failures requires p in (0,1]");
  if (p == 1.0) return 0;
  // Inversion: floor(ln U / ln(1-p)).
  const double u = 1.0 - uniform();  // in (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::split() noexcept {
  Rng child(0);
  child.gen_ = gen_.split();
  return child;
}

}  // namespace neatbound
