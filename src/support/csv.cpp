#include "support/csv.hpp"

#include <stdexcept>

#include "support/contracts.hpp"

namespace neatbound {

namespace {
bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quoted(const std::string& cell) {
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string csv_format_row(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ',';
    out += needs_quoting(cells[i]) ? quoted(cells[i]) : cells[i];
  }
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  NEATBOUND_EXPECTS(columns_ > 0, "CSV needs at least one column");
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  NEATBOUND_EXPECTS(cells.size() == columns_,
                    "CSV row width must match header");
  write_row(cells);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  out_ << csv_format_row(cells) << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace neatbound
