// Consistency / growth / quality metrics observed during an execution.
//
// The consistency property (Definition 1) is parameterized by T: all but
// the last T blocks of any honest chain at round r must prefix any honest
// chain at round s ≥ r.  Two observable quantities witness violations:
//   * view divergence  — at a single round, the number of non-common
//     trailing blocks between two honest tips;
//   * reorg depth      — blocks an honest miner abandons when switching
//     tips (the r < s, i = j case).
// The empirical "violation depth" of a run is the max of both; consistency
// with parameter T held throughout iff violation depth ≤ T.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "protocol/block_store.hpp"

namespace neatbound::sim {

class ConsistencyTracker {
 public:
  /// Records a tip switch of one honest miner (depth = abandoned blocks).
  void observe_reorg(std::uint64_t depth) noexcept;

  /// Records the end-of-round honest tips; computes the worst pairwise
  /// divergence among the (few) distinct tips.
  void observe_round(std::span<const protocol::BlockIndex> tips,
                     const protocol::BlockStore& store);

  /// Records a round whose tips are bit-identical to the previous
  /// observe_round call (no adoptions happened): the divergence maximum
  /// cannot move, so only the disagreement-round count is folded in.  The
  /// counter-mode quiet-round fast path (sim/batch_engine.hpp) calls this
  /// instead of recomputing; results are identical by construction, which
  /// the batched-vs-serial differential battery pins.
  void observe_round_unchanged() noexcept { observe_rounds_unchanged(1); }

  /// observe_round_unchanged, `count` rounds at once — the bulk form the
  /// quiet-round skip uses to commit a whole run of silent rounds in
  /// O(1).
  void observe_rounds_unchanged(std::uint64_t count) noexcept {
    disagreement_rounds_ += last_round_disagreed_ ? count : 0;
  }

  [[nodiscard]] std::uint64_t max_reorg_depth() const noexcept {
    return max_reorg_depth_;
  }
  [[nodiscard]] std::uint64_t max_divergence() const noexcept {
    return max_divergence_;
  }
  /// Rounds in which at least two honest miners held different tips.
  [[nodiscard]] std::uint64_t disagreement_rounds() const noexcept {
    return disagreement_rounds_;
  }
  /// The empirical consistency-violation depth (see header comment).
  [[nodiscard]] std::uint64_t violation_depth() const noexcept {
    return max_reorg_depth_ > max_divergence_ ? max_reorg_depth_
                                              : max_divergence_;
  }

 private:
  std::uint64_t max_reorg_depth_ = 0;
  std::uint64_t max_divergence_ = 0;
  std::uint64_t disagreement_rounds_ = 0;
  /// Whether the most recent observe_round saw ≥ 2 distinct tips (what an
  /// unchanged round would see again).
  bool last_round_disagreed_ = false;
  /// Distinct tips of the round under observation (reused scratch).
  std::vector<protocol::BlockIndex> scratch_;
  /// Epoch-stamped dedup: tip_epoch_[b] == epoch_ iff block b was already
  /// seen as a tip this round.  One flat array reused every round — no
  /// per-round sort and no clearing (bumping the epoch invalidates all
  /// stale stamps at once).
  std::vector<std::uint64_t> tip_epoch_;
  std::uint64_t epoch_ = 0;
};

/// Growth and quality of the final best honest chain.
struct ChainMetrics {
  std::uint64_t best_height = 0;      ///< height of the best honest tip
  double growth_per_round = 0.0;      ///< best_height / rounds
  std::uint64_t honest_blocks_in_chain = 0;
  std::uint64_t adversary_blocks_in_chain = 0;
  double quality = 0.0;  ///< honest fraction of non-genesis chain blocks
};

[[nodiscard]] ChainMetrics measure_chain(const protocol::BlockStore& store,
                                         protocol::BlockIndex best_tip,
                                         std::uint64_t rounds);

/// Shape of the whole block DAG (every block ever mined, published or
/// not): how much honest work was wasted on forks.
struct DagMetrics {
  std::uint64_t total_blocks = 0;     ///< excluding genesis
  std::uint64_t max_height = 0;       ///< deepest block anywhere
  std::uint64_t fork_heights = 0;     ///< heights holding ≥ 2 blocks
  std::uint64_t max_width = 0;        ///< most blocks at a single height
  std::uint64_t honest_off_chain = 0; ///< honest blocks off the best chain
  double orphan_rate = 0.0;           ///< honest_off_chain / honest blocks
};

[[nodiscard]] DagMetrics measure_dag(const protocol::BlockStore& store,
                                     protocol::BlockIndex best_tip);

/// Agreement between the ledgers ext(κ, C) of a set of honest tips: the
/// user-facing form of consistency.  `suffix_disagreement` is the largest
/// number of trailing ledger entries any miner would need to drop for its
/// ledger to be a prefix of every other miner's — the ledger analogue of
/// the T in Definition 1.
struct LedgerAgreement {
  std::size_t common_prefix = 0;       ///< entries all ledgers share
  std::size_t max_length = 0;          ///< longest honest ledger
  std::size_t suffix_disagreement = 0; ///< max_length − common_prefix
};

[[nodiscard]] LedgerAgreement measure_ledger_agreement(
    const protocol::BlockStore& store,
    std::span<const protocol::BlockIndex> tips);

}  // namespace neatbound::sim
