#include "sim/batch_engine.hpp"

#include <algorithm>
#include <memory>

#include "support/contracts.hpp"
#include "support/telemetry.hpp"

namespace neatbound::sim {

std::vector<RunResult> run_batch(const EngineConfig& base,
                                 std::span<const std::uint64_t> seeds,
                                 const AdversaryFactory& factory,
                                 const BatchOptions& options) {
  NEATBOUND_EXPECTS(base.rng_mode == RngMode::kCounter,
                    "run_batch requires counter RNG mode");
  NEATBOUND_EXPECTS(!seeds.empty(), "run_batch needs at least one seed");
  NEATBOUND_EXPECTS(
      options.observers.empty() || options.observers.size() == seeds.size(),
      "observers must be empty or one per seed");
  const std::size_t width = seeds.size();

  std::vector<std::unique_ptr<ExecutionEngine>> lanes;
  lanes.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    EngineConfig config = base;
    config.seed = seeds[i];
    lanes.push_back(
        std::make_unique<ExecutionEngine>(config, factory(config)));
  }

  // One reset for the whole pass; the snapshot lands on lane 0 below.
  telemetry::reset();
  for (auto& lane : lanes) lane->begin_run();

  // Lockstep at tile granularity: each lane advances kTileRounds rounds
  // before the next lane touches the pass.  Per-round interleaving would
  // drag every lane's working set (store, views, calendar) through the
  // cache every round; a tile keeps one lane hot while still bounding
  // how far any lane can run ahead (the wave semantics the adaptive
  // sweep schedules on).  Inside a tile, runs of provably-quiet rounds
  // commit in O(1) via skip_quiet_rounds.
  static constexpr std::uint64_t kTileRounds = 4096;
  static const ExecutionEngine::RoundObserver kNoObserver{};
  for (std::uint64_t tile = 1; tile <= base.rounds; tile += kTileRounds) {
    const std::uint64_t tile_last =
        std::min(base.rounds, tile + kTileRounds - 1);
    for (std::size_t i = 0; i < width; ++i) {
      const ExecutionEngine::RoundObserver& observer =
          options.observers.empty() ? kNoObserver : options.observers[i];
      const bool may_skip = options.allow_quiet_skip && !observer;
      std::uint64_t round = tile;
      while (round <= tile_last) {
        if (may_skip) {
          round = lanes[i]->skip_quiet_rounds(round, tile_last);
          if (round > tile_last) break;
        }
        lanes[i]->step_round(round, observer);
        ++round;
      }
    }
  }

  std::vector<RunResult> results;
  results.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    results.push_back(lanes[i]->finish_run(/*take_telemetry=*/i == 0));
  }
  return results;
}

ExperimentSummary run_experiment_batched_with(const ExperimentConfig& config,
                                              std::uint64_t violation_t,
                                              const AdversaryFactory& factory,
                                              std::uint32_t batch_seeds) {
  NEATBOUND_EXPECTS(batch_seeds >= 1, "batch width must be >= 1");
  ExperimentSummary summary;
  std::vector<std::uint64_t> seeds;
  for (std::uint32_t k = 0; k < config.seeds; k += batch_seeds) {
    const std::uint32_t count = std::min(batch_seeds, config.seeds - k);
    seeds.clear();
    for (std::uint32_t j = 0; j < count; ++j) {
      seeds.push_back(config.base_seed + k + j);
    }
    for (const RunResult& result :
         run_batch(config.engine, seeds, factory)) {
      accumulate_run(summary, result, violation_t);
    }
  }
  return summary;
}

ExperimentSummary run_experiment_batched(const ExperimentConfig& config,
                                         std::uint64_t violation_t,
                                         std::uint32_t batch_seeds) {
  return run_experiment_batched_with(
      config, violation_t, default_adversary_factory(config.adversary),
      batch_seeds);
}

}  // namespace neatbound::sim
