#include "sim/metrics.hpp"

#include <algorithm>

namespace neatbound::sim {

void ConsistencyTracker::observe_reorg(std::uint64_t depth) noexcept {
  max_reorg_depth_ = std::max(max_reorg_depth_, depth);
}

void ConsistencyTracker::observe_round(
    std::span<const protocol::BlockIndex> tips,
    const protocol::BlockStore& store) {
  // Deduplicate tips first: miners overwhelmingly share views, so the
  // pairwise pass below runs on a handful of distinct values.  The dedup
  // is a single epoch-stamped pass (first-occurrence order), not a sort —
  // the pairwise maximum below is order-independent.
  ++epoch_;
  scratch_.clear();
  for (const protocol::BlockIndex tip : tips) {
    if (tip_epoch_.size() <= tip) tip_epoch_.resize(tip + 1, 0);
    if (tip_epoch_[tip] == epoch_) continue;
    tip_epoch_[tip] = epoch_;
    scratch_.push_back(tip);
  }
  last_round_disagreed_ = scratch_.size() >= 2;
  if (scratch_.size() < 2) return;
  ++disagreement_rounds_;
  for (std::size_t i = 0; i < scratch_.size(); ++i) {
    for (std::size_t j = i + 1; j < scratch_.size(); ++j) {
      const std::uint64_t common =
          store.common_prefix_height(scratch_[i], scratch_[j]);
      const std::uint64_t deeper = std::max(store.height_of(scratch_[i]),
                                            store.height_of(scratch_[j]));
      max_divergence_ = std::max(max_divergence_, deeper - common);
    }
  }
}

ChainMetrics measure_chain(const protocol::BlockStore& store,
                           protocol::BlockIndex best_tip,
                           std::uint64_t rounds) {
  ChainMetrics metrics;
  metrics.best_height = store.height_of(best_tip);
  metrics.growth_per_round =
      rounds == 0 ? 0.0
                  : static_cast<double>(metrics.best_height) /
                        static_cast<double>(rounds);
  for (const protocol::BlockIndex index : store.chain_to(best_tip)) {
    switch (store.miner_class_of(index)) {
      case protocol::MinerClass::kGenesis:
        break;
      case protocol::MinerClass::kHonest:
        ++metrics.honest_blocks_in_chain;
        break;
      case protocol::MinerClass::kAdversary:
        ++metrics.adversary_blocks_in_chain;
        break;
    }
  }
  const std::uint64_t total =
      metrics.honest_blocks_in_chain + metrics.adversary_blocks_in_chain;
  metrics.quality =
      total == 0 ? 1.0
                 : static_cast<double>(metrics.honest_blocks_in_chain) /
                       static_cast<double>(total);
  return metrics;
}

DagMetrics measure_dag(const protocol::BlockStore& store,
                       protocol::BlockIndex best_tip) {
  DagMetrics metrics;
  if (store.size() <= 1) return metrics;
  metrics.total_blocks = store.size() - 1;

  std::vector<std::uint64_t> width;  // blocks per height (excl. genesis)
  std::uint64_t honest_total = 0;
  for (protocol::BlockIndex i = 1;
       i < static_cast<protocol::BlockIndex>(store.size()); ++i) {
    const std::uint64_t height = store.height_of(i);
    metrics.max_height = std::max(metrics.max_height, height);
    if (width.size() < height) width.resize(height, 0);
    ++width[height - 1];
    if (store.miner_class_of(i) == protocol::MinerClass::kHonest) {
      ++honest_total;
    }
  }
  for (const std::uint64_t w : width) {
    if (w >= 2) ++metrics.fork_heights;
    metrics.max_width = std::max(metrics.max_width, w);
  }
  // Honest blocks not on the best chain.
  std::vector<bool> on_chain(store.size(), false);
  for (const protocol::BlockIndex i : store.chain_to(best_tip)) {
    on_chain[i] = true;
  }
  for (protocol::BlockIndex i = 1;
       i < static_cast<protocol::BlockIndex>(store.size()); ++i) {
    if (!on_chain[i] &&
        store.miner_class_of(i) == protocol::MinerClass::kHonest) {
      ++metrics.honest_off_chain;
    }
  }
  metrics.orphan_rate =
      honest_total == 0
          ? 0.0
          : static_cast<double>(metrics.honest_off_chain) /
                static_cast<double>(honest_total);
  return metrics;
}

LedgerAgreement measure_ledger_agreement(
    const protocol::BlockStore& store,
    std::span<const protocol::BlockIndex> tips) {
  LedgerAgreement agreement;
  if (tips.empty()) return agreement;

  // Deduplicate tips, then extract each distinct ledger once.
  std::vector<protocol::BlockIndex> unique(tips.begin(), tips.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  std::vector<std::vector<std::string>> ledgers;
  ledgers.reserve(unique.size());
  for (const protocol::BlockIndex tip : unique) {
    ledgers.push_back(store.extract_messages(tip));
  }
  std::size_t common = ledgers[0].size();
  for (const auto& ledger : ledgers) {
    agreement.max_length = std::max(agreement.max_length, ledger.size());
  }
  for (std::size_t i = 1; i < ledgers.size(); ++i) {
    std::size_t shared = 0;
    const std::size_t limit = std::min(ledgers[0].size(), ledgers[i].size());
    while (shared < limit && ledgers[0][shared] == ledgers[i][shared]) {
      ++shared;
    }
    common = std::min(common, shared);
  }
  agreement.common_prefix = common;
  agreement.suffix_disagreement = agreement.max_length - common;
  return agreement;
}

}  // namespace neatbound::sim
