// The environment Z(1^κ) of Section III: it hands each miner a message
// (a batch of transactions) to include in the block it tries to publish.
// The ledger read out of a chain via ext(κ, C) is the ordered sequence of
// those messages — consistency of the *ledger* is the property users of
// the protocol actually care about.
#pragma once

#include <cstdint>
#include <string>

namespace neatbound::sim {

/// Supplies the message a miner would embed in a block this round.
class Environment {
 public:
  virtual ~Environment() = default;
  /// Message for `miner` at `round`; may be empty (no pending payload).
  [[nodiscard]] virtual std::string message_for(std::uint64_t round,
                                                std::uint32_t miner) = 0;
};

/// Environment producing a deterministic transaction batch per (round,
/// miner): "tx@<round>#<miner>/<seq>" — unique, human-readable, and
/// checkable by the ledger-agreement metric.
class SequentialTransactionEnvironment final : public Environment {
 public:
  // neatbound-analyze: allow(hot-alloc) — accepted allocation boundary:
  // message assembly runs once per *mined* block (O(p·n·T) expected, not
  // O(n·T)), and the string it builds is the product being embedded.
  [[nodiscard]] std::string message_for(std::uint64_t round,
                                        std::uint32_t miner) override {
    return "tx@" + std::to_string(round) + "#" + std::to_string(miner) +
           "/" + std::to_string(sequence_++);
  }

 private:
  std::uint64_t sequence_ = 0;
};

}  // namespace neatbound::sim
