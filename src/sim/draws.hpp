// Addressable Bernoulli success fields for counter-mode mining.
//
// Counter mode decides mining success by an iid Bernoulli(p) field over a
// flat position space (honest query g = (round−1)·n + miner; adversary
// query g = (round−1)·budget + query-index), enumerated by geometric
// gaps: the number of failures between consecutive successes is
// Geometric(p), so walking the success positions costs O(successes)
// instead of O(positions) — the skip-sampling step ROADMAP items 1 and 2
// call for.  Gap i is drawn from lane (i mod 4) of the Philox block at
// counter (i/4, 0, purpose, 0), so the whole field is a pure function of
// (key, purpose): any engine — serial, batched, replayed from a trace —
// walking the same positions sees the same successes, regardless of how
// many other draws happened in between.
#pragma once

#include <cstdint>

#include "support/crng.hpp"
#include "support/hot.hpp"

namespace neatbound::sim {

/// Monotone cursor over the success positions of one Bernoulli(p) field.
/// Positions may only be consumed in increasing order (the engines query
/// rounds forward, and query indices forward within a round).
class GapCursor {
 public:
  GapCursor() = default;  ///< unusable until assigned from a real cursor

  GapCursor(crng::Key key, crng::Purpose purpose, double p);

  /// Position of the next success not yet consumed.
  [[nodiscard]] std::uint64_t peek() const noexcept { return next_; }

  /// Consumes the current success and returns its position.
  NEATBOUND_HOT std::uint64_t take();

  /// Discards any successes at positions < `pos` (queries that were never
  /// made — e.g. an adversary spending less than its budget).
  NEATBOUND_HOT void advance_to(std::uint64_t pos);

  /// True iff `pos` is a success; consumes it when so.  `pos` must be
  /// ≥ every previously tested/taken position.
  [[nodiscard]] NEATBOUND_HOT bool contains_take(std::uint64_t pos);

 private:
  [[nodiscard]] std::uint64_t next_gap();

  crng::Key key_{};
  std::uint64_t purpose_ = 0;
  double log_q_ = -1.0;  ///< log(1 − p)
  std::uint64_t gap_index_ = 0;
  std::uint64_t next_ = 0;  ///< position of the next success
  crng::Block buffer_{};
};

}  // namespace neatbound::sim
