// Composes a network model with a mining strategy.
//
// The execution engine sources honest-message delays from its Adversary
// (capability ①), so a strategy normally controls both the network and the
// corrupted miners.  ScheduleAdversary splits the two concerns: delays come
// from a net::DeliverySchedule (the *network model*), while mining,
// publication and observation are delegated to an inner Adversary (the
// *strategy*).  This is what lets the scenario registry pair any network
// model with any strategy — e.g. a private-withholding miner on a bursty
// network instead of its native always-Δ one.
#pragma once

#include <memory>
#include <string>

#include "net/delivery.hpp"
#include "sim/adversary.hpp"

namespace neatbound::sim {

class ScheduleAdversary final : public Adversary {
 public:
  /// Both parts are required; the composed name is "<model>+<strategy>",
  /// where `model_name` describes the schedule.
  ScheduleAdversary(std::string model_name,
                    std::unique_ptr<net::DeliverySchedule> schedule,
                    std::unique_ptr<Adversary> strategy);

  [[nodiscard]] std::uint64_t honest_delay(
      std::uint64_t round, std::uint32_t sender, std::uint32_t recipient,
      protocol::BlockIndex block) override;
  void on_honest_block(std::uint64_t round,
                       protocol::BlockIndex block) override;
  void act(AdversaryOps& ops) override;
  /// The decorator adds no act() behavior of its own (delays are read per
  /// broadcast, outside act), so the quiet contract is the strategy's.
  [[nodiscard]] bool quiet_act_is_noop() const override {
    return strategy_->quiet_act_is_noop();
  }
  [[nodiscard]] const char* name() const override { return name_.c_str(); }

 private:
  std::string name_;
  std::unique_ptr<net::DeliverySchedule> schedule_;
  std::unique_ptr<Adversary> strategy_;
};

}  // namespace neatbound::sim
