// The aggregate engine: per-round binomial sampling without block objects.
//
// Theorems 1–2 are statements about two counting processes only — the
// number of convergence opportunities C(t₀, t₀+T−1) (a function of the
// per-round honest block counts) and the adversary block count
// A(t₀, t₀+T−1) ~ Binomial(Tνn, p).  Neither needs chains or a network,
// so validating Eq. (26)/(27) at large T is orders of magnitude cheaper
// here than in the execution engine.  The two engines cross-validate:
// tests assert they produce identical counting statistics in distribution.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/trace.hpp"

namespace neatbound::sim {

struct AggregateConfig {
  double honest_trials = 0.0;     ///< μn
  double adversary_trials = 0.0;  ///< νn
  double p = 0.0;
  std::uint64_t delta = 1;
  std::uint64_t rounds = 0;
  std::uint64_t seed = 1;
};

struct AggregateResult {
  std::uint64_t honest_blocks = 0;
  std::uint64_t adversary_blocks = 0;
  std::uint64_t convergence_opportunities = 0;
  std::uint64_t h_rounds = 0;   ///< rounds with ≥1 honest block
  std::uint64_t h1_rounds = 0;  ///< rounds with exactly one honest block
};

/// Runs the counting process for `config.rounds` rounds.
/// Convergence opportunities are counted online with the same semantics as
/// chains::count_convergence_opportunities (genesis supplies the leading
/// quiet period).
[[nodiscard]] AggregateResult run_aggregate(const AggregateConfig& config);

/// As above, streaming one RoundRecord per round into `sink` (the
/// structured trace API of sim/trace.hpp).  The aggregate model has no
/// chains or network, so only the counting fields are populated: round
/// (1-based), honest_mined, adversary_mined; mined_by stays empty (the
/// model draws a binomial total, not per-miner identities) and the
/// view/chain fields stay zero.
[[nodiscard]] AggregateResult run_aggregate_traced(
    const AggregateConfig& config, RoundTraceSink& sink);

/// Legacy accessor, kept as a thin shim over the sink API: fills
/// `honest_counts` with each round's honest block count (index i =
/// round i+1).  Memory: 4 bytes per round.
[[nodiscard]] AggregateResult run_aggregate_traced(
    const AggregateConfig& config, std::vector<std::uint32_t>& honest_counts);

}  // namespace neatbound::sim
