#include "sim/miner_view.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace neatbound::sim {

MinerView::MinerView() : tip_(protocol::kGenesisIndex) {
  known_.resize(1, true);  // genesis
}

bool MinerView::knows(protocol::BlockIndex block) const noexcept {
  return block < known_.size() && known_[block];
}

AdoptionEvent MinerView::deliver(protocol::BlockIndex block,
                                 const protocol::BlockStore& store) {
  AdoptionEvent event;
  if (knows(block)) return event;  // duplicate delivery (echo), ignore
  const protocol::BlockIndex parent = store.block(block).parent;
  if (!knows(parent)) {
    waiting_on_[parent].push_back(block);
    return event;
  }
  activate_ready(block, store, event);
  return event;
}

void MinerView::activate_ready(protocol::BlockIndex block,
                               const protocol::BlockStore& store,
                               AdoptionEvent& event) {
  // Iterative activation: mark known, adopt if longer, then wake orphans.
  std::vector<protocol::BlockIndex> stack{block};
  while (!stack.empty()) {
    const protocol::BlockIndex current = stack.back();
    stack.pop_back();
    if (known_.size() <= current) known_.resize(current + 1, false);
    if (known_[current]) continue;
    known_[current] = true;
    consider_tip(current, store, event);
    const auto it = waiting_on_.find(current);
    if (it != waiting_on_.end()) {
      stack.insert(stack.end(), it->second.begin(), it->second.end());
      waiting_on_.erase(it);
    }
  }
}

void MinerView::consider_tip(protocol::BlockIndex candidate,
                             const protocol::BlockStore& store,
                             AdoptionEvent& event) {
  // Longest-chain rule; strict inequality implements first-received
  // tie-breaking (an equally long chain never displaces the current tip).
  if (store.height_of(candidate) <= store.height_of(tip_)) return;
  const std::uint64_t common = store.common_prefix_height(candidate, tip_);
  const std::uint64_t abandoned = store.height_of(tip_) - common;
  event.adopted = true;
  event.reorg_depth = std::max(event.reorg_depth, abandoned);
  tip_ = candidate;
}

}  // namespace neatbound::sim
