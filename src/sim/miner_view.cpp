#include "sim/miner_view.hpp"

#include <algorithm>

#include "support/contracts.hpp"
#include "support/invariant.hpp"

namespace neatbound::sim {

MinerView::MinerView() : tip_(protocol::kGenesisIndex) {
  known_.resize(1, true);  // genesis
}

void MinerView::deliver_fresh(protocol::BlockIndex block,
                              const protocol::BlockStore& store,
                              AdoptionEvent& event) {
  const protocol::BlockIndex parent = store.parent_of(block);
  if (!knows(parent)) {
    buffer_orphan(parent, block);
    return;
  }
  activate_ready(block, store, event);
}

void MinerView::buffer_orphan(protocol::BlockIndex parent,
                              protocol::BlockIndex block) {
  const std::size_t needed = std::max(parent, block) + std::size_t{1};
  if (waiting_first_.size() < needed) {
    // Lazy orphan-table growth: only out-of-order (adversarial) delivery
    // reaches this, and the resizes amortize over block indices.
    waiting_first_.resize(needed, kNoWaiting);  // neatbound-analyze: allow(hot-alloc)
    waiting_next_.resize(needed, kNoWaiting);   // neatbound-analyze: allow(hot-alloc)
    buffered_.resize(needed, false);            // neatbound-analyze: allow(hot-alloc)
  }
  // A still-buffered orphan can be delivered again (adversarial re-send or
  // gossip echo while the parent is withheld); it is already threaded into
  // its parent's list, and re-threading would sever the tail behind it.
  if (buffered_[block]) return;
  // Bitset ↔ intrusive-list lockstep (the PR 4 corruption class): a block
  // the bitset calls un-buffered must not already carry a list link —
  // overwriting waiting_next_ here is exactly how the sibling behind it
  // got silently dropped.
  NEATBOUND_INVARIANT(waiting_next_[block] == kNoWaiting,
                      "un-buffered block already threaded into a waiting "
                      "list — buffered_ out of lockstep");
  buffered_[block] = true;
  NEATBOUND_COUNT(kOrphansBuffered);
  // Push-front; activation re-reverses, so children wake in arrival order.
  waiting_next_[block] = waiting_first_[parent];
  waiting_first_[parent] = block;
}

void MinerView::activate_ready(protocol::BlockIndex block,
                               const protocol::BlockStore& store,
                               AdoptionEvent& event) {
  // Iterative activation: mark known, adopt if longer, then wake orphans.
  activation_stack_.clear();
  // neatbound-analyze: allow(hot-alloc) — reused worklist: capacity is
  // retained across deliveries, so appends amortize to zero allocation.
  activation_stack_.push_back(block);
  while (!activation_stack_.empty()) {
    const protocol::BlockIndex current = activation_stack_.back();
    activation_stack_.pop_back();
    // neatbound-analyze: allow(hot-alloc) — lazy bitset growth, amortized
    if (known_.size() <= current) known_.resize(current + 1, false);
    if (known_[current]) continue;
    known_[current] = true;
    consider_tip(current, store, event);
    if (current < waiting_first_.size()) {
      // The list is most-recent-first; pushing it onto the LIFO worklist
      // reverses it, so children pop in arrival order.
      protocol::BlockIndex child = waiting_first_[current];
      waiting_first_[current] = kNoWaiting;
      while (child != kNoWaiting) {
        // Everything threaded into a waiting list must be marked buffered;
        // an unmarked entry means some other path threaded it without
        // going through buffer_orphan's duplicate guard.
        NEATBOUND_INVARIANT(buffered_[child],
                            "waiting-list entry not marked buffered_");
        NEATBOUND_INVARIANT(!knows(child),
                            "known block still threaded as a waiting orphan");
        const protocol::BlockIndex next = waiting_next_[child];
        waiting_next_[child] = kNoWaiting;
        buffered_[child] = false;
        NEATBOUND_COUNT(kOrphansActivated);
        // neatbound-analyze: allow(hot-alloc) — reused worklist (above)
        activation_stack_.push_back(child);
        child = next;
      }
    }
  }
}

void MinerView::consider_tip(protocol::BlockIndex candidate,
                             const protocol::BlockStore& store,
                             AdoptionEvent& event) {
  // Longest-chain rule; strict inequality implements first-received
  // tie-breaking (an equally long chain never displaces the current tip).
  const std::uint64_t candidate_height = store.height_of(candidate);
  if (candidate_height <= tip_height_) return;
  const std::uint64_t common = store.common_prefix_height(candidate, tip_);
  const std::uint64_t abandoned = tip_height_ - common;
  event.adopted = true;
  event.reorg_depth = std::max(event.reorg_depth, abandoned);
  tip_ = candidate;
  tip_height_ = candidate_height;
  // The cached height is what every longest-chain compare reads; drift
  // from the store's truth silently changes which chains win.
  NEATBOUND_INVARIANT(tip_height_ == store.height_of(tip_),
                      "cached tip height out of lockstep with the store");
}

}  // namespace neatbound::sim
