// Cross-seed batched execution: W seeds of one grid cell in lockstep.
//
// Counter-mode draws are pure functions of (key, counter) — support/crng —
// so the W lanes of a batch share nothing but code and caches: stepping
// them round-major (round 1 of every lane, then round 2, ...) produces
// exactly the trajectories of W serial runs, which the differential
// battery (tests/sim/test_batch_equivalence.cpp) pins bit-for-bit per
// RunResult field.
//
// The payoff is the quiet-round fast path: with per-round success
// probability p and n miners, most rounds of a sparse cell mine nothing
// and deliver nothing.  A serial legacy run still pays the full
// per-round loop; a counter-mode lane can *prove* a round quiet from
// three O(1) reads (gap-cursor peeks + calendar emptiness) and commit it
// without executing it.  Batching amortizes the remaining per-round
// overhead across W seeds, which is where the ≥3× throughput of
// bench_engine_throughput --batch-seeds comes from.
//
// Telemetry convention: a batched pass resets the thread-local registers
// once and attaches the whole-pass snapshot to lane 0's RunResult (all
// other lanes report zeros), so folding a chunk's results counts the
// pass exactly once — same totals as summing per-run snapshots.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/engine.hpp"
#include "sim/runner.hpp"

namespace neatbound::sim {

struct BatchOptions {
  /// Per-lane round observers: empty, or exactly one entry per seed
  /// (null entries allowed).  A lane with an observer attached never
  /// quiet-skips — the observer must see every round.
  std::vector<ExecutionEngine::RoundObserver> observers;
  /// Master switch for the quiet-round fast path; the differential
  /// battery turns it off to pin skip ≡ no-skip per strategy.
  bool allow_quiet_skip = true;
};

/// Runs one engine configuration under each seed of `seeds`, all lanes in
/// round-major lockstep, and returns the per-seed results in seed order.
/// Requires counter RNG mode (legacy streams cannot be interleaved).
/// `factory` is invoked once per lane with that lane's config.
[[nodiscard]] std::vector<RunResult> run_batch(const EngineConfig& base,
                                               std::span<const std::uint64_t> seeds,
                                               const AdversaryFactory& factory,
                                               const BatchOptions& options = {});

/// run_experiment_with, batched: seeds base_seed+0 .. base_seed+seeds−1
/// are chunked into groups of ≤ batch_seeds, each group runs as one
/// batched pass, and results fold in seed order through accumulate_run —
/// the same arithmetic as the serial runner, so the summary is
/// bit-identical to run_experiment_with for any batch width.
[[nodiscard]] ExperimentSummary run_experiment_batched_with(
    const ExperimentConfig& config, std::uint64_t violation_t,
    const AdversaryFactory& factory, std::uint32_t batch_seeds);

/// Batched variant of run_experiment (default adversary per kind).
[[nodiscard]] ExperimentSummary run_experiment_batched(
    const ExperimentConfig& config, std::uint64_t violation_t,
    std::uint32_t batch_seeds);

}  // namespace neatbound::sim
