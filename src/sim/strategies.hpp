// Adversary strategies.
//
// * NullAdversary        — corrupted miners idle; messages arrive next
//                          round.  The synchronous, benign baseline.
// * MaxDelayAdversary    — every honest message is delayed the full Δ and
//                          the corrupted miners mine privately but never
//                          publish.  This realizes exactly the two counting
//                          processes Theorem 1 compares — C(t₀,t₀+T−1) under
//                          worst-case benign delivery, and A(t₀,t₀+T−1) —
//                          without strategic interference; used to validate
//                          Eqs. (26) and (27).
// * PrivateWithholdAdversary — the consistency/double-spend attacker:
//                          mines a private fork, delays honest traffic by
//                          Δ, and releases the fork once it is strictly
//                          longer than the best honest chain and at least
//                          `min_fork_depth` deep, forcing a reorg.
// * BalanceAttackAdversary — the PSS Remark 8.5 chain-splitting attacker:
//                          partitions honest miners into two halves kept
//                          Δ apart, and donates adversary blocks to the
//                          lagging side to keep both chains level.
// * SelfishMiningAdversary — Eyal–Sirer selfish mining (chain-quality
//                          attack): maintains a private lead, releases
//                          competing blocks on honest discoveries.
// * ForkBalancerAdversary — equivocating fork balancer: splits the honest
//                          miners with a *sibling pair* (two children of
//                          one parent fed to opposite halves), then keeps
//                          the two branches level by donating blocks to
//                          the lagging side; cross-partition honest
//                          traffic is delayed the full Δ.
// * DelaySaturatingWithholder — saturates every honest delay at Δ and
//                          mines a stubborn private fork, releasing only
//                          the minimal prefix needed to overtake the
//                          public chain while banking the rest as a
//                          persistent lead.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/adversary.hpp"
#include "support/rng.hpp"

namespace neatbound::sim {

class NullAdversary final : public Adversary {
 public:
  [[nodiscard]] std::uint64_t honest_delay(std::uint64_t, std::uint32_t,
                                           std::uint32_t,
                                           protocol::BlockIndex) override {
    return 1;
  }
  void act(AdversaryOps&) override {}
  [[nodiscard]] bool quiet_act_is_noop() const override { return true; }
  [[nodiscard]] const char* name() const override { return "null"; }
};

class MaxDelayAdversary final : public Adversary {
 public:
  explicit MaxDelayAdversary(std::uint64_t delta) : delta_(delta) {}
  [[nodiscard]] std::uint64_t honest_delay(std::uint64_t, std::uint32_t,
                                           std::uint32_t,
                                           protocol::BlockIndex) override {
    return delta_;
  }
  void act(AdversaryOps& ops) override;
  /// Quiet rounds only attempt (failing) private-tip queries.
  [[nodiscard]] bool quiet_act_is_noop() const override { return true; }
  [[nodiscard]] const char* name() const override { return "max-delay"; }

 private:
  std::uint64_t delta_;
  protocol::BlockIndex private_tip_ = protocol::kGenesisIndex;
};

class PrivateWithholdAdversary final : public Adversary {
 public:
  struct Options {
    std::uint64_t min_fork_depth = 2;  ///< only release reorgs this deep
    std::uint64_t give_up_margin = 6;  ///< abandon a fork this far behind
  };
  PrivateWithholdAdversary();
  explicit PrivateWithholdAdversary(Options options);

  [[nodiscard]] std::uint64_t honest_delay(std::uint64_t, std::uint32_t,
                                           std::uint32_t,
                                           protocol::BlockIndex) override;
  void act(AdversaryOps& ops) override;
  /// Give-up and release decisions depend only on (best height, private
  /// height, withheld stock), all unchanged in a quiet round, and both
  /// were already settled idempotently by the previous act().
  [[nodiscard]] bool quiet_act_is_noop() const override { return true; }
  [[nodiscard]] const char* name() const override {
    return "private-withhold";
  }

  [[nodiscard]] std::uint64_t successful_releases() const noexcept {
    return releases_;
  }

 private:
  Options options_;
  protocol::BlockIndex private_tip_ = protocol::kGenesisIndex;
  protocol::BlockIndex fork_base_ = protocol::kGenesisIndex;
  std::vector<protocol::BlockIndex> withheld_;
  std::uint64_t releases_ = 0;
  bool initialized_ = false;
};

/// Fixed two-halves partition of the honest miners, with the branch
/// bookkeeping the chain-splitting adversaries (balance attack, fork
/// balancer) share: miners [0, n/2) are group 0, the rest group 1.
class HonestPartition {
 public:
  /// EXPECTS at least two honest miners (both sides non-empty).
  explicit HonestPartition(std::uint32_t honest_count);

  [[nodiscard]] std::uint32_t honest_count() const noexcept {
    return honest_count_;
  }
  [[nodiscard]] std::uint8_t group_of(std::uint32_t miner) const noexcept {
    return miner < split_ ? 0 : 1;
  }
  /// Tip of the best chain a group works on: the highest tip among the
  /// group's miners.
  [[nodiscard]] protocol::BlockIndex group_tip(const AdversaryOps& ops,
                                               std::uint8_t group) const;
  void publish_to_group(AdversaryOps& ops, protocol::BlockIndex block,
                        std::uint8_t group) const;
  /// Refreshes the two tracked branch tips from honest progress: follow a
  /// group's tip when it extends our branch, re-anchor when the group
  /// deserted beyond `reset_margin`, and normalize a collapse (both tips
  /// on one chain → both set to the deeper tip, so branch[0] == branch[1]
  /// signals "single chain").
  void sync_branches(const AdversaryOps& ops, protocol::BlockIndex branch[2],
                     std::uint64_t reset_margin) const;

 private:
  std::uint32_t honest_count_;
  std::uint32_t split_;  ///< miners [0, split) are group 0
};

class BalanceAttackAdversary final : public Adversary {
 public:
  /// `honest_count` is needed up front to fix the partition.
  explicit BalanceAttackAdversary(std::uint32_t honest_count,
                                  std::uint64_t delta);

  [[nodiscard]] std::uint64_t honest_delay(std::uint64_t round,
                                           std::uint32_t sender,
                                           std::uint32_t recipient,
                                           protocol::BlockIndex block) override;
  void act(AdversaryOps& ops) override;
  /// sync_state is idempotent under unchanged tips, and publication only
  /// follows a successful query or a repair fork already released by the
  /// previous act().
  [[nodiscard]] bool quiet_act_is_noop() const override { return true; }
  [[nodiscard]] const char* name() const override { return "balance-attack"; }

  /// Number of times the attacker (re)split the honest miners onto two
  /// branches — diagnostic for the attack-region bench.
  [[nodiscard]] std::uint64_t splits_performed() const noexcept {
    return splits_;
  }

 private:
  /// sync_branches plus the repair-fork pruning specific to this attack.
  void sync_state(const AdversaryOps& ops);

  HonestPartition partition_;
  std::uint64_t delta_;
  /// How far a branch may fall behind before the attacker re-anchors it.
  std::uint64_t reset_margin_ = 6;
  /// Tips of the two chains the attacker keeps balanced; equal tips mean
  /// "collapsed" (single chain) and trigger the split-repair bootstrap.
  protocol::BlockIndex branch_[2] = {protocol::kGenesisIndex,
                                     protocol::kGenesisIndex};
  /// Private fork being built to re-split a collapsed network.
  std::vector<protocol::BlockIndex> repair_;
  std::uint64_t splits_ = 0;
};

class SelfishMiningAdversary final : public Adversary {
 public:
  /// `gamma` is the Eyal–Sirer race parameter: the fraction of honest
  /// miners that hear the attacker's competing block first when a race is
  /// triggered.  The attacker's revenue advantage grows with γ.
  explicit SelfishMiningAdversary(double gamma = 0.5);

  [[nodiscard]] std::uint64_t honest_delay(std::uint64_t, std::uint32_t,
                                           std::uint32_t,
                                           protocol::BlockIndex) override {
    return 1;  // selfish mining is usually analyzed on a fast network
  }
  void on_honest_block(std::uint64_t round,
                       protocol::BlockIndex block) override;
  void act(AdversaryOps& ops) override;
  /// Releases are gated on on_honest_block (which only fires in rounds
  /// with honest successes — never quiet), and the fell-behind rebase is
  /// idempotent under unchanged heights.
  [[nodiscard]] bool quiet_act_is_noop() const override { return true; }
  [[nodiscard]] const char* name() const override { return "selfish-mining"; }

 private:
  double gamma_;
  std::vector<protocol::BlockIndex> private_chain_;  ///< unpublished lead
  protocol::BlockIndex private_tip_ = protocol::kGenesisIndex;
  protocol::BlockIndex fork_base_ = protocol::kGenesisIndex;
  bool honest_block_this_round_ = false;
  bool initialized_ = false;
};

class ForkBalancerAdversary final : public Adversary {
 public:
  /// `honest_count` fixes the two halves up front (miners [0, n/2) vs the
  /// rest), exactly like BalanceAttackAdversary's partition.
  ForkBalancerAdversary(std::uint32_t honest_count, std::uint64_t delta);

  [[nodiscard]] std::uint64_t honest_delay(std::uint64_t round,
                                           std::uint32_t sender,
                                           std::uint32_t recipient,
                                           protocol::BlockIndex block) override;
  void act(AdversaryOps& ops) override;
  /// Equivocation pairs advance only on successful queries; branch sync
  /// and pending-pair invalidation are idempotent under unchanged tips.
  [[nodiscard]] bool quiet_act_is_noop() const override { return true; }
  [[nodiscard]] const char* name() const override { return "fork-balancer"; }

  /// Sibling pairs published so far — each one is a fresh equivocation
  /// splitting the network at the same height.
  [[nodiscard]] std::uint64_t equivocations() const noexcept {
    return equivocations_;
  }

 private:
  HonestPartition partition_;
  std::uint64_t delta_;
  /// How far a branch may fall behind before re-anchoring on the group.
  std::uint64_t reset_margin_ = 6;
  /// The two tips being kept level; equal means "collapsed".
  protocol::BlockIndex branch_[2] = {protocol::kGenesisIndex,
                                     protocol::kGenesisIndex};
  /// First child of a pending equivocation (withheld until its sibling is
  /// mined), and the parent both children must extend.
  protocol::BlockIndex pending_child_ = protocol::kGenesisIndex;
  protocol::BlockIndex pending_parent_ = protocol::kGenesisIndex;
  bool pending_valid_ = false;
  std::uint64_t equivocations_ = 0;
};

class DelaySaturatingWithholder final : public Adversary {
 public:
  struct Options {
    /// Fork abandonment threshold: re-anchor on the public chain once the
    /// private tip is this many blocks behind it ("stubbornness" limit).
    std::uint64_t rebase_margin = 12;
  };
  DelaySaturatingWithholder();
  explicit DelaySaturatingWithholder(Options options);

  [[nodiscard]] std::uint64_t honest_delay(std::uint64_t, std::uint32_t,
                                           std::uint32_t,
                                           protocol::BlockIndex) override {
    return ~0ULL;  // saturate: clamped to Δ by the engine
  }
  void act(AdversaryOps& ops) override;
  /// The rebase check is idempotent and the overtake release already
  /// drained every publishable block in the previous act().
  [[nodiscard]] bool quiet_act_is_noop() const override { return true; }
  [[nodiscard]] const char* name() const override { return "delay-saturate"; }

  /// Blocks released so far (each release is the minimal overtaking
  /// prefix, so this counts forced public reorg steps).
  [[nodiscard]] std::uint64_t released_blocks() const noexcept {
    return released_;
  }

 private:
  Options options_;
  protocol::BlockIndex private_tip_ = protocol::kGenesisIndex;
  /// Oldest first; deque because the banked lead grows unboundedly while
  /// releases pop from the front one block at a time.
  std::deque<protocol::BlockIndex> withheld_;
  std::uint64_t released_ = 0;
};

/// Factory used by the experiment runner.
enum class AdversaryKind {
  kNull,
  kMaxDelay,
  kPrivateWithhold,
  kBalanceAttack,
  kSelfishMining,
  kForkBalancer,
  kDelaySaturate,
};

[[nodiscard]] const char* adversary_kind_name(AdversaryKind kind);

[[nodiscard]] std::unique_ptr<Adversary> make_adversary(
    AdversaryKind kind, std::uint32_t honest_count, std::uint64_t delta);

}  // namespace neatbound::sim
