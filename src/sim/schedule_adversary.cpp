#include "sim/schedule_adversary.hpp"

#include <utility>

#include "support/contracts.hpp"

namespace neatbound::sim {

ScheduleAdversary::ScheduleAdversary(
    std::string model_name, std::unique_ptr<net::DeliverySchedule> schedule,
    std::unique_ptr<Adversary> strategy)
    : schedule_(std::move(schedule)), strategy_(std::move(strategy)) {
  NEATBOUND_EXPECTS(schedule_ != nullptr, "a delivery schedule is required");
  NEATBOUND_EXPECTS(strategy_ != nullptr, "an inner strategy is required");
  name_ = model_name + "+" + strategy_->name();
}

std::uint64_t ScheduleAdversary::honest_delay(std::uint64_t round,
                                              std::uint32_t sender,
                                              std::uint32_t recipient,
                                              protocol::BlockIndex block) {
  return schedule_->delay(round, sender, recipient, block);
}

void ScheduleAdversary::on_honest_block(std::uint64_t round,
                                        protocol::BlockIndex block) {
  strategy_->on_honest_block(round, block);
}

void ScheduleAdversary::act(AdversaryOps& ops) { strategy_->act(ops); }

}  // namespace neatbound::sim
