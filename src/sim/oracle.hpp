// Per-round invariant oracle: the runtime falsification harness for the
// paper's lemma-level properties (ROADMAP item 4).
//
// The ConsistencyTracker (sim/metrics.hpp) measures an aggregate
// violation depth after the fact; the oracle instead *asserts* a
// configurable invariant set at the end of every round, across all
// honest views, and freezes a replayable snapshot at the first failure:
//   * common-prefix(T)  — the deepest pairwise divergence among distinct
//     honest tips this round, combined with the deepest reorg any view
//     performed this round, must stay ≤ T (Definition 1 observed per
//     round rather than per run);
//   * chain-growth(W,g) — over any window of W rounds the best honest
//     height must grow by ≥ g blocks (Theorem 2's growth lower bound);
//   * chain-quality(K,µ) — among the last K blocks of the best honest
//     chain, the honest fraction must be ≥ µ (Theorem 3's quality bound).
//
// Cost model (why this stays out of untraced hot paths): the oracle is a
// RoundObserver, attached only when requested, and reads public
// accessors after the round has executed — an unobserved run executes
// zero oracle instructions.  When armed, per round: common-prefix is
// O(d² log h) for d distinct tips (d is almost always 1–3; each pair is
// one binary-lifting common_ancestor query), chain-growth is O(1) against
// a ring of W heights, chain-quality is one O(K) parent walk.  The slice
// recorder appends one RoundRecord into a bounded ring.  Nothing here
// writes to the simulation: an oracle-armed run's RunResult is
// bit-identical to an unarmed run of the same seed
// (tests/sim/test_oracle.cpp pins this, like PR 8 did for tracing).
// One diagnostic exception: the oracle queries ancestry through the
// same instrumented BlockStore, so in telemetry-ON builds its own
// lookups are visible in the ancestry-queries counter — every counter
// that measures simulation work stays exact.
//
// The oracle owns no file I/O (the trace-io rule bans it in sim/):
// serializing a frozen violation into an artifact is scenario-layer work
// (scenario/artifact.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace neatbound::sim {

/// The invariants the oracle can arm.  Names (the scenario-file and
/// artifact spellings) round-trip through invariant_name /
/// parse_invariant_name.
enum class InvariantKind : std::uint8_t {
  kCommonPrefix,
  kChainGrowth,
  kChainQuality,
};

[[nodiscard]] const char* invariant_name(InvariantKind kind) noexcept;
[[nodiscard]] std::optional<InvariantKind> parse_invariant_name(
    std::string_view name) noexcept;
/// All invariant names, in enum order — the registry scenario/spec
/// validates `oracle.invariants` entries against.
[[nodiscard]] std::vector<std::string> invariant_names();

struct OracleConfig {
  /// common-prefix: armed unless disabled; T is the tolerated depth.
  bool common_prefix = true;
  std::uint64_t common_prefix_t = 6;
  /// chain-growth: armed iff growth_window > 0; over every window of
  /// growth_window rounds, best height must grow ≥ growth_min_blocks.
  std::uint64_t growth_window = 0;
  std::uint64_t growth_min_blocks = 1;
  /// chain-quality: armed iff quality_window > 0; among the last
  /// quality_window best-chain blocks (checked once the chain is that
  /// long), honest blocks ≥ ceil(quality_min_ratio · quality_window).
  std::uint64_t quality_window = 0;
  double quality_min_ratio = 0.0;
  /// Trailing RoundRecords retained for the violation snapshot.
  std::uint64_t slice_rounds = 64;
};

/// Rejects unusable configurations with a ContractViolation naming the
/// field: no invariant armed, growth_min_blocks = 0 with growth armed,
/// quality_min_ratio outside [0, 1], slice_rounds = 0 or above the
/// trace-record cap (2²⁰).
void validate_oracle_config(const OracleConfig& config);

/// The first failed assertion.  `measured` vs `bound` reads per kind:
/// common-prefix measured > bound; chain-growth / chain-quality
/// measured < bound (growth in blocks, quality in honest-block counts —
/// integers, so replay equality is exact).
struct OracleViolation {
  InvariantKind kind = InvariantKind::kCommonPrefix;
  std::uint64_t round = 0;     ///< 1-based round of first failure
  std::uint64_t measured = 0;
  std::uint64_t bound = 0;
  /// Offending honest views: for common-prefix the divergent pair (or
  /// view_a == view_b, the reorging view, when a reorg alone exceeded
  /// T); 0 for window invariants, which implicate the best chain.
  std::uint32_t view_a = 0;
  std::uint32_t view_b = 0;

  friend bool operator==(const OracleViolation&,
                         const OracleViolation&) = default;
};

/// One honest view at the violating round, pinned bit-for-bit: replay
/// must reproduce tip index, height *and* hash (the hash also guards
/// against store-layout coincidences).
struct ViewSnapshot {
  std::uint32_t miner = 0;
  protocol::BlockIndex tip = protocol::kGenesisIndex;
  std::uint64_t height = 0;
  protocol::HashValue hash = 0;

  friend bool operator==(const ViewSnapshot&, const ViewSnapshot&) = default;
};

class InvariantOracle {
 public:
  explicit InvariantOracle(OracleConfig config);

  /// End-of-round assertion pass; the RoundObserver body.  Keeps
  /// updating depth statistics after a violation (the tracker
  /// cross-check needs whole-run maxima) but the frozen snapshot is
  /// immutable once taken.
  void observe(const ExecutionEngine& engine, std::uint64_t round);

  /// An observer bound to *this; the oracle must outlive the engine run.
  [[nodiscard]] ExecutionEngine::RoundObserver observer();

  [[nodiscard]] bool violated() const noexcept { return violation_.has_value(); }
  /// EXPECTS violated().
  [[nodiscard]] const OracleViolation& first_violation() const;
  /// All honest views at the violating round; EXPECTS violated().
  [[nodiscard]] const std::vector<ViewSnapshot>& violating_views() const;
  /// The trailing ≤ slice_rounds RoundRecords ending at the violating
  /// round, oldest first; EXPECTS violated().
  [[nodiscard]] const std::vector<RoundRecord>& violation_slice() const;

  /// Running max of the per-round common-prefix depth — by construction
  /// equal to ConsistencyTracker::violation_depth() over the same rounds
  /// (each round's depth is max(pairwise divergence of end-of-round
  /// tips, deepest reorg this round); the tracker accumulates exactly
  /// those two maxima).  The cross-check property test pins equality.
  [[nodiscard]] std::uint64_t max_round_depth() const noexcept {
    return max_round_depth_;
  }
  [[nodiscard]] std::uint64_t rounds_observed() const noexcept {
    return rounds_observed_;
  }
  [[nodiscard]] const OracleConfig& config() const noexcept { return config_; }

 private:
  void check_common_prefix(const ExecutionEngine& engine, std::uint64_t round);
  void check_chain_growth(const ExecutionEngine& engine, std::uint64_t round);
  void check_chain_quality(const ExecutionEngine& engine, std::uint64_t round);
  void freeze(const ExecutionEngine& engine, OracleViolation violation);
  void record_round(const ExecutionEngine& engine, std::uint64_t round);

  OracleConfig config_;
  std::uint64_t rounds_observed_ = 0;
  std::uint64_t max_round_depth_ = 0;
  /// Ring of best heights for chain-growth: heights_[r % W] = best
  /// height after round r, valid once r > W.
  std::vector<std::uint64_t> height_ring_;
  /// Ring of the trailing RoundRecords (slice_rounds capacity);
  /// slice-order materialization happens once, at freeze time.
  std::vector<RoundRecord> record_ring_;
  /// Distinct-tip scratch of the common-prefix pass (first-occurrence
  /// order, like ConsistencyTracker), reused every round.
  std::vector<protocol::BlockIndex> tip_scratch_;
  std::vector<std::uint32_t> tip_owner_scratch_;
  std::optional<OracleViolation> violation_;
  std::vector<ViewSnapshot> views_;
  std::vector<RoundRecord> slice_;
};

}  // namespace neatbound::sim
