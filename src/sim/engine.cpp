#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "chains/convergence.hpp"
#include "protocol/mining.hpp"
#include "support/contracts.hpp"
#include "support/invariant.hpp"

namespace neatbound::sim {

namespace {
std::uint32_t corrupted_count(const EngineConfig& config) {
  return static_cast<std::uint32_t>(std::llround(
      config.adversary_fraction * static_cast<double>(config.miner_count)));
}

constexpr std::uint64_t purpose_of(crng::Purpose p) noexcept {
  return static_cast<std::uint64_t>(p);
}
}  // namespace

std::uint32_t honest_miner_count(const EngineConfig& config) {
  return config.miner_count - corrupted_count(config);
}

crng::Key engine_rng_key(const EngineConfig& config) {
  // Chained mix over the trajectory-shaping parameters; `rounds` and
  // `seed` deliberately excluded (see the declaration comment).
  std::uint64_t cell = 0x6e65617462756e64ULL;  // "neatbund" domain tag
  const auto fold = [&cell](std::uint64_t v) { cell = mix64(cell ^ v); };
  fold(config.miner_count);
  fold(std::bit_cast<std::uint64_t>(config.adversary_fraction));
  fold(std::bit_cast<std::uint64_t>(config.p));
  fold(config.delta);
  return {cell, config.seed};
}

void validate_engine_config(const EngineConfig& config) {
  NEATBOUND_EXPECTS(config.miner_count >= 4,
                    "the paper's condition (3): n >= 4");
  NEATBOUND_EXPECTS(config.adversary_fraction >= 0.0 &&
                        config.adversary_fraction < 0.5,
                    "adversary fraction nu must be in [0, 1/2)");
  NEATBOUND_EXPECTS(config.p > 0.0 && config.p < 1.0,
                    "mining hardness p must be in (0, 1)");
  NEATBOUND_EXPECTS(config.delta >= 1, "delta must be >= 1");
  NEATBOUND_EXPECTS(config.rounds >= 1, "rounds must be >= 1");
  NEATBOUND_EXPECTS(config.miner_count > corrupted_count(config),
                    "at least one honest miner needed");
}

/// AdversaryOps backed by the engine.  Lives only during act().
class ExecutionEngine::Ops final : public AdversaryOps {
 public:
  Ops(ExecutionEngine& engine, std::uint64_t round, std::uint64_t budget)
      : engine_(engine), round_(round), remaining_(budget), budget_(budget) {}

  [[nodiscard]] const protocol::BlockStore& store() const override {
    return engine_.store_;
  }
  [[nodiscard]] std::uint64_t round() const override { return round_; }
  [[nodiscard]] std::uint64_t delta() const override {
    return engine_.config_.delta;
  }
  [[nodiscard]] std::uint32_t honest_count() const override {
    return engine_.honest_count_;
  }
  [[nodiscard]] std::span<const protocol::BlockIndex> honest_tips()
      const override {
    return engine_.tips_scratch_;
  }
  [[nodiscard]] protocol::BlockIndex best_honest_tip() const override {
    return engine_.best_honest_tip();
  }
  [[nodiscard]] std::uint64_t remaining_queries() const override {
    return remaining_;
  }

  std::optional<protocol::BlockIndex> try_mine_on(
      protocol::BlockIndex parent) override {
    NEATBOUND_EXPECTS(remaining_ > 0, "adversary query budget exhausted");
    const std::uint64_t query = budget_ - remaining_;  // index within round
    --remaining_;
    protocol::Block block;
    if (engine_.config_.rng_mode == RngMode::kCounter) {
      // Success is decided by the addressable Bernoulli field at flat
      // position (round−1)·budget + query; block draws are keyed by
      // (round, query) so they are independent of every other success.
      const std::uint64_t pos = (round_ - 1) * budget_ + query;
      if (!engine_.adversary_gaps_.contains_take(pos)) return std::nullopt;
      const crng::Block draws = crng::philox4x64(
          {round_, query, purpose_of(crng::Purpose::kAdversaryBlock), 0},
          engine_.key_);
      block = protocol::assemble_block(engine_.oracle_,
                                       engine_.store_.hash_of(parent),
                                       /*payload_digest=*/draws[1],
                                       /*nonce=*/draws[0]);
    } else {
      auto mined = protocol::try_mine(
          engine_.oracle_, engine_.target_, engine_.store_.hash_of(parent),
          mix64(++engine_.payload_counter_), engine_.rng_);
      if (!mined) return std::nullopt;
      block = std::move(*mined);
    }
    block.round = round_;
    block.miner_class = protocol::MinerClass::kAdversary;
    block.miner = engine_.honest_count_;  // corrupted ids share one bucket
    ++engine_.adversary_blocks_total_;
    ++engine_.round_activity_.adversary_mined;
    NEATBOUND_COUNT(kAdversaryBlocksMined);
    return engine_.store_.add(std::move(block));
  }

  void publish_to(std::uint32_t recipient, protocol::BlockIndex block,
                  std::uint64_t delay) override {
    NEATBOUND_EXPECTS(recipient < engine_.honest_count_,
                      "recipient out of range");
    const std::uint64_t d = engine_.clamp_delay(delay);
    engine_.calendar_.schedule(round_ + d, recipient, block);
    engine_.schedule_echo(round_ + d, block);
  }

  void publish_to_all(protocol::BlockIndex block,
                      std::uint64_t delay) override {
    const std::uint64_t d = engine_.clamp_delay(delay);
    for (std::uint32_t r = 0; r < engine_.honest_count_; ++r) {
      engine_.calendar_.schedule(round_ + d, r, block);
    }
    engine_.schedule_echo(round_ + d, block);
  }

 private:
  ExecutionEngine& engine_;
  std::uint64_t round_;
  std::uint64_t remaining_;
  std::uint64_t budget_;
};

ExecutionEngine::ExecutionEngine(EngineConfig config,
                                 std::unique_ptr<Adversary> adversary)
    : ExecutionEngine(config, std::move(adversary), nullptr) {}

ExecutionEngine::ExecutionEngine(EngineConfig config,
                                 std::unique_ptr<Adversary> adversary,
                                 std::unique_ptr<Environment> environment)
    : config_(config),
      honest_count_(honest_miner_count(config)),
      adversary_queries_(corrupted_count(config)),
      oracle_(mix64(config.seed ^ 0x5bd1e995u)),
      target_(protocol::PowTarget::from_probability(config.p)),
      calendar_(config.miner_count),
      adversary_(std::move(adversary)),
      environment_(std::move(environment)),
      rng_(mix64(config.seed)) {
  validate_engine_config(config);
  NEATBOUND_EXPECTS(adversary_ != nullptr, "an adversary is required");
  if (config.rng_mode == RngMode::kCounter) {
    key_ = engine_rng_key(config);
    honest_gaps_ = GapCursor(key_, crng::Purpose::kHonestGap, config.p);
    if (adversary_queries_ > 0) {
      adversary_gaps_ =
          GapCursor(key_, crng::Purpose::kAdversaryGap, config.p);
    }
    // Quiet-round skipping additionally requires that the adversary's
    // act() is observably a no-op on quiet rounds (the contract in
    // sim/adversary.hpp) and that no environment feeds block payloads.
    quiet_eligible_ =
        environment_ == nullptr &&
        (adversary_queries_ == 0 || adversary_->quiet_act_is_noop());
  }
  views_.resize(honest_count_);
  tips_scratch_.resize(honest_count_, protocol::kGenesisIndex);
  nonce_scratch_.resize(honest_count_);
  // At most honest_count_ honest blocks per round, so the per-round miner
  // list never reallocates after this.
  round_miners_.reserve(honest_count_);
}

ExecutionEngine::~ExecutionEngine() = default;

protocol::BlockIndex ExecutionEngine::honest_tip(std::uint32_t miner) const {
  NEATBOUND_EXPECTS(miner < honest_count_, "miner id out of range");
  return views_[miner].tip();
}

protocol::BlockIndex ExecutionEngine::best_honest_tip() const {
  return best_tip_;
}

void ExecutionEngine::note_adoption(std::uint32_t miner) {
  const protocol::BlockIndex tip = views_[miner].tip();
  tips_scratch_[miner] = tip;
  const std::uint64_t height = views_[miner].tip_height();
  if (height > best_height_ ||
      (height == best_height_ && miner < best_view_)) {
    best_height_ = height;
    best_view_ = miner;
    best_tip_ = tip;
  }
  // The incremental best-tip triple is what the adversary and the metrics
  // read instead of rescanning views: it must keep naming a real view's
  // tip at its real height, and must never fall behind the tip that was
  // just adopted.
  NEATBOUND_INVARIANT(best_height_ == store_.height_of(best_tip_),
                      "best-tip height cache out of lockstep with the store");
  NEATBOUND_INVARIANT(best_view_ < honest_count_ &&
                          tips_scratch_[best_view_] == best_tip_,
                      "best-tip cache names a tip no view holds");
  NEATBOUND_INVARIANT(best_height_ >= height,
                      "best-tip cache fell behind a fresh adoption");
}

std::uint64_t ExecutionEngine::clamp_delay(std::uint64_t d) const noexcept {
  return std::clamp<std::uint64_t>(d, 1, config_.delta);
}

void ExecutionEngine::schedule_echo(std::uint64_t first_receipt_round,
                                    protocol::BlockIndex block) {
  // neatbound-analyze: allow(hot-alloc) — lazy bitset growth, amortized
  // O(1) per block ever mined (not per delivery).
  if (echoed_.size() <= block) echoed_.resize(block + 1, false);
  if (echoed_[block]) return;
  echoed_[block] = true;
  for (std::uint32_t r = 0; r < honest_count_; ++r) {
    calendar_.schedule(first_receipt_round + config_.delta, r, block);
  }
}

void ExecutionEngine::deliver_due(std::uint64_t round) {
  calendar_.drain_due(round, [this](const net::Delivery& d) {
    ++round_activity_.delivered;
    NEATBOUND_COUNT(kDeliveries);
    const AdoptionEvent event = views_[d.recipient].deliver(d.block, store_);
    if (event.adopted) {
      ++round_activity_.adoptions;
      NEATBOUND_COUNT(kAdoptions);
      if (event.reorg_depth > 0) NEATBOUND_COUNT(kReorgs);
      note_adoption(d.recipient);
      if (event.reorg_depth > 0) {
        consistency_.observe_reorg(event.reorg_depth);
        if (event.reorg_depth > round_activity_.max_reorg_depth) {
          round_activity_.max_reorg_depth = event.reorg_depth;
          round_activity_.max_reorg_view = d.recipient;
        }
      }
    }
  });
}

void ExecutionEngine::broadcast_honest(std::uint64_t round,
                                       std::uint32_t sender,
                                       protocol::BlockIndex block) {
  // Scoped per mined block (rare: n·p per round), not per recipient.
  NEATBOUND_PHASE_SCOPE(kSchedule);
  for (std::uint32_t r = 0; r < honest_count_; ++r) {
    if (r == sender) continue;
    const std::uint64_t d =
        clamp_delay(adversary_->honest_delay(round, sender, r, block));
    calendar_.schedule(round + d, r, block);
  }
  // The sender itself received the block at `round`; gossip echo from that
  // first receipt (a no-op here since every recipient is already
  // scheduled within Δ, but it keeps the invariant uniform).
  // neatbound-analyze: allow(hot-alloc) — lazy bitset growth, amortized
  if (echoed_.size() <= block) echoed_.resize(block + 1, false);
  echoed_[block] = true;
}

void ExecutionEngine::register_honest_block(std::uint64_t round,
                                            std::uint32_t miner,
                                            protocol::Block&& block) {
  block.round = round;
  block.miner = miner;
  block.miner_class = protocol::MinerClass::kHonest;
  if (environment_ != nullptr) {
    block.message = environment_->message_for(round, miner);
  }
  const protocol::BlockIndex index = store_.add(std::move(block));
  ++round_activity_.honest_mined;
  // neatbound-analyze: allow(hot-alloc) — capacity pre-reserved to
  // honest_count_ in the constructor; this append never reallocates.
  round_miners_.push_back(miner);
  NEATBOUND_COUNT(kHonestBlocksMined);
  // The miner adopts its own block immediately (it extends its tip).
  const AdoptionEvent event = views_[miner].deliver(index, store_);
  if (event.adopted) {
    ++round_activity_.adoptions;
    NEATBOUND_COUNT(kAdoptions);
    if (event.reorg_depth > 0) NEATBOUND_COUNT(kReorgs);
    note_adoption(miner);
    if (event.reorg_depth > 0) {
      consistency_.observe_reorg(event.reorg_depth);
      if (event.reorg_depth > round_activity_.max_reorg_depth) {
        round_activity_.max_reorg_depth = event.reorg_depth;
        round_activity_.max_reorg_view = miner;
      }
    }
  }
  adversary_->on_honest_block(round, index);
  broadcast_honest(round, miner, index);
}

void ExecutionEngine::honest_mining_phase(std::uint64_t round) {
  if (config_.rng_mode == RngMode::kCounter) {
    // Counter mode: walk the honest Bernoulli success field over this
    // round's positions [(round−1)·n, round·n).  The cursor is monotone
    // and every earlier round consumed its own span, so its next success
    // is already ≥ the round base; miners come out in increasing order,
    // matching the legacy m = 0..n−1 query loop.
    const std::uint64_t end =
        round * static_cast<std::uint64_t>(honest_count_);
    const std::uint64_t base = end - honest_count_;
    while (honest_gaps_.peek() < end) {
      const auto m = static_cast<std::uint32_t>(honest_gaps_.take() - base);
      const crng::Block draws = crng::philox4x64(
          {round, m, purpose_of(crng::Purpose::kHonestBlock), 0}, key_);
      register_honest_block(
          round, m,
          protocol::assemble_block(oracle_, store_.hash_of(tips_scratch_[m]),
                                   /*payload_digest=*/draws[1],
                                   /*nonce=*/draws[0]));
    }
  } else {
    // Legacy batched RNG: draw the round's nonces in one dense pass
    // (identical stream order to per-query draws), then run the queries.
    for (std::uint32_t m = 0; m < honest_count_; ++m) {
      nonce_scratch_[m] = rng_.bits();
    }
    for (std::uint32_t m = 0; m < honest_count_; ++m) {
      const protocol::BlockIndex parent = tips_scratch_[m];
      auto mined = protocol::try_mine_with_nonce(
          oracle_, target_, store_.hash_of(parent), mix64(++payload_counter_),
          nonce_scratch_[m]);
      if (!mined) continue;
      register_honest_block(round, m, std::move(*mined));
    }
  }
  // neatbound-analyze: allow(hot-alloc) — one amortized append per round
  // into the result metric; geometric growth, not per-miner work.
  honest_counts_.push_back(round_activity_.honest_mined);
}

void ExecutionEngine::begin_run() {
  NEATBOUND_EXPECTS(!ran_, "run() may be called once");
  ran_ = true;
  honest_counts_.reserve(config_.rounds);
}

void ExecutionEngine::step_round(std::uint64_t round,
                                 const RoundObserver& observer) {
  round_activity_ = {};
  round_miners_.clear();
  {
    NEATBOUND_PHASE_SCOPE(kDeliver);
    deliver_due(round);
  }
  {
    NEATBOUND_PHASE_SCOPE(kMine);
    honest_mining_phase(round);
  }
  // tips_scratch_ / best_tip_ are already current: every adoption path
  // runs through note_adoption, so the adversary and metrics read the
  // same snapshot the old per-round rescan produced.
  if (adversary_queries_ > 0) {
    NEATBOUND_PHASE_SCOPE(kAdversary);
    Ops ops(*this, round, adversary_queries_);
    adversary_->act(ops);
    // Publication may not change views until delivery, so the snapshot
    // taken above remains valid for metrics.
    if (config_.rng_mode == RngMode::kCounter) {
      // Unspent queries of this round are forfeited: the success field
      // restarts at the next round's base regardless of how much budget
      // the strategy used, so trajectories never depend on spent budget.
      adversary_gaps_.advance_to(round *
                                 static_cast<std::uint64_t>(adversary_queries_));
    }
  }
  {
    NEATBOUND_PHASE_SCOPE(kMetrics);
    consistency_.observe_round(tips_scratch_, store_);
  }
  if (observer) observer(*this, round);
}

bool ExecutionEngine::skip_if_quiet(std::uint64_t round) {
  return skip_quiet_rounds(round, round) > round;
}

std::uint64_t ExecutionEngine::skip_quiet_rounds(std::uint64_t round,
                                                 std::uint64_t last) {
  if (!quiet_eligible_) return round;
  // A round is quiet iff all three event sources are silent: the honest
  // success field has no position in the round's span, the adversary
  // field has none either (so every one of its queries would fail), and
  // no message is due.  Each source names its next busy round directly —
  // a gap-cursor position p is the flat address (round−1)·span + slot,
  // so its round is p/span + 1 — which locates the whole quiet run
  // without examining the rounds inside it.  Cursors are not advanced;
  // their next success already lies inside the first busy round.
  std::uint64_t busy =
      honest_gaps_.peek() / static_cast<std::uint64_t>(honest_count_) + 1;
  if (adversary_queries_ > 0) {
    const std::uint64_t a_busy =
        adversary_gaps_.peek() /
            static_cast<std::uint64_t>(adversary_queries_) + 1;
    busy = a_busy < busy ? a_busy : busy;
  }
  if (busy <= round) return round;
  // has_due first: it advances the ring past drained buckets exactly as
  // step_round's drain would (the state-equivalence contract), which
  // also establishes next_due_round's "nothing pending ≤ round"
  // precondition.
  if (calendar_.has_due(round)) return round;
  const std::uint64_t due = calendar_.next_due_round(round);
  busy = due < busy ? due : busy;
  const std::uint64_t stop = busy < last + 1 ? busy : last + 1;
  const std::uint64_t skipped = stop - round;
  // Commit the quiet rounds: observably identical to stepping each one,
  // which the skip-vs-noskip differential battery pins per strategy.
  round_activity_ = {};
  round_miners_.clear();
  // neatbound-analyze: allow(hot-alloc) — reserved to `rounds` in
  // begin_run; this append never reallocates.
  honest_counts_.insert(honest_counts_.end(), skipped, 0);
  consistency_.observe_rounds_unchanged(skipped);
  NEATBOUND_COUNT_ADD(kQuietRoundsSkipped, skipped);
  return stop;
}

RunResult ExecutionEngine::finish_run(bool take_telemetry) {
  NEATBOUND_EXPECTS(ran_, "finish_run() requires begin_run()");
  RunResult result;
  result.honest_counts = honest_counts_;
  result.honest_blocks_total = 0;
  for (const std::uint32_t c : honest_counts_) {
    result.honest_blocks_total += c;
  }
  result.adversary_blocks_total = adversary_blocks_total_;
  result.convergence_opportunities =
      chains::count_convergence_opportunities(honest_counts_, config_.delta);
  result.max_reorg_depth = consistency_.max_reorg_depth();
  result.max_divergence = consistency_.max_divergence();
  result.disagreement_rounds = consistency_.disagreement_rounds();
  result.violation_depth = consistency_.violation_depth();
  result.chain = measure_chain(store_, best_honest_tip(), config_.rounds);
  result.store_size = store_.size();
  if (take_telemetry) result.telemetry = telemetry::snapshot();
  return result;
}

RunResult ExecutionEngine::run(const RoundObserver& observer) {
  begin_run();
  // Telemetry registers are thread_local and reset here, so the snapshot
  // taken by finish_run covers exactly this run, on whichever worker
  // thread executed it.  (A batched pass resets once for all lanes —
  // sim/batch_engine.cpp.)
  telemetry::reset();
  for (std::uint64_t round = 1; round <= config_.rounds; ++round) {
    step_round(round, observer);
  }
  return finish_run(/*take_telemetry=*/true);
}

}  // namespace neatbound::sim
