#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "chains/convergence.hpp"
#include "protocol/mining.hpp"
#include "support/contracts.hpp"
#include "support/invariant.hpp"

namespace neatbound::sim {

namespace {
std::uint32_t corrupted_count(const EngineConfig& config) {
  return static_cast<std::uint32_t>(std::llround(
      config.adversary_fraction * static_cast<double>(config.miner_count)));
}
}  // namespace

std::uint32_t honest_miner_count(const EngineConfig& config) {
  return config.miner_count - corrupted_count(config);
}

void validate_engine_config(const EngineConfig& config) {
  NEATBOUND_EXPECTS(config.miner_count >= 4,
                    "the paper's condition (3): n >= 4");
  NEATBOUND_EXPECTS(config.adversary_fraction >= 0.0 &&
                        config.adversary_fraction < 0.5,
                    "adversary fraction nu must be in [0, 1/2)");
  NEATBOUND_EXPECTS(config.p > 0.0 && config.p < 1.0,
                    "mining hardness p must be in (0, 1)");
  NEATBOUND_EXPECTS(config.delta >= 1, "delta must be >= 1");
  NEATBOUND_EXPECTS(config.rounds >= 1, "rounds must be >= 1");
  NEATBOUND_EXPECTS(config.miner_count > corrupted_count(config),
                    "at least one honest miner needed");
}

/// AdversaryOps backed by the engine.  Lives only during act().
class ExecutionEngine::Ops final : public AdversaryOps {
 public:
  Ops(ExecutionEngine& engine, std::uint64_t round, std::uint64_t budget)
      : engine_(engine), round_(round), remaining_(budget) {}

  [[nodiscard]] const protocol::BlockStore& store() const override {
    return engine_.store_;
  }
  [[nodiscard]] std::uint64_t round() const override { return round_; }
  [[nodiscard]] std::uint64_t delta() const override {
    return engine_.config_.delta;
  }
  [[nodiscard]] std::uint32_t honest_count() const override {
    return engine_.honest_count_;
  }
  [[nodiscard]] std::span<const protocol::BlockIndex> honest_tips()
      const override {
    return engine_.tips_scratch_;
  }
  [[nodiscard]] protocol::BlockIndex best_honest_tip() const override {
    return engine_.best_honest_tip();
  }
  [[nodiscard]] std::uint64_t remaining_queries() const override {
    return remaining_;
  }

  std::optional<protocol::BlockIndex> try_mine_on(
      protocol::BlockIndex parent) override {
    NEATBOUND_EXPECTS(remaining_ > 0, "adversary query budget exhausted");
    --remaining_;
    auto mined = protocol::try_mine(
        engine_.oracle_, engine_.target_, engine_.store_.hash_of(parent),
        mix64(++engine_.payload_counter_), engine_.rng_);
    if (!mined) return std::nullopt;
    mined->round = round_;
    mined->miner_class = protocol::MinerClass::kAdversary;
    mined->miner = engine_.honest_count_;  // corrupted ids share one bucket
    ++engine_.adversary_blocks_total_;
    ++engine_.round_activity_.adversary_mined;
    NEATBOUND_COUNT(kAdversaryBlocksMined);
    return engine_.store_.add(std::move(*mined));
  }

  void publish_to(std::uint32_t recipient, protocol::BlockIndex block,
                  std::uint64_t delay) override {
    NEATBOUND_EXPECTS(recipient < engine_.honest_count_,
                      "recipient out of range");
    const std::uint64_t d = engine_.clamp_delay(delay);
    engine_.calendar_.schedule(round_ + d, recipient, block);
    engine_.schedule_echo(round_ + d, block);
  }

  void publish_to_all(protocol::BlockIndex block,
                      std::uint64_t delay) override {
    const std::uint64_t d = engine_.clamp_delay(delay);
    for (std::uint32_t r = 0; r < engine_.honest_count_; ++r) {
      engine_.calendar_.schedule(round_ + d, r, block);
    }
    engine_.schedule_echo(round_ + d, block);
  }

 private:
  ExecutionEngine& engine_;
  std::uint64_t round_;
  std::uint64_t remaining_;
};

ExecutionEngine::ExecutionEngine(EngineConfig config,
                                 std::unique_ptr<Adversary> adversary)
    : ExecutionEngine(config, std::move(adversary), nullptr) {}

ExecutionEngine::ExecutionEngine(EngineConfig config,
                                 std::unique_ptr<Adversary> adversary,
                                 std::unique_ptr<Environment> environment)
    : config_(config),
      honest_count_(honest_miner_count(config)),
      adversary_queries_(corrupted_count(config)),
      oracle_(mix64(config.seed ^ 0x5bd1e995u)),
      target_(protocol::PowTarget::from_probability(config.p)),
      calendar_(config.miner_count),
      adversary_(std::move(adversary)),
      environment_(std::move(environment)),
      rng_(mix64(config.seed)) {
  validate_engine_config(config);
  NEATBOUND_EXPECTS(adversary_ != nullptr, "an adversary is required");
  views_.resize(honest_count_);
  tips_scratch_.resize(honest_count_, protocol::kGenesisIndex);
  nonce_scratch_.resize(honest_count_);
  // At most honest_count_ honest blocks per round, so the per-round miner
  // list never reallocates after this.
  round_miners_.reserve(honest_count_);
}

ExecutionEngine::~ExecutionEngine() = default;

protocol::BlockIndex ExecutionEngine::honest_tip(std::uint32_t miner) const {
  NEATBOUND_EXPECTS(miner < honest_count_, "miner id out of range");
  return views_[miner].tip();
}

protocol::BlockIndex ExecutionEngine::best_honest_tip() const {
  return best_tip_;
}

void ExecutionEngine::note_adoption(std::uint32_t miner) {
  const protocol::BlockIndex tip = views_[miner].tip();
  tips_scratch_[miner] = tip;
  const std::uint64_t height = views_[miner].tip_height();
  if (height > best_height_ ||
      (height == best_height_ && miner < best_view_)) {
    best_height_ = height;
    best_view_ = miner;
    best_tip_ = tip;
  }
  // The incremental best-tip triple is what the adversary and the metrics
  // read instead of rescanning views: it must keep naming a real view's
  // tip at its real height, and must never fall behind the tip that was
  // just adopted.
  NEATBOUND_INVARIANT(best_height_ == store_.height_of(best_tip_),
                      "best-tip height cache out of lockstep with the store");
  NEATBOUND_INVARIANT(best_view_ < honest_count_ &&
                          tips_scratch_[best_view_] == best_tip_,
                      "best-tip cache names a tip no view holds");
  NEATBOUND_INVARIANT(best_height_ >= height,
                      "best-tip cache fell behind a fresh adoption");
}

std::uint64_t ExecutionEngine::clamp_delay(std::uint64_t d) const noexcept {
  return std::clamp<std::uint64_t>(d, 1, config_.delta);
}

void ExecutionEngine::schedule_echo(std::uint64_t first_receipt_round,
                                    protocol::BlockIndex block) {
  // neatbound-analyze: allow(hot-alloc) — lazy bitset growth, amortized
  // O(1) per block ever mined (not per delivery).
  if (echoed_.size() <= block) echoed_.resize(block + 1, false);
  if (echoed_[block]) return;
  echoed_[block] = true;
  for (std::uint32_t r = 0; r < honest_count_; ++r) {
    calendar_.schedule(first_receipt_round + config_.delta, r, block);
  }
}

void ExecutionEngine::deliver_due(std::uint64_t round) {
  calendar_.drain_due(round, [this](const net::Delivery& d) {
    ++round_activity_.delivered;
    NEATBOUND_COUNT(kDeliveries);
    const AdoptionEvent event = views_[d.recipient].deliver(d.block, store_);
    if (event.adopted) {
      ++round_activity_.adoptions;
      NEATBOUND_COUNT(kAdoptions);
      if (event.reorg_depth > 0) NEATBOUND_COUNT(kReorgs);
      note_adoption(d.recipient);
      if (event.reorg_depth > 0) {
        consistency_.observe_reorg(event.reorg_depth);
        if (event.reorg_depth > round_activity_.max_reorg_depth) {
          round_activity_.max_reorg_depth = event.reorg_depth;
          round_activity_.max_reorg_view = d.recipient;
        }
      }
    }
  });
}

void ExecutionEngine::broadcast_honest(std::uint64_t round,
                                       std::uint32_t sender,
                                       protocol::BlockIndex block) {
  // Scoped per mined block (rare: n·p per round), not per recipient.
  NEATBOUND_PHASE_SCOPE(kSchedule);
  for (std::uint32_t r = 0; r < honest_count_; ++r) {
    if (r == sender) continue;
    const std::uint64_t d =
        clamp_delay(adversary_->honest_delay(round, sender, r, block));
    calendar_.schedule(round + d, r, block);
  }
  // The sender itself received the block at `round`; gossip echo from that
  // first receipt (a no-op here since every recipient is already
  // scheduled within Δ, but it keeps the invariant uniform).
  // neatbound-analyze: allow(hot-alloc) — lazy bitset growth, amortized
  if (echoed_.size() <= block) echoed_.resize(block + 1, false);
  echoed_[block] = true;
}

void ExecutionEngine::honest_mining_phase(std::uint64_t round) {
  std::uint32_t mined_this_round = 0;
  // Batched RNG: draw the round's nonces in one dense pass (identical
  // stream order to per-query draws), then run the oracle queries.
  for (std::uint32_t m = 0; m < honest_count_; ++m) {
    nonce_scratch_[m] = rng_.bits();
  }
  for (std::uint32_t m = 0; m < honest_count_; ++m) {
    const protocol::BlockIndex parent = tips_scratch_[m];
    auto mined = protocol::try_mine_with_nonce(
        oracle_, target_, store_.hash_of(parent), mix64(++payload_counter_),
        nonce_scratch_[m]);
    if (!mined) continue;
    mined->round = round;
    mined->miner = m;
    mined->miner_class = protocol::MinerClass::kHonest;
    if (environment_ != nullptr) {
      mined->message = environment_->message_for(round, m);
    }
    const protocol::BlockIndex index = store_.add(std::move(*mined));
    ++mined_this_round;
    ++round_activity_.honest_mined;
    // neatbound-analyze: allow(hot-alloc) — capacity pre-reserved to
    // honest_count_ in the constructor; this append never reallocates.
    round_miners_.push_back(m);
    NEATBOUND_COUNT(kHonestBlocksMined);
    // The miner adopts its own block immediately (it extends its tip).
    const AdoptionEvent event = views_[m].deliver(index, store_);
    if (event.adopted) {
      ++round_activity_.adoptions;
      NEATBOUND_COUNT(kAdoptions);
      if (event.reorg_depth > 0) NEATBOUND_COUNT(kReorgs);
      note_adoption(m);
      if (event.reorg_depth > 0) {
        consistency_.observe_reorg(event.reorg_depth);
        if (event.reorg_depth > round_activity_.max_reorg_depth) {
          round_activity_.max_reorg_depth = event.reorg_depth;
          round_activity_.max_reorg_view = m;
        }
      }
    }
    adversary_->on_honest_block(round, index);
    broadcast_honest(round, m, index);
  }
  // neatbound-analyze: allow(hot-alloc) — one amortized append per round
  // into the result metric; geometric growth, not per-miner work.
  honest_counts_.push_back(mined_this_round);
}

RunResult ExecutionEngine::run(const RoundObserver& observer) {
  NEATBOUND_EXPECTS(!ran_, "run() may be called once");
  ran_ = true;
  honest_counts_.reserve(config_.rounds);
  // Telemetry registers are thread_local and reset here, so the snapshot
  // taken after the loop covers exactly this run, on whichever worker
  // thread executed it.
  telemetry::reset();

  for (std::uint64_t round = 1; round <= config_.rounds; ++round) {
    round_activity_ = {};
    round_miners_.clear();
    {
      NEATBOUND_PHASE_SCOPE(kDeliver);
      deliver_due(round);
    }
    {
      NEATBOUND_PHASE_SCOPE(kMine);
      honest_mining_phase(round);
    }
    // tips_scratch_ / best_tip_ are already current: every adoption path
    // runs through note_adoption, so the adversary and metrics read the
    // same snapshot the old per-round rescan produced.
    if (adversary_queries_ > 0) {
      NEATBOUND_PHASE_SCOPE(kAdversary);
      Ops ops(*this, round, adversary_queries_);
      adversary_->act(ops);
      // Publication may not change views until delivery, so the snapshot
      // taken above remains valid for metrics.
    }
    {
      NEATBOUND_PHASE_SCOPE(kMetrics);
      consistency_.observe_round(tips_scratch_, store_);
    }
    if (observer) observer(*this, round);
  }

  RunResult result;
  result.honest_counts = honest_counts_;
  result.honest_blocks_total = 0;
  for (const std::uint32_t c : honest_counts_) {
    result.honest_blocks_total += c;
  }
  result.adversary_blocks_total = adversary_blocks_total_;
  result.convergence_opportunities =
      chains::count_convergence_opportunities(honest_counts_, config_.delta);
  result.max_reorg_depth = consistency_.max_reorg_depth();
  result.max_divergence = consistency_.max_divergence();
  result.disagreement_rounds = consistency_.disagreement_rounds();
  result.violation_depth = consistency_.violation_depth();
  result.chain = measure_chain(store_, best_honest_tip(), config_.rounds);
  result.store_size = store_.size();
  result.telemetry = telemetry::snapshot();
  return result;
}

}  // namespace neatbound::sim
