// Multi-seed experiment runner: repeats an execution-engine configuration
// across independent seeds and aggregates every metric with streaming
// statistics, so bench harnesses report mean ± stderr rather than
// single-run noise.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/engine.hpp"
#include "sim/strategies.hpp"
#include "stats/summary.hpp"
#include "support/telemetry.hpp"

namespace neatbound::sim {

struct ExperimentConfig {
  EngineConfig engine;
  AdversaryKind adversary = AdversaryKind::kMaxDelay;
  std::uint32_t seeds = 8;          ///< independent repetitions
  std::uint64_t base_seed = 12345;  ///< seed for repetition k is base+k
};

/// Aggregated across seeds; each field is a RunningStats over per-run values.
struct ExperimentSummary {
  stats::RunningStats convergence_opportunities;
  stats::RunningStats adversary_blocks;
  stats::RunningStats honest_blocks;
  stats::RunningStats violation_depth;
  stats::RunningStats max_reorg_depth;
  stats::RunningStats max_divergence;
  stats::RunningStats disagreement_rounds;
  stats::RunningStats chain_growth;
  stats::RunningStats chain_quality;
  stats::RunningStats best_height;
  /// Fraction of runs whose violation depth exceeded a caller-set T
  /// (see ExperimentConfig-independent helper below); stored as 0/1 values.
  stats::RunningStats violation_exceeds_t;
  /// Telemetry counters/phase times summed over the folded runs (all
  /// zeros in telemetry-OFF builds).  Folded in seed order like every
  /// other field; surfaced only through opt-in report meta.
  telemetry::TelemetryAccumulator telemetry;
};

/// Per-config adversary construction hook shared by every runner variant.
using AdversaryFactory =
    std::function<std::unique_ptr<Adversary>(const EngineConfig&)>;

/// The adversary run_experiment builds implicitly: make_adversary(kind, …)
/// sized from the engine config's miner count and fraction.
[[nodiscard]] std::unique_ptr<Adversary> make_default_adversary(
    AdversaryKind kind, const EngineConfig& engine_config);

/// make_default_adversary wrapped as a per-config factory.
[[nodiscard]] AdversaryFactory default_adversary_factory(AdversaryKind kind);

/// Folds one engine run into the summary.  Exposed so higher layers (the
/// sweep orchestrator) aggregate with exactly the serial runner's
/// arithmetic — the bit-identical guarantee hangs on sharing this.
void accumulate_run(ExperimentSummary& summary, const RunResult& result,
                    std::uint64_t violation_t);

/// Runs `config.seeds` executions.  `violation_t` parameterizes the
/// consistency predicate: a run "violates T-consistency" iff its observed
/// violation depth exceeds violation_t.
[[nodiscard]] ExperimentSummary run_experiment(const ExperimentConfig& config,
                                               std::uint64_t violation_t);

/// Hook for custom adversaries: same aggregation, caller-provided factory.
[[nodiscard]] ExperimentSummary run_experiment_with(
    const ExperimentConfig& config, std::uint64_t violation_t,
    const AdversaryFactory& factory);

/// Multi-threaded variant: seeds are distributed over `threads` workers
/// (0 = hardware concurrency).  Per-seed results are collected into a
/// seed-indexed vector and aggregated sequentially, so the summary is
/// bit-identical to the serial runner regardless of scheduling.
/// If an engine run throws in a worker, the first exception is rethrown
/// here after all workers have joined.
[[nodiscard]] ExperimentSummary run_experiment_parallel(
    const ExperimentConfig& config, std::uint64_t violation_t,
    unsigned threads = 0);

/// Parallel variant with a caller-provided adversary factory.  The factory
/// must be callable concurrently (it is invoked once per seed, each
/// invocation producing an adversary owned by one engine).
[[nodiscard]] ExperimentSummary run_experiment_parallel_with(
    const ExperimentConfig& config, std::uint64_t violation_t,
    const AdversaryFactory& factory, unsigned threads = 0);

}  // namespace neatbound::sim
