// Multi-seed experiment runner: repeats an execution-engine configuration
// across independent seeds and aggregates every metric with streaming
// statistics, so bench harnesses report mean ± stderr rather than
// single-run noise.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/engine.hpp"
#include "sim/strategies.hpp"
#include "stats/summary.hpp"

namespace neatbound::sim {

struct ExperimentConfig {
  EngineConfig engine;
  AdversaryKind adversary = AdversaryKind::kMaxDelay;
  std::uint32_t seeds = 8;          ///< independent repetitions
  std::uint64_t base_seed = 12345;  ///< seed for repetition k is base+k
};

/// Aggregated across seeds; each field is a RunningStats over per-run values.
struct ExperimentSummary {
  stats::RunningStats convergence_opportunities;
  stats::RunningStats adversary_blocks;
  stats::RunningStats honest_blocks;
  stats::RunningStats violation_depth;
  stats::RunningStats max_reorg_depth;
  stats::RunningStats max_divergence;
  stats::RunningStats disagreement_rounds;
  stats::RunningStats chain_growth;
  stats::RunningStats chain_quality;
  stats::RunningStats best_height;
  /// Fraction of runs whose violation depth exceeded a caller-set T
  /// (see ExperimentConfig-independent helper below); stored as 0/1 values.
  stats::RunningStats violation_exceeds_t;
};

/// Runs `config.seeds` executions.  `violation_t` parameterizes the
/// consistency predicate: a run "violates T-consistency" iff its observed
/// violation depth exceeds violation_t.
[[nodiscard]] ExperimentSummary run_experiment(const ExperimentConfig& config,
                                               std::uint64_t violation_t);

/// Hook for custom adversaries: same aggregation, caller-provided factory.
[[nodiscard]] ExperimentSummary run_experiment_with(
    const ExperimentConfig& config, std::uint64_t violation_t,
    const std::function<std::unique_ptr<Adversary>(const EngineConfig&)>&
        factory);

/// Multi-threaded variant: seeds are distributed over `threads` workers
/// (0 = hardware concurrency).  Per-seed results are collected into a
/// seed-indexed vector and aggregated sequentially, so the summary is
/// bit-identical to the serial runner regardless of scheduling.
/// The factory must be callable concurrently (it is invoked once per seed,
/// each invocation producing an adversary owned by one engine).
[[nodiscard]] ExperimentSummary run_experiment_parallel(
    const ExperimentConfig& config, std::uint64_t violation_t,
    unsigned threads = 0);

}  // namespace neatbound::sim
