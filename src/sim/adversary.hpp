// The adversary interface (Section III, capabilities ① and ②).
//
// The execution engine grants the adversary exactly the powers the model
// specifies and no more:
//   ① it picks, per (honest message, recipient), a delivery delay in
//     [1, Δ] — it cannot drop or modify honest messages;
//   ② it fully controls νn corrupted miners: it makes up to νn *sequential*
//     oracle queries per round, choosing each query's parent block, and
//     decides when (and to whom first) its blocks are published.
// One power the adversary does NOT have: permanently hiding a published
// block from a subset of honest players.  Honest players gossip, so the
// engine auto-echoes every block to all remaining honest players within Δ
// of its first honest receipt (see ExecutionEngine).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "protocol/block_store.hpp"

namespace neatbound::sim {

/// Engine-provided operations available to an adversary during its turn.
/// All mutation goes through this interface so the engine can enforce the
/// query budget and the Δ-delay contract.
class AdversaryOps {
 public:
  virtual ~AdversaryOps() = default;

  // --- observation (the adversary is rushing: it sees everything) ---
  [[nodiscard]] virtual const protocol::BlockStore& store() const = 0;
  [[nodiscard]] virtual std::uint64_t round() const = 0;
  [[nodiscard]] virtual std::uint64_t delta() const = 0;
  [[nodiscard]] virtual std::uint32_t honest_count() const = 0;
  /// Current tip of each honest miner's view.
  [[nodiscard]] virtual std::span<const protocol::BlockIndex> honest_tips()
      const = 0;
  /// The highest tip any honest miner currently holds.
  [[nodiscard]] virtual protocol::BlockIndex best_honest_tip() const = 0;

  // --- mining (capability ②, sequential queries) ---
  [[nodiscard]] virtual std::uint64_t remaining_queries() const = 0;
  /// Spends one query attempting to extend `parent`.  Returns the new
  /// (private) block's index on success.  Contract violation if the
  /// budget is exhausted.
  virtual std::optional<protocol::BlockIndex> try_mine_on(
      protocol::BlockIndex parent) = 0;

  // --- publication ---
  /// Sends `block` to one honest recipient with the given delay ∈ [1, Δ].
  /// The engine's gossip echo then bounds every other honest player's
  /// receipt by (first honest receipt) + Δ.
  virtual void publish_to(std::uint32_t recipient,
                          protocol::BlockIndex block,
                          std::uint64_t delay) = 0;
  /// Convenience: send to every honest recipient with one delay.
  virtual void publish_to_all(protocol::BlockIndex block,
                              std::uint64_t delay) = 0;
};

/// Strategy interface.  One instance drives the corrupted miners for the
/// whole execution.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Delay ∈ [1, Δ] for an honest block broadcast this round (capability
  /// ①).  Called once per (block, recipient); the engine clamps the result
  /// into [1, Δ] defensively.
  [[nodiscard]] virtual std::uint64_t honest_delay(
      std::uint64_t round, std::uint32_t sender, std::uint32_t recipient,
      protocol::BlockIndex block) = 0;

  /// Notification that an honest block was mined this round (rushing
  /// adversaries observe it before choosing their own actions).
  virtual void on_honest_block(std::uint64_t round,
                               protocol::BlockIndex block) {
    (void)round;
    (void)block;
  }

  /// The adversary's turn: mine with the round's query budget and publish
  /// (or keep withholding) blocks via `ops`.
  virtual void act(AdversaryOps& ops) = 0;

  /// Quiet-round contract (counter-mode fast path): return true iff act()
  /// is observably a no-op — no publication, no internal state change that
  /// could alter any later action — in every round where (a) no honest
  /// block was mined or delivered since the previous executed act() call
  /// and (b) all of this round's mining queries would fail.  A declaring
  /// strategy must not key decisions on the round number or on how often
  /// act() ran.  Engines may then skip act() entirely in such rounds; the
  /// per-strategy skip-vs-noskip differential test
  /// (tests/sim/test_batch_equivalence.cpp) enforces the claim.  Default
  /// false: opting in is a reviewed decision, not an inference.
  [[nodiscard]] virtual bool quiet_act_is_noop() const { return false; }

  /// Human-readable strategy name for reports.
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace neatbound::sim
