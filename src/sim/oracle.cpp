#include "sim/oracle.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace neatbound::sim {

namespace {

constexpr const char* kInvariantNames[] = {
    "common-prefix",
    "chain-growth",
    "chain-quality",
};

/// ceil(ratio · window) in honest blocks; ratio round-trips artifacts
/// via %.17g, so replay recomputes the identical threshold.
std::uint64_t quality_required(const OracleConfig& config) {
  return static_cast<std::uint64_t>(
      std::ceil(config.quality_min_ratio *
                static_cast<double>(config.quality_window)));
}

}  // namespace

const char* invariant_name(InvariantKind kind) noexcept {
  return kInvariantNames[static_cast<std::size_t>(kind)];
}

std::optional<InvariantKind> parse_invariant_name(
    std::string_view name) noexcept {
  constexpr std::size_t kCount =
      sizeof(kInvariantNames) / sizeof(kInvariantNames[0]);
  for (std::size_t i = 0; i < kCount; ++i) {
    if (name == kInvariantNames[i]) {
      return static_cast<InvariantKind>(i);
    }
  }
  return std::nullopt;
}

std::vector<std::string> invariant_names() {
  return {std::begin(kInvariantNames), std::end(kInvariantNames)};
}

void validate_oracle_config(const OracleConfig& config) {
  const bool growth_armed = config.growth_window > 0;
  const bool quality_armed = config.quality_window > 0;
  NEATBOUND_EXPECTS(config.common_prefix || growth_armed || quality_armed,
                    "oracle config arms no invariant");
  if (growth_armed) {
    NEATBOUND_EXPECTS(config.growth_min_blocks > 0,
                      "chain-growth with growth_min_blocks = 0 is vacuous");
  }
  if (quality_armed) {
    NEATBOUND_EXPECTS(config.quality_min_ratio > 0.0 &&
                          config.quality_min_ratio <= 1.0,
                      "chain-quality needs quality_min_ratio in (0, 1]");
  }
  NEATBOUND_EXPECTS(config.slice_rounds >= 1,
                    "slice_rounds must retain at least one round");
  NEATBOUND_EXPECTS(config.slice_rounds <= (std::uint64_t{1} << 20),
                    "slice_rounds exceeds the trace record cap");
}

InvariantOracle::InvariantOracle(OracleConfig config) : config_(config) {
  validate_oracle_config(config_);
  if (config_.growth_window > 0) {
    height_ring_.assign(config_.growth_window, 0);
  }
  record_ring_.resize(config_.slice_rounds);
}

ExecutionEngine::RoundObserver InvariantOracle::observer() {
  return [this](const ExecutionEngine& engine, std::uint64_t round) {
    observe(engine, round);
  };
}

void InvariantOracle::observe(const ExecutionEngine& engine,
                              std::uint64_t round) {
  ++rounds_observed_;
  record_round(engine, round);
  // Fixed assertion order; the first failure across rounds (and, within
  // a round, in this order) freezes the snapshot — fully deterministic.
  check_common_prefix(engine, round);
  if (config_.growth_window > 0) check_chain_growth(engine, round);
  if (config_.quality_window > 0) check_chain_quality(engine, round);
}

void InvariantOracle::record_round(const ExecutionEngine& engine,
                                   std::uint64_t round) {
  if (violation_.has_value()) return;  // the slice is frozen
  // Circular slot reuse: assign into the slot so mined_by keeps its
  // capacity — steady state allocates nothing.
  RoundRecord& slot = record_ring_[(round - 1) % config_.slice_rounds];
  const RoundActivity& activity = engine.round_activity();
  slot.round = round;
  slot.honest_mined = activity.honest_mined;
  slot.adversary_mined = activity.adversary_mined;
  slot.mined_by.assign(engine.round_miners().begin(),
                       engine.round_miners().end());
  slot.delivered = activity.delivered;
  slot.adoptions = activity.adoptions;
  slot.best_height = engine.best_height();
  slot.violation_depth = engine.violation_depth();
}

void InvariantOracle::check_common_prefix(const ExecutionEngine& engine,
                                          std::uint64_t round) {
  const auto tips = engine.honest_tips();
  const auto& store = engine.store();
  // Distinct tips in first-occurrence order, remembering the first view
  // holding each — the pairwise maximum is order-independent (same
  // contract as ConsistencyTracker::observe_round), the owners make the
  // offending pair deterministic.
  tip_scratch_.clear();
  tip_owner_scratch_.clear();
  for (std::uint32_t m = 0; m < tips.size(); ++m) {
    const protocol::BlockIndex tip = tips[m];
    if (std::find(tip_scratch_.begin(), tip_scratch_.end(), tip) !=
        tip_scratch_.end()) {
      continue;
    }
    tip_scratch_.push_back(tip);
    tip_owner_scratch_.push_back(m);
  }
  std::uint64_t divergence = 0;
  std::size_t arg_i = 0;
  std::size_t arg_j = 0;
  for (std::size_t i = 0; i < tip_scratch_.size(); ++i) {
    for (std::size_t j = i + 1; j < tip_scratch_.size(); ++j) {
      const std::uint64_t common =
          store.common_prefix_height(tip_scratch_[i], tip_scratch_[j]);
      const std::uint64_t deeper = std::max(store.height_of(tip_scratch_[i]),
                                            store.height_of(tip_scratch_[j]));
      if (deeper - common > divergence) {
        divergence = deeper - common;
        arg_i = i;
        arg_j = j;
      }
    }
  }
  const std::uint64_t reorg = engine.round_activity().max_reorg_depth;
  const std::uint64_t depth = std::max(divergence, reorg);
  max_round_depth_ = std::max(max_round_depth_, depth);
  if (!config_.common_prefix || violation_.has_value()) return;
  if (depth <= config_.common_prefix_t) return;
  OracleViolation violation;
  violation.kind = InvariantKind::kCommonPrefix;
  violation.round = round;
  violation.measured = depth;
  violation.bound = config_.common_prefix_t;
  if (divergence >= reorg) {
    violation.view_a = tip_owner_scratch_[arg_i];
    violation.view_b = tip_owner_scratch_[arg_j];
  } else {
    // A reorg alone exceeded T: the reorging view is both offenders.
    violation.view_a = engine.round_activity().max_reorg_view;
    violation.view_b = violation.view_a;
  }
  freeze(engine, violation);
}

void InvariantOracle::check_chain_growth(const ExecutionEngine& engine,
                                         std::uint64_t round) {
  const std::uint64_t window = config_.growth_window;
  const std::uint64_t height = engine.best_height();
  // height_ring_[r % W] holds the best height after round r; the slot
  // about to be overwritten is exactly the value from W rounds ago.
  if (round > window && !violation_.has_value()) {
    const std::uint64_t before = height_ring_[round % window];
    const std::uint64_t grown = height - before;
    if (grown < config_.growth_min_blocks) {
      OracleViolation violation;
      violation.kind = InvariantKind::kChainGrowth;
      violation.round = round;
      violation.measured = grown;
      violation.bound = config_.growth_min_blocks;
      freeze(engine, violation);
    }
  }
  height_ring_[round % window] = height;
}

void InvariantOracle::check_chain_quality(const ExecutionEngine& engine,
                                          std::uint64_t round) {
  const std::uint64_t window = config_.quality_window;
  if (violation_.has_value()) return;
  if (engine.best_height() < window) return;  // chain not yet K deep
  const auto& store = engine.store();
  protocol::BlockIndex block = engine.best_honest_tip();
  std::uint64_t honest = 0;
  for (std::uint64_t i = 0; i < window; ++i) {
    if (store.miner_class_of(block) == protocol::MinerClass::kHonest) {
      ++honest;
    }
    block = store.parent_of(block);
  }
  const std::uint64_t required = quality_required(config_);
  if (honest >= required) return;
  OracleViolation violation;
  violation.kind = InvariantKind::kChainQuality;
  violation.round = round;
  violation.measured = honest;
  violation.bound = required;
  freeze(engine, violation);
}

void InvariantOracle::freeze(const ExecutionEngine& engine,
                             OracleViolation violation) {
  violation_ = violation;
  const auto tips = engine.honest_tips();
  const auto& store = engine.store();
  views_.clear();
  views_.reserve(tips.size());
  for (std::uint32_t m = 0; m < tips.size(); ++m) {
    ViewSnapshot snapshot;
    snapshot.miner = m;
    snapshot.tip = tips[m];
    snapshot.height = store.height_of(tips[m]);
    snapshot.hash = store.hash_of(tips[m]);
    views_.push_back(snapshot);
  }
  // Materialize the ring oldest-first, ending at the violating round.
  const std::uint64_t count =
      std::min<std::uint64_t>(violation.round, config_.slice_rounds);
  slice_.clear();
  slice_.reserve(count);
  for (std::uint64_t r = violation.round - count + 1; r <= violation.round;
       ++r) {
    slice_.push_back(record_ring_[(r - 1) % config_.slice_rounds]);
  }
}

const OracleViolation& InvariantOracle::first_violation() const {
  NEATBOUND_EXPECTS(violation_.has_value(), "no violation was observed");
  return *violation_;
}

const std::vector<ViewSnapshot>& InvariantOracle::violating_views() const {
  NEATBOUND_EXPECTS(violation_.has_value(), "no violation was observed");
  return views_;
}

const std::vector<RoundRecord>& InvariantOracle::violation_slice() const {
  NEATBOUND_EXPECTS(violation_.has_value(), "no violation was observed");
  return slice_;
}

}  // namespace neatbound::sim
