// The round-based execution engine of Section III.
//
// Per round, in order:
//   1. due messages are delivered; honest players update their chains
//      (longest-chain rule);
//   2. every honest player makes exactly one parallel oracle query on its
//      current tip; freshly mined blocks are broadcast, with per-recipient
//      delays chosen by the adversary within [1, Δ];
//   3. the adversary (who observed everything, including this round's
//      honest blocks — it is rushing) takes its turn: up to νn sequential
//      queries on parents of its choice, plus publications;
//   4. metrics are recorded.
//
// Gossip echo: the first time a block reaches *any* honest player (round
// r₀), the engine schedules its delivery to every other honest player by
// r₀ + Δ.  This models honest re-broadcast, whose messages the adversary
// can again delay by at most Δ — without it, "delay ≤ Δ" would be
// meaningless for adversary-mined blocks sent to a single victim.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/delivery.hpp"
#include "protocol/block_store.hpp"
#include "protocol/hash.hpp"
#include "protocol/validation.hpp"
#include "sim/adversary.hpp"
#include "sim/draws.hpp"
#include "sim/environment.hpp"
#include "sim/metrics.hpp"
#include "sim/miner_view.hpp"
#include "support/crng.hpp"
#include "support/hot.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"

namespace neatbound::sim {

/// Which random-number discipline a run uses.
///
/// kCounter (the default) addresses every draw as a pure function of
/// (key = (cell, seed), counter = (round, actor, purpose)) — see
/// support/crng.hpp — which makes draws order-independent: the batched
/// cross-seed engine (sim/batch_engine.hpp) and the serial engine produce
/// bit-identical trajectories, pinned by tests/sim/test_batch_equivalence.
///
/// kLegacy is the pre-counter sequential stream (support/rng.hpp), kept
/// behind this switch for one release so existing pinned baselines can be
/// cross-checked; it cannot be batched or quiet-skipped.
enum class RngMode : std::uint8_t {
  kLegacy = 0,
  kCounter = 1,
};

struct EngineConfig {
  std::uint32_t miner_count = 16;      ///< n (honest + corrupted)
  double adversary_fraction = 0.0;     ///< ν; corrupted count = round(νn)
  double p = 0.01;                     ///< proof-of-work hardness
  std::uint64_t delta = 1;             ///< Δ, max message delay in rounds
  std::uint64_t rounds = 1000;         ///< T, rounds to execute
  std::uint64_t seed = 1;              ///< master seed (oracle + mining)
  RngMode rng_mode = RngMode::kCounter;  ///< draw discipline (see RngMode)
};

/// The counter-RNG key of a run: cell = hash of the trajectory-shaping
/// parameters (n, ν, p, Δ), seed = the run seed.  `rounds` is excluded on
/// purpose — truncating the horizon must replay a prefix of the same
/// trajectory (what the oracle replayer and checkpoint resume rely on) —
/// and so is rng_mode itself (the key is only consulted in counter mode).
[[nodiscard]] crng::Key engine_rng_key(const EngineConfig& config);

/// Honest miner count the engine derives from a config: n minus
/// round(νn).  Partition/victim-table builders must size against exactly
/// this value, so it is exported rather than re-derived per call site.
[[nodiscard]] std::uint32_t honest_miner_count(const EngineConfig& config);

/// Rejects unusable parameter combinations with a ContractViolation whose
/// message names the offending field: n < 4 (the paper's condition (3)),
/// ν ∉ [0, 1/2) (which covers ν ≥ 1), p ∉ (0, 1), Δ = 0, T = 0, or a
/// corrupted count that leaves no honest miner.  Called by the engine
/// constructor; exposed so config-producing layers (CLI, scenario files)
/// can fail fast before spawning runs.
void validate_engine_config(const EngineConfig& config);

/// Event counts of the most recent round, maintained unconditionally
/// (plain increments — cheap enough to keep out of the telemetry gate)
/// so the round tracer (sim/trace.hpp) can read them without touching
/// simulation state.
struct RoundActivity {
  std::uint32_t honest_mined = 0;
  std::uint32_t adversary_mined = 0;
  std::uint32_t delivered = 0;
  std::uint32_t adoptions = 0;
  /// Deepest reorg any honest view performed this round (0 = none) and
  /// the view that performed it.  Input to the per-round invariant oracle
  /// (sim/oracle.hpp); like every other field here, never read back by
  /// simulation code.
  std::uint64_t max_reorg_depth = 0;
  std::uint32_t max_reorg_view = 0;
};

struct RunResult {
  std::vector<std::uint32_t> honest_counts;  ///< blocks honest miners mined, per round
  std::uint64_t honest_blocks_total = 0;
  std::uint64_t adversary_blocks_total = 0;  ///< mined (published or not)
  std::uint64_t convergence_opportunities = 0;
  std::uint64_t max_reorg_depth = 0;
  std::uint64_t max_divergence = 0;
  std::uint64_t disagreement_rounds = 0;
  std::uint64_t violation_depth = 0;
  ChainMetrics chain;
  std::uint64_t store_size = 0;  ///< all blocks ever mined (incl. genesis)
  /// Counter values + per-phase wall times of this run; all zeros in
  /// telemetry-OFF builds.  Never read by simulation code.
  telemetry::TelemetrySnapshot telemetry;
};

class ExecutionEngine {
 public:
  ExecutionEngine(EngineConfig config, std::unique_ptr<Adversary> adversary);
  /// With an environment, honest blocks embed Z's messages and the final
  /// ledgers (ext of each honest tip) become meaningful.
  ExecutionEngine(EngineConfig config, std::unique_ptr<Adversary> adversary,
                  std::unique_ptr<Environment> environment);
  ~ExecutionEngine();

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  /// Called at the end of every round with the engine (read-only view of
  /// store/tips) and the just-finished round number.
  using RoundObserver =
      std::function<void(const ExecutionEngine&, std::uint64_t round)>;

  /// Runs the configured number of rounds and returns the metrics.
  /// May be called once per engine instance.  The optional observer fires
  /// after each round's deliveries, mining and adversary turn.
  [[nodiscard]] RunResult run(const RoundObserver& observer = {});

  // --- stepping API (used by sim/batch_engine to interleave W lanes) ---
  //
  // run() is exactly begin_run(); telemetry::reset(); step_round(1..T);
  // finish_run(true).  External steppers call begin_run once, then for
  // each round either step_round or (counter mode only) skip_if_quiet,
  // and finally finish_run.  Telemetry reset is left to the caller so a
  // batched pass can account one whole-pass snapshot instead of W.

  /// Marks the engine as running and reserves per-round storage.
  void begin_run();
  /// Executes one round (deliver → mine → adversary → metrics).  Rounds
  /// must be stepped in order 1, 2, ..., config.rounds.
  NEATBOUND_HOT void step_round(std::uint64_t round,
                                const RoundObserver& observer = {});
  /// Counter-mode fast path: returns true iff `round` is provably quiet —
  /// no due deliveries, no honest or adversary mining success, and an
  /// adversary whose act() is a no-op on such rounds — in which case the
  /// round is committed in O(1) (zero honest count, unchanged-round
  /// metrics fold) without executing it.  Returns false (and does
  /// nothing) when the round must be stepped; always false in legacy
  /// mode, with an environment attached, or for adversaries that did not
  /// opt into the quiet-act contract.  Callers that attach a
  /// RoundObserver must not use this (the observer would miss the round).
  [[nodiscard]] NEATBOUND_HOT bool skip_if_quiet(std::uint64_t round);
  /// Bulk form of skip_if_quiet: commits every provably-quiet round of
  /// `round, round+1, ...` up to and including `last`, stopping at the
  /// first round that must be stepped, and returns the first round NOT
  /// committed (== `round` when round itself is busy or the fast path is
  /// unavailable; == `last + 1` when the whole range was quiet).  The
  /// whole run of quiet rounds costs O(1): the three event sources name
  /// their next busy round directly (gap-cursor positions are flat
  /// (round, slot) addresses; the calendar exposes its earliest pending
  /// round), so nothing is examined per skipped round.
  [[nodiscard]] NEATBOUND_HOT std::uint64_t skip_quiet_rounds(
      std::uint64_t round, std::uint64_t last);
  /// Assembles the RunResult after the final round.  `take_telemetry`
  /// controls whether the thread-local telemetry snapshot is attached —
  /// a batched pass attaches it to lane 0 only (the pass-wide convention
  /// documented in docs/observability.md).
  [[nodiscard]] RunResult finish_run(bool take_telemetry);

  // --- read-only access for tests / examples after run() ---
  [[nodiscard]] const protocol::BlockStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] const protocol::RandomOracle& oracle() const noexcept {
    return oracle_;
  }
  [[nodiscard]] const protocol::PowTarget& target() const noexcept {
    return target_;
  }
  /// The validation policy matching this run's RNG discipline: counter
  /// mode assembles blocks without a per-block ≤-target certificate
  /// (protocol::assemble_block), so only legacy chains carry one.
  [[nodiscard]] protocol::ValidationPolicy validation_policy() const noexcept {
    return {.check_pow_target = config_.rng_mode == RngMode::kLegacy};
  }
  [[nodiscard]] std::uint32_t honest_count() const noexcept {
    return honest_count_;
  }
  [[nodiscard]] protocol::BlockIndex honest_tip(std::uint32_t miner) const;
  [[nodiscard]] protocol::BlockIndex best_honest_tip() const;
  /// Current tips of all honest miners (valid after run()).
  [[nodiscard]] std::span<const protocol::BlockIndex> honest_tips() const {
    return tips_scratch_;
  }

  // --- per-round activity, for RoundObserver consumers (sim/trace) ---
  /// Event counts of the round that just finished (or is executing).
  [[nodiscard]] const RoundActivity& round_activity() const noexcept {
    return round_activity_;
  }
  /// Honest miner ids that mined in the current round, in mining order.
  [[nodiscard]] std::span<const std::uint32_t> round_miners() const noexcept {
    return round_miners_;
  }
  /// Height of the best honest tip (the incremental maximum).
  [[nodiscard]] std::uint64_t best_height() const noexcept {
    return best_height_;
  }
  /// Running max consistency-violation depth observed so far.
  [[nodiscard]] std::uint64_t violation_depth() const noexcept {
    return consistency_.violation_depth();
  }

 private:
  class Ops;  // AdversaryOps implementation

  NEATBOUND_HOT void deliver_due(std::uint64_t round);
  NEATBOUND_HOT void honest_mining_phase(std::uint64_t round);
  NEATBOUND_HOT void broadcast_honest(std::uint64_t round,
                                      std::uint32_t sender,
                                      protocol::BlockIndex block);
  /// First-honest-receipt gossip echo (see file comment).
  NEATBOUND_HOT void schedule_echo(std::uint64_t first_receipt_round,
                                   protocol::BlockIndex block);
  [[nodiscard]] NEATBOUND_HOT std::uint64_t clamp_delay(
      std::uint64_t d) const noexcept;
  /// Records that view `miner` adopted a new tip: refreshes the dense tip
  /// snapshot and the running best-tip maximum, so honest_tips() and
  /// best_honest_tip() are O(1) reads instead of per-query view scans.
  /// The tie rule (strictly greater height, or equal height from a
  /// lower-indexed view) reproduces the old lowest-index-wins scan.
  NEATBOUND_HOT void note_adoption(std::uint32_t miner);

  /// Common tail of both mining modes: stamps metadata on a freshly mined
  /// honest block, stores it, updates views/metrics and broadcasts it.
  NEATBOUND_HOT void register_honest_block(std::uint64_t round,
                                           std::uint32_t miner,
                                           protocol::Block&& block);

  EngineConfig config_;
  std::uint32_t honest_count_;
  std::uint32_t adversary_queries_;
  protocol::RandomOracle oracle_;
  protocol::PowTarget target_;
  protocol::BlockStore store_;
  net::DeliveryCalendar calendar_;
  std::vector<MinerView> views_;
  std::unique_ptr<Adversary> adversary_;
  std::unique_ptr<Environment> environment_;
  // neatbound-analyze: allow(rng-stream) — RngMode::kLegacy stream state,
  // kept bit-stable for one release alongside the counter path below.
  Rng rng_;
  /// Counter-mode state: the run key plus cursors over the honest and
  /// adversary Bernoulli success fields (unused in legacy mode).
  crng::Key key_;
  GapCursor honest_gaps_;
  GapCursor adversary_gaps_;
  /// Precomputed eligibility for skip_if_quiet: counter mode, no
  /// environment, and an adversary honouring the quiet-act contract.
  bool quiet_eligible_ = false;
  ConsistencyTracker consistency_;
  std::vector<std::uint32_t> honest_counts_;
  std::uint64_t adversary_blocks_total_ = 0;
  std::uint64_t payload_counter_ = 0;
  /// Current tip of every honest view, maintained incrementally on each
  /// adoption (never rescanned).
  std::vector<protocol::BlockIndex> tips_scratch_;
  // Running maximum over tips_scratch_ (see note_adoption).
  protocol::BlockIndex best_tip_ = protocol::kGenesisIndex;
  std::uint64_t best_height_ = 0;
  std::uint32_t best_view_ = 0;
  /// One pre-drawn nonce per honest miner per round (batched RNG path).
  std::vector<std::uint64_t> nonce_scratch_;
  std::vector<bool> echoed_;  ///< per block: gossip echo already scheduled
  /// Reset at the top of every round; read only by observers/tracers —
  /// no simulation decision ever consults these.
  RoundActivity round_activity_;
  /// Honest miner ids of the current round; capacity pre-reserved to
  /// honest_count_ in the constructor, so the per-block append never
  /// allocates.
  std::vector<std::uint32_t> round_miners_;
  bool ran_ = false;
};

}  // namespace neatbound::sim
