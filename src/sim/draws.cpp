#include "sim/draws.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace neatbound::sim {

GapCursor::GapCursor(crng::Key key, crng::Purpose purpose, double p)
    : key_(key),
      purpose_(static_cast<std::uint64_t>(purpose)),
      log_q_(std::log1p(-p)) {
  NEATBOUND_EXPECTS(p > 0.0 && p < 1.0, "gap cursor requires p in (0, 1)");
  next_ = next_gap();
}

std::uint64_t GapCursor::next_gap() {
  const std::uint64_t i = gap_index_++;
  if ((i & 3) == 0) {
    buffer_ = crng::philox4x64({i >> 2, 0, purpose_, 0}, key_);
  }
  // Same inversion arithmetic as Rng/Stream::geometric_failures: the gap
  // is floor(ln U / ln(1−p)) with U ∈ (0, 1].
  const double u = 1.0 - crng::to_unit(buffer_[i & 3]);
  return static_cast<std::uint64_t>(std::floor(std::log(u) / log_q_));
}

std::uint64_t GapCursor::take() {
  const std::uint64_t pos = next_;
  next_ += 1 + next_gap();
  return pos;
}

void GapCursor::advance_to(std::uint64_t pos) {
  while (next_ < pos) (void)take();
}

bool GapCursor::contains_take(std::uint64_t pos) {
  advance_to(pos);
  if (next_ != pos) return false;
  (void)take();
  return true;
}

}  // namespace neatbound::sim
