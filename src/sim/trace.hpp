// Structured per-round run traces: the bounded event stream behind
// `neatbound_cli run --trace` and the promotion target for ad-hoc
// per-round side channels (sim/aggregate's honest-count vector).
//
// A trace is a JSONL stream — one self-contained JSON object per round —
// so a partial file (bounded writer, interrupted run) is still
// line-by-line parseable, and downstream tooling (scripts/check_trace.py,
// jq, pandas) needs no framing.  The record is the per-round event
// granularity the characteristic-string analyses (Kiayias–Quader–Russell,
// Blum et al.) reason over: who mined, what was delivered, how views
// moved.
//
// Tracing is strictly read-only over the engine: the observer reads
// public accessors after the round has fully executed, so a traced run's
// RunResult is bit-identical to an untraced run of the same seed
// (asserted by tests/sim/test_trace.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace neatbound::support {
class JsonValue;  // support/json.hpp; kept out of this header's includes
}  // namespace neatbound::support

namespace neatbound::sim {

/// One round's events.  Every field is numeric, so serialization needs
/// no string escaping and the schema is trivially diffable.
struct RoundRecord {
  std::uint64_t round = 0;            ///< 1-based engine round
  std::uint32_t honest_mined = 0;     ///< honest blocks mined this round
  std::uint32_t adversary_mined = 0;  ///< adversary blocks mined this round
  /// Honest miner ids in mining order; one per honest block for engine
  /// traces, empty for aggregate-model traces (identity not modeled).
  std::vector<std::uint32_t> mined_by;
  std::uint32_t delivered = 0;        ///< calendar deliveries applied
  std::uint32_t adoptions = 0;        ///< tip changes across all views
  std::uint64_t best_height = 0;      ///< height of the best honest tip
  std::uint64_t violation_depth = 0;  ///< running max consistency violation
};

/// Round window + record cap for a bounded trace.  Records are emitted
/// for rounds in [first_round, last_round], at most max_records of them;
/// the cap keeps a misconfigured window from filling a disk.
struct TraceBounds {
  std::uint64_t first_round = 1;
  std::uint64_t last_round = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_records = std::uint64_t{1} << 20;

  [[nodiscard]] bool contains(std::uint64_t round) const noexcept {
    return round >= first_round && round <= last_round;
  }
};

/// Parses the CLI's `--trace-rounds A:B` syntax into a window: "A:B"
/// (inclusive, 1-based), "A:" (from A to the end), ":B" (from round 1).
/// Throws std::invalid_argument on malformed input or A > B.
[[nodiscard]] TraceBounds parse_trace_rounds(const std::string& text);

/// Consumer of per-round records.  The engine-side tracer and the
/// aggregate engine both feed this, so every structured per-round stream
/// in the repo shares one schema and one bounded writer.
class RoundTraceSink {
 public:
  virtual ~RoundTraceSink() = default;
  virtual void on_round(const RoundRecord& record) = 0;
};

/// JSONL writer enforcing TraceBounds: rounds outside the window are
/// skipped, and output stops permanently once max_records lines were
/// written (truncated() reports that).  This is the single sanctioned
/// trace serialization point — the neatbound-analyze trace-io rule keeps
/// sim/net/protocol code from growing private file writers beside it.
class BoundedTraceWriter final : public RoundTraceSink {
 public:
  BoundedTraceWriter(std::ostream& os, TraceBounds bounds);

  void on_round(const RoundRecord& record) override;

  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return written_;
  }
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

 private:
  std::ostream* os_;
  TraceBounds bounds_;
  std::uint64_t written_ = 0;
  bool truncated_ = false;
};

/// Strict JSONL reader: every line must be an object with exactly the
/// RoundRecord keys (no extras, no omissions), integer-valued fields,
/// strictly increasing rounds, and mined_by either of length
/// honest_mined (engine traces) or empty (aggregate-model traces).
/// Throws std::runtime_error naming the offending line.  Blank lines are
/// permitted only at the end of the stream.
[[nodiscard]] std::vector<RoundRecord> read_trace_jsonl(std::istream& is);

/// The RoundRecord serialization the writer emits, exposed for tests and
/// for tooling that wants single records.
[[nodiscard]] std::string to_jsonl_line(const RoundRecord& record);

/// The inverse of to_jsonl_line at single-record granularity: strict
/// parse of one already-decoded JSON value (exactly the RoundRecord
/// keys, integer fields, mined_by length honest_mined or empty).  Throws
/// std::runtime_error without line context — read_trace_jsonl and the
/// violation-artifact reader (scenario/artifact.hpp) wrap it to name the
/// offending line or slice entry.
[[nodiscard]] RoundRecord round_record_from_json(
    const support::JsonValue& value);

/// Assembles one RoundRecord from the engine's per-round activity
/// accessors — the single definition of how engine state maps onto the
/// trace schema, shared by make_round_tracer and the invariant oracle's
/// slice recorder (sim/oracle.hpp).
[[nodiscard]] RoundRecord make_round_record(const ExecutionEngine& engine,
                                            std::uint64_t round);

/// An engine observer that assembles a RoundRecord from the engine's
/// per-round activity accessors after each round and feeds `sink`.  The
/// sink must outlive the returned observer.  Purely read-only (see file
/// comment).
[[nodiscard]] ExecutionEngine::RoundObserver make_round_tracer(
    RoundTraceSink& sink);

}  // namespace neatbound::sim
