// Per-miner view of the block tree and the longest-chain rule.
//
// Each honest player only "knows" the blocks that have been delivered to
// it (plus blocks it mined itself).  It adopts the longest known chain,
// breaking ties in favour of the first-received chain — Nakamoto's rule.
// Because the adversary may reorder messages, a block can arrive before
// its parent; such orphans are buffered and activated once their ancestry
// is complete (an honest player cannot validate, let alone mine on, a
// block whose chain it cannot see).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "protocol/block_store.hpp"

namespace neatbound::sim {

/// Outcome of delivering one block to a view.
struct AdoptionEvent {
  bool adopted = false;       ///< tip changed
  std::uint64_t reorg_depth = 0;  ///< blocks abandoned from the old tip
};

class MinerView {
 public:
  /// A fresh view knows only genesis.
  MinerView();

  [[nodiscard]] protocol::BlockIndex tip() const noexcept { return tip_; }

  [[nodiscard]] bool knows(protocol::BlockIndex block) const noexcept;

  /// Delivers `block`; activates it (and any waiting descendants) if its
  /// ancestry is known, applying the longest-chain rule.  Returns the
  /// deepest reorg performed during activation (0 when the tip just
  /// extends or does not change).
  AdoptionEvent deliver(protocol::BlockIndex block,
                        const protocol::BlockStore& store);

 private:
  /// Marks `block` known, then repeatedly activates buffered orphans
  /// whose parents became known.
  void activate_ready(protocol::BlockIndex block,
                      const protocol::BlockStore& store,
                      AdoptionEvent& event);
  void consider_tip(protocol::BlockIndex candidate,
                    const protocol::BlockStore& store, AdoptionEvent& event);

  protocol::BlockIndex tip_;
  std::vector<bool> known_;  ///< indexed by BlockIndex, grown lazily
  // Orphans waiting for a parent: parent index -> children delivered early.
  std::unordered_map<protocol::BlockIndex,
                     std::vector<protocol::BlockIndex>>
      waiting_on_;
};

}  // namespace neatbound::sim
