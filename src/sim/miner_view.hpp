// Per-miner view of the block tree and the longest-chain rule.
//
// Each honest player only "knows" the blocks that have been delivered to
// it (plus blocks it mined itself).  It adopts the longest known chain,
// breaking ties in favour of the first-received chain — Nakamoto's rule.
// Because the adversary may reorder messages, a block can arrive before
// its parent; such orphans are buffered and activated once their ancestry
// is complete (an honest player cannot validate, let alone mine on, a
// block whose chain it cannot see).
//
// Storage is flat and index-keyed throughout: the known-set is a bitset
// over block indices, and the orphan buffer is an intrusive linked list
// threaded through two lazily-grown flat vectors (first waiting child per
// parent, next sibling per child) — no per-view hash map, no per-delivery
// node allocation.  Waiting children activate in arrival order.
#pragma once

#include <cstdint>
#include <vector>

#include "protocol/block_store.hpp"
#include "support/hot.hpp"
#include "support/telemetry.hpp"

namespace neatbound::sim {

/// Outcome of delivering one block to a view.
struct AdoptionEvent {
  bool adopted = false;       ///< tip changed
  std::uint64_t reorg_depth = 0;  ///< blocks abandoned from the old tip
};

class MinerView {
 public:
  /// A fresh view knows only genesis.
  MinerView();

  [[nodiscard]] protocol::BlockIndex tip() const noexcept { return tip_; }

  /// Height of tip(), cached so the per-delivery longest-chain compare
  /// costs one store read, not two.
  [[nodiscard]] std::uint64_t tip_height() const noexcept {
    return tip_height_;
  }

  [[nodiscard]] bool knows(protocol::BlockIndex block) const noexcept {
    return block < known_.size() && known_[block];
  }

  /// Delivers `block`; activates it (and any waiting descendants) if its
  /// ancestry is known, applying the longest-chain rule.  Returns the
  /// deepest reorg performed during activation (0 when the tip just
  /// extends or does not change).  The duplicate-delivery check (gossip
  /// echoes make duplicates the single most common delivery) stays inline
  /// in the caller's loop.
  NEATBOUND_HOT AdoptionEvent deliver(protocol::BlockIndex block,
                                      const protocol::BlockStore& store) {
    AdoptionEvent event;
    if (knows(block)) {  // duplicate delivery (echo), ignore
      NEATBOUND_COUNT(kDuplicateDeliveries);
      return event;
    }
    deliver_fresh(block, store, event);
    return event;
  }

 private:
  /// Intrusive-list sentinel: "no waiting child / no next sibling".
  static constexpr protocol::BlockIndex kNoWaiting =
      ~protocol::BlockIndex{0};

  /// Out-of-line continuation of deliver() for not-yet-known blocks.
  NEATBOUND_HOT void deliver_fresh(protocol::BlockIndex block,
                                   const protocol::BlockStore& store,
                                   AdoptionEvent& event);
  /// Threads `block` into its parent's waiting list (parent unknown yet).
  NEATBOUND_HOT void buffer_orphan(protocol::BlockIndex parent,
                                   protocol::BlockIndex block);
  /// Marks `block` known, then repeatedly activates buffered orphans
  /// whose parents became known.
  NEATBOUND_HOT void activate_ready(protocol::BlockIndex block,
                                    const protocol::BlockStore& store,
                                    AdoptionEvent& event);
  NEATBOUND_HOT void consider_tip(protocol::BlockIndex candidate,
                                  const protocol::BlockStore& store,
                                  AdoptionEvent& event);

  protocol::BlockIndex tip_;
  std::uint64_t tip_height_ = 0;  ///< height of tip_, kept in lockstep
  std::vector<bool> known_;  ///< indexed by BlockIndex, grown lazily
  /// Blocks currently threaded into a waiting list.  Guards against
  /// duplicate delivery of a still-buffered orphan (its duplicate passes
  /// the knows() check): re-threading would overwrite waiting_next_ and
  /// sever the rest of the parent's list.  Grown only with the waiting
  /// vectors, so honest-order delivery never touches it.
  std::vector<bool> buffered_;
  /// First waiting child per parent index; kNoWaiting when none.  Grown
  /// only when an orphan actually arrives (honest-order delivery never
  /// touches it).
  std::vector<protocol::BlockIndex> waiting_first_;
  /// Next waiting sibling per child index; parallel to waiting_first_.
  std::vector<protocol::BlockIndex> waiting_next_;
  /// Reused activation worklist — no allocation on the delivery hot path.
  std::vector<protocol::BlockIndex> activation_stack_;
};

}  // namespace neatbound::sim
