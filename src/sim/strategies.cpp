#include "sim/strategies.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace neatbound::sim {

// ---------------------------------------------------------------------------
// MaxDelayAdversary
// ---------------------------------------------------------------------------

void MaxDelayAdversary::act(AdversaryOps& ops) {
  // Mine with the full budget but never publish: A(t₀, t₀+T−1) is counted
  // while honest mining patterns stay untouched.
  while (ops.remaining_queries() > 0) {
    if (const auto mined = ops.try_mine_on(private_tip_)) {
      private_tip_ = *mined;
    }
  }
}

// ---------------------------------------------------------------------------
// PrivateWithholdAdversary
// ---------------------------------------------------------------------------

PrivateWithholdAdversary::PrivateWithholdAdversary()
    : PrivateWithholdAdversary(Options{}) {}

PrivateWithholdAdversary::PrivateWithholdAdversary(Options options)
    : options_(options) {}

std::uint64_t PrivateWithholdAdversary::honest_delay(std::uint64_t,
                                                     std::uint32_t,
                                                     std::uint32_t,
                                                     protocol::BlockIndex) {
  // Slow the honest network as much as the model allows.
  return ~0ULL;  // clamped to Δ by the engine
}

void PrivateWithholdAdversary::act(AdversaryOps& ops) {
  const protocol::BlockStore& store = ops.store();
  if (!initialized_) {
    initialized_ = true;
    fork_base_ = protocol::kGenesisIndex;
    private_tip_ = protocol::kGenesisIndex;
  }
  const protocol::BlockIndex best = ops.best_honest_tip();
  const std::uint64_t best_height = store.height_of(best);

  // Abandon hopeless forks: restart from the current best honest tip.
  if (best_height >
      store.height_of(private_tip_) + options_.give_up_margin) {
    fork_base_ = best;
    private_tip_ = best;
    withheld_.clear();
  }

  // Spend the whole budget extending the private fork.
  while (ops.remaining_queries() > 0) {
    if (const auto mined = ops.try_mine_on(private_tip_)) {
      private_tip_ = *mined;
      withheld_.push_back(*mined);
    }
  }

  // Release when the private fork overtakes the public chain AND the reorg
  // it forces is deep enough to be worth burning the lead.
  if (store.height_of(private_tip_) > best_height && !withheld_.empty()) {
    const std::uint64_t reorg_depth =
        best_height - store.common_prefix_height(best, private_tip_);
    if (reorg_depth >= options_.min_fork_depth) {
      for (const protocol::BlockIndex block : withheld_) {
        ops.publish_to_all(block, 1);
      }
      withheld_.clear();
      ++releases_;
      // Keep mining on our own (now public) tip.
      fork_base_ = private_tip_;
    }
  }
}

// ---------------------------------------------------------------------------
// HonestPartition
// ---------------------------------------------------------------------------

HonestPartition::HonestPartition(std::uint32_t honest_count)
    : honest_count_(honest_count), split_(honest_count / 2) {
  NEATBOUND_EXPECTS(honest_count >= 2,
                    "a chain split needs at least two honest miners");
}

protocol::BlockIndex HonestPartition::group_tip(const AdversaryOps& ops,
                                                std::uint8_t group) const {
  const auto tips = ops.honest_tips();
  const protocol::BlockStore& store = ops.store();
  protocol::BlockIndex best = protocol::kGenesisIndex;
  for (std::uint32_t m = 0; m < tips.size(); ++m) {
    if (group_of(m) != group) continue;
    if (store.height_of(tips[m]) > store.height_of(best)) best = tips[m];
  }
  return best;
}

void HonestPartition::publish_to_group(AdversaryOps& ops,
                                       protocol::BlockIndex block,
                                       std::uint8_t group) const {
  for (std::uint32_t m = 0; m < honest_count_; ++m) {
    if (group_of(m) == group) ops.publish_to(m, block, 1);
  }
}

void HonestPartition::sync_branches(const AdversaryOps& ops,
                                    protocol::BlockIndex branch[2],
                                    std::uint64_t reset_margin) const {
  const protocol::BlockStore& store = ops.store();
  for (const std::uint8_t g : {std::uint8_t{0}, std::uint8_t{1}}) {
    const protocol::BlockIndex gt = group_tip(ops, g);
    // Honest miners of side g extended our branch: follow them.  A branch
    // hopelessly behind what the group actually mines on (they deserted)
    // is re-anchored on their chain.
    if (store.is_ancestor(branch[g], gt) ||
        store.height_of(gt) > store.height_of(branch[g]) + reset_margin) {
      branch[g] = gt;
    }
  }
  // Collapse detection: both tips on one chain → remember the deeper one
  // and mark collapsed (equal tips).
  if (store.is_ancestor(branch[0], branch[1])) {
    branch[0] = branch[1];
  } else if (store.is_ancestor(branch[1], branch[0])) {
    branch[1] = branch[0];
  }
}

// ---------------------------------------------------------------------------
// BalanceAttackAdversary
// ---------------------------------------------------------------------------

BalanceAttackAdversary::BalanceAttackAdversary(std::uint32_t honest_count,
                                               std::uint64_t delta)
    : partition_(honest_count), delta_(delta) {}

std::uint64_t BalanceAttackAdversary::honest_delay(std::uint64_t,
                                                   std::uint32_t,
                                                   std::uint32_t,
                                                   protocol::BlockIndex) {
  // Remark 8.5 of PSS: delay EVERY honest message the full Δ.  Each side
  // then lags Δ rounds behind even its own chain's growth, which is the
  // slack window in which the adversary matches the other side's blocks
  // (the 1/ν − 1/μ ≤ 1/c accounting).
  return delta_;
}

void BalanceAttackAdversary::sync_state(const AdversaryOps& ops) {
  const protocol::BlockStore& store = ops.store();
  // After a collapse the split-repair fork below will re-split the chain.
  partition_.sync_branches(ops, branch_, reset_margin_);
  // A repair fork that fell behind the main chain is dead weight.
  if (!repair_.empty() &&
      store.height_of(repair_.back()) + reset_margin_ <
          store.height_of(branch_[0])) {
    repair_.clear();
  }
}

void BalanceAttackAdversary::act(AdversaryOps& ops) {
  const protocol::BlockStore& store = ops.store();
  sync_state(ops);

  while (ops.remaining_queries() > 0) {
    if (branch_[0] == branch_[1]) {
      // Collapsed: bootstrap a fresh split.  Build a private fork from
      // one block below the common tip; once strictly longer than the
      // common chain, hand it to group 1 (group 0 keeps the original —
      // its equal-or-shorter view keeps the first-received chain).
      const protocol::BlockIndex main = branch_[0];
      const protocol::BlockIndex parent =
          repair_.empty() ? store.parent_of(main) : repair_.back();
      if (const auto mined = ops.try_mine_on(parent)) {
        repair_.push_back(*mined);
      }
      if (!repair_.empty() &&
          store.height_of(repair_.back()) > store.height_of(branch_[0])) {
        for (const protocol::BlockIndex block : repair_) {
          partition_.publish_to_group(ops, block, 1);
        }
        branch_[1] = repair_.back();
        repair_.clear();
        ++splits_;
      }
    } else {
      // Healthy split: donate to whichever branch lags.
      const std::uint64_t h0 = store.height_of(branch_[0]);
      const std::uint64_t h1 = store.height_of(branch_[1]);
      const std::uint8_t lagging = h0 <= h1 ? 0 : 1;
      if (const auto mined = ops.try_mine_on(branch_[lagging])) {
        partition_.publish_to_group(ops, *mined, lagging);
        branch_[lagging] = *mined;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SelfishMiningAdversary
// ---------------------------------------------------------------------------

SelfishMiningAdversary::SelfishMiningAdversary(double gamma) : gamma_(gamma) {
  NEATBOUND_EXPECTS(gamma >= 0.0 && gamma <= 1.0,
                    "selfish-mining gamma must be in [0,1]");
}

void SelfishMiningAdversary::on_honest_block(std::uint64_t,
                                             protocol::BlockIndex) {
  honest_block_this_round_ = true;
}

void SelfishMiningAdversary::act(AdversaryOps& ops) {
  const protocol::BlockStore& store = ops.store();
  const protocol::BlockIndex best = ops.best_honest_tip();
  const std::uint64_t best_height = store.height_of(best);

  if (!initialized_) {
    initialized_ = true;
    private_tip_ = best;
    fork_base_ = best;
  }

  // Fell behind: the private fork is dead, adopt the public chain.
  if (store.height_of(private_tip_) < best_height) {
    private_chain_.clear();
    private_tip_ = best;
    fork_base_ = best;
  }

  if (honest_block_this_round_ && !private_chain_.empty()) {
    const std::uint64_t lead = store.height_of(private_tip_) - best_height;
    if (lead == 0) {
      // The public chain caught our tip height: race.  Release everything;
      // a γ-fraction of the honest miners hear our branch first.
      const auto fast = static_cast<std::uint32_t>(
          gamma_ * static_cast<double>(ops.honest_count()));
      for (const protocol::BlockIndex block : private_chain_) {
        if (fast == 0) {
          // γ = 0: everyone hears the honest block first; ours arrives at
          // the delay limit and loses every tie.
          ops.publish_to_all(block, ops.delta());
        } else {
          for (std::uint32_t m = 0; m < fast; ++m) {
            ops.publish_to(m, block, 1);
          }
          // Gossip echo delivers to the rest within Δ.
        }
      }
      private_chain_.clear();
      fork_base_ = private_tip_;
    } else if (lead == 1) {
      // We were two ahead and honest closed to one: publish all and win.
      for (const protocol::BlockIndex block : private_chain_) {
        ops.publish_to_all(block, 1);
      }
      private_chain_.clear();
      fork_base_ = private_tip_;
    } else {
      // Comfortable lead: reveal just enough to match the public height.
      while (!private_chain_.empty() &&
             store.height_of(private_chain_.front()) <= best_height) {
        ops.publish_to_all(private_chain_.front(), 1);
        private_chain_.erase(private_chain_.begin());
      }
    }
  }
  honest_block_this_round_ = false;

  while (ops.remaining_queries() > 0) {
    if (const auto mined = ops.try_mine_on(private_tip_)) {
      private_tip_ = *mined;
      private_chain_.push_back(*mined);
    }
  }
}

// ---------------------------------------------------------------------------
// ForkBalancerAdversary
// ---------------------------------------------------------------------------

ForkBalancerAdversary::ForkBalancerAdversary(std::uint32_t honest_count,
                                             std::uint64_t delta)
    : partition_(honest_count), delta_(delta) {}

std::uint64_t ForkBalancerAdversary::honest_delay(std::uint64_t,
                                                  std::uint32_t sender,
                                                  std::uint32_t recipient,
                                                  protocol::BlockIndex) {
  // Keep the halves Δ apart but let each half hear itself fast — the
  // equivocating siblings only split the network if each side adopts its
  // own child before the other side's propagates.
  if (sender >= partition_.honest_count() ||
      recipient >= partition_.honest_count()) {
    return delta_;
  }
  return partition_.group_of(sender) == partition_.group_of(recipient)
             ? 1
             : delta_;
}

void ForkBalancerAdversary::act(AdversaryOps& ops) {
  const protocol::BlockStore& store = ops.store();
  partition_.sync_branches(ops, branch_, reset_margin_);

  while (ops.remaining_queries() > 0) {
    if (branch_[0] == branch_[1]) {
      // Collapsed: build an equivocating sibling pair on the common tip.
      // The first child is withheld; once the second lands, each half
      // receives one sibling and adopts it (both extend the tip, so the
      // longest-chain rule switches immediately).
      const protocol::BlockIndex parent = branch_[0];
      if (pending_valid_ && pending_parent_ != parent) {
        // The chain moved under a half-built pair; the orphan child can
        // never split at the front any more.
        pending_valid_ = false;
      }
      if (const auto mined = ops.try_mine_on(parent)) {
        if (!pending_valid_) {
          pending_child_ = *mined;
          pending_parent_ = parent;
          pending_valid_ = true;
        } else {
          partition_.publish_to_group(ops, pending_child_, 0);
          partition_.publish_to_group(ops, *mined, 1);
          branch_[0] = pending_child_;
          branch_[1] = *mined;
          pending_valid_ = false;
          ++equivocations_;
        }
      }
    } else {
      // Healthy split: donate to whichever branch lags so neither side
      // ever has a strictly-longer chain to defect to.
      const std::uint64_t h0 = store.height_of(branch_[0]);
      const std::uint64_t h1 = store.height_of(branch_[1]);
      const std::uint8_t lagging = h0 <= h1 ? 0 : 1;
      if (const auto mined = ops.try_mine_on(branch_[lagging])) {
        partition_.publish_to_group(ops, *mined, lagging);
        branch_[lagging] = *mined;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DelaySaturatingWithholder
// ---------------------------------------------------------------------------

DelaySaturatingWithholder::DelaySaturatingWithholder()
    : DelaySaturatingWithholder(Options{}) {}

DelaySaturatingWithholder::DelaySaturatingWithholder(Options options)
    : options_(options) {
  NEATBOUND_EXPECTS(options.rebase_margin >= 1,
                    "rebase margin must be >= 1");
}

void DelaySaturatingWithholder::act(AdversaryOps& ops) {
  const protocol::BlockStore& store = ops.store();
  const protocol::BlockIndex best = ops.best_honest_tip();
  const std::uint64_t best_height = store.height_of(best);

  // Stubborn, but not suicidal: only rebase once hopelessly behind.
  if (best_height >
      store.height_of(private_tip_) + options_.rebase_margin) {
    private_tip_ = best;
    withheld_.clear();
  }

  while (ops.remaining_queries() > 0) {
    if (const auto mined = ops.try_mine_on(private_tip_)) {
      private_tip_ = *mined;
      withheld_.push_back(*mined);
    }
  }

  // Overtake with the minimal prefix: publish withheld blocks up to height
  // best + 1 and bank the rest as an unrevealed lead.
  if (store.height_of(private_tip_) > best_height) {
    while (!withheld_.empty() &&
           store.height_of(withheld_.front()) <= best_height + 1) {
      ops.publish_to_all(withheld_.front(), 1);
      withheld_.pop_front();
      ++released_;
    }
  }
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

const char* adversary_kind_name(AdversaryKind kind) {
  switch (kind) {
    case AdversaryKind::kNull:
      return "null";
    case AdversaryKind::kMaxDelay:
      return "max-delay";
    case AdversaryKind::kPrivateWithhold:
      return "private-withhold";
    case AdversaryKind::kBalanceAttack:
      return "balance-attack";
    case AdversaryKind::kSelfishMining:
      return "selfish-mining";
    case AdversaryKind::kForkBalancer:
      return "fork-balancer";
    case AdversaryKind::kDelaySaturate:
      return "delay-saturate";
  }
  return "?";
}

std::unique_ptr<Adversary> make_adversary(AdversaryKind kind,
                                          std::uint32_t honest_count,
                                          std::uint64_t delta) {
  switch (kind) {
    case AdversaryKind::kNull:
      return std::make_unique<NullAdversary>();
    case AdversaryKind::kMaxDelay:
      return std::make_unique<MaxDelayAdversary>(delta);
    case AdversaryKind::kPrivateWithhold:
      return std::make_unique<PrivateWithholdAdversary>();
    case AdversaryKind::kBalanceAttack:
      return std::make_unique<BalanceAttackAdversary>(honest_count, delta);
    case AdversaryKind::kSelfishMining:
      return std::make_unique<SelfishMiningAdversary>();
    case AdversaryKind::kForkBalancer:
      return std::make_unique<ForkBalancerAdversary>(honest_count, delta);
    case AdversaryKind::kDelaySaturate:
      return std::make_unique<DelaySaturatingWithholder>();
  }
  NEATBOUND_ENSURES(false, "unknown adversary kind");
  return nullptr;
}

}  // namespace neatbound::sim
