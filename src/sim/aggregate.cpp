#include "sim/aggregate.hpp"

#include <bit>
#include <cmath>

#include "support/contracts.hpp"
#include "support/crng.hpp"
#include "support/rng.hpp"  // mix64 only (stateless key hashing)

namespace neatbound::sim {

namespace {

/// Online convergence-opportunity counter (pattern H N^{≥Δ} H₁ N^Δ with
/// genesis as the implicit leading H).
class OpportunityCounter {
 public:
  explicit OpportunityCounter(std::uint64_t delta) : delta_(delta) {
    quiet_before_ = delta;  // genesis counts as an already-quiet H
  }

  void observe(std::uint32_t honest_blocks) {
    if (honest_blocks == 0) {
      ++quiet_before_;
      if (candidate_armed_) {
        ++quiet_after_;
        if (quiet_after_ >= delta_) {
          ++count_;
          candidate_armed_ = false;
        }
      }
      return;
    }
    // A non-quiet round: any armed candidate dies; a new candidate arms if
    // this round is H₁ with a long-enough quiet prefix.
    candidate_armed_ = (honest_blocks == 1 && quiet_before_ >= delta_);
    quiet_after_ = 0;
    quiet_before_ = 0;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  std::uint64_t delta_;
  std::uint64_t quiet_before_ = 0;
  std::uint64_t quiet_after_ = 0;
  bool candidate_armed_ = false;
  std::uint64_t count_ = 0;
};

AggregateResult run_impl(const AggregateConfig& config,
                         RoundTraceSink* sink) {
  NEATBOUND_EXPECTS(config.honest_trials > 0.0, "need honest trials > 0");
  NEATBOUND_EXPECTS(config.adversary_trials >= 0.0,
                    "adversary trials must be >= 0");
  NEATBOUND_EXPECTS(config.p > 0.0 && config.p < 1.0, "p must be in (0,1)");
  NEATBOUND_EXPECTS(config.delta >= 1, "delta must be >= 1");
  NEATBOUND_EXPECTS(config.rounds >= 1, "rounds must be >= 1");

  // Binomial with real-valued trial counts: round to nearest integer
  // (exact when νn, μn are integral, which experiment configs ensure).
  const auto honest_n =
      static_cast<std::uint64_t>(std::llround(config.honest_trials));
  const auto adversary_n =
      static_cast<std::uint64_t>(std::llround(config.adversary_trials));

  // Counter-keyed draws, mirroring engine_rng_key: the cell folds the
  // trajectory-shaping parameters (trial counts, p, delta) and excludes
  // `rounds` and `seed`, so a longer run of the same configuration is a
  // bit-exact prefix extension and every round's binomials stay
  // addressable as (key, round) — no sequential state to replay.
  std::uint64_t cell = 0x61676772656e6764ULL;  // "aggrengd" domain tag
  const auto fold = [&cell](std::uint64_t v) { cell = mix64(cell ^ v); };
  fold(honest_n);
  fold(adversary_n);
  fold(std::bit_cast<std::uint64_t>(config.p));
  fold(config.delta);
  const crng::Key key{cell, config.seed};

  OpportunityCounter counter(config.delta);
  AggregateResult result;
  for (std::uint64_t t = 0; t < config.rounds; ++t) {
    crng::Stream draws(key, /*a=*/t + 1, /*b=*/0, crng::Purpose::kAggregate);
    const auto h =
        static_cast<std::uint32_t>(draws.binomial(honest_n, config.p));
    const std::uint64_t a =
        adversary_n == 0 ? 0 : draws.binomial(adversary_n, config.p);
    counter.observe(h);
    result.honest_blocks += h;
    result.adversary_blocks += a;
    if (h >= 1) ++result.h_rounds;
    if (h == 1) ++result.h1_rounds;
    if (sink != nullptr) {
      RoundRecord record;
      record.round = t + 1;  // engine rounds are 1-based
      record.honest_mined = h;
      record.adversary_mined = static_cast<std::uint32_t>(a);
      sink->on_round(record);
    }
  }
  result.convergence_opportunities = counter.count();
  return result;
}

/// The legacy honest-count vector as a RoundTraceSink — the shim that
/// keeps the old out-param accessor alive on top of the structured API.
class HonestCountSink final : public RoundTraceSink {
 public:
  explicit HonestCountSink(std::vector<std::uint32_t>& counts)
      : counts_(&counts) {}
  void on_round(const RoundRecord& record) override {
    counts_->push_back(record.honest_mined);
  }

 private:
  std::vector<std::uint32_t>* counts_;
};

}  // namespace

AggregateResult run_aggregate(const AggregateConfig& config) {
  return run_impl(config, nullptr);
}

AggregateResult run_aggregate_traced(const AggregateConfig& config,
                                     RoundTraceSink& sink) {
  return run_impl(config, &sink);
}

AggregateResult run_aggregate_traced(const AggregateConfig& config,
                                     std::vector<std::uint32_t>& honest_counts) {
  honest_counts.clear();
  honest_counts.reserve(config.rounds);
  HonestCountSink sink(honest_counts);
  return run_impl(config, &sink);
}

}  // namespace neatbound::sim
