#include "sim/runner.hpp"

#include <atomic>
#include <cmath>
#include <thread>

namespace neatbound::sim {

namespace {
/// Folds one run's metrics into the summary (shared by all runner paths
/// so serial and parallel aggregation cannot drift apart).
void accumulate(ExperimentSummary& summary, const RunResult& result,
                std::uint64_t violation_t) {
  summary.convergence_opportunities.add(
      static_cast<double>(result.convergence_opportunities));
  summary.adversary_blocks.add(
      static_cast<double>(result.adversary_blocks_total));
  summary.honest_blocks.add(static_cast<double>(result.honest_blocks_total));
  summary.violation_depth.add(static_cast<double>(result.violation_depth));
  summary.max_reorg_depth.add(static_cast<double>(result.max_reorg_depth));
  summary.max_divergence.add(static_cast<double>(result.max_divergence));
  summary.disagreement_rounds.add(
      static_cast<double>(result.disagreement_rounds));
  summary.chain_growth.add(result.chain.growth_per_round);
  summary.chain_quality.add(result.chain.quality);
  summary.best_height.add(static_cast<double>(result.chain.best_height));
  summary.violation_exceeds_t.add(
      result.violation_depth > violation_t ? 1.0 : 0.0);
}

std::unique_ptr<Adversary> default_adversary(AdversaryKind kind,
                                             const EngineConfig& engine_config) {
  const auto corrupted = static_cast<std::uint32_t>(
      std::llround(engine_config.adversary_fraction *
                   static_cast<double>(engine_config.miner_count)));
  return make_adversary(kind, engine_config.miner_count - corrupted,
                        engine_config.delta);
}
}  // namespace

ExperimentSummary run_experiment_with(
    const ExperimentConfig& config, std::uint64_t violation_t,
    const std::function<std::unique_ptr<Adversary>(const EngineConfig&)>&
        factory) {
  ExperimentSummary summary;
  for (std::uint32_t k = 0; k < config.seeds; ++k) {
    EngineConfig engine_config = config.engine;
    engine_config.seed = config.base_seed + k;
    ExecutionEngine engine(engine_config, factory(engine_config));
    accumulate(summary, engine.run(), violation_t);
  }
  return summary;
}

ExperimentSummary run_experiment(const ExperimentConfig& config,
                                 std::uint64_t violation_t) {
  const AdversaryKind kind = config.adversary;
  return run_experiment_with(config, violation_t,
                             [kind](const EngineConfig& engine_config) {
                               return default_adversary(kind, engine_config);
                             });
}

ExperimentSummary run_experiment_parallel(const ExperimentConfig& config,
                                          std::uint64_t violation_t,
                                          unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads, config.seeds);
  if (threads <= 1) return run_experiment(config, violation_t);

  const AdversaryKind kind = config.adversary;
  std::vector<RunResult> results(config.seeds);
  std::atomic<std::uint32_t> next_seed{0};
  auto worker = [&]() {
    for (;;) {
      const std::uint32_t k = next_seed.fetch_add(1);
      if (k >= config.seeds) return;
      EngineConfig engine_config = config.engine;
      engine_config.seed = config.base_seed + k;
      ExecutionEngine engine(engine_config,
                             default_adversary(kind, engine_config));
      results[k] = engine.run();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  // Sequential, seed-ordered aggregation: identical to the serial path.
  ExperimentSummary summary;
  for (const RunResult& result : results) {
    accumulate(summary, result, violation_t);
  }
  return summary;
}

}  // namespace neatbound::sim
