#include "sim/runner.hpp"

#include <vector>

#include "support/parallel.hpp"

namespace neatbound::sim {

void accumulate_run(ExperimentSummary& summary, const RunResult& result,
                    std::uint64_t violation_t) {
  summary.convergence_opportunities.add(
      static_cast<double>(result.convergence_opportunities));
  summary.adversary_blocks.add(
      static_cast<double>(result.adversary_blocks_total));
  summary.honest_blocks.add(static_cast<double>(result.honest_blocks_total));
  summary.violation_depth.add(static_cast<double>(result.violation_depth));
  summary.max_reorg_depth.add(static_cast<double>(result.max_reorg_depth));
  summary.max_divergence.add(static_cast<double>(result.max_divergence));
  summary.disagreement_rounds.add(
      static_cast<double>(result.disagreement_rounds));
  summary.chain_growth.add(result.chain.growth_per_round);
  summary.chain_quality.add(result.chain.quality);
  summary.best_height.add(static_cast<double>(result.chain.best_height));
  summary.violation_exceeds_t.add(
      result.violation_depth > violation_t ? 1.0 : 0.0);
  summary.telemetry.add(result.telemetry);
}

std::unique_ptr<Adversary> make_default_adversary(
    AdversaryKind kind, const EngineConfig& engine_config) {
  return make_adversary(kind, honest_miner_count(engine_config),
                        engine_config.delta);
}

AdversaryFactory default_adversary_factory(AdversaryKind kind) {
  return [kind](const EngineConfig& engine_config) {
    return make_default_adversary(kind, engine_config);
  };
}

ExperimentSummary run_experiment_with(const ExperimentConfig& config,
                                      std::uint64_t violation_t,
                                      const AdversaryFactory& factory) {
  ExperimentSummary summary;
  for (std::uint32_t k = 0; k < config.seeds; ++k) {
    EngineConfig engine_config = config.engine;
    engine_config.seed = config.base_seed + k;
    ExecutionEngine engine(engine_config, factory(engine_config));
    accumulate_run(summary, engine.run(), violation_t);
  }
  return summary;
}

ExperimentSummary run_experiment(const ExperimentConfig& config,
                                 std::uint64_t violation_t) {
  return run_experiment_with(config, violation_t,
                             default_adversary_factory(config.adversary));
}

ExperimentSummary run_experiment_parallel_with(const ExperimentConfig& config,
                                               std::uint64_t violation_t,
                                               const AdversaryFactory& factory,
                                               unsigned threads) {
  threads = resolve_thread_count(threads);
  threads = std::min<unsigned>(threads, config.seeds);
  if (threads <= 1) return run_experiment_with(config, violation_t, factory);

  std::vector<RunResult> results(config.seeds);
  parallel_for_indexed(config.seeds, threads, [&](std::size_t k) {
    EngineConfig engine_config = config.engine;
    engine_config.seed = config.base_seed + k;
    ExecutionEngine engine(engine_config, factory(engine_config));
    results[k] = engine.run();
  });

  // Sequential, seed-ordered aggregation: identical to the serial path.
  ExperimentSummary summary;
  for (const RunResult& result : results) {
    accumulate_run(summary, result, violation_t);
  }
  return summary;
}

ExperimentSummary run_experiment_parallel(const ExperimentConfig& config,
                                          std::uint64_t violation_t,
                                          unsigned threads) {
  return run_experiment_parallel_with(
      config, violation_t, default_adversary_factory(config.adversary),
      threads);
}

}  // namespace neatbound::sim
