#include "sim/trace.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "support/contracts.hpp"
#include "support/json.hpp"

namespace neatbound::sim {

namespace {

std::uint64_t parse_round_number(const std::string& text,
                                 std::size_t begin, std::size_t end) {
  std::uint64_t value = 0;
  const char* first = text.data() + begin;
  const char* last = text.data() + end;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) {
    throw std::invalid_argument("--trace-rounds: \"" + text +
                                "\" is not A:B with numeric bounds");
  }
  return value;
}

}  // namespace

TraceBounds parse_trace_rounds(const std::string& text) {
  if (text.empty()) {
    throw std::invalid_argument("--trace-rounds: empty bounds");
  }
  TraceBounds bounds;
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) {
    // A bare round number traces exactly that round.
    bounds.first_round = parse_round_number(text, 0, text.size());
    bounds.last_round = bounds.first_round;
  } else {
    if (colon > 0) {
      bounds.first_round = parse_round_number(text, 0, colon);
    }
    if (colon + 1 < text.size()) {
      bounds.last_round = parse_round_number(text, colon + 1, text.size());
    }
  }
  if (bounds.first_round == 0) {
    throw std::invalid_argument("--trace-rounds: rounds are 1-based");
  }
  if (bounds.first_round > bounds.last_round) {
    throw std::invalid_argument("--trace-rounds: first round " +
                                std::to_string(bounds.first_round) +
                                " exceeds last round " +
                                std::to_string(bounds.last_round));
  }
  return bounds;
}

BoundedTraceWriter::BoundedTraceWriter(std::ostream& os, TraceBounds bounds)
    : os_(&os), bounds_(bounds) {
  NEATBOUND_EXPECTS(bounds.first_round <= bounds.last_round,
                    "trace bounds must be a non-empty window");
  NEATBOUND_EXPECTS(bounds.max_records >= 1,
                    "trace bounds must admit at least one record");
}

void BoundedTraceWriter::on_round(const RoundRecord& record) {
  if (!bounds_.contains(record.round)) return;
  if (written_ >= bounds_.max_records) {
    truncated_ = true;
    return;
  }
  *os_ << to_jsonl_line(record) << '\n';
  ++written_;
}

std::string to_jsonl_line(const RoundRecord& record) {
  std::string line;
  line.reserve(160 + record.mined_by.size() * 4);
  line += "{\"round\":";
  line += std::to_string(record.round);
  line += ",\"honest_mined\":";
  line += std::to_string(record.honest_mined);
  line += ",\"adversary_mined\":";
  line += std::to_string(record.adversary_mined);
  line += ",\"mined_by\":[";
  for (std::size_t i = 0; i < record.mined_by.size(); ++i) {
    if (i > 0) line += ',';
    line += std::to_string(record.mined_by[i]);
  }
  line += "],\"delivered\":";
  line += std::to_string(record.delivered);
  line += ",\"adoptions\":";
  line += std::to_string(record.adoptions);
  line += ",\"best_height\":";
  line += std::to_string(record.best_height);
  line += ",\"violation_depth\":";
  line += std::to_string(record.violation_depth);
  line += '}';
  return line;
}

namespace {

constexpr const char* kRecordKeys[] = {
    "round",     "honest_mined", "adversary_mined", "mined_by",
    "delivered", "adoptions",    "best_height",     "violation_depth",
};

[[noreturn]] void trace_error(std::size_t line_number,
                              const std::string& what) {
  throw std::runtime_error("trace line " + std::to_string(line_number) +
                           ": " + what);
}

}  // namespace

RoundRecord round_record_from_json(const support::JsonValue& value) {
  if (!value.is_object()) {
    throw std::runtime_error("expected a JSON object");
  }
  const auto& members = value.as_object();
  constexpr std::size_t kKeyCount =
      sizeof(kRecordKeys) / sizeof(kRecordKeys[0]);
  if (members.size() != kKeyCount) {
    throw std::runtime_error("expected exactly " + std::to_string(kKeyCount) +
                             " keys, got " + std::to_string(members.size()));
  }
  for (const char* key : kRecordKeys) {
    if (value.find(key) == nullptr) {
      throw std::runtime_error(std::string("missing key \"") + key + "\"");
    }
  }
  RoundRecord record;
  record.round = value.at("round").as_uint();
  record.honest_mined =
      static_cast<std::uint32_t>(value.at("honest_mined").as_uint());
  record.adversary_mined =
      static_cast<std::uint32_t>(value.at("adversary_mined").as_uint());
  for (const support::JsonValue& id : value.at("mined_by").as_array()) {
    record.mined_by.push_back(static_cast<std::uint32_t>(id.as_uint()));
  }
  record.delivered =
      static_cast<std::uint32_t>(value.at("delivered").as_uint());
  record.adoptions =
      static_cast<std::uint32_t>(value.at("adoptions").as_uint());
  record.best_height = value.at("best_height").as_uint();
  record.violation_depth = value.at("violation_depth").as_uint();
  // Empty mined_by with honest_mined > 0 is the aggregate-engine form
  // (counting-only records, miner identity not modeled).
  if (!record.mined_by.empty() &&
      record.mined_by.size() != record.honest_mined) {
    throw std::runtime_error("mined_by length disagrees with honest_mined");
  }
  return record;
}

std::vector<RoundRecord> read_trace_jsonl(std::istream& is) {
  std::vector<RoundRecord> records;
  std::string line;
  std::size_t line_number = 0;
  bool saw_blank = false;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) {
      saw_blank = true;
      continue;
    }
    if (saw_blank) {
      trace_error(line_number, "record after a blank line");
    }
    RoundRecord record;
    try {
      record = round_record_from_json(support::parse_json(line));
    } catch (const std::exception& e) {
      trace_error(line_number, e.what());
    }
    if (!records.empty() && record.round <= records.back().round) {
      trace_error(line_number, "rounds must be strictly increasing");
    }
    records.push_back(std::move(record));
  }
  return records;
}

RoundRecord make_round_record(const ExecutionEngine& engine,
                              std::uint64_t round) {
  const RoundActivity& activity = engine.round_activity();
  RoundRecord record;
  record.round = round;
  record.honest_mined = activity.honest_mined;
  record.adversary_mined = activity.adversary_mined;
  record.mined_by.assign(engine.round_miners().begin(),
                         engine.round_miners().end());
  record.delivered = activity.delivered;
  record.adoptions = activity.adoptions;
  record.best_height = engine.best_height();
  record.violation_depth = engine.violation_depth();
  return record;
}

ExecutionEngine::RoundObserver make_round_tracer(RoundTraceSink& sink) {
  return [&sink](const ExecutionEngine& engine, std::uint64_t round) {
    sink.on_round(make_round_record(engine, round));
  };
}

}  // namespace neatbound::sim
