// Convergence opportunities and the concatenated chain C_{F‖P}.
//
// A convergence opportunity is the paper's F‖P state HN^{≥Δ} ‖ H₁N^Δ:
//   (i)   some honest block exists,                  then
//   (ii)  ≥ Δ rounds with no honest block,           then
//   (iii) a round where EXACTLY ONE honest block is mined,  then
//   (iv)  Δ more rounds with no honest block.
// At its end, every honest player agrees on a unique longest chain.
//
// The paper proves (Eq. 44):
//   π_{F‖P}(HN^{≥Δ} ‖ H₁N^Δ) = ᾱ^{2Δ}·α₁
// and E[C(t₀, t₀+T−1)] = T·ᾱ^{2Δ}·α₁ (Eq. 26); and Proposition 1:
//   min π_{F‖P} = (min π_F)·(min{p^{μn}, (1−p)^{μn}})^{Δ+1},
//   ‖φ‖_π ≤ 1/sqrt(min π_{F‖P}).
#pragma once

#include <cstdint>
#include <span>

#include "chains/suffix_chain.hpp"
#include "support/logprob.hpp"

namespace neatbound::chains {

/// Per-round probabilities of the detailed states (Eq. 41):
/// P[H_h] = C(μn, h)·p^h·(1−p)^{μn−h} and P[N] = (1−p)^{μn}.
struct DetailedStateModel {
  double honest_trials = 0.0;  ///< μn (need not be integral)
  double p = 0.0;              ///< proof-of-work hardness

  /// P[H_h]: exactly h honest blocks in a round; h ≥ 1.
  [[nodiscard]] LogProb prob_h(std::uint64_t h) const;
  /// P[N] = ᾱ.
  [[nodiscard]] LogProb prob_n() const;
  /// α = 1 − ᾱ.
  [[nodiscard]] LogProb prob_some() const;
  /// α₁ = P[H₁].
  [[nodiscard]] LogProb prob_one() const;
  /// min over Detailed-State-Set of the per-round probability — the
  /// paper's Eq. (97): min{p^{μn}, (1−p)^{μn}}.
  [[nodiscard]] LogProb min_detailed_prob() const;
};

/// Eq. (44): π_{F‖P}(HN^{≥Δ}‖H₁N^Δ) = ᾱ^{2Δ}·α₁, in log space.
[[nodiscard]] LogProb convergence_opportunity_probability(
    LogProb alpha_bar, LogProb alpha1, std::uint64_t delta);

/// Eq. (26): E[C(t₀, t₀+T−1)] = T·ᾱ^{2Δ}·α₁.
[[nodiscard]] LogProb expected_convergence_opportunities(
    LogProb alpha_bar, LogProb alpha1, std::uint64_t delta, double window);

/// Proposition 1: min π_{F‖P} and the π-norm bound ‖φ‖_π ≤ 1/sqrt(min π).
[[nodiscard]] LogProb min_stationary_concatenated(
    const DetailedStateModel& model, std::uint64_t delta, LogProb alpha_bar);

/// Counts convergence opportunities in a series of per-round honest block
/// counts.  `honest_blocks[t]` is the number of blocks honest miners mined
/// in round t.  The genesis block plays the role of the leading H, so a
/// qualifying H₁ at small t (with only N's before it) counts as long as
/// the quiet gaps hold.  A round t is counted when:
///   honest_blocks[t] == 1,
///   honest_blocks[t−Δ .. t−1] are all 0 (or t < Δ with all-zero prefix),
///   honest_blocks[t+1 .. t+Δ] are all 0 (requires t+Δ < size).
[[nodiscard]] std::uint64_t count_convergence_opportunities(
    std::span<const std::uint32_t> honest_blocks, std::uint64_t delta);

}  // namespace neatbound::chains
