#include "chains/convergence.hpp"

#include <cmath>

#include "stats/distributions.hpp"

namespace neatbound::chains {

LogProb DetailedStateModel::prob_h(std::uint64_t h) const {
  NEATBOUND_EXPECTS(h >= 1, "H_h states require h >= 1");
  const stats::Binomial binom(honest_trials, p);
  return binom.pmf(static_cast<double>(h));
}

LogProb DetailedStateModel::prob_n() const {
  return stats::Binomial(honest_trials, p).prob_zero();
}

LogProb DetailedStateModel::prob_some() const {
  return stats::Binomial(honest_trials, p).prob_positive();
}

LogProb DetailedStateModel::prob_one() const {
  return stats::Binomial(honest_trials, p).prob_one();
}

LogProb DetailedStateModel::min_detailed_prob() const {
  NEATBOUND_EXPECTS(p > 0.0 && p < 1.0, "requires p in (0,1)");
  // Eq. (97): the extremes of the detailed pmf are H_{μn} (= p^{μn}) and
  // N (= (1−p)^{μn}); the smaller is the minimum over the whole set.
  const LogProb all_mine =
      LogProb::from_log(honest_trials * std::log(p));
  const LogProb none = prob_n();
  return all_mine < none ? all_mine : none;
}

LogProb convergence_opportunity_probability(LogProb alpha_bar, LogProb alpha1,
                                            std::uint64_t delta) {
  NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
  return alpha_bar.pow(2.0 * static_cast<double>(delta)) * alpha1;
}

LogProb expected_convergence_opportunities(LogProb alpha_bar, LogProb alpha1,
                                           std::uint64_t delta,
                                           double window) {
  NEATBOUND_EXPECTS(window > 0.0, "window must be positive");
  return LogProb::from_linear(window) *
         convergence_opportunity_probability(alpha_bar, alpha1, delta);
}

LogProb min_stationary_concatenated(const DetailedStateModel& model,
                                    std::uint64_t delta, LogProb alpha_bar) {
  const LogProb min_pi_f = min_stationary_suffix(delta, alpha_bar);
  const LogProb min_detail = model.min_detailed_prob();
  return min_pi_f * min_detail.pow(static_cast<double>(delta) + 1.0);
}

std::uint64_t count_convergence_opportunities(
    std::span<const std::uint32_t> honest_blocks, std::uint64_t delta) {
  NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
  const std::size_t n = honest_blocks.size();
  std::uint64_t count = 0;
  // quiet_before: number of consecutive zero rounds immediately before t.
  std::uint64_t quiet_before = delta;  // genesis supplies the leading quiet H
  for (std::size_t t = 0; t < n; ++t) {
    if (honest_blocks[t] == 0) {
      ++quiet_before;
      continue;
    }
    if (honest_blocks[t] == 1 && quiet_before >= delta &&
        t + delta < n) {
      bool quiet_after = true;
      for (std::size_t j = t + 1; j <= t + delta; ++j) {
        if (honest_blocks[j] != 0) {
          quiet_after = false;
          break;
        }
      }
      if (quiet_after) ++count;
    }
    quiet_before = 0;
  }
  return count;
}

}  // namespace neatbound::chains
