#include "chains/suffix_state.hpp"

namespace neatbound::chains {

SuffixStateSpace::SuffixStateSpace(std::uint64_t delta) : delta_(delta) {
  NEATBOUND_EXPECTS(delta >= 1, "suffix chain requires delta >= 1");
  // The dense index layout assumes 2Δ+1 fits in size_t comfortably; the
  // matrix-based tooling is only meant for laptop-scale Δ anyway.
  NEATBOUND_EXPECTS(delta <= (1ULL << 20),
                    "explicit suffix state space limited to delta <= 2^20");
}

std::size_t SuffixStateSpace::index_of(const SuffixState& s) const {
  switch (s.kind) {
    case SuffixKind::kShortGapHead:
      NEATBOUND_EXPECTS(s.tail == 0, "head state has no tail");
      return 0;
    case SuffixKind::kShortGapTail:
      NEATBOUND_EXPECTS(s.tail >= 1 && s.tail <= delta_ - 1,
                        "short-gap tail a must be in 1..delta-1");
      return static_cast<std::size_t>(s.tail);
    case SuffixKind::kLongGap:
      NEATBOUND_EXPECTS(s.tail == 0, "long-gap state has no tail");
      return static_cast<std::size_t>(delta_);
    case SuffixKind::kLongGapTail:
      NEATBOUND_EXPECTS(s.tail <= delta_ - 1,
                        "long-gap tail b must be in 0..delta-1");
      return static_cast<std::size_t>(delta_ + 1 + s.tail);
  }
  NEATBOUND_ENSURES(false, "unreachable: invalid SuffixKind");
  return 0;
}

SuffixState SuffixStateSpace::state_at(std::size_t index) const {
  NEATBOUND_EXPECTS(index < size(), "suffix state index out of range");
  const std::uint64_t i = index;
  if (i == 0) return {SuffixKind::kShortGapHead, 0};
  if (i <= delta_ - 1) return {SuffixKind::kShortGapTail, i};
  if (i == delta_) return {SuffixKind::kLongGap, 0};
  return {SuffixKind::kLongGapTail, i - delta_ - 1};
}

std::string SuffixStateSpace::name_of(const SuffixState& s) const {
  const std::string short_gap = "HN<=" + std::to_string(delta_ - 1);
  const std::string long_gap = "HN>=" + std::to_string(delta_);
  switch (s.kind) {
    case SuffixKind::kShortGapHead:
      return short_gap + ".H";
    case SuffixKind::kShortGapTail:
      return short_gap + ".H.N" + std::to_string(s.tail);
    case SuffixKind::kLongGap:
      return long_gap;
    case SuffixKind::kLongGapTail:
      return long_gap + ".H.N" + std::to_string(s.tail);
  }
  return "?";
}

SuffixState SuffixStateSpace::transition(const SuffixState& from,
                                         bool next_is_h) const {
  // Rules ①–④ of Section V-A / the edges of Fig. 2.
  if (next_is_h) {
    // Rule ③: any state whose last coarse symbol closes a gap of ≤ Δ−1
    // moves to HN^{≤Δ−1}H; the long-gap state starts its tail at b = 0
    // (rule ②, b = 0 case).
    switch (from.kind) {
      case SuffixKind::kShortGapHead:
      case SuffixKind::kShortGapTail:
      case SuffixKind::kLongGapTail:
        return {SuffixKind::kShortGapHead, 0};
      case SuffixKind::kLongGap:
        return {SuffixKind::kLongGapTail, 0};
    }
  } else {
    // Rules ① / ② / ④: N extends the trailing run; when the run reaches
    // Δ the state collapses into HN^{≥Δ} (rule ④).
    switch (from.kind) {
      case SuffixKind::kShortGapHead: {
        if (delta_ == 1) return {SuffixKind::kLongGap, 0};
        return {SuffixKind::kShortGapTail, 1};
      }
      case SuffixKind::kShortGapTail: {
        if (from.tail + 1 <= delta_ - 1) {
          return {SuffixKind::kShortGapTail, from.tail + 1};
        }
        return {SuffixKind::kLongGap, 0};
      }
      case SuffixKind::kLongGap:
        return {SuffixKind::kLongGap, 0};
      case SuffixKind::kLongGapTail: {
        if (from.tail + 1 <= delta_ - 1) {
          return {SuffixKind::kLongGapTail, from.tail + 1};
        }
        return {SuffixKind::kLongGap, 0};
      }
    }
  }
  NEATBOUND_ENSURES(false, "unreachable: invalid SuffixKind");
  return {};
}

std::vector<std::optional<SuffixState>> classify_series(
    const std::vector<bool>& series, std::uint64_t delta) {
  const SuffixStateSpace space(delta);
  std::vector<std::optional<SuffixState>> out(series.size());

  // Warm-up: after the first H we track the state *as if* the suffix were
  // HN^{≤Δ−1}H.  Transitions from that pseudo-state coincide with the true
  // ones in every case that matters: an H within Δ−1 rounds genuinely
  // produces HN^{≤Δ−1}H, and a run of Δ N's genuinely produces HN^{≥Δ}.
  // The state only becomes *reportable* once a second H has occurred or a
  // ≥Δ gap has elapsed — exactly the paper's “sufficiently large t”.
  bool seen_first_h = false;
  bool reportable = false;
  std::uint64_t h_count = 0;
  SuffixState state{SuffixKind::kShortGapHead, 0};

  for (std::size_t t = 0; t < series.size(); ++t) {
    const bool is_h = series[t];
    if (!seen_first_h) {
      if (is_h) {
        seen_first_h = true;
        h_count = 1;
        state = {SuffixKind::kShortGapHead, 0};
      }
      continue;  // states before the first H are undefined
    }
    state = space.transition(state, is_h);
    if (is_h) ++h_count;
    if (h_count >= 2 || state.kind == SuffixKind::kLongGap) reportable = true;
    if (reportable) out[t] = state;
  }
  return out;
}

}  // namespace neatbound::chains
