// The suffix-of-previous-and-current-states Markov chain C_F (Fig. 2) and
// its stationary distribution, both numerically (via the generic markov
// library) and in the paper's closed form, Eq. (37a–d):
//
//   π_F(HN^{≤Δ−1}H)     = α·(1 − ᾱ^Δ)            (37a)
//   π_F(HN^{≤Δ−1}HN^a)  = α·(1 − ᾱ^Δ)·ᾱ^a        (37b)
//   π_F(HN^{≥Δ})        = ᾱ^Δ                    (37c)
//   π_F(HN^{≥Δ}HN^b)    = α·ᾱ^{Δ+b}              (37d)
//
// where α = P[round is H] and ᾱ = 1 − α.
#pragma once

#include <vector>

#include "chains/suffix_state.hpp"
#include "markov/chain.hpp"
#include "support/logprob.hpp"

namespace neatbound::chains {

/// Builds the explicit (2Δ+1)-state transition matrix of C_F for a given
/// per-round honest-success probability α.  Suitable for laptop-scale Δ.
[[nodiscard]] markov::TransitionMatrix build_suffix_chain_matrix(
    const SuffixStateSpace& space, double alpha);

/// Builds a MarkovChain with human-readable state names attached.
[[nodiscard]] markov::MarkovChain build_suffix_chain(
    const SuffixStateSpace& space, double alpha);

/// Closed-form stationary probability of one suffix state, Eq. (37a–d),
/// computed in log space so it works at paper-scale Δ (e.g. 10^13) where
/// the state space cannot be materialized.  `log_alpha_bar` = ln ᾱ.
[[nodiscard]] LogProb stationary_closed_form(const SuffixState& state,
                                             std::uint64_t delta,
                                             LogProb alpha_bar);

/// Closed-form stationary distribution as a dense vector indexed like
/// SuffixStateSpace::index_of — for comparison with numeric solvers.
[[nodiscard]] std::vector<double> stationary_closed_form_vector(
    const SuffixStateSpace& space, double alpha);

/// min_f π_F(f) per the paper's Eq. (99):
///   min π_F = α·ᾱ^{Δ−1}·min{1 − ᾱ^Δ, ᾱ^Δ}.
[[nodiscard]] LogProb min_stationary_suffix(std::uint64_t delta,
                                            LogProb alpha_bar);

}  // namespace neatbound::chains
