// The concatenated chain C_{F‖P} (Section V-A, Eq. 39–40, Appendix J),
// materialized explicitly for small parameters.
//
// A vertex is the tuple (F_{t−Δ−1}, S_{t−Δ}, …, S_t): the suffix state of
// everything before the last Δ+1 rounds, followed by the detailed states
// of those rounds.  The detailed state of a round is N (no honest block)
// or H_h (exactly h honest blocks, 1 ≤ h ≤ μn) — Eq. (38).
//
// The paper proves (Eq. 40, Appendix J) that the stationary law is the
// product π_F(f)·Π P[s⁽ⁱ⁾], and that the convergence-opportunity vertex
// HN^{≥Δ} ‖ H₁N^Δ has mass ᾱ^{2Δ}α₁ (Eq. 44).  This module lets us check
// both *numerically* from the transition structure, rather than trusting
// the algebra: the state space has (2Δ+1)·(μn+1)^{Δ+1} vertices, which is
// tractable for μn and Δ of a few units.
#pragma once

#include <cstdint>
#include <vector>

#include "chains/convergence.hpp"
#include "chains/suffix_state.hpp"
#include "markov/chain.hpp"
#include "support/logprob.hpp"

namespace neatbound::chains {

/// Explicit state space of C_{F‖P} for honest trial count m = μn (integer)
/// and delay Δ.  Detailed states are encoded 0 = N, h = H_h for 1 ≤ h ≤ m.
class ConcatenatedStateSpace {
 public:
  /// Requires m ≥ 1 and the total state count to stay ≤ 2^22.
  ConcatenatedStateSpace(std::uint64_t delta, std::uint32_t honest_trials);

  [[nodiscard]] std::uint64_t delta() const noexcept { return delta_; }
  [[nodiscard]] std::uint32_t honest_trials() const noexcept { return m_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Number of detailed-state symbols: m+1 (N plus H_1..H_m).
  [[nodiscard]] std::uint32_t symbol_count() const noexcept { return m_ + 1; }

  /// Dense index of (suffix f, window s⁽¹⁾..s⁽^{Δ+1}⁾).
  [[nodiscard]] std::size_t index_of(
      const SuffixState& f, const std::vector<std::uint32_t>& window) const;

  /// Inverse of index_of.
  void decode(std::size_t index, SuffixState& f,
              std::vector<std::uint32_t>& window) const;

  /// The index of the convergence-opportunity vertex
  /// HN^{≥Δ} ‖ H₁ N^Δ  (suffix = long gap, window = (H₁, N, …, N)).
  [[nodiscard]] std::size_t convergence_vertex() const;

 private:
  std::uint64_t delta_;
  std::uint32_t m_;
  std::size_t suffix_count_;
  std::size_t window_count_;
  std::size_t size_;
};

/// Builds the explicit transition matrix of C_{F‖P}: from
/// (f, s¹..s^{Δ+1}) the next vertex is (suffix(f‖coarse(s¹)), s²..s^{Δ+1}, s′)
/// with probability P[s′] from Eq. (41).
[[nodiscard]] markov::TransitionMatrix build_concatenated_matrix(
    const ConcatenatedStateSpace& space, const DetailedStateModel& model);

/// The product-form stationary vector of Eq. (40):
/// π(f, s¹..s^{Δ+1}) = π_F(f)·Π P[sⁱ], as linear doubles.
[[nodiscard]] std::vector<double> concatenated_stationary_product_form(
    const ConcatenatedStateSpace& space, const DetailedStateModel& model);

}  // namespace neatbound::chains
