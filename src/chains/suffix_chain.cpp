#include "chains/suffix_chain.hpp"

namespace neatbound::chains {

markov::TransitionMatrix build_suffix_chain_matrix(
    const SuffixStateSpace& space, double alpha) {
  NEATBOUND_EXPECTS(alpha > 0.0 && alpha < 1.0,
                    "suffix chain requires alpha in (0,1)");
  markov::TransitionMatrix matrix(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    const SuffixState from = space.state_at(i);
    const SuffixState on_h = space.transition(from, /*next_is_h=*/true);
    const SuffixState on_n = space.transition(from, /*next_is_h=*/false);
    matrix.add(i, space.index_of(on_h), alpha);
    matrix.add(i, space.index_of(on_n), 1.0 - alpha);
  }
  matrix.check_stochastic();
  return matrix;
}

markov::MarkovChain build_suffix_chain(const SuffixStateSpace& space,
                                       double alpha) {
  std::vector<std::string> names;
  names.reserve(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    names.push_back(space.name_of(space.state_at(i)));
  }
  return markov::MarkovChain(build_suffix_chain_matrix(space, alpha),
                             std::move(names));
}

LogProb stationary_closed_form(const SuffixState& state, std::uint64_t delta,
                               LogProb alpha_bar) {
  NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
  NEATBOUND_EXPECTS(!alpha_bar.is_zero() && alpha_bar < LogProb::one(),
                    "alpha_bar must be in (0,1)");
  const LogProb alpha = alpha_bar.complement();
  const LogProb abar_delta = alpha_bar.pow(static_cast<double>(delta));
  const LogProb one_minus_abar_delta = abar_delta.complement();
  switch (state.kind) {
    case SuffixKind::kShortGapHead:  // (37a)
      return alpha * one_minus_abar_delta;
    case SuffixKind::kShortGapTail:  // (37b)
      NEATBOUND_EXPECTS(state.tail >= 1 && state.tail <= delta - 1,
                        "short-gap tail out of range");
      return alpha * one_minus_abar_delta *
             alpha_bar.pow(static_cast<double>(state.tail));
    case SuffixKind::kLongGap:  // (37c)
      return abar_delta;
    case SuffixKind::kLongGapTail:  // (37d)
      NEATBOUND_EXPECTS(state.tail <= delta - 1, "long-gap tail out of range");
      return alpha * alpha_bar.pow(static_cast<double>(delta + state.tail));
  }
  NEATBOUND_ENSURES(false, "unreachable: invalid SuffixKind");
  return LogProb::zero();
}

std::vector<double> stationary_closed_form_vector(const SuffixStateSpace& space,
                                                  double alpha) {
  NEATBOUND_EXPECTS(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  const LogProb alpha_bar = LogProb::from_linear(1.0 - alpha);
  std::vector<double> pi(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    pi[i] = stationary_closed_form(space.state_at(i), space.delta(), alpha_bar)
                .linear();
  }
  return pi;
}

LogProb min_stationary_suffix(std::uint64_t delta, LogProb alpha_bar) {
  const LogProb alpha = alpha_bar.complement();
  const LogProb abar_delta = alpha_bar.pow(static_cast<double>(delta));
  const LogProb one_minus_abar_delta = abar_delta.complement();
  const LogProb smaller =
      abar_delta < one_minus_abar_delta ? abar_delta : one_minus_abar_delta;
  return alpha * alpha_bar.pow(static_cast<double>(delta - 1)) * smaller;
}

}  // namespace neatbound::chains
