// Empirical suffix-state frequencies from simulated traces.
//
// Bridges the simulator and the Markov analysis: a per-round honest
// block-count trace (from either engine) is classified into Suffix-Set
// states via classify_series, and the visit frequencies are compared with
// the closed-form stationary distribution of Eq. (37).  This validates
// the whole pipeline — binomial mining, the suffix classifier and the
// stationary algebra — against each other on real executions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "chains/suffix_state.hpp"

namespace neatbound::chains {

struct SuffixFrequencyReport {
  std::vector<std::uint64_t> visits;  ///< per dense state index
  std::uint64_t classified_rounds = 0;  ///< rounds with a defined state
  std::uint64_t total_rounds = 0;

  /// Empirical frequency of a state (0 when nothing was classified).
  [[nodiscard]] double frequency(std::size_t index) const {
    if (classified_rounds == 0) return 0.0;
    return static_cast<double>(visits.at(index)) /
           static_cast<double>(classified_rounds);
  }
};

/// Classifies a per-round honest block-count trace (H iff count ≥ 1) and
/// tallies suffix-state visits.
[[nodiscard]] SuffixFrequencyReport suffix_frequencies(
    std::span<const std::uint32_t> honest_counts, std::uint64_t delta);

/// Max over states of |empirical frequency − closed-form stationary|.
[[nodiscard]] double max_frequency_error(const SuffixFrequencyReport& report,
                                         const SuffixStateSpace& space,
                                         double alpha);

}  // namespace neatbound::chains
