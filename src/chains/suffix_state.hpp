// The Suffix-Set state space of the paper's Eq. (29) and the suffix
// transition function of Eq. (30) / Fig. 2.
//
// A round's coarse state is H (≥1 honest block mined) or N (none).  The
// suffix chain C_F tracks which of 2Δ+1 suffix patterns the history of
// coarse states currently matches:
//
//   index 0        : HN^{≤Δ−1}H           (“recent H, short gap before it”)
//   index a ∈ 1..Δ−1 : HN^{≤Δ−1}HN^a      (short gap, then a trailing N)
//   index Δ        : HN^{≥Δ}              (long N run since the last H)
//   index Δ+1+b,
//     b ∈ 0..Δ−1   : HN^{≥Δ}HN^b          (long gap, an H, b trailing N)
//
// Total: 2Δ+1 states, matching the paper.  For Δ = 1 the a-range is empty
// and the set degenerates to {HH, HN^{≥1}, HN^{≥1}H} (3 states).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "support/contracts.hpp"

namespace neatbound::chains {

/// Which of the four pattern families a suffix state belongs to.
enum class SuffixKind : std::uint8_t {
  kShortGapHead,   ///< HN^{≤Δ−1}H        (paper: the “converged-ish” head)
  kShortGapTail,   ///< HN^{≤Δ−1}HN^a,    a ∈ {1..Δ−1}
  kLongGap,        ///< HN^{≥Δ}
  kLongGapTail,    ///< HN^{≥Δ}HN^b,      b ∈ {0..Δ−1}
};

/// A suffix state: kind plus the trailing-N count (a or b; 0 otherwise).
struct SuffixState {
  SuffixKind kind = SuffixKind::kShortGapHead;
  std::uint64_t tail = 0;  ///< a for kShortGapTail, b for kLongGapTail

  friend bool operator==(const SuffixState&, const SuffixState&) = default;
};

/// The full suffix state space for a given Δ, with dense index mapping.
class SuffixStateSpace {
 public:
  explicit SuffixStateSpace(std::uint64_t delta);

  [[nodiscard]] std::uint64_t delta() const noexcept { return delta_; }

  /// Number of states: 2Δ+1.
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(2 * delta_ + 1);
  }

  /// Dense index of a state (0-based; layout documented above).
  [[nodiscard]] std::size_t index_of(const SuffixState& s) const;

  /// Inverse of index_of.
  [[nodiscard]] SuffixState state_at(std::size_t index) const;

  /// Human-readable name, e.g. "HN<=2.H", "HN>=3.H.N2".
  [[nodiscard]] std::string name_of(const SuffixState& s) const;

  /// The suffix transition function of Eq. (30): the state reached from
  /// `from` when the next round's coarse state is H (`next_is_h` = true)
  /// or N.  Implements exactly rules ①–④ of Section V-A.
  [[nodiscard]] SuffixState transition(const SuffixState& from,
                                       bool next_is_h) const;

 private:
  std::uint64_t delta_;
};

/// Folds a raw H/N series into per-round suffix states.
///
/// The suffix chain is only well-defined once enough history exists (the
/// paper conditions on “at least two H having happened”, or one H followed
/// by a ≥Δ gap).  Entries before that point are nullopt.  `series[t]` is
/// true iff round t's coarse state is H.  (Takes vector<bool> by reference
/// because its packed representation cannot form a span.)
[[nodiscard]] std::vector<std::optional<SuffixState>> classify_series(
    const std::vector<bool>& series, std::uint64_t delta);

}  // namespace neatbound::chains
