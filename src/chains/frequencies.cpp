#include "chains/frequencies.hpp"

#include <cmath>

#include "chains/suffix_chain.hpp"

namespace neatbound::chains {

SuffixFrequencyReport suffix_frequencies(
    std::span<const std::uint32_t> honest_counts, std::uint64_t delta) {
  const SuffixStateSpace space(delta);
  std::vector<bool> series(honest_counts.size());
  for (std::size_t t = 0; t < honest_counts.size(); ++t) {
    series[t] = honest_counts[t] >= 1;
  }
  const auto states = classify_series(series, delta);

  SuffixFrequencyReport report;
  report.visits.assign(space.size(), 0);
  report.total_rounds = honest_counts.size();
  for (const auto& state : states) {
    if (!state.has_value()) continue;
    ++report.visits[space.index_of(*state)];
    ++report.classified_rounds;
  }
  return report;
}

double max_frequency_error(const SuffixFrequencyReport& report,
                           const SuffixStateSpace& space, double alpha) {
  const auto pi = stationary_closed_form_vector(space, alpha);
  double worst = 0.0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    worst = std::max(worst, std::fabs(report.frequency(i) - pi[i]));
  }
  return worst;
}

}  // namespace neatbound::chains
