#include "chains/concatenated_chain.hpp"

#include <cmath>

#include "chains/suffix_chain.hpp"

namespace neatbound::chains {

namespace {
std::size_t ipow(std::size_t base, std::uint64_t exp) {
  std::size_t out = 1;
  for (std::uint64_t i = 0; i < exp; ++i) out *= base;
  return out;
}
}  // namespace

ConcatenatedStateSpace::ConcatenatedStateSpace(std::uint64_t delta,
                                               std::uint32_t honest_trials)
    : delta_(delta), m_(honest_trials) {
  NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
  NEATBOUND_EXPECTS(honest_trials >= 1, "need at least one honest miner");
  suffix_count_ = 2 * delta_ + 1;
  window_count_ = ipow(symbol_count(), delta_ + 1);
  size_ = suffix_count_ * window_count_;
  NEATBOUND_EXPECTS(size_ <= (1ULL << 22),
                    "explicit C_{F||P} limited to 2^22 states; reduce delta "
                    "or honest_trials");
}

std::size_t ConcatenatedStateSpace::index_of(
    const SuffixState& f, const std::vector<std::uint32_t>& window) const {
  NEATBOUND_EXPECTS(window.size() == delta_ + 1,
                    "window must contain delta+1 detailed states");
  const SuffixStateSpace suffix_space(delta_);
  std::size_t window_index = 0;
  for (const std::uint32_t s : window) {
    NEATBOUND_EXPECTS(s <= m_, "detailed state symbol out of range");
    window_index = window_index * symbol_count() + s;
  }
  return suffix_space.index_of(f) * window_count_ + window_index;
}

void ConcatenatedStateSpace::decode(std::size_t index, SuffixState& f,
                                    std::vector<std::uint32_t>& window) const {
  NEATBOUND_EXPECTS(index < size_, "state index out of range");
  const SuffixStateSpace suffix_space(delta_);
  f = suffix_space.state_at(index / window_count_);
  std::size_t window_index = index % window_count_;
  window.assign(delta_ + 1, 0);
  for (std::size_t i = delta_ + 1; i-- > 0;) {
    window[i] = static_cast<std::uint32_t>(window_index % symbol_count());
    window_index /= symbol_count();
  }
}

std::size_t ConcatenatedStateSpace::convergence_vertex() const {
  std::vector<std::uint32_t> window(delta_ + 1, 0);
  window[0] = 1;  // H₁ followed by Δ times N
  return index_of({SuffixKind::kLongGap, 0}, window);
}

markov::TransitionMatrix build_concatenated_matrix(
    const ConcatenatedStateSpace& space, const DetailedStateModel& model) {
  const SuffixStateSpace suffix_space(space.delta());
  markov::TransitionMatrix matrix(space.size());

  // Per-symbol probabilities from Eq. (41).
  std::vector<double> symbol_prob(space.symbol_count());
  symbol_prob[0] = model.prob_n().linear();
  for (std::uint32_t h = 1; h <= space.honest_trials(); ++h) {
    symbol_prob[h] = model.prob_h(h).linear();
  }

  SuffixState f;
  std::vector<std::uint32_t> window;
  std::vector<std::uint32_t> next_window(space.delta() + 1);
  for (std::size_t from = 0; from < space.size(); ++from) {
    space.decode(from, f, window);
    // The oldest window symbol s¹ folds into the suffix; its coarse state
    // is H iff s¹ ≥ 1.
    const SuffixState next_f =
        suffix_space.transition(f, /*next_is_h=*/window[0] >= 1);
    for (std::size_t i = 0; i + 1 < window.size(); ++i) {
      next_window[i] = window[i + 1];
    }
    for (std::uint32_t s = 0; s < space.symbol_count(); ++s) {
      next_window[space.delta()] = s;
      matrix.add(from, space.index_of(next_f, next_window), symbol_prob[s]);
    }
  }
  matrix.check_stochastic(1e-9);
  return matrix;
}

std::vector<double> concatenated_stationary_product_form(
    const ConcatenatedStateSpace& space, const DetailedStateModel& model) {
  const LogProb alpha_bar = model.prob_n();
  std::vector<double> symbol_prob(space.symbol_count());
  symbol_prob[0] = alpha_bar.linear();
  for (std::uint32_t h = 1; h <= space.honest_trials(); ++h) {
    symbol_prob[h] = model.prob_h(h).linear();
  }

  std::vector<double> pi(space.size());
  SuffixState f;
  std::vector<std::uint32_t> window;
  for (std::size_t i = 0; i < space.size(); ++i) {
    space.decode(i, f, window);
    double mass =
        stationary_closed_form(f, space.delta(), alpha_bar).linear();
    for (const std::uint32_t s : window) mass *= symbol_prob[s];
    pi[i] = mass;
  }
  return pi;
}

}  // namespace neatbound::chains
