#include "protocol/block_store.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace neatbound::protocol {

BlockStore::BlockStore() {
  Block genesis;
  genesis.hash = 0;
  genesis.parent_hash = 0;
  genesis.parent = kGenesisIndex;
  genesis.height = 0;
  genesis.round = 0;
  genesis.miner_class = MinerClass::kGenesis;
  blocks_.push_back(std::move(genesis));
  by_hash_.emplace(0, kGenesisIndex);
}

const Block& BlockStore::block(BlockIndex index) const {
  NEATBOUND_EXPECTS(index < blocks_.size(), "block index out of range");
  return blocks_[index];
}

BlockIndex BlockStore::add(Block block) {
  const auto parent_it = by_hash_.find(block.parent_hash);
  NEATBOUND_EXPECTS(parent_it != by_hash_.end(),
                    "parent block must exist before its child");
  NEATBOUND_EXPECTS(by_hash_.find(block.hash) == by_hash_.end(),
                    "duplicate block hash (oracle collision)");
  block.parent = parent_it->second;
  block.height = blocks_[block.parent].height + 1;
  NEATBOUND_EXPECTS(block.round >= blocks_[block.parent].round,
                    "child round must not precede parent round");
  const auto index = static_cast<BlockIndex>(blocks_.size());
  by_hash_.emplace(block.hash, index);
  blocks_.push_back(std::move(block));
  return index;
}

bool BlockStore::contains_hash(HashValue hash) const noexcept {
  return by_hash_.find(hash) != by_hash_.end();
}

BlockIndex BlockStore::index_of(HashValue hash) const {
  const auto it = by_hash_.find(hash);
  NEATBOUND_EXPECTS(it != by_hash_.end(), "unknown block hash");
  return it->second;
}

BlockIndex BlockStore::ancestor(BlockIndex index, std::uint64_t steps) const {
  NEATBOUND_EXPECTS(index < blocks_.size(), "block index out of range");
  BlockIndex cur = index;
  while (steps > 0 && cur != kGenesisIndex) {
    cur = blocks_[cur].parent;
    --steps;
  }
  return cur;
}

BlockIndex BlockStore::common_ancestor(BlockIndex a, BlockIndex b) const {
  NEATBOUND_EXPECTS(a < blocks_.size() && b < blocks_.size(),
                    "block index out of range");
  // Equalize heights, then walk up in lockstep.
  while (blocks_[a].height > blocks_[b].height) a = blocks_[a].parent;
  while (blocks_[b].height > blocks_[a].height) b = blocks_[b].parent;
  while (a != b) {
    a = blocks_[a].parent;
    b = blocks_[b].parent;
  }
  return a;
}

std::uint64_t BlockStore::common_prefix_height(BlockIndex a,
                                               BlockIndex b) const {
  return blocks_[common_ancestor(a, b)].height;
}

bool BlockStore::is_ancestor(BlockIndex ancestor_candidate,
                             BlockIndex descendant) const {
  NEATBOUND_EXPECTS(
      ancestor_candidate < blocks_.size() && descendant < blocks_.size(),
      "block index out of range");
  BlockIndex cur = descendant;
  const std::uint64_t target_height = blocks_[ancestor_candidate].height;
  while (blocks_[cur].height > target_height) cur = blocks_[cur].parent;
  return cur == ancestor_candidate;
}

std::vector<BlockIndex> BlockStore::chain_to(BlockIndex tip) const {
  NEATBOUND_EXPECTS(tip < blocks_.size(), "block index out of range");
  std::vector<BlockIndex> chain;
  chain.reserve(blocks_[tip].height + 1);
  for (BlockIndex cur = tip;; cur = blocks_[cur].parent) {
    chain.push_back(cur);
    if (cur == kGenesisIndex) break;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::vector<std::string> BlockStore::extract_messages(BlockIndex tip) const {
  std::vector<std::string> messages;
  for (const BlockIndex index : chain_to(tip)) {
    const Block& b = blocks_[index];
    if (!b.message.empty()) messages.push_back(b.message);
  }
  return messages;
}

}  // namespace neatbound::protocol
