#include "protocol/block_store.hpp"

#include <algorithm>

#include "support/invariant.hpp"
#include "support/telemetry.hpp"

namespace neatbound::protocol {

BlockStore::BlockStore() {
  hash_.push_back(0);
  parent_hash_.push_back(0);
  parent_.push_back(kGenesisIndex);
  height_.push_back(0);
  round_.push_back(0);
  nonce_.push_back(0);
  payload_digest_.push_back(0);
  miner_.push_back(0);
  miner_class_.push_back(MinerClass::kGenesis);
  message_.emplace_back();
  by_hash_.emplace(0, kGenesisIndex);
}

Block BlockStore::block(BlockIndex index) const {
  check_index(index);
  Block b;
  b.hash = hash_[index];
  b.parent_hash = parent_hash_[index];
  b.parent = parent_[index];
  b.height = height_[index];
  b.round = round_[index];
  b.nonce = nonce_[index];
  b.payload_digest = payload_digest_[index];
  b.miner = miner_[index];
  b.miner_class = miner_class_[index];
  b.message = message_[index];
  return b;
}

// neatbound-analyze: allow(hot-alloc) — accepted allocation boundary:
// add() is the append-only SoA growth point; every push_back amortizes
// geometrically over blocks ever mined, and nothing downstream of it is
// per-delivery work.  Keep new columns inside this function.
BlockIndex BlockStore::add(Block block) {
  const auto parent_it = by_hash_.find(block.parent_hash);
  NEATBOUND_EXPECTS(parent_it != by_hash_.end(),
                    "parent block must exist before its child");
  NEATBOUND_EXPECTS(by_hash_.find(block.hash) == by_hash_.end(),
                    "duplicate block hash (oracle collision)");
  const BlockIndex parent = parent_it->second;
  const std::uint32_t height = height_[parent] + 1;
  NEATBOUND_EXPECTS(block.round >= round_[parent],
                    "child round must not precede parent round");
  const auto index = static_cast<BlockIndex>(hash_.size());
  by_hash_.emplace(block.hash, index);

  hash_.push_back(block.hash);
  parent_hash_.push_back(block.parent_hash);
  parent_.push_back(parent);
  height_.push_back(height);
  round_.push_back(block.round);
  nonce_.push_back(block.nonce);
  payload_digest_.push_back(block.payload_digest);
  miner_.push_back(block.miner);
  miner_class_.push_back(block.miner_class);
  message_.push_back(std::move(block.message));

  // Extend the skip table: row k holds the 2^(k+1)-th ancestor, computed
  // as the 2^k-th ancestor of the 2^k-th ancestor.  Rows the new block is
  // too shallow for get a genesis pad so every row stays index-aligned;
  // a row created here is backfilled with genesis, correct because every
  // earlier block is shallower than 2^(k+1).
  BlockIndex half_step = parent;  // the 2^k-th ancestor, k starting at 0
  const std::size_t needed_rows = [&] {
    std::size_t rows = 0;
    while ((std::uint64_t{2} << rows) <= height) ++rows;
    return rows;
  }();
  if (skip_.size() < needed_rows) {
    NEATBOUND_COUNT(kSkipRowsBuilt);
    skip_.emplace_back(index, kGenesisIndex);
    NEATBOUND_ENSURES(skip_.size() == needed_rows,
                      "heights grow by one, so rows appear one at a time");
  }
  for (unsigned k = 1; k <= skip_.size(); ++k) {
    const bool real = (std::uint64_t{1} << k) <= height;
    const BlockIndex anc = real ? lift(half_step, k - 1) : kGenesisIndex;
    skip_[k - 1].push_back(anc);
    half_step = anc;
  }

  // Column-length lockstep: every SoA column (and every skip row) must
  // cover exactly the blocks appended so far — a short column would turn
  // the next *_of read into a silent out-of-bounds.
  NEATBOUND_INVARIANT(
      parent_hash_.size() == hash_.size() && parent_.size() == hash_.size() &&
          height_.size() == hash_.size() && round_.size() == hash_.size() &&
          nonce_.size() == hash_.size() &&
          payload_digest_.size() == hash_.size() &&
          miner_.size() == hash_.size() &&
          miner_class_.size() == hash_.size() &&
          message_.size() == hash_.size() && by_hash_.size() == hash_.size(),
      "SoA columns out of lockstep after add()");
  NEATBOUND_INVARIANT(
      std::all_of(skip_.begin(), skip_.end(),
                  [&](const std::vector<BlockIndex>& row) {
                    return row.size() == hash_.size();
                  }),
      "skip-table row not index-aligned with the SoA columns");
  NEATBOUND_INVARIANT(height_[index] == height_[parent] + 1,
                      "child height must be parent height + 1");
  return index;
}

bool BlockStore::contains_hash(HashValue hash) const noexcept {
  return by_hash_.find(hash) != by_hash_.end();
}

BlockIndex BlockStore::index_of(HashValue hash) const {
  const auto it = by_hash_.find(hash);
  NEATBOUND_EXPECTS(it != by_hash_.end(), "unknown block hash");
  return it->second;
}

BlockIndex BlockStore::ancestor(BlockIndex index, std::uint64_t steps) const {
  check_index(index);
  if (steps >= height_[index]) return kGenesisIndex;  // documented clamp
  return ancestor_at_height(index, height_[index] - steps);
}

BlockIndex BlockStore::ancestor_at_height(BlockIndex index,
                                          std::uint64_t target_height) const {
  NEATBOUND_COUNT(kAncestryQueries);
  check_index(index);
  NEATBOUND_EXPECTS(target_height <= height_[index],
                    "target height above the block");
  std::uint64_t diff = height_[index] - target_height;
  for (unsigned k = 0; diff != 0; ++k, diff >>= 1) {
    if (diff & 1) index = lift(index, k);
  }
  return index;
}

BlockIndex BlockStore::common_ancestor(BlockIndex a, BlockIndex b) const {
  NEATBOUND_COUNT(kAncestryQueries);
  check_index(a);
  check_index(b);
  // Equalize heights with skip jumps, then binary-search the fork point.
  if (height_[a] > height_[b]) a = ancestor_at_height(a, height_[b]);
  if (height_[b] > height_[a]) b = ancestor_at_height(b, height_[a]);
  if (a == b) return a;
  for (unsigned k = static_cast<unsigned>(skip_.size()) + 1; k-- > 0;) {
    // Equal lifts mean the common ancestor is at or above that level —
    // don't jump; unequal lifts are both strictly below it — jump.
    // (Genesis-padded entries compare equal, so overshoots never jump.)
    const BlockIndex la = lift(a, k);
    const BlockIndex lb = lift(b, k);
    if (la != lb) {
      a = la;
      b = lb;
    }
  }
  return parent_[a];
}

std::uint64_t BlockStore::common_prefix_height(BlockIndex a,
                                               BlockIndex b) const {
  return height_[common_ancestor(a, b)];
}

bool BlockStore::is_ancestor(BlockIndex ancestor_candidate,
                             BlockIndex descendant) const {
  check_index(ancestor_candidate);
  check_index(descendant);
  if (height_[ancestor_candidate] > height_[descendant]) return false;
  return ancestor_at_height(descendant, height_[ancestor_candidate]) ==
         ancestor_candidate;
}

std::vector<BlockIndex> BlockStore::chain_to(BlockIndex tip) const {
  check_index(tip);
  std::vector<BlockIndex> chain;
  chain.reserve(height_[tip] + 1);
  for (BlockIndex cur = tip;; cur = parent_[cur]) {
    chain.push_back(cur);
    if (cur == kGenesisIndex) break;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::vector<std::string> BlockStore::extract_messages(BlockIndex tip) const {
  std::vector<std::string> messages;
  for (const BlockIndex index : chain_to(tip)) {
    if (!message_[index].empty()) messages.push_back(message_[index]);
  }
  return messages;
}

}  // namespace neatbound::protocol
