// Chain validation: the checks an honest player performs before accepting
// a chain (Section III): hash linkage, proof-of-work validity via H.ver,
// height monotonicity and round sanity.
#pragma once

#include <string>

#include "protocol/block_store.hpp"
#include "protocol/hash.hpp"

namespace neatbound::protocol {

struct ValidationReport {
  bool valid = true;
  std::string failure;  ///< empty when valid

  static ValidationReport ok() { return {}; }
  static ValidationReport fail(std::string why) {
    return {false, std::move(why)};
  }
};

/// Validates the full chain from genesis to `tip` against the oracle and
/// target: every block's hash must verify (H.ver), satisfy the PoW target,
/// link to its parent's hash, increase height by one, and not precede its
/// parent's round.
[[nodiscard]] ValidationReport validate_chain(const BlockStore& store,
                                              BlockIndex tip,
                                              const RandomOracle& oracle,
                                              const PowTarget& target);

}  // namespace neatbound::protocol
