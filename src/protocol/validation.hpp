// Chain validation: the checks an honest player performs before accepting
// a chain (Section III): hash linkage, proof-of-work validity via H.ver,
// height monotonicity and round sanity.
#pragma once

#include <string>

#include "protocol/block_store.hpp"
#include "protocol/hash.hpp"

namespace neatbound::protocol {

struct ValidationReport {
  bool valid = true;
  std::string failure;  ///< empty when valid

  static ValidationReport ok() { return {}; }
  static ValidationReport fail(std::string why) {
    return {false, std::move(why)};
  }
};

/// Which checks validate_chain applies.  Counter-mode executions
/// (EngineConfig::rng_mode == kCounter) decide query success via an
/// addressable Bernoulli field rather than a hash-vs-target comparison,
/// so their block hashes are full-range uniform and carry no ≤-target
/// certificate — such chains validate with check_pow_target off, while
/// hash linkage, H.ver, height and round checks always apply.
struct ValidationPolicy {
  bool check_pow_target = true;
};

/// Validates the full chain from genesis to `tip` against the oracle and
/// target: every block's hash must verify (H.ver), satisfy the PoW target
/// (when the policy asks for it), link to its parent's hash, increase
/// height by one, and not precede its parent's round.
[[nodiscard]] ValidationReport validate_chain(const BlockStore& store,
                                              BlockIndex tip,
                                              const RandomOracle& oracle,
                                              const PowTarget& target,
                                              ValidationPolicy policy);

/// Legacy-policy overload: all checks on.
[[nodiscard]] ValidationReport validate_chain(const BlockStore& store,
                                              BlockIndex tip,
                                              const RandomOracle& oracle,
                                              const PowTarget& target);

}  // namespace neatbound::protocol
