// Block records and miner identities.
#pragma once

#include <cstdint>
#include <string>

#include "protocol/hash.hpp"

namespace neatbound::protocol {

/// Dense index of a block inside a BlockStore; index 0 is genesis.
using BlockIndex = std::uint32_t;
inline constexpr BlockIndex kGenesisIndex = 0;

/// Who mined a block.
enum class MinerClass : std::uint8_t {
  kGenesis,    ///< the pre-agreed genesis block
  kHonest,
  kAdversary,
};

/// An abstract block record (Section III): parent link, the proof of work
/// (nonce + hash), the round it was created, its miner, and the message
/// (transactions) the environment handed the miner, stored as a digest
/// plus optional plaintext for ext().
struct Block {
  HashValue hash = 0;            ///< H(parent_hash, nonce, payload_digest)
  HashValue parent_hash = 0;
  BlockIndex parent = kGenesisIndex;
  std::uint64_t height = 0;      ///< genesis = 0
  std::uint64_t round = 0;       ///< creation round
  std::uint64_t nonce = 0;       ///< the PoW witness η
  std::uint64_t payload_digest = 0;
  std::uint32_t miner = 0;       ///< miner id (meaningful for honest blocks)
  MinerClass miner_class = MinerClass::kHonest;
  std::string message;           ///< environment-provided content (may be empty)
};

}  // namespace neatbound::protocol
