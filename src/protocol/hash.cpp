#include "protocol/hash.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace neatbound::protocol {

PowTarget PowTarget::from_probability(double p) {
  NEATBOUND_EXPECTS(p > 0.0 && p < 1.0, "PoW hardness must be in (0,1)");
  // P[h ≤ t] = (t+1)/2^64 for uniform h; solve t = p·2^64 − 1, clamped.
  const double scaled = std::ldexp(p, 64);
  HashValue threshold = 0;
  if (scaled >= 1.0) {
    const double t = scaled - 1.0;
    threshold = t >= 18446744073709551615.0
                    ? ~0ULL - 1
                    : static_cast<HashValue>(t);
  }
  return PowTarget(threshold);
}

double PowTarget::probability() const noexcept {
  return std::ldexp(static_cast<double>(threshold_) + 1.0, -64);
}

HashValue RandomOracle::query(HashValue parent, std::uint64_t nonce,
                              std::uint64_t payload_digest) const noexcept {
  // Feed the tuple through the splitmix64 finalizer in a sponge-like
  // chain; distinct tuples map to independent-looking outputs.
  std::uint64_t h = seed_;
  h = mix64(h ^ (parent + 0x9e3779b97f4a7c15ULL));
  h = mix64(h ^ (nonce + 0xbf58476d1ce4e5b9ULL));
  h = mix64(h ^ (payload_digest + 0x94d049bb133111ebULL));
  return h;
}

}  // namespace neatbound::protocol
