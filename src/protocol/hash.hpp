// The random oracle H : {0,1}* → {0,1}^κ of the paper's Section III,
// instantiated at κ = 64 with a splitmix64-based mixing function, plus the
// verification oracle H.ver and the proof-of-work predicate
//   H(h₋₁, η, m) ≤ D_p.
//
// Substitution note (see DESIGN.md): the analysis requires only that each
// query succeeds independently with probability p and that block ids are
// collision-free; a seeded 64-bit mixer provides both, is reproducible,
// and supports the full H/H.ver interface the model specifies.
#pragma once

#include <cstdint>

#include "support/contracts.hpp"

namespace neatbound::protocol {

/// 64-bit hash value (κ = 64).
using HashValue = std::uint64_t;

/// The proof-of-work target D_p: a query succeeds iff H(...) ≤ D_p.
class PowTarget {
 public:
  /// D_p chosen so that P[H(x) ≤ D_p] = p for uniform H output.
  static PowTarget from_probability(double p);

  [[nodiscard]] HashValue threshold() const noexcept { return threshold_; }

  /// The success probability this target realizes (≈ p up to 2⁻⁶⁴ rounding).
  [[nodiscard]] double probability() const noexcept;

  [[nodiscard]] bool satisfied_by(HashValue h) const noexcept {
    return h <= threshold_;
  }

 private:
  explicit PowTarget(HashValue threshold) noexcept : threshold_(threshold) {}
  HashValue threshold_;
};

/// The random oracle, seeded per execution so runs are reproducible.
class RandomOracle {
 public:
  explicit RandomOracle(std::uint64_t seed) noexcept : seed_(seed) {}

  /// H(h₋₁, η, m): hash of (parent hash, nonce, payload digest).
  [[nodiscard]] HashValue query(HashValue parent, std::uint64_t nonce,
                                std::uint64_t payload_digest) const noexcept;

  /// H.ver(x, y): 1 iff H(x) = y (Section III's verification oracle).
  [[nodiscard]] bool verify(HashValue parent, std::uint64_t nonce,
                            std::uint64_t payload_digest,
                            HashValue claimed) const noexcept {
    return query(parent, nonce, payload_digest) == claimed;
  }

 private:
  std::uint64_t seed_;
};

}  // namespace neatbound::protocol
