// Mining: one oracle query per honest miner per round; νn sequential
// queries for the adversary (Section III's access discipline).
#pragma once

#include <optional>

#include "protocol/block.hpp"
#include "protocol/hash.hpp"
#include "support/rng.hpp"

namespace neatbound::protocol {

/// Attempts a single proof-of-work query: draws a fresh nonce η, computes
/// H(parent_hash, η, payload_digest) and succeeds iff it meets the target.
/// Returns the assembled block on success (miner/class/round/message are
/// filled by the caller), nullopt on failure.
///
/// The success probability equals PowTarget::probability() exactly, since
/// the oracle output is uniform over 64-bit values for fresh nonces.
[[nodiscard]] std::optional<Block> try_mine(const RandomOracle& oracle,
                                            const PowTarget& target,
                                            HashValue parent_hash,
                                            std::uint64_t payload_digest,
    // neatbound-analyze: allow(rng-stream) — legacy-mode entry point
                                            Rng& rng);

/// Batched-RNG variant: the caller supplies the nonce η it drew itself —
/// the engine pre-draws one dense block of nonces for a whole round of
/// honest queries (same stream, same order as per-query draws, so results
/// are bit-identical) instead of interleaving RNG steps with hashing.
[[nodiscard]] std::optional<Block> try_mine_with_nonce(
    const RandomOracle& oracle, const PowTarget& target,
    HashValue parent_hash, std::uint64_t payload_digest, std::uint64_t nonce);

/// Counter-mode assembly: success of the query was already decided by the
/// addressable Bernoulli(p) field (sim/draws.hpp), so no target test is
/// performed here — the block is assembled unconditionally.  Its hash
/// still commits to (parent, nonce, payload) via the oracle, so hash
/// linkage and H.ver hold exactly as in legacy mode; only the per-block
/// ≤-target certificate is absent (see ValidationPolicy and
/// docs/correctness.md — the paper's analysis uses the per-query success
/// probability p and collision-free ids, never the certificate itself).
[[nodiscard]] Block assemble_block(const RandomOracle& oracle,
                                   HashValue parent_hash,
                                   std::uint64_t payload_digest,
                                   std::uint64_t nonce);

}  // namespace neatbound::protocol
