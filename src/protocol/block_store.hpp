// Append-only block tree shared by the whole execution.
//
// Every mined block (honest or adversarial, published or withheld) lives
// here exactly once; per-miner *views* are subsets of indices (src/sim).
// The store maintains parent links and heights and answers ancestry /
// common-prefix queries, which is all the longest-chain rule needs.
//
// Storage is structure-of-arrays: each block field lives in its own
// parallel vector, indexed by BlockIndex.  The simulation hot path
// (T×n oracle queries, ancestry walks in the consistency metrics) touches
// only one or two fields per block, so SoA keeps those reads dense in
// cache instead of striding over whole Block records.  A binary-lifting
// skip-pointer table (skip_[k][i] = the 2^(k+1)-th ancestor of i) makes
// ancestor() / common_ancestor() O(log h) pointer hops instead of O(h)
// parent walks.  The `Block` struct survives as the value type used to
// *assemble* a block (mining) and as the materialized record `block()`
// returns for cold paths (tests, validation, demos).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "protocol/block.hpp"
#include "support/contracts.hpp"
#include "support/hot.hpp"

namespace neatbound::protocol {

class BlockStore {
 public:
  /// Creates the store holding only the genesis block (hash 0, height 0).
  BlockStore();

  /// Number of blocks including genesis.
  [[nodiscard]] std::size_t size() const noexcept { return hash_.size(); }

  /// Materialized copy of one block record — a convenience for cold paths
  /// (tests, chain validation, demos).  Hot paths should read the field
  /// they need through the *_of accessors below.
  [[nodiscard]] Block block(BlockIndex index) const;

  // --- per-field accessors over the SoA columns ---
  [[nodiscard]] HashValue hash_of(BlockIndex index) const {
    check_index(index);
    return hash_[index];
  }
  [[nodiscard]] HashValue parent_hash_of(BlockIndex index) const {
    check_index(index);
    return parent_hash_[index];
  }
  [[nodiscard]] BlockIndex parent_of(BlockIndex index) const {
    check_index(index);
    return parent_[index];
  }
  [[nodiscard]] std::uint64_t height_of(BlockIndex index) const {
    check_index(index);
    return height_[index];
  }
  [[nodiscard]] std::uint64_t round_of(BlockIndex index) const {
    check_index(index);
    return round_[index];
  }
  [[nodiscard]] std::uint64_t nonce_of(BlockIndex index) const {
    check_index(index);
    return nonce_[index];
  }
  [[nodiscard]] std::uint64_t payload_digest_of(BlockIndex index) const {
    check_index(index);
    return payload_digest_[index];
  }
  [[nodiscard]] std::uint32_t miner_of(BlockIndex index) const {
    check_index(index);
    return miner_[index];
  }
  [[nodiscard]] MinerClass miner_class_of(BlockIndex index) const {
    check_index(index);
    return miner_class_[index];
  }
  [[nodiscard]] const std::string& message_of(BlockIndex index) const {
    check_index(index);
    return message_[index];
  }

  /// Appends a block whose parent must already exist; fills in height and
  /// parent index, and indexes the hash.  Returns the new block's index.
  /// Duplicate hashes are a contract violation (the oracle is collision-
  /// free at the scales simulated).
  BlockIndex add(Block block);

  /// Looks up a block by hash; returns nullptr-like sentinel via found flag.
  [[nodiscard]] bool contains_hash(HashValue hash) const noexcept;
  [[nodiscard]] BlockIndex index_of(HashValue hash) const;

  /// Walks up from `index` by `steps` parent links, *clamping at genesis*:
  /// when `steps` meets or exceeds the block's height the walk bottoms out
  /// and genesis is returned (never an underflow or an error).  In
  /// particular ancestor(genesis, k) == genesis for every k.  O(log steps)
  /// via the skip table.
  [[nodiscard]] NEATBOUND_HOT BlockIndex ancestor(BlockIndex index,
                                                  std::uint64_t steps) const;

  /// The unique ancestor of `index` at height `target_height`, which must
  /// not exceed the block's own height.  O(log h).
  [[nodiscard]] NEATBOUND_HOT BlockIndex ancestor_at_height(
      BlockIndex index, std::uint64_t target_height) const;

  /// The deepest common ancestor of two blocks.  O(log h).
  [[nodiscard]] NEATBOUND_HOT BlockIndex common_ancestor(BlockIndex a,
                                                         BlockIndex b) const;

  /// Height of the deepest common ancestor — the "agreement depth" used by
  /// consistency metrics.
  [[nodiscard]] NEATBOUND_HOT std::uint64_t common_prefix_height(
      BlockIndex a, BlockIndex b) const;

  /// True iff `ancestor_candidate` is on the path from `descendant` to
  /// genesis (inclusive).  O(log h).
  [[nodiscard]] NEATBOUND_HOT bool is_ancestor(BlockIndex ancestor_candidate,
                                               BlockIndex descendant) const;

  /// The chain from genesis to `tip`, genesis first.
  [[nodiscard]] std::vector<BlockIndex> chain_to(BlockIndex tip) const;

  /// ext(κ, C): the ordered sequence of (non-empty) messages along the
  /// chain to `tip`, genesis first (Section III's output algorithm).
  [[nodiscard]] std::vector<std::string> extract_messages(
      BlockIndex tip) const;

 private:
  void check_index(BlockIndex index) const {
    NEATBOUND_EXPECTS(index < hash_.size(), "block index out of range");
  }
  /// The 2^k-th ancestor of `index` (k = 0 is the parent link).  Reads a
  /// genesis pad entry when 2^k exceeds the block's height.
  [[nodiscard]] BlockIndex lift(BlockIndex index, unsigned level) const {
    return level == 0 ? parent_[index] : skip_[level - 1][index];
  }

  // SoA columns, all indexed by BlockIndex and equal in length.
  std::vector<HashValue> hash_;
  std::vector<HashValue> parent_hash_;
  std::vector<BlockIndex> parent_;
  std::vector<std::uint32_t> height_;  ///< ≤ size() − 1, fits 32 bits
  std::vector<std::uint64_t> round_;
  std::vector<std::uint64_t> nonce_;
  std::vector<std::uint64_t> payload_digest_;
  std::vector<std::uint32_t> miner_;
  std::vector<MinerClass> miner_class_;
  std::vector<std::string> message_;
  /// skip_[k][i] = 2^(k+1)-th ancestor of i, genesis-padded when the
  /// block is too shallow.  Row k is created lazily when the first block
  /// of height ≥ 2^(k+1) is added (at which point every earlier block is
  /// shallower, so the backfill is all-genesis by construction).
  std::vector<std::vector<BlockIndex>> skip_;
  std::unordered_map<HashValue, BlockIndex> by_hash_;
};

}  // namespace neatbound::protocol
