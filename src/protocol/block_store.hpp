// Append-only block tree shared by the whole execution.
//
// Every mined block (honest or adversarial, published or withheld) lives
// here exactly once; per-miner *views* are subsets of indices (src/sim).
// The store maintains parent links and heights and answers ancestry /
// common-prefix queries, which is all the longest-chain rule needs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "protocol/block.hpp"

namespace neatbound::protocol {

class BlockStore {
 public:
  /// Creates the store holding only the genesis block (hash 0, height 0).
  BlockStore();

  /// Number of blocks including genesis.
  [[nodiscard]] std::size_t size() const noexcept { return blocks_.size(); }

  [[nodiscard]] const Block& block(BlockIndex index) const;

  /// Appends a block whose parent must already exist; fills in height and
  /// parent index, and indexes the hash.  Returns the new block's index.
  /// Duplicate hashes are a contract violation (the oracle is collision-
  /// free at the scales simulated).
  BlockIndex add(Block block);

  /// Looks up a block by hash; returns nullptr-like sentinel via found flag.
  [[nodiscard]] bool contains_hash(HashValue hash) const noexcept;
  [[nodiscard]] BlockIndex index_of(HashValue hash) const;

  [[nodiscard]] std::uint64_t height_of(BlockIndex index) const {
    return block(index).height;
  }

  /// Walks up from `index` by `steps` parent links (clamping at genesis).
  [[nodiscard]] BlockIndex ancestor(BlockIndex index,
                                    std::uint64_t steps) const;

  /// The deepest common ancestor of two blocks.
  [[nodiscard]] BlockIndex common_ancestor(BlockIndex a, BlockIndex b) const;

  /// Height of the deepest common ancestor — the "agreement depth" used by
  /// consistency metrics.
  [[nodiscard]] std::uint64_t common_prefix_height(BlockIndex a,
                                                   BlockIndex b) const;

  /// True iff `ancestor_candidate` is on the path from `descendant` to
  /// genesis (inclusive).
  [[nodiscard]] bool is_ancestor(BlockIndex ancestor_candidate,
                                 BlockIndex descendant) const;

  /// The chain from genesis to `tip`, genesis first.
  [[nodiscard]] std::vector<BlockIndex> chain_to(BlockIndex tip) const;

  /// ext(κ, C): the ordered sequence of (non-empty) messages along the
  /// chain to `tip`, genesis first (Section III's output algorithm).
  [[nodiscard]] std::vector<std::string> extract_messages(
      BlockIndex tip) const;

 private:
  std::vector<Block> blocks_;
  std::unordered_map<HashValue, BlockIndex> by_hash_;
};

}  // namespace neatbound::protocol
