#include "protocol/mining.hpp"

namespace neatbound::protocol {

std::optional<Block> try_mine(const RandomOracle& oracle,
                              const PowTarget& target, HashValue parent_hash,
                              // neatbound-analyze: allow(rng-stream) —
                              // legacy-mode entry point
                              std::uint64_t payload_digest, Rng& rng) {
  return try_mine_with_nonce(oracle, target, parent_hash, payload_digest,
                             rng.bits());
}

std::optional<Block> try_mine_with_nonce(const RandomOracle& oracle,
                                         const PowTarget& target,
                                         HashValue parent_hash,
                                         std::uint64_t payload_digest,
                                         std::uint64_t nonce) {
  const HashValue hash = oracle.query(parent_hash, nonce, payload_digest);
  if (!target.satisfied_by(hash)) return std::nullopt;
  Block block;
  block.hash = hash;
  block.parent_hash = parent_hash;
  block.nonce = nonce;
  block.payload_digest = payload_digest;
  return block;
}

Block assemble_block(const RandomOracle& oracle, HashValue parent_hash,
                     std::uint64_t payload_digest, std::uint64_t nonce) {
  Block block;
  block.hash = oracle.query(parent_hash, nonce, payload_digest);
  block.parent_hash = parent_hash;
  block.nonce = nonce;
  block.payload_digest = payload_digest;
  return block;
}

}  // namespace neatbound::protocol
