#include "protocol/validation.hpp"

namespace neatbound::protocol {

ValidationReport validate_chain(const BlockStore& store, BlockIndex tip,
                                const RandomOracle& oracle,
                                const PowTarget& target,
                                ValidationPolicy policy) {
  const auto chain = store.chain_to(tip);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const BlockIndex b = chain[i];
    const BlockIndex parent = chain[i - 1];
    const std::uint64_t height = store.height_of(b);
    if (store.parent_hash_of(b) != store.hash_of(parent)) {
      return ValidationReport::fail("hash linkage broken at height " +
                                    std::to_string(height));
    }
    if (height != store.height_of(parent) + 1) {
      return ValidationReport::fail("height not incremented at height " +
                                    std::to_string(height));
    }
    if (store.round_of(b) < store.round_of(parent)) {
      return ValidationReport::fail("round precedes parent at height " +
                                    std::to_string(height));
    }
    if (!oracle.verify(store.parent_hash_of(b), store.nonce_of(b),
                       store.payload_digest_of(b), store.hash_of(b))) {
      return ValidationReport::fail("H.ver failed at height " +
                                    std::to_string(height));
    }
    if (policy.check_pow_target && !target.satisfied_by(store.hash_of(b))) {
      return ValidationReport::fail("proof of work misses target at height " +
                                    std::to_string(height));
    }
  }
  return ValidationReport::ok();
}

ValidationReport validate_chain(const BlockStore& store, BlockIndex tip,
                                const RandomOracle& oracle,
                                const PowTarget& target) {
  return validate_chain(store, tip, oracle, target, ValidationPolicy{});
}

}  // namespace neatbound::protocol
