#include "protocol/validation.hpp"

namespace neatbound::protocol {

ValidationReport validate_chain(const BlockStore& store, BlockIndex tip,
                                const RandomOracle& oracle,
                                const PowTarget& target) {
  const auto chain = store.chain_to(tip);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const Block& b = store.block(chain[i]);
    const Block& parent = store.block(chain[i - 1]);
    if (b.parent_hash != parent.hash) {
      return ValidationReport::fail("hash linkage broken at height " +
                                    std::to_string(b.height));
    }
    if (b.height != parent.height + 1) {
      return ValidationReport::fail("height not incremented at height " +
                                    std::to_string(b.height));
    }
    if (b.round < parent.round) {
      return ValidationReport::fail("round precedes parent at height " +
                                    std::to_string(b.height));
    }
    if (!oracle.verify(b.parent_hash, b.nonce, b.payload_digest, b.hash)) {
      return ValidationReport::fail("H.ver failed at height " +
                                    std::to_string(b.height));
    }
    if (!target.satisfied_by(b.hash)) {
      return ValidationReport::fail("proof of work misses target at height " +
                                    std::to_string(b.height));
    }
  }
  return ValidationReport::ok();
}

}  // namespace neatbound::protocol
