// The Δ-delay asynchronous network (Section III, adversary capability ①).
//
// A block broadcast at the end of round r reaches recipient i at the start
// of round r + d, where the delay d is chosen per (message, recipient) by
// a DeliverySchedule with 1 ≤ d ≤ Δ.  d = 1 is "next round" (the fastest
// physically meaningful delivery in the round model); d = Δ saturates the
// adversary's delaying power.  The adversary may not drop or modify
// messages — only the delay is under its control — which the queue
// enforces by construction.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "protocol/block.hpp"
#include "support/contracts.hpp"
#include "support/crng.hpp"
#include "support/hot.hpp"
#include "support/invariant.hpp"
#include "support/rng.hpp"

namespace neatbound::net {

/// A block announcement in flight to one recipient.
struct Delivery {
  std::uint64_t due_round = 0;
  std::uint32_t recipient = 0;
  protocol::BlockIndex block = 0;
};

/// Round-indexed delivery calendar for all recipients: a flat ring buffer
/// of per-round buckets.  Δ is small and bounded, so every in-flight
/// message lives within a narrow window of future rounds — a
/// bucket-per-round ring makes schedule() an O(1) vector append and the
/// per-round drain a contiguous sweep, where any ordered container would
/// pay comparisons and pointer chasing on the T×n hot path.
///
/// Ordering contract: collect_due/drain_due emit strictly ascending due
/// rounds, FIFO (schedule order) within a round.  Determinism therefore
/// depends only on the schedule() call sequence.  (The previous
/// binary-heap implementation left within-round order unspecified-but-
/// deterministic; the calendar pins it to schedule order.)
///
/// The window grows on demand: scheduling past the current horizon
/// re-buckets into a larger power-of-two ring, up to kMaxSpan rounds
/// ahead (memory is O(span), so a far-future due round is a contract
/// violation rather than an unbounded allocation).  Scheduling at or
/// before an already-collected round is clamped to the next collectable
/// round — the message is late, not lost.
class DeliveryCalendar {
 public:
  /// Hard bound on how far ahead of the drain point a delivery may be
  /// scheduled.  The engine needs at most 2Δ + 1; 2^20 rounds leaves
  /// four orders of magnitude of headroom over any simulated Δ.
  static constexpr std::uint64_t kMaxSpan = std::uint64_t{1} << 20;

  explicit DeliveryCalendar(std::uint32_t recipient_count);

  /// Schedules `block` to reach `recipient` at `due_round`, which must
  /// lie less than kMaxSpan rounds past the earliest uncollected round.
  NEATBOUND_HOT void schedule(std::uint64_t due_round,
                              std::uint32_t recipient,
                              protocol::BlockIndex block);

  /// Pops everything due at or before `round` for all recipients; the
  /// result is grouped as (recipient, block) pairs in due order (see the
  /// ordering contract above).
  [[nodiscard]] std::vector<Delivery> collect_due(std::uint64_t round);

  /// Zero-allocation drain: invokes `fn(delivery)` for everything due at
  /// or before `round`, in exactly collect_due's order.  The engine's
  /// per-round hot path; bucket storage is retained for reuse.
  template <typename Fn>
  NEATBOUND_HOT void drain_due(std::uint64_t round, Fn&& fn) {
    // bucket_at masks with size-1: a non-power-of-two ring would map
    // rounds onto the wrong buckets and deliveries would silently swap
    // rounds.
    NEATBOUND_INVARIANT(std::has_single_bit(buckets_.size()),
                        "calendar ring size must be a power of two");
    if (pending_ == 0) {
      if (round >= base_round_) base_round_ = round + 1;
      return;
    }
    while (base_round_ <= round) {
      // Re-fetch the bucket every step: schedule() during the callback
      // may append to this very bucket (same-round delivery) or grow the
      // ring (reallocating buckets_); index-based access stays valid
      // through both.
      for (std::size_t i = 0; i < bucket_at(base_round_).size(); ++i) {
        const Pending p = bucket_at(base_round_)[i];
        --pending_;
        fn(Delivery{base_round_, p.recipient, p.block});
      }
      bucket_at(base_round_).clear();
      ++base_round_;
      if (pending_ == 0) {
        base_round_ = round >= base_round_ ? round + 1 : base_round_;
        break;
      }
    }
  }

  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }

  /// True iff anything is due at or before `round`.  Advances past empty
  /// buckets exactly as drain_due would, so interleaving has_due with
  /// drain_due keeps the ring state identical to calling drain_due alone
  /// — the counter-mode quiet-round check relies on that equivalence.
  // neatbound-analyze: allow(hot-hygiene) — mutating by design: the whole
  // point is to advance base_round_ exactly as drain_due would.
  [[nodiscard]] NEATBOUND_HOT bool has_due(std::uint64_t round) noexcept {
    NEATBOUND_INVARIANT(std::has_single_bit(buckets_.size()),
                        "calendar ring size must be a power of two");
    if (pending_ == 0) {
      if (round >= base_round_) base_round_ = round + 1;
      return false;
    }
    while (base_round_ <= round && bucket_at(base_round_).empty()) {
      ++base_round_;
    }
    return base_round_ <= round;
  }

  /// next_due_round's "nothing pending" sentinel.
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  /// Earliest round ≥ `from` with something due, or kNever when nothing
  /// is pending.  Pure lookahead (never advances the ring) for the
  /// quiet-round bulk skip: callers probe it only after has_due(from)
  /// returned false, so every pending entry sits in (from, from + span].
  [[nodiscard]] std::uint64_t next_due_round(std::uint64_t from) const
      noexcept {
    if (pending_ == 0) return kNever;
    const std::uint64_t start = from > base_round_ ? from : base_round_;
    const std::uint64_t end = base_round_ + buckets_.size();
    for (std::uint64_t r = start; r < end; ++r) {
      if (!buckets_[r & (buckets_.size() - 1)].empty()) return r;
    }
    return kNever;
  }

  /// Rounds the ring currently spans (diagnostic; grows on demand).
  [[nodiscard]] std::uint64_t horizon() const noexcept {
    return buckets_.size();
  }

 private:
  struct Pending {
    std::uint32_t recipient = 0;
    protocol::BlockIndex block = 0;
  };

  [[nodiscard]] std::vector<Pending>& bucket_at(std::uint64_t round) {
    return buckets_[round & (buckets_.size() - 1)];
  }
  /// Re-buckets into a ring spanning at least `span` rounds.
  void grow(std::uint64_t span);

  std::uint32_t recipient_count_;
  std::uint64_t base_round_ = 0;  ///< earliest round not yet collected
  std::size_t pending_ = 0;
  /// Power-of-two bucket count; bucket for round r is r mod size.
  std::vector<std::vector<Pending>> buckets_;
};

/// Chooses per-(message, recipient) delays, within [1, Δ].
class DeliverySchedule {
 public:
  virtual ~DeliverySchedule() = default;

  /// Delay for `block` broadcast by `sender` at `round`, toward `recipient`.
  /// Must return a value in [1, max_delay()].
  [[nodiscard]] virtual std::uint64_t delay(std::uint64_t round,
                                            std::uint32_t sender,
                                            std::uint32_t recipient,
                                            protocol::BlockIndex block) = 0;

  [[nodiscard]] virtual std::uint64_t max_delay() const noexcept = 0;
};

/// Synchronous baseline: every message arrives next round.
class ImmediateDelivery final : public DeliverySchedule {
 public:
  explicit ImmediateDelivery(std::uint64_t delta) : delta_(delta) {
    NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
  }
  [[nodiscard]] std::uint64_t delay(std::uint64_t, std::uint32_t,
                                    std::uint32_t,
                                    protocol::BlockIndex) override {
    return 1;
  }
  [[nodiscard]] std::uint64_t max_delay() const noexcept override {
    return delta_;
  }

 private:
  std::uint64_t delta_;
};

/// Worst-case benign adversary: everything takes the full Δ.
class MaxDelayDelivery final : public DeliverySchedule {
 public:
  explicit MaxDelayDelivery(std::uint64_t delta) : delta_(delta) {
    NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
  }
  [[nodiscard]] std::uint64_t delay(std::uint64_t, std::uint32_t,
                                    std::uint32_t,
                                    protocol::BlockIndex) override {
    return delta_;
  }
  [[nodiscard]] std::uint64_t max_delay() const noexcept override {
    return delta_;
  }

 private:
  std::uint64_t delta_;
};

/// Random delays uniform on [1, Δ] — a non-adversarial jittery network.
/// Legacy-mode counterpart of CounterUniformDelay below; reachable only
/// when the scenario runs with RngMode::kLegacy.
class UniformRandomDelay final : public DeliverySchedule {
 public:
  // neatbound-analyze: allow(rng-stream) — RngMode::kLegacy compatibility
  // path, kept bit-stable for one release; counter mode uses
  // CounterUniformDelay.
  UniformRandomDelay(std::uint64_t delta, Rng rng) : delta_(delta), rng_(rng) {
    NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
  }
  [[nodiscard]] std::uint64_t delay(std::uint64_t, std::uint32_t,
                                    std::uint32_t,
                                    protocol::BlockIndex) override {
    return 1 + rng_.uniform_below(delta_);
  }
  [[nodiscard]] std::uint64_t max_delay() const noexcept override {
    return delta_;
  }

 private:
  std::uint64_t delta_;
  // neatbound-analyze: allow(rng-stream) — legacy-mode stream state (above)
  Rng rng_;
};

/// Counter-mode jittery network: the same delay distribution as
/// UniformRandomDelay, but every delay is a pure function of
/// (key, round, sender, recipient) — no stream state — so serial,
/// batched and replayed runs read identical delays regardless of draw
/// order.  Each honest miner broadcasts at most one block per round, so
/// (round, sender, recipient) addresses every delay draw uniquely.
class CounterUniformDelay final : public DeliverySchedule {
 public:
  CounterUniformDelay(std::uint64_t delta, crng::Key key)
      : delta_(delta), key_(key) {
    NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
  }
  // neatbound-analyze: allow(contract-coverage) — pure function of its
  // arguments; the only precondition (Δ ≥ 1) is enforced at construction.
  [[nodiscard]] std::uint64_t delay(std::uint64_t round, std::uint32_t sender,
                                    std::uint32_t recipient,
                                    protocol::BlockIndex) override {
    if (delta_ == 1) return 1;
    crng::Stream stream(key_, round,
                        (static_cast<std::uint64_t>(sender) << 32) | recipient,
                        crng::Purpose::kNetDelay);
    return 1 + stream.uniform_below(delta_);
  }
  [[nodiscard]] std::uint64_t max_delay() const noexcept override {
    return delta_;
  }

 private:
  std::uint64_t delta_;
  crng::Key key_;
};

/// Partition-keeping schedule: recipients in the sender's group get the
/// message next round; the other group gets it after the full Δ.  This is
/// the delivery half of the PSS chain-splitting attack.
class SplitDelivery final : public DeliverySchedule {
 public:
  /// `group_of[i]` ∈ {0, 1} assigns each miner to a side.
  SplitDelivery(std::uint64_t delta, std::vector<std::uint8_t> group_of)
      : delta_(delta), group_of_(std::move(group_of)) {
    NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
  }
  [[nodiscard]] std::uint64_t delay(std::uint64_t, std::uint32_t sender,
                                    std::uint32_t recipient,
                                    protocol::BlockIndex) override {
    NEATBOUND_EXPECTS(sender < group_of_.size() &&
                          recipient < group_of_.size(),
                      "miner id out of range");
    return group_of_[sender] == group_of_[recipient] ? 1 : delta_;
  }
  [[nodiscard]] std::uint64_t max_delay() const noexcept override {
    return delta_;
  }

 private:
  std::uint64_t delta_;
  std::vector<std::uint8_t> group_of_;
};

}  // namespace neatbound::net
