// The Δ-delay asynchronous network (Section III, adversary capability ①).
//
// A block broadcast at the end of round r reaches recipient i at the start
// of round r + d, where the delay d is chosen per (message, recipient) by
// a DeliverySchedule with 1 ≤ d ≤ Δ.  d = 1 is "next round" (the fastest
// physically meaningful delivery in the round model); d = Δ saturates the
// adversary's delaying power.  The adversary may not drop or modify
// messages — only the delay is under its control — which the queue
// enforces by construction.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "protocol/block.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace neatbound::net {

/// A block announcement in flight to one recipient.
struct Delivery {
  std::uint64_t due_round = 0;
  std::uint32_t recipient = 0;
  protocol::BlockIndex block = 0;
};

/// Round-indexed delivery queue for all recipients.
class DeliveryQueue {
 public:
  explicit DeliveryQueue(std::uint32_t recipient_count);

  /// Schedules `block` to reach `recipient` at `due_round`.
  void schedule(std::uint64_t due_round, std::uint32_t recipient,
                protocol::BlockIndex block);

  /// Pops everything due at or before `round` for all recipients; the
  /// result is grouped as (recipient, block) pairs in due order.
  [[nodiscard]] std::vector<Delivery> collect_due(std::uint64_t round);

  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const Delivery& a, const Delivery& b) const noexcept {
      return a.due_round > b.due_round;
    }
  };
  std::uint32_t recipient_count_;
  std::priority_queue<Delivery, std::vector<Delivery>, Later> heap_;
};

/// Chooses per-(message, recipient) delays, within [1, Δ].
class DeliverySchedule {
 public:
  virtual ~DeliverySchedule() = default;

  /// Delay for `block` broadcast by `sender` at `round`, toward `recipient`.
  /// Must return a value in [1, max_delay()].
  [[nodiscard]] virtual std::uint64_t delay(std::uint64_t round,
                                            std::uint32_t sender,
                                            std::uint32_t recipient,
                                            protocol::BlockIndex block) = 0;

  [[nodiscard]] virtual std::uint64_t max_delay() const noexcept = 0;
};

/// Synchronous baseline: every message arrives next round.
class ImmediateDelivery final : public DeliverySchedule {
 public:
  explicit ImmediateDelivery(std::uint64_t delta) : delta_(delta) {
    NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
  }
  [[nodiscard]] std::uint64_t delay(std::uint64_t, std::uint32_t,
                                    std::uint32_t,
                                    protocol::BlockIndex) override {
    return 1;
  }
  [[nodiscard]] std::uint64_t max_delay() const noexcept override {
    return delta_;
  }

 private:
  std::uint64_t delta_;
};

/// Worst-case benign adversary: everything takes the full Δ.
class MaxDelayDelivery final : public DeliverySchedule {
 public:
  explicit MaxDelayDelivery(std::uint64_t delta) : delta_(delta) {
    NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
  }
  [[nodiscard]] std::uint64_t delay(std::uint64_t, std::uint32_t,
                                    std::uint32_t,
                                    protocol::BlockIndex) override {
    return delta_;
  }
  [[nodiscard]] std::uint64_t max_delay() const noexcept override {
    return delta_;
  }

 private:
  std::uint64_t delta_;
};

/// Random delays uniform on [1, Δ] — a non-adversarial jittery network.
class UniformRandomDelay final : public DeliverySchedule {
 public:
  UniformRandomDelay(std::uint64_t delta, Rng rng) : delta_(delta), rng_(rng) {
    NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
  }
  [[nodiscard]] std::uint64_t delay(std::uint64_t, std::uint32_t,
                                    std::uint32_t,
                                    protocol::BlockIndex) override {
    return 1 + rng_.uniform_below(delta_);
  }
  [[nodiscard]] std::uint64_t max_delay() const noexcept override {
    return delta_;
  }

 private:
  std::uint64_t delta_;
  Rng rng_;
};

/// Partition-keeping schedule: recipients in the sender's group get the
/// message next round; the other group gets it after the full Δ.  This is
/// the delivery half of the PSS chain-splitting attack.
class SplitDelivery final : public DeliverySchedule {
 public:
  /// `group_of[i]` ∈ {0, 1} assigns each miner to a side.
  SplitDelivery(std::uint64_t delta, std::vector<std::uint8_t> group_of)
      : delta_(delta), group_of_(std::move(group_of)) {
    NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
  }
  [[nodiscard]] std::uint64_t delay(std::uint64_t, std::uint32_t sender,
                                    std::uint32_t recipient,
                                    protocol::BlockIndex) override {
    NEATBOUND_EXPECTS(sender < group_of_.size() &&
                          recipient < group_of_.size(),
                      "miner id out of range");
    return group_of_[sender] == group_of_[recipient] ? 1 : delta_;
  }
  [[nodiscard]] std::uint64_t max_delay() const noexcept override {
    return delta_;
  }

 private:
  std::uint64_t delta_;
  std::vector<std::uint8_t> group_of_;
};

}  // namespace neatbound::net
