// Structured Δ-delay network models beyond the fixed schedules in
// delivery.hpp.  Each one is a DeliverySchedule the adversary (or a
// benign-but-adversarially-timed network) could realize within the model's
// only freedom — per-(message, recipient) delays in [1, Δ]:
//
// * BurstyDelivery  — the network alternates between calm windows
//                     (next-round delivery) and congestion bursts
//                     (full-Δ delivery).  A round r is inside a burst iff
//                     (r + phase) mod period < burst_length.  This is the
//                     "partition window" regime: repeated Δ-long outages
//                     rather than a constant slowdown.
// * EclipseDelivery — per-recipient targeting: a fixed set of victim
//                     miners receives every message at the full Δ while
//                     the rest of the network stays fast.  Models an
//                     eclipse-style attack on a minority of players, the
//                     strongest per-recipient discrimination the Δ model
//                     admits (victims cannot be cut off outright).
//
// Together with delivery.hpp's ImmediateDelivery / MaxDelayDelivery /
// UniformRandomDelay / SplitDelivery these are the network models the
// scenario registry exposes by name.
#pragma once

#include <cstdint>
#include <vector>

#include "net/delivery.hpp"
#include "support/contracts.hpp"

namespace neatbound::net {

/// Alternating calm/burst windows; delay 1 when calm, Δ inside a burst.
class BurstyDelivery final : public DeliverySchedule {
 public:
  /// `period` is the cycle length in rounds, `burst_length` ≤ period the
  /// number of congested rounds per cycle, `phase` shifts the cycle start.
  BurstyDelivery(std::uint64_t delta, std::uint64_t period,
                 std::uint64_t burst_length, std::uint64_t phase = 0)
      : delta_(delta),
        period_(period),
        burst_length_(burst_length),
        phase_(phase) {
    NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
    NEATBOUND_EXPECTS(period >= 1, "burst period must be >= 1");
    NEATBOUND_EXPECTS(burst_length <= period,
                      "burst length cannot exceed the period");
  }

  [[nodiscard]] bool in_burst(std::uint64_t round) const noexcept {
    return (round + phase_) % period_ < burst_length_;
  }

  [[nodiscard]] std::uint64_t delay(std::uint64_t round, std::uint32_t,
                                    std::uint32_t,
                                    protocol::BlockIndex) override {
    return in_burst(round) ? delta_ : 1;
  }
  [[nodiscard]] std::uint64_t max_delay() const noexcept override {
    return delta_;
  }

 private:
  std::uint64_t delta_;
  std::uint64_t period_;
  std::uint64_t burst_length_;
  std::uint64_t phase_;
};

/// Per-recipient eclipse targeting: victims always wait the full Δ.
class EclipseDelivery final : public DeliverySchedule {
 public:
  /// `victim[i]` marks recipient i as eclipsed.  At least one entry so the
  /// recipient-id bounds check below is meaningful.
  EclipseDelivery(std::uint64_t delta, std::vector<bool> victim)
      : delta_(delta), victim_(std::move(victim)) {
    NEATBOUND_EXPECTS(delta >= 1, "delta must be >= 1");
    NEATBOUND_EXPECTS(!victim_.empty(), "victim table must not be empty");
  }

  /// Convenience: eclipse the first `victim_count` of `recipient_count`.
  static EclipseDelivery first_k(std::uint64_t delta,
                                 std::uint32_t recipient_count,
                                 std::uint32_t victim_count) {
    NEATBOUND_EXPECTS(victim_count <= recipient_count,
                      "more victims than recipients");
    std::vector<bool> victim(recipient_count, false);
    for (std::uint32_t i = 0; i < victim_count; ++i) victim[i] = true;
    return EclipseDelivery(delta, std::move(victim));
  }

  [[nodiscard]] bool is_victim(std::uint32_t recipient) const {
    NEATBOUND_EXPECTS(recipient < victim_.size(), "recipient out of range");
    return victim_[recipient];
  }

  [[nodiscard]] std::uint64_t delay(std::uint64_t, std::uint32_t,
                                    std::uint32_t recipient,
                                    protocol::BlockIndex) override {
    return is_victim(recipient) ? delta_ : 1;
  }
  [[nodiscard]] std::uint64_t max_delay() const noexcept override {
    return delta_;
  }

 private:
  std::uint64_t delta_;
  std::vector<bool> victim_;
};

}  // namespace neatbound::net
