#include "net/delivery.hpp"

namespace neatbound::net {

DeliveryQueue::DeliveryQueue(std::uint32_t recipient_count)
    : recipient_count_(recipient_count) {
  NEATBOUND_EXPECTS(recipient_count > 0, "need at least one recipient");
}

void DeliveryQueue::schedule(std::uint64_t due_round, std::uint32_t recipient,
                             protocol::BlockIndex block) {
  NEATBOUND_EXPECTS(recipient < recipient_count_, "recipient out of range");
  heap_.push(Delivery{due_round, recipient, block});
}

std::vector<Delivery> DeliveryQueue::collect_due(std::uint64_t round) {
  std::vector<Delivery> due;
  while (!heap_.empty() && heap_.top().due_round <= round) {
    due.push_back(heap_.top());
    heap_.pop();
  }
  return due;
}

}  // namespace neatbound::net
