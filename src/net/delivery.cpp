#include "net/delivery.hpp"

#include <algorithm>
#include <bit>

#include "support/invariant.hpp"
#include "support/telemetry.hpp"

namespace neatbound::net {

namespace {
constexpr std::uint64_t kInitialSpan = 16;  ///< ring buckets at construction
}  // namespace

DeliveryCalendar::DeliveryCalendar(std::uint32_t recipient_count)
    : recipient_count_(recipient_count), buckets_(kInitialSpan) {
  NEATBOUND_EXPECTS(recipient_count > 0, "need at least one recipient");
}

void DeliveryCalendar::schedule(std::uint64_t due_round,
                                std::uint32_t recipient,
                                protocol::BlockIndex block) {
  NEATBOUND_EXPECTS(recipient < recipient_count_, "recipient out of range");
  // A message scheduled at or before an already-collected round is late,
  // not lost: it lands in the next collectable bucket.
  const std::uint64_t round = std::max(due_round, base_round_);
  NEATBOUND_EXPECTS(round - base_round_ < kMaxSpan,
                    "due round too far past the delivery horizon");
  if (round - base_round_ >= buckets_.size()) {
    grow(round - base_round_ + 1);
  }
  // Ring capacity: the bucket count must stay a power of two (bucket_at
  // masks with size-1) and span the scheduled round — anything else and
  // this append lands in a bucket belonging to a different round.
  NEATBOUND_INVARIANT(std::has_single_bit(buckets_.size()),
                      "calendar ring size must be a power of two");
  NEATBOUND_INVARIANT(round - base_round_ < buckets_.size(),
                      "scheduled round outside the grown ring span");
  // neatbound-analyze: allow(hot-alloc) — O(1) amortized append into a
  // ring bucket whose capacity is retained across rounds (cleared, never
  // shrunk), so steady-state scheduling allocates nothing.
  bucket_at(round).push_back(Pending{recipient, block});
  ++pending_;
  NEATBOUND_COUNT(kCalendarScheduled);
}

// neatbound-analyze: allow(contract-coverage) — thin cold wrapper: the
// preconditions and ring invariants live in drain_due/schedule, which it
// delegates to; it adds no state of its own to check.
std::vector<Delivery> DeliveryCalendar::collect_due(std::uint64_t round) {
  std::vector<Delivery> due;
  due.reserve(pending_);
  drain_due(round, [&due](const Delivery& d) { due.push_back(d); });
  return due;
}

// neatbound-analyze: allow(hot-alloc) — accepted allocation boundary:
// re-bucketing the ring is rare by design (power-of-two growth capped at
// kMaxSpan), and schedule() only enters it when the horizon is exceeded.
void DeliveryCalendar::grow(std::uint64_t span) {
  NEATBOUND_COUNT(kCalendarGrows);
  const std::uint64_t old_size = buckets_.size();
  std::vector<std::vector<Pending>> grown(std::bit_ceil(span));
  // Every pending entry lives in [base_round_, base_round_ + old span);
  // move each round's bucket wholesale to its slot in the wider ring.
  for (std::uint64_t r = base_round_; r < base_round_ + old_size; ++r) {
    grown[r & (grown.size() - 1)] = std::move(buckets_[r & (old_size - 1)]);
  }
  buckets_ = std::move(grown);
  // Re-bucketing must preserve every pending entry: the new ring holds
  // exactly pending_ messages, all within the live window.
  NEATBOUND_INVARIANT(
      [&] {
        std::size_t total = 0;
        for (const std::vector<Pending>& bucket : buckets_) {
          total += bucket.size();
        }
        return total == pending_;
      }(),
      "grow() lost or duplicated pending deliveries");
}

}  // namespace neatbound::net
