// Report rendering for scenario runs: turns finished SweepCells into the
// sectioned tables every exp::ResultSink consumes.
//
// Column/label values are resolved per cell by name:
//   * an axis name            → the grid point's value on that axis;
//   * miners | nu | delta | rounds | p | seeds
//                             → the cell's resolved engine/experiment
//                               config (axis overrides already applied);
//   * seeds_used | violations | ci_low | ci_high
//                             → adaptive-run verdicts (runs actually
//                               spent, violating runs, Wilson interval
//                               ends); only resolvable for cells that
//                               came from the adaptive path;
//   * bound | c | multiple    → hardness-derived: bound = neat_bound_c(nu),
//                               c the cell's effective chain-speed ratio,
//                               multiple = c / bound;
//   * "<stat>.<agg>"          → an ExperimentSummary field, e.g.
//                               "violation_depth.mean",
//                               "max_reorg_depth.max";  agg is one of
//                               mean | stderr | stddev | variance | min |
//                               max | count.
//
// Section labels are templates: "nu = {nu:2} (bound {bound:3})" replaces
// each "{name:decimals}" hole with format_fixed(value(name), decimals)
// (decimals defaults to 6; "{{" and "}}" escape literal braces).
#pragma once

#include <string>
#include <vector>

#include "exp/adaptive.hpp"
#include "exp/orchestrator.hpp"
#include "exp/sinks.hpp"
#include "scenario/spec.hpp"

namespace neatbound::scenario {

/// Per-cell value lookup for report columns and section labels.
class CellContext {
 public:
  CellContext(const ScenarioSpec& spec, const exp::SweepCell& cell);
  /// Adaptive variant: additionally resolves seeds_used | violations |
  /// ci_low | ci_high from the adaptive verdict.
  CellContext(const ScenarioSpec& spec, const exp::AdaptiveCell& cell);

  /// Resolves a column/label name; throws std::runtime_error with the
  /// list of resolvable categories when the name is unknown.
  [[nodiscard]] double value(const std::string& name) const;

 private:
  const ScenarioSpec& spec_;
  const exp::SweepCell& cell_;
  const exp::AdaptiveCell* adaptive_ = nullptr;  ///< optional verdict
};

/// Substitutes "{name:decimals}" holes; see file comment.
[[nodiscard]] std::string format_label(const std::string& label_template,
                                       const CellContext& context);

/// The columns a report without an explicit "columns" list gets: every
/// axis, then the core consistency/quality statistics.  When the spec
/// has an adaptive block, the adaptive verdict columns (seeds used,
/// ci_low, ci_high) are appended.
[[nodiscard]] std::vector<ColumnSpec> default_columns(
    const ScenarioSpec& spec);

/// Streams all cells into `sink` as sectioned rows.  Does NOT call
/// sink.finish() — the caller owns the sink's lifecycle (it may stamp
/// metadata after rendering).
void render_report(const ScenarioSpec& spec,
                   const std::vector<exp::SweepCell>& cells,
                   exp::ResultSink& sink);

/// Adaptive-run variant: same sectioning/column machinery, with the
/// per-cell adaptive verdicts resolvable as column values.
void render_adaptive_report(const ScenarioSpec& spec,
                            const std::vector<exp::AdaptiveCell>& cells,
                            exp::ResultSink& sink);

}  // namespace neatbound::scenario
