// Flat key→value parameter bags for scenario components (network models,
// adversary strategies).  Factories read their options through typed
// getters; every component declares its accepted key list in the registry,
// and verify_only() flags misspelled or unsupported keys — the same
// never-silently-ignore contract CliArgs applies to command-line flags.
//
// All getters are pure const reads (no consumption bookkeeping): component
// factories run once per seed, concurrently, over a shared Params.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "scenario/json.hpp"

namespace neatbound::scenario {

class Params {
 public:
  Params() = default;
  /// From a JSON object, minus the keys in `reserved` (the component's
  /// own selector, e.g. "model" or "strategy").  Values must be numbers,
  /// strings or booleans — nested structure is not a parameter.
  static Params from_object(const JsonValue& object,
                            const std::set<std::string>& reserved);

  /// Number lookup with default; throws on a present-but-non-numeric value.
  [[nodiscard]] double get_number(const std::string& name,
                                  double default_value) const;
  /// get_number constrained to a non-negative integer.
  [[nodiscard]] std::uint64_t get_uint(const std::string& name,
                                       std::uint64_t default_value) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& default_value) const;
  [[nodiscard]] bool get_bool(const std::string& name,
                              bool default_value) const;

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  /// Every entry in file order — the serialization view the violation
  /// artifact writer (scenario/artifact.hpp) renders back to JSON.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  entries() const noexcept {
    return values_;
  }

  /// Canonical "key=value;" rendering of every entry in file order —
  /// the piece of a component's identity that adaptive-sweep checkpoint
  /// fingerprints fold in (numbers at full %.17g precision).
  [[nodiscard]] std::string fingerprint_text() const;

  /// Throws std::runtime_error naming every provided key that is not in
  /// `known`.  `where` prefixes the message ("adversary 'x'", …).
  void verify_only(const std::vector<std::string>& known,
                   const std::string& where) const;

 private:
  [[nodiscard]] const JsonValue* lookup(const std::string& name) const;

  std::vector<std::pair<std::string, JsonValue>> values_;
};

}  // namespace neatbound::scenario
