#include "scenario/params.hpp"

#include <algorithm>
#include <stdexcept>

#include "exp/checkpoint.hpp"

namespace neatbound::scenario {

Params Params::from_object(const JsonValue& object,
                           const std::set<std::string>& reserved) {
  Params params;
  for (const auto& [key, value] : object.as_object()) {
    if (reserved.count(key) > 0) continue;
    if (!value.is_number() && !value.is_string() && !value.is_bool()) {
      throw std::runtime_error("parameter \"" + key +
                               "\" must be a number, string or boolean");
    }
    params.values_.emplace_back(key, value);
  }
  return params;
}

const JsonValue* Params::lookup(const std::string& name) const {
  for (const auto& [key, value] : values_) {
    if (key == name) return &value;
  }
  return nullptr;
}

double Params::get_number(const std::string& name,
                          double default_value) const {
  const JsonValue* v = lookup(name);
  if (v == nullptr) return default_value;
  try {
    return v->as_number();
  } catch (const std::exception&) {
    throw std::runtime_error("parameter \"" + name + "\" must be a number");
  }
}

std::uint64_t Params::get_uint(const std::string& name,
                               std::uint64_t default_value) const {
  const JsonValue* v = lookup(name);
  if (v == nullptr) return default_value;
  try {
    return v->as_uint();
  } catch (const std::exception&) {
    throw std::runtime_error("parameter \"" + name +
                             "\" must be a non-negative integer");
  }
}

std::string Params::get_string(const std::string& name,
                               const std::string& default_value) const {
  const JsonValue* v = lookup(name);
  if (v == nullptr) return default_value;
  try {
    return v->as_string();
  } catch (const std::exception&) {
    throw std::runtime_error("parameter \"" + name + "\" must be a string");
  }
}

bool Params::get_bool(const std::string& name, bool default_value) const {
  const JsonValue* v = lookup(name);
  if (v == nullptr) return default_value;
  try {
    return v->as_bool();
  } catch (const std::exception&) {
    throw std::runtime_error("parameter \"" + name + "\" must be a boolean");
  }
}

bool Params::has(const std::string& name) const {
  return lookup(name) != nullptr;
}

std::string Params::fingerprint_text() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    out += key;
    out += '=';
    if (value.is_number()) {
      out += exp::exact_double_repr(value.as_number());
    } else if (value.is_bool()) {
      out += value.as_bool() ? "true" : "false";
    } else {
      out += value.as_string();
    }
    out += ';';
  }
  return out;
}

void Params::verify_only(const std::vector<std::string>& known,
                         const std::string& where) const {
  std::string unknown;
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "\"" + key + "\"";
    }
  }
  if (!unknown.empty()) {
    std::string accepted;
    for (const std::string& k : known) {
      if (!accepted.empty()) accepted += ", ";
      accepted += k;
    }
    throw std::runtime_error(
        where + ": unknown parameter(s) " + unknown +
        (known.empty() ? " (this component takes no parameters)"
                       : " (accepted: " + accepted + ")"));
  }
}

}  // namespace neatbound::scenario
