// Declarative scenario specifications.
//
// A scenario file is one flat JSON object:
//
//   {
//     "name": "consistency_sweep",            // required, used as the
//                                             // report/JSON document name
//     "title": "printed before the run",      // optional
//     "description": "shown by describe",     // optional
//     "engine": {"miners": 40, "nu": 0.2, "delta": 3,
//                "rounds": 30000, "p": 0.01}, // per-run defaults
//     "axes": [{"name": "nu", "values": [0.15, 0.3]},
//              {"name": "multiple", "values": [0.4, 1.0]}],
//     "hardness": {"mode": "neat-bound-multiple"},  // how p is derived
//     "seeds": 6, "base_seed": 12345, "violation_t": 8,
//     "adaptive": {"min_seeds": 4, "batch": 4, "max_seeds": 64,
//                  "half_width": 0.05, "confidence": 0.95},  // optional
//     "adversary": {"strategy": "private-withhold", "min_fork_depth": 2},
//     "network": {"model": "strategy"},
//     "report": {"section_by": "nu",
//                "section_label": "nu = {nu:2}",
//                "columns": [{"header": "nu", "value": "nu",
//                             "decimals": 2}, ...]},
//     "meta": {"extra": 1.0}                  // optional extra JSON meta
//   }
//
// Axes form a row-major cartesian product (last axis fastest), exactly
// like exp::SweepGrid.  An axis named after an engine parameter (miners,
// nu, delta, rounds, p) overrides that parameter per grid point; other
// axis names are free variables for the hardness rule and report columns.
//
// Hardness modes decide each point's mining hardness p:
//   * "fixed"               — p taken from engine.p (or a "p" axis);
//   * "c"                   — p = 1 / (c·n·Δ) with c from the "c" axis
//                             (or hardness.c);
//   * "neat-bound-multiple" — c = neat_bound_c(nu) · multiple, with nu
//                             from the "nu" axis (or engine.nu) and
//                             multiple from the "multiple" axis (or
//                             hardness.multiple); p = 1 / (c·n·Δ).  The
//                             arithmetic matches bench_consistency_sweep
//                             operation for operation, so a scenario run
//                             is bit-identical to the hand-written bench.
//
// An "adaptive" block switches the run from the fixed per-cell seed
// budget to confidence-interval-driven sequential stopping (see
// exp/adaptive.hpp): every cell starts with min_seeds engine runs and
// receives `batch` more per wave until the Wilson interval on
// P[violation depth > T] at `confidence` is narrower than 2·half_width,
// or max_seeds is reached.  Without the block, "seeds" is the fixed
// budget exactly as before.
//
// Unknown keys anywhere are an error: scenario files never silently
// ignore a typo.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scenario/json.hpp"
#include "scenario/params.hpp"

namespace neatbound::scenario {

struct AxisSpec {
  std::string name;
  std::vector<double> values;
};

struct ComponentSpec {
  std::string kind;  ///< registry key ("strategy"/"model" selector value)
  Params params;     ///< everything else in the component object
};

struct ColumnSpec {
  std::string header;  ///< table column header (defaults to `value`)
  std::string value;   ///< cell source: axis, derived or "<stat>.<agg>"
  int decimals = 3;    ///< format_fixed precision
};

/// Sequential-stopping schedule (the "adaptive" block); values mirror
/// exp::AdaptiveOptions.
struct AdaptiveSpec {
  std::uint32_t min_seeds = 4;
  std::uint32_t batch = 4;
  std::uint32_t max_seeds = 64;
  double half_width = 0.05;
  double confidence = 0.95;
};

/// The "oracle" block: which lemma invariants `run --oracle` (and the
/// falsification scan behind it) arms, plus its bounds.  Declared keys
/// only, like every other block.  Window/threshold fields are read only
/// when the matching invariant is listed; common_prefix_t defaults to
/// the spec's violation_t (the consistency parameter the sweep already
/// measures against).
struct OracleSpec {
  std::vector<std::string> invariants{"common-prefix"};
  std::optional<std::uint64_t> common_prefix_t;
  std::uint64_t growth_window = 64;
  std::uint64_t growth_min_blocks = 1;
  std::uint64_t quality_window = 64;
  double quality_min_ratio = 0.05;
  std::uint64_t slice_rounds = 64;
  /// Scan budget in engine runs (0 = the whole grid × seeds).
  std::uint64_t max_runs = 0;
};

struct ReportSpec {
  /// Axis whose value change starts a new section ("" = one section).
  std::string section_by;
  /// Template for section names: "{name}" / "{name:decimals}" holes are
  /// substituted with format_fixed of the named per-cell value.
  std::string section_label;
  std::vector<ColumnSpec> columns;  ///< empty = default column set
};

struct ScenarioSpec {
  std::string name;
  std::string title;
  std::string description;

  // Engine defaults (axes may override per point).
  std::uint32_t miners = 16;
  double nu = 0.0;
  std::uint64_t delta = 1;
  std::uint64_t rounds = 1000;
  double p = 0.01;
  /// "counter" (default) or "legacy" — EngineConfig::rng_mode.
  std::string rng = "counter";

  std::string hardness_mode = "fixed";  ///< "fixed" | "c" | "neat-bound-multiple"
  double hardness_c = 0.0;        ///< fallback when no "c" axis (0 = unset)
  double hardness_multiple = 1.0; ///< fallback when no "multiple" axis

  std::uint32_t seeds = 8;
  std::uint64_t base_seed = 12345;
  std::uint64_t violation_t = 8;
  std::optional<AdaptiveSpec> adaptive;  ///< sequential stopping when set
  std::optional<OracleSpec> oracle;      ///< invariant-oracle defaults

  ComponentSpec adversary;  ///< kind defaults to "max-delay"
  ComponentSpec network;    ///< kind defaults to "strategy"

  std::vector<AxisSpec> axes;
  ReportSpec report;
  /// Extra "meta" numbers for the JSON summary, in file order.
  std::vector<std::pair<std::string, double>> extra_meta;

  [[nodiscard]] bool has_axis(const std::string& name) const;
  /// Grid size: product of axis sizes (1 when there are no axes).
  [[nodiscard]] std::size_t grid_size() const;
};

/// Parses and validates a scenario document; throws std::runtime_error
/// with a descriptive message on any schema violation.
[[nodiscard]] ScenarioSpec parse_scenario(const JsonValue& document);
[[nodiscard]] ScenarioSpec parse_scenario(std::string_view text);
[[nodiscard]] ScenarioSpec load_scenario_file(const std::string& path);

}  // namespace neatbound::scenario
