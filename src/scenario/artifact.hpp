// Replayable violation artifacts: the serialization and re-execution
// layer over sim/oracle.hpp.
//
// When an armed InvariantOracle trips, everything needed to reproduce
// the verdict deterministically is frozen into one JSON document: the
// exact engine config (seed included), the oracle config, the
// adversary/network component specs, the violation tuple, every honest
// view at the violating round, and the trailing slice of RoundRecords
// (the trace schema of sim/trace.hpp, one object per round).  Replay
// reconstructs the adversary through the registry, truncates the run to
// the violating round — engine trajectories are prefix-deterministic in
// the round count, so rounds 1..r replay bit-identically — and
// re-asserts the oracle, comparing the violation tuple, all view
// snapshots and all slice records field by field.
//
// The reader is strict in the read_trace_jsonl tradition: exact key
// sets, a format tag, cross-field consistency (the slice must be the
// contiguous window ending at the violating round, the measured value
// must actually violate the bound, views must cover exactly the honest
// miners) — a truncated or hand-tampered artifact is rejected with an
// error naming the offence, never replayed into nonsense.
//
// This lives in scenario/ (not sim/) deliberately: artifacts name
// registry components, and file I/O is banned below this layer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "sim/oracle.hpp"
#include "sim/trace.hpp"

namespace neatbound::scenario {

/// The artifact format tag; bump on any schema change.
inline constexpr std::string_view kArtifactFormat = "neatbound-violation-v2";

struct ViolationArtifact {
  /// Full config of the violating run — seed is the violating seed and
  /// rounds the *original* run length (replay truncates to
  /// violation.round itself).
  sim::EngineConfig engine;
  /// The spec's consistency parameter, carried for context (the oracle
  /// bound actually asserted is oracle.common_prefix_t).
  std::uint64_t violation_t = 0;
  sim::OracleConfig oracle;
  ComponentSpec adversary;
  ComponentSpec network;
  sim::OracleViolation violation;
  std::vector<sim::ViewSnapshot> views;   ///< all honest views, miner order
  std::vector<sim::RoundRecord> slice;    ///< trailing rounds, oldest first
};

/// Freezes a tripped oracle into an artifact; EXPECTS oracle.violated().
[[nodiscard]] ViolationArtifact build_artifact(
    const sim::EngineConfig& engine, std::uint64_t violation_t,
    const ComponentSpec& adversary, const ComponentSpec& network,
    const sim::InvariantOracle& oracle);

/// Serializes the artifact (numbers at full %.17g precision, hashes as
/// fixed-width hex strings, one view/trace element per line so checked-in
/// golden artifacts diff readably).
void write_artifact(std::ostream& os, const ViolationArtifact& artifact);
/// Atomic write-by-rename, like the checkpoint writer.
void write_artifact_file(const std::string& path,
                         const ViolationArtifact& artifact);

/// Strict parse (see file comment); throws std::runtime_error naming the
/// offending key or entry.
[[nodiscard]] ViolationArtifact parse_artifact(const JsonValue& document);
[[nodiscard]] ViolationArtifact parse_artifact(std::string_view text);
[[nodiscard]] ViolationArtifact load_artifact_file(const std::string& path);

struct ReplayResult {
  /// Did the replayed run trip the oracle at all?
  bool violated = false;
  /// Did it reproduce the artifact exactly (verdict, views, slice)?
  bool reproduced = false;
  /// The replay's own verdict; meaningful iff violated.
  sim::OracleViolation violation;
  /// Human-readable divergences; empty iff reproduced.
  std::vector<std::string> mismatches;
};

/// Re-executes the artifact's run to the violating round and re-asserts
/// the oracle, comparing bit-for-bit.  Throws only on unbuildable
/// components (unknown registry names, bad params); a run that fails to
/// reproduce reports through the result, it does not throw.
[[nodiscard]] ReplayResult replay_artifact(const ViolationArtifact& artifact,
                                           const ScenarioRegistry& registry);

/// The OracleConfig a spec resolves to: the spec's "oracle" block when
/// present (common_prefix_t defaulting to violation_t), otherwise the
/// common-prefix-only default at T = violation_t.
[[nodiscard]] sim::OracleConfig resolve_oracle_config(const ScenarioSpec& spec);

struct OracleScanResult {
  std::uint64_t runs_scanned = 0;
  /// Grid/seed coordinates of the violating run; meaningful iff artifact.
  std::size_t cell_index = 0;
  std::uint32_t seed_index = 0;
  std::optional<ViolationArtifact> artifact;  ///< set iff a violation hit
};

/// The falsification scan behind `neatbound_cli run --oracle`: every
/// (cell × seed) of the spec's grid in deterministic cell-major,
/// seed-ascending order, each run under an armed oracle, stopping at the
/// first violation (or after max_runs engine runs; 0 = no cap).  Serial
/// by design — first-violation identity must not depend on thread
/// scheduling.
[[nodiscard]] OracleScanResult run_scenario_oracle(
    const ScenarioSpec& spec, const ScenarioRegistry& registry,
    std::uint64_t max_runs);

}  // namespace neatbound::scenario
