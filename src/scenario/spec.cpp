#include "scenario/spec.hpp"

#include <set>
#include <stdexcept>

#include "sim/oracle.hpp"

namespace neatbound::scenario {

namespace {

void reject_unknown_keys(const JsonValue& object,
                         const std::set<std::string>& known,
                         const std::string& where) {
  for (const auto& [key, value] : object.as_object()) {
    if (known.count(key) == 0) {
      throw std::runtime_error(where + ": unknown key \"" + key + "\"");
    }
  }
}

double number_or(const JsonValue& object, const char* key,
                 double default_value) {
  const JsonValue* v = object.find(key);
  return v == nullptr ? default_value : v->as_number();
}

std::uint64_t uint_or(const JsonValue& object, const char* key,
                      std::uint64_t default_value) {
  const JsonValue* v = object.find(key);
  return v == nullptr ? default_value : v->as_uint();
}

std::string string_or(const JsonValue& object, const char* key,
                      const std::string& default_value) {
  const JsonValue* v = object.find(key);
  return v == nullptr ? default_value : v->as_string();
}

ComponentSpec parse_component(const JsonValue& object, const char* selector,
                              const std::string& default_kind,
                              const std::string& where) {
  ComponentSpec component;
  component.kind = string_or(object, selector, default_kind);
  if (component.kind.empty()) {
    throw std::runtime_error(where + ": \"" + selector +
                             "\" must not be empty");
  }
  component.params = Params::from_object(object, {selector});
  return component;
}

std::vector<AxisSpec> parse_axes(const JsonValue& axes) {
  std::vector<AxisSpec> out;
  for (const JsonValue& entry : axes.as_array()) {
    reject_unknown_keys(entry, {"name", "values"}, "axes entry");
    AxisSpec axis;
    axis.name = entry.at("name").as_string();
    if (axis.name.empty()) {
      throw std::runtime_error("axes entry: \"name\" must not be empty");
    }
    for (const AxisSpec& existing : out) {
      if (existing.name == axis.name) {
        throw std::runtime_error("duplicate axis \"" + axis.name + "\"");
      }
    }
    for (const JsonValue& value : entry.at("values").as_array()) {
      axis.values.push_back(value.as_number());
    }
    if (axis.values.empty()) {
      throw std::runtime_error("axis \"" + axis.name +
                               "\" needs at least one value");
    }
    out.push_back(std::move(axis));
  }
  return out;
}

AdaptiveSpec parse_adaptive(const JsonValue& adaptive) {
  reject_unknown_keys(
      adaptive,
      {"min_seeds", "batch", "max_seeds", "half_width", "confidence"},
      "adaptive");
  AdaptiveSpec out;
  out.min_seeds = static_cast<std::uint32_t>(
      uint_or(adaptive, "min_seeds", out.min_seeds));
  out.batch = static_cast<std::uint32_t>(uint_or(adaptive, "batch",
                                                 out.batch));
  out.max_seeds = static_cast<std::uint32_t>(
      uint_or(adaptive, "max_seeds", out.max_seeds));
  out.half_width = number_or(adaptive, "half_width", out.half_width);
  out.confidence = number_or(adaptive, "confidence", out.confidence);
  if (out.min_seeds == 0) {
    throw std::runtime_error("adaptive: \"min_seeds\" must be >= 1");
  }
  if (out.batch == 0) {
    throw std::runtime_error("adaptive: \"batch\" must be >= 1");
  }
  if (out.max_seeds < out.min_seeds) {
    throw std::runtime_error(
        "adaptive: \"max_seeds\" must be >= \"min_seeds\"");
  }
  if (out.half_width < 0.0) {
    throw std::runtime_error("adaptive: \"half_width\" must be >= 0");
  }
  if (out.confidence <= 0.0 || out.confidence >= 1.0) {
    throw std::runtime_error("adaptive: \"confidence\" must be in (0,1)");
  }
  return out;
}

OracleSpec parse_oracle(const JsonValue& oracle) {
  reject_unknown_keys(oracle,
                      {"invariants", "common_prefix_t", "growth_window",
                       "growth_min_blocks", "quality_window",
                       "quality_min_ratio", "slice_rounds", "max_runs"},
                      "oracle");
  OracleSpec out;
  if (const JsonValue* invariants = oracle.find("invariants")) {
    out.invariants.clear();
    for (const JsonValue& entry : invariants->as_array()) {
      std::string name = entry.as_string();
      if (!sim::parse_invariant_name(name)) {
        std::string known;
        for (const std::string& candidate : sim::invariant_names()) {
          if (!known.empty()) known += ", ";
          known += candidate;
        }
        throw std::runtime_error("oracle: unknown invariant \"" + name +
                                 "\" (known: " + known + ")");
      }
      for (const std::string& existing : out.invariants) {
        if (existing == name) {
          throw std::runtime_error("oracle: duplicate invariant \"" + name +
                                   "\"");
        }
      }
      out.invariants.push_back(std::move(name));
    }
    if (out.invariants.empty()) {
      throw std::runtime_error("oracle: \"invariants\" must not be empty");
    }
  }
  if (const JsonValue* t = oracle.find("common_prefix_t")) {
    out.common_prefix_t = t->as_uint();
  }
  out.growth_window = uint_or(oracle, "growth_window", out.growth_window);
  out.growth_min_blocks =
      uint_or(oracle, "growth_min_blocks", out.growth_min_blocks);
  out.quality_window = uint_or(oracle, "quality_window", out.quality_window);
  out.quality_min_ratio =
      number_or(oracle, "quality_min_ratio", out.quality_min_ratio);
  out.slice_rounds = uint_or(oracle, "slice_rounds", out.slice_rounds);
  out.max_runs = uint_or(oracle, "max_runs", out.max_runs);
  // Full arming rules (vacuous thresholds, slice bounds) live in
  // sim::validate_oracle_config, applied when the block resolves to an
  // OracleConfig; here only the window/threshold basics that are wrong
  // in any resolution.
  if (out.growth_window == 0) {
    throw std::runtime_error("oracle: \"growth_window\" must be >= 1");
  }
  if (out.quality_window == 0) {
    throw std::runtime_error("oracle: \"quality_window\" must be >= 1");
  }
  if (out.quality_min_ratio <= 0.0 || out.quality_min_ratio > 1.0) {
    throw std::runtime_error(
        "oracle: \"quality_min_ratio\" must be in (0, 1]");
  }
  if (out.slice_rounds == 0) {
    throw std::runtime_error("oracle: \"slice_rounds\" must be >= 1");
  }
  return out;
}

ReportSpec parse_report(const JsonValue& report) {
  reject_unknown_keys(report, {"section_by", "section_label", "columns"},
                      "report");
  ReportSpec out;
  out.section_by = string_or(report, "section_by", "");
  out.section_label = string_or(report, "section_label", "");
  if (const JsonValue* columns = report.find("columns")) {
    for (const JsonValue& entry : columns->as_array()) {
      reject_unknown_keys(entry, {"header", "value", "decimals"},
                          "report column");
      ColumnSpec column;
      column.value = entry.at("value").as_string();
      column.header = string_or(entry, "header", column.value);
      column.decimals =
          static_cast<int>(uint_or(entry, "decimals",
                                   static_cast<std::uint64_t>(3)));
      out.columns.push_back(std::move(column));
    }
  }
  if (!out.section_by.empty() && out.section_label.empty()) {
    throw std::runtime_error(
        "report: section_by requires a section_label template");
  }
  return out;
}

}  // namespace

bool ScenarioSpec::has_axis(const std::string& axis_name) const {
  for (const AxisSpec& axis : axes) {
    if (axis.name == axis_name) return true;
  }
  return false;
}

std::size_t ScenarioSpec::grid_size() const {
  std::size_t size = 1;
  for (const AxisSpec& axis : axes) size *= axis.values.size();
  return size;
}

ScenarioSpec parse_scenario(const JsonValue& document) {
  reject_unknown_keys(document,
                      {"name", "title", "description", "engine", "axes",
                       "hardness", "seeds", "base_seed", "violation_t",
                       "adaptive", "oracle", "adversary", "network", "report",
                       "meta"},
                      "scenario");
  ScenarioSpec spec;
  spec.name = document.at("name").as_string();
  if (spec.name.empty()) {
    throw std::runtime_error("scenario: \"name\" must not be empty");
  }
  spec.title = string_or(document, "title", "");
  spec.description = string_or(document, "description", "");

  if (const JsonValue* engine = document.find("engine")) {
    reject_unknown_keys(*engine,
                        {"miners", "nu", "delta", "rounds", "p", "rng"},
                        "engine");
    spec.miners = static_cast<std::uint32_t>(
        uint_or(*engine, "miners", spec.miners));
    spec.nu = number_or(*engine, "nu", spec.nu);
    spec.delta = uint_or(*engine, "delta", spec.delta);
    spec.rounds = uint_or(*engine, "rounds", spec.rounds);
    spec.p = number_or(*engine, "p", spec.p);
    if (const JsonValue* rng = engine->find("rng")) {
      spec.rng = rng->as_string();
      if (spec.rng != "counter" && spec.rng != "legacy") {
        throw std::runtime_error(
            "engine.rng must be 'counter' or 'legacy', got \"" + spec.rng +
            "\"");
      }
    }
  }

  if (const JsonValue* axes = document.find("axes")) {
    spec.axes = parse_axes(*axes);
  }

  if (const JsonValue* hardness = document.find("hardness")) {
    reject_unknown_keys(*hardness, {"mode", "c", "multiple"}, "hardness");
    spec.hardness_mode = string_or(*hardness, "mode", spec.hardness_mode);
    spec.hardness_c = number_or(*hardness, "c", spec.hardness_c);
    spec.hardness_multiple =
        number_or(*hardness, "multiple", spec.hardness_multiple);
  }
  if (spec.hardness_mode != "fixed" && spec.hardness_mode != "c" &&
      spec.hardness_mode != "neat-bound-multiple") {
    throw std::runtime_error("hardness: unknown mode \"" +
                             spec.hardness_mode +
                             "\" (fixed | c | neat-bound-multiple)");
  }
  if (spec.hardness_mode == "c" && spec.hardness_c <= 0.0 &&
      !spec.has_axis("c")) {
    throw std::runtime_error(
        "hardness mode \"c\" needs a \"c\" axis or a positive hardness.c");
  }

  spec.seeds = static_cast<std::uint32_t>(
      uint_or(document, "seeds", spec.seeds));
  if (spec.seeds == 0) {
    throw std::runtime_error("scenario: \"seeds\" must be >= 1");
  }
  spec.base_seed = uint_or(document, "base_seed", spec.base_seed);
  spec.violation_t = uint_or(document, "violation_t", spec.violation_t);

  if (const JsonValue* adaptive = document.find("adaptive")) {
    spec.adaptive = parse_adaptive(*adaptive);
  }

  if (const JsonValue* oracle = document.find("oracle")) {
    spec.oracle = parse_oracle(*oracle);
  }

  if (const JsonValue* adversary = document.find("adversary")) {
    spec.adversary =
        parse_component(*adversary, "strategy", "max-delay", "adversary");
  } else {
    spec.adversary.kind = "max-delay";
  }
  if (const JsonValue* network = document.find("network")) {
    spec.network = parse_component(*network, "model", "strategy", "network");
  } else {
    spec.network.kind = "strategy";
  }

  if (const JsonValue* report = document.find("report")) {
    spec.report = parse_report(*report);
    if (!spec.report.section_by.empty() &&
        !spec.has_axis(spec.report.section_by)) {
      throw std::runtime_error("report: section_by axis \"" +
                               spec.report.section_by + "\" is not an axis");
    }
  }

  if (const JsonValue* meta = document.find("meta")) {
    for (const auto& [key, value] : meta->as_object()) {
      spec.extra_meta.emplace_back(key, value.as_number());
    }
  }
  return spec;
}

ScenarioSpec parse_scenario(std::string_view text) {
  return parse_scenario(parse_json(text));
}

ScenarioSpec load_scenario_file(const std::string& path) {
  try {
    return parse_scenario(load_json_file(path));
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    if (what.rfind(path, 0) == 0) throw;  // already prefixed by the loader
    throw std::runtime_error(path + ": " + what);
  }
}

}  // namespace neatbound::scenario
