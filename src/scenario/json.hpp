// Compatibility re-export: the JSON reader moved to support/json.hpp so
// layers below scenario/ (the experiment checkpoints in exp/) can parse
// JSON without a scenario dependency.  Scenario code keeps addressing the
// types under its own namespace.
#pragma once

#include "support/json.hpp"

namespace neatbound::scenario {

using JsonValue = support::JsonValue;
using support::load_json_file;
using support::parse_json;

}  // namespace neatbound::scenario
