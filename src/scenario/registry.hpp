// The scenario registry: string-keyed factories for network models
// (net::DeliverySchedule variants) and adversary strategies
// (sim::Adversary implementations), so scenario files select both by name
// instead of recompiling a bench.
//
// A *network model* decides per-(message, recipient) honest delays; a
// *strategy* decides what the corrupted miners do.  The engine sources
// both powers from one Adversary object, so composition works like this:
//   * model "strategy" (the default) leaves delays to the strategy's own
//     honest_delay — exactly what every hand-written bench does;
//   * any other model wraps the strategy in a sim::ScheduleAdversary,
//     overriding delays with the model's DeliverySchedule.
//
// Every entry declares the parameter keys it accepts; unknown keys in a
// scenario file are an error (verify_only), never a silent default.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/delivery.hpp"
#include "scenario/params.hpp"
#include "sim/engine.hpp"
#include "sim/adversary.hpp"

namespace neatbound::scenario {

class ScenarioRegistry {
 public:
  /// Builds a delivery schedule for one engine run (seed already set in
  /// `engine`).  Must be thread-safe: called once per (cell × seed) job.
  using NetworkFactory = std::function<std::unique_ptr<net::DeliverySchedule>(
      const Params&, const sim::EngineConfig& engine,
      std::uint32_t honest_count)>;
  /// Builds a strategy for one engine run; same concurrency contract.
  using StrategyFactory = std::function<std::unique_ptr<sim::Adversary>(
      const Params&, const sim::EngineConfig& engine,
      std::uint32_t honest_count)>;

  struct ParamInfo {
    std::string key;       ///< what verify_only checks against
    std::string describe;  ///< default + meaning, for list output
  };
  struct EntryInfo {
    std::string name;
    std::string summary;
    std::vector<ParamInfo> params;  ///< accepted parameter keys
  };

  /// Registration; throws std::invalid_argument on a duplicate name.
  void register_network(EntryInfo info, NetworkFactory factory);
  void register_strategy(EntryInfo info, StrategyFactory factory);

  [[nodiscard]] const std::vector<EntryInfo>& network_models() const noexcept {
    return network_infos_;
  }
  [[nodiscard]] const std::vector<EntryInfo>& adversary_strategies()
      const noexcept {
    return strategy_infos_;
  }
  [[nodiscard]] bool has_network(const std::string& name) const;
  [[nodiscard]] bool has_strategy(const std::string& name) const;

  /// Validates `params` against the entry's declared keys, then builds.
  /// The "strategy" network model returns nullptr (no schedule override).
  /// Unknown names throw std::runtime_error listing what is registered.
  [[nodiscard]] std::unique_ptr<net::DeliverySchedule> make_network(
      const std::string& name, const Params& params,
      const sim::EngineConfig& engine, std::uint32_t honest_count) const;
  [[nodiscard]] std::unique_ptr<sim::Adversary> make_strategy(
      const std::string& name, const Params& params,
      const sim::EngineConfig& engine, std::uint32_t honest_count) const;

  /// Composes network model × strategy into the engine's one Adversary.
  [[nodiscard]] std::unique_ptr<sim::Adversary> make_adversary(
      const std::string& network, const Params& network_params,
      const std::string& strategy, const Params& strategy_params,
      const sim::EngineConfig& engine) const;

  /// The registry with every built-in model and strategy registered.
  [[nodiscard]] static const ScenarioRegistry& builtin();

 private:
  [[nodiscard]] static std::vector<std::string> keys_of(const EntryInfo& info);

  std::vector<EntryInfo> network_infos_;
  std::vector<NetworkFactory> network_factories_;
  std::vector<EntryInfo> strategy_infos_;
  std::vector<StrategyFactory> strategy_factories_;
};

/// Installs the built-in entries into `registry` (what builtin() uses);
/// exposed so tests can build registries with extras on top.
void register_builtin_networks(ScenarioRegistry& registry);
void register_builtin_strategies(ScenarioRegistry& registry);

}  // namespace neatbound::scenario
