#include "scenario/registry.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "net/models.hpp"
#include "sim/schedule_adversary.hpp"
#include "sim/strategies.hpp"
#include "support/rng.hpp"

namespace neatbound::scenario {

namespace {

[[noreturn]] void unknown_entry(const char* kind, const std::string& name,
                                const std::vector<ScenarioRegistry::EntryInfo>&
                                    registered) {
  std::string names;
  for (const auto& info : registered) {
    if (!names.empty()) names += ", ";
    names += info.name;
  }
  throw std::runtime_error(std::string("unknown ") + kind + " \"" + name +
                           "\" (registered: " + names + ")");
}

}  // namespace

std::vector<std::string> ScenarioRegistry::keys_of(const EntryInfo& info) {
  std::vector<std::string> keys;
  keys.reserve(info.params.size());
  for (const ParamInfo& p : info.params) {
    keys.push_back(p.key);
  }
  return keys;
}

void ScenarioRegistry::register_network(EntryInfo info,
                                        NetworkFactory factory) {
  if (has_network(info.name)) {
    throw std::invalid_argument("network model \"" + info.name +
                                "\" already registered");
  }
  network_infos_.push_back(std::move(info));
  network_factories_.push_back(std::move(factory));
}

void ScenarioRegistry::register_strategy(EntryInfo info,
                                         StrategyFactory factory) {
  if (has_strategy(info.name)) {
    throw std::invalid_argument("adversary strategy \"" + info.name +
                                "\" already registered");
  }
  strategy_infos_.push_back(std::move(info));
  strategy_factories_.push_back(std::move(factory));
}

bool ScenarioRegistry::has_network(const std::string& name) const {
  for (const auto& info : network_infos_) {
    if (info.name == name) return true;
  }
  return false;
}

bool ScenarioRegistry::has_strategy(const std::string& name) const {
  for (const auto& info : strategy_infos_) {
    if (info.name == name) return true;
  }
  return false;
}

std::unique_ptr<net::DeliverySchedule> ScenarioRegistry::make_network(
    const std::string& name, const Params& params,
    const sim::EngineConfig& engine, std::uint32_t honest_count) const {
  for (std::size_t i = 0; i < network_infos_.size(); ++i) {
    if (network_infos_[i].name != name) continue;
    params.verify_only(keys_of(network_infos_[i]),
                       "network model \"" + name + "\"");
    return network_factories_[i](params, engine, honest_count);
  }
  unknown_entry("network model", name, network_infos_);
}

std::unique_ptr<sim::Adversary> ScenarioRegistry::make_strategy(
    const std::string& name, const Params& params,
    const sim::EngineConfig& engine, std::uint32_t honest_count) const {
  for (std::size_t i = 0; i < strategy_infos_.size(); ++i) {
    if (strategy_infos_[i].name != name) continue;
    params.verify_only(keys_of(strategy_infos_[i]),
                       "adversary strategy \"" + name + "\"");
    return strategy_factories_[i](params, engine, honest_count);
  }
  unknown_entry("adversary strategy", name, strategy_infos_);
}

std::unique_ptr<sim::Adversary> ScenarioRegistry::make_adversary(
    const std::string& network, const Params& network_params,
    const std::string& strategy, const Params& strategy_params,
    const sim::EngineConfig& engine) const {
  // The engine's own derivation — partition/victim tables must index the
  // exact honest range the engine will use.
  const std::uint32_t honest = sim::honest_miner_count(engine);
  auto inner = make_strategy(strategy, strategy_params, engine, honest);
  auto schedule = make_network(network, network_params, engine, honest);
  if (schedule == nullptr) return inner;  // "strategy": no delay override
  return std::make_unique<sim::ScheduleAdversary>(network, std::move(schedule),
                                                  std::move(inner));
}

// ---------------------------------------------------------------------------
// Built-in network models
// ---------------------------------------------------------------------------

void register_builtin_networks(ScenarioRegistry& registry) {
  registry.register_network(
      {"strategy",
       "delays chosen by the adversary strategy's own honest_delay (what "
       "every hand-written bench does)",
       {}},
      [](const Params&, const sim::EngineConfig&, std::uint32_t) {
        return std::unique_ptr<net::DeliverySchedule>();
      });

  registry.register_network(
      {"immediate", "synchronous baseline: every message arrives next round",
       {}},
      [](const Params&, const sim::EngineConfig& engine, std::uint32_t) {
        return std::unique_ptr<net::DeliverySchedule>(
            std::make_unique<net::ImmediateDelivery>(engine.delta));
      });

  registry.register_network(
      {"max-delay", "worst-case benign delivery: everything takes the full Δ",
       {}},
      [](const Params&, const sim::EngineConfig& engine, std::uint32_t) {
        return std::unique_ptr<net::DeliverySchedule>(
            std::make_unique<net::MaxDelayDelivery>(engine.delta));
      });

  registry.register_network(
      {"uniform",
       "jittery non-adversarial network: delays uniform on [1, Δ], seeded "
       "from the run's engine seed",
       {{"salt", "default 0; mixed into the delay stream seed"}}},
      [](const Params& params, const sim::EngineConfig& engine,
         std::uint32_t) {
        const std::uint64_t salt = params.get_uint("salt", 0);
        if (engine.rng_mode == sim::RngMode::kCounter) {
          // Counter mode: the delay of (round, sender, recipient) is a
          // pure function of the run key — batched/serial/replayed runs
          // read identical delays.  The salt shifts the cell word so two
          // salted models on one run stay independent.
          crng::Key key = sim::engine_rng_key(engine);
          key.cell ^= mix64(0x756e69666f726dULL + salt);  // "uniform"
          return std::unique_ptr<net::DeliverySchedule>(
              std::make_unique<net::CounterUniformDelay>(engine.delta, key));
        }
        return std::unique_ptr<net::DeliverySchedule>(
            std::make_unique<net::UniformRandomDelay>(
                engine.delta,
                // neatbound-analyze: allow(rng-stream) — kLegacy branch,
                // bit-stable seeding kept for one release
                Rng(mix64(engine.seed ^ (0x9e3779b97f4a7c15ULL + salt)))));
      });

  registry.register_network(
      {"split",
       "static partition: same-side messages next round, cross-side the "
       "full Δ",
       {{"split_fraction", "default 0.5; first group share of honest miners"}}},
      [](const Params& params, const sim::EngineConfig& engine,
         std::uint32_t honest_count) {
        const double fraction = params.get_number("split_fraction", 0.5);
        if (!(fraction > 0.0) || !(fraction < 1.0)) {
          throw std::runtime_error(
              "network model \"split\": split_fraction must be in (0, 1)");
        }
        const auto first = static_cast<std::uint32_t>(
            std::llround(fraction * static_cast<double>(honest_count)));
        if (first == 0 || first >= honest_count) {
          throw std::runtime_error(
              "network model \"split\": split_fraction " +
              std::to_string(fraction) + " leaves a side empty (" +
              std::to_string(honest_count) + " honest miners)");
        }
        std::vector<std::uint8_t> group(honest_count, 1);
        for (std::uint32_t m = 0; m < first && m < honest_count; ++m) {
          group[m] = 0;
        }
        return std::unique_ptr<net::DeliverySchedule>(
            std::make_unique<net::SplitDelivery>(engine.delta,
                                                 std::move(group)));
      });

  registry.register_network(
      {"bursty",
       "alternating calm/congested windows: delay 1 when calm, Δ inside a "
       "burst of burst_length rounds every period rounds",
       {{"period", "default 2Δ"},
        {"burst_length", "default Δ"},
        {"phase", "default 0"}}},
      [](const Params& params, const sim::EngineConfig& engine,
         std::uint32_t) {
        const std::uint64_t period =
            params.get_uint("period", 2 * engine.delta);
        const std::uint64_t burst =
            params.get_uint("burst_length", engine.delta);
        const std::uint64_t phase = params.get_uint("phase", 0);
        return std::unique_ptr<net::DeliverySchedule>(
            std::make_unique<net::BurstyDelivery>(engine.delta, period, burst,
                                                  phase));
      });

  registry.register_network(
      {"eclipse",
       "per-recipient targeting: the first `victims` honest miners receive "
       "every message at the full Δ; the rest of the network stays fast",
       {{"victims", "default max(1, honest/4)"}}},
      [](const Params& params, const sim::EngineConfig& engine,
         std::uint32_t honest_count) {
        const std::uint64_t default_victims =
            honest_count >= 4 ? honest_count / 4 : 1;
        const std::uint64_t victims =
            params.get_uint("victims", default_victims);
        if (victims > honest_count) {
          throw std::runtime_error(
              "network model \"eclipse\": more victims than honest miners");
        }
        return std::unique_ptr<net::DeliverySchedule>(
            std::make_unique<net::EclipseDelivery>(net::EclipseDelivery::first_k(
                engine.delta, honest_count,
                static_cast<std::uint32_t>(victims))));
      });
}

// ---------------------------------------------------------------------------
// Built-in adversary strategies
// ---------------------------------------------------------------------------

void register_builtin_strategies(ScenarioRegistry& registry) {
  registry.register_strategy(
      {"null", "corrupted miners idle; messages arrive next round", {}},
      [](const Params&, const sim::EngineConfig&, std::uint32_t) {
        return std::unique_ptr<sim::Adversary>(
            std::make_unique<sim::NullAdversary>());
      });

  registry.register_strategy(
      {"max-delay",
       "delays everything the full Δ and mines privately without ever "
       "publishing (the Theorem 1 counting regime)",
       {}},
      [](const Params&, const sim::EngineConfig& engine, std::uint32_t) {
        return std::unique_ptr<sim::Adversary>(
            std::make_unique<sim::MaxDelayAdversary>(engine.delta));
      });

  registry.register_strategy(
      {"private-withhold",
       "consistency attacker: private fork released once strictly longer "
       "and at least min_fork_depth deep",
       {{"min_fork_depth", "default 2"}, {"give_up_margin", "default 6"}}},
      [](const Params& params, const sim::EngineConfig&, std::uint32_t) {
        sim::PrivateWithholdAdversary::Options options;
        options.min_fork_depth =
            params.get_uint("min_fork_depth", options.min_fork_depth);
        options.give_up_margin =
            params.get_uint("give_up_margin", options.give_up_margin);
        return std::unique_ptr<sim::Adversary>(
            std::make_unique<sim::PrivateWithholdAdversary>(options));
      });

  registry.register_strategy(
      {"balance-attack",
       "PSS Remark 8.5 chain splitter: keeps two halves Δ apart and donates "
       "blocks to the lagging side",
       {}},
      [](const Params&, const sim::EngineConfig& engine,
         std::uint32_t honest_count) {
        return std::unique_ptr<sim::Adversary>(
            std::make_unique<sim::BalanceAttackAdversary>(honest_count,
                                                          engine.delta));
      });

  registry.register_strategy(
      {"selfish-mining",
       "Eyal–Sirer selfish mining: private lead, competing releases on "
       "honest discoveries",
       {{"gamma", "default 0.5; fraction hearing the attacker first"}}},
      [](const Params& params, const sim::EngineConfig&, std::uint32_t) {
        const double gamma = params.get_number("gamma", 0.5);
        return std::unique_ptr<sim::Adversary>(
            std::make_unique<sim::SelfishMiningAdversary>(gamma));
      });

  registry.register_strategy(
      {"fork-balancer",
       "equivocating fork balancer: splits the network with sibling pairs "
       "and keeps both branches level",
       {}},
      [](const Params&, const sim::EngineConfig& engine,
         std::uint32_t honest_count) {
        return std::unique_ptr<sim::Adversary>(
            std::make_unique<sim::ForkBalancerAdversary>(honest_count,
                                                         engine.delta));
      });

  registry.register_strategy(
      {"delay-saturate",
       "delay-saturating withholder: every honest delay at Δ, stubborn "
       "private fork released in minimal overtaking prefixes",
       {{"rebase_margin", "default 12"}}},
      [](const Params& params, const sim::EngineConfig&, std::uint32_t) {
        sim::DelaySaturatingWithholder::Options options;
        options.rebase_margin =
            params.get_uint("rebase_margin", options.rebase_margin);
        return std::unique_ptr<sim::Adversary>(
            std::make_unique<sim::DelaySaturatingWithholder>(options));
      });
}

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry registry = [] {
    ScenarioRegistry r;
    register_builtin_networks(r);
    register_builtin_strategies(r);
    return r;
  }();
  return registry;
}

}  // namespace neatbound::scenario
