#include "scenario/artifact.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "exp/checkpoint.hpp"
#include "scenario/runner.hpp"
#include "support/contracts.hpp"

namespace neatbound::scenario {

namespace {

[[noreturn]] void artifact_error(const std::string& what) {
  throw std::runtime_error("violation artifact: " + what);
}

void reject_unknown_keys(const JsonValue& object,
                         const std::set<std::string>& known,
                         const std::string& where) {
  for (const auto& [key, value] : object.as_object()) {
    if (known.count(key) == 0) {
      artifact_error(where + ": unknown key \"" + key + "\"");
    }
  }
}

const JsonValue& require(const JsonValue& object, const char* key,
                         const std::string& where) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) {
    artifact_error(where + ": missing key \"" + key + "\"");
  }
  return *value;
}

// --- writer helpers ---------------------------------------------------------

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Fixed-width hex for hashes: 64-bit values exceed the double-exact
/// integer range, so they travel as strings, never JSON numbers.
std::string hex16(std::uint64_t value) {
  std::string out = "0x";
  constexpr const char* kHex = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kHex[(value >> shift) & 0xF];
  }
  return out;
}

std::uint64_t parse_hex16(const std::string& text, const std::string& where) {
  if (text.size() != 18 || text[0] != '0' || text[1] != 'x') {
    artifact_error(where + ": expected an 0x + 16-hex-digit hash, got \"" +
                   text + "\"");
  }
  std::uint64_t value = 0;
  for (std::size_t i = 2; i < text.size(); ++i) {
    const char c = text[i];
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      artifact_error(where + ": bad hex digit in \"" + text + "\"");
    }
  }
  return value;
}

void write_component(std::ostream& os, const ComponentSpec& component,
                     const char* selector) {
  os << "{\"" << selector << "\":\"" << json_escape(component.kind) << '"';
  for (const auto& [key, value] : component.params.entries()) {
    os << ",\"" << json_escape(key) << "\":";
    if (value.is_bool()) {
      os << (value.as_bool() ? "true" : "false");
    } else if (value.is_number()) {
      os << exp::exact_double_repr(value.as_number());
    } else {
      os << '"' << json_escape(value.as_string()) << '"';
    }
  }
  os << '}';
}

// --- reader helpers ---------------------------------------------------------

sim::EngineConfig parse_engine(const JsonValue& engine) {
  reject_unknown_keys(engine,
                      {"miners", "nu", "delta", "rounds", "p", "seed", "rng"},
                      "engine");
  sim::EngineConfig config;
  config.miner_count = static_cast<std::uint32_t>(
      require(engine, "miners", "engine").as_uint());
  config.adversary_fraction = require(engine, "nu", "engine").as_number();
  config.p = require(engine, "p", "engine").as_number();
  config.delta = require(engine, "delta", "engine").as_uint();
  config.rounds = require(engine, "rounds", "engine").as_uint();
  config.seed = require(engine, "seed", "engine").as_uint();
  const std::string rng = require(engine, "rng", "engine").as_string();
  if (rng == "counter") {
    config.rng_mode = sim::RngMode::kCounter;
  } else if (rng == "legacy") {
    config.rng_mode = sim::RngMode::kLegacy;
  } else {
    artifact_error("engine: rng must be 'counter' or 'legacy', got '" + rng +
                   "'");
  }
  try {
    sim::validate_engine_config(config);
  } catch (const std::exception& e) {
    artifact_error(std::string("engine: ") + e.what());
  }
  return config;
}

sim::OracleConfig parse_oracle_block(const JsonValue& oracle) {
  reject_unknown_keys(oracle,
                      {"common_prefix", "common_prefix_t", "growth_window",
                       "growth_min_blocks", "quality_window",
                       "quality_min_ratio", "slice_rounds"},
                      "oracle");
  sim::OracleConfig config;
  config.common_prefix = require(oracle, "common_prefix", "oracle").as_bool();
  config.common_prefix_t =
      require(oracle, "common_prefix_t", "oracle").as_uint();
  config.growth_window = require(oracle, "growth_window", "oracle").as_uint();
  config.growth_min_blocks =
      require(oracle, "growth_min_blocks", "oracle").as_uint();
  config.quality_window =
      require(oracle, "quality_window", "oracle").as_uint();
  config.quality_min_ratio =
      require(oracle, "quality_min_ratio", "oracle").as_number();
  config.slice_rounds = require(oracle, "slice_rounds", "oracle").as_uint();
  try {
    sim::validate_oracle_config(config);
  } catch (const std::exception& e) {
    artifact_error(std::string("oracle: ") + e.what());
  }
  return config;
}

ComponentSpec parse_component(const JsonValue& object, const char* selector,
                              const std::string& where) {
  if (!object.is_object()) {
    artifact_error(where + ": expected a JSON object");
  }
  ComponentSpec component;
  component.kind = require(object, selector, where).as_string();
  if (component.kind.empty()) {
    artifact_error(where + ": \"" + std::string(selector) +
                   "\" must not be empty");
  }
  component.params = Params::from_object(object, {selector});
  return component;
}

sim::OracleViolation parse_violation(const JsonValue& violation) {
  reject_unknown_keys(
      violation,
      {"invariant", "round", "measured", "bound", "view_a", "view_b"},
      "violation");
  sim::OracleViolation out;
  const std::string name =
      require(violation, "invariant", "violation").as_string();
  const auto kind = sim::parse_invariant_name(name);
  if (!kind) {
    artifact_error("violation: unknown invariant \"" + name + "\"");
  }
  out.kind = *kind;
  out.round = require(violation, "round", "violation").as_uint();
  out.measured = require(violation, "measured", "violation").as_uint();
  out.bound = require(violation, "bound", "violation").as_uint();
  out.view_a = static_cast<std::uint32_t>(
      require(violation, "view_a", "violation").as_uint());
  out.view_b = static_cast<std::uint32_t>(
      require(violation, "view_b", "violation").as_uint());
  if (out.round == 0) {
    artifact_error("violation: rounds are 1-based");
  }
  // The record must actually violate its bound — a doctored
  // "non-violation" would replay into a vacuous comparison.
  if (out.kind == sim::InvariantKind::kCommonPrefix) {
    if (out.measured <= out.bound) {
      artifact_error("violation: common-prefix needs measured > bound");
    }
  } else if (out.measured >= out.bound) {
    artifact_error("violation: window invariants need measured < bound");
  }
  return out;
}

sim::ViewSnapshot parse_view(const JsonValue& view, std::size_t index) {
  const std::string where = "views[" + std::to_string(index) + "]";
  if (!view.is_object()) artifact_error(where + ": expected a JSON object");
  reject_unknown_keys(view, {"miner", "tip", "height", "hash"}, where);
  sim::ViewSnapshot snapshot;
  snapshot.miner =
      static_cast<std::uint32_t>(require(view, "miner", where).as_uint());
  snapshot.tip = static_cast<protocol::BlockIndex>(
      require(view, "tip", where).as_uint());
  snapshot.height = require(view, "height", where).as_uint();
  snapshot.hash = parse_hex16(require(view, "hash", where).as_string(), where);
  if (snapshot.miner != index) {
    artifact_error(where + ": views must be in miner order (0, 1, ...)");
  }
  return snapshot;
}

}  // namespace

ViolationArtifact build_artifact(const sim::EngineConfig& engine,
                                 std::uint64_t violation_t,
                                 const ComponentSpec& adversary,
                                 const ComponentSpec& network,
                                 const sim::InvariantOracle& oracle) {
  NEATBOUND_EXPECTS(oracle.violated(),
                    "build_artifact needs a tripped oracle");
  ViolationArtifact artifact;
  artifact.engine = engine;
  artifact.violation_t = violation_t;
  artifact.oracle = oracle.config();
  artifact.adversary = adversary;
  artifact.network = network;
  artifact.violation = oracle.first_violation();
  artifact.views = oracle.violating_views();
  artifact.slice = oracle.violation_slice();
  return artifact;
}

void write_artifact(std::ostream& os, const ViolationArtifact& artifact) {
  const auto u = [](std::uint64_t value) { return std::to_string(value); };
  os << "{\n";
  os << "\"format\":\"" << kArtifactFormat << "\",\n";
  os << "\"engine\":{\"miners\":" << artifact.engine.miner_count
     << ",\"nu\":" << exp::exact_double_repr(artifact.engine.adversary_fraction)
     << ",\"delta\":" << u(artifact.engine.delta)
     << ",\"rounds\":" << u(artifact.engine.rounds)
     << ",\"p\":" << exp::exact_double_repr(artifact.engine.p)
     << ",\"seed\":" << u(artifact.engine.seed) << ",\"rng\":\""
     << (artifact.engine.rng_mode == sim::RngMode::kCounter ? "counter"
                                                            : "legacy")
     << "\"},\n";
  os << "\"violation_t\":" << u(artifact.violation_t) << ",\n";
  const sim::OracleConfig& oracle = artifact.oracle;
  os << "\"oracle\":{\"common_prefix\":"
     << (oracle.common_prefix ? "true" : "false")
     << ",\"common_prefix_t\":" << u(oracle.common_prefix_t)
     << ",\"growth_window\":" << u(oracle.growth_window)
     << ",\"growth_min_blocks\":" << u(oracle.growth_min_blocks)
     << ",\"quality_window\":" << u(oracle.quality_window)
     << ",\"quality_min_ratio\":"
     << exp::exact_double_repr(oracle.quality_min_ratio)
     << ",\"slice_rounds\":" << u(oracle.slice_rounds) << "},\n";
  os << "\"adversary\":";
  write_component(os, artifact.adversary, "strategy");
  os << ",\n\"network\":";
  write_component(os, artifact.network, "model");
  os << ",\n";
  const sim::OracleViolation& violation = artifact.violation;
  os << "\"violation\":{\"invariant\":\"" << sim::invariant_name(violation.kind)
     << "\",\"round\":" << u(violation.round)
     << ",\"measured\":" << u(violation.measured)
     << ",\"bound\":" << u(violation.bound)
     << ",\"view_a\":" << violation.view_a
     << ",\"view_b\":" << violation.view_b << "},\n";
  os << "\"views\":[";
  for (std::size_t i = 0; i < artifact.views.size(); ++i) {
    const sim::ViewSnapshot& view = artifact.views[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "{\"miner\":" << view.miner << ",\"tip\":" << view.tip
       << ",\"height\":" << u(view.height) << ",\"hash\":\""
       << hex16(view.hash) << "\"}";
  }
  os << "\n],\n";
  os << "\"trace\":[";
  for (std::size_t i = 0; i < artifact.slice.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << sim::to_jsonl_line(artifact.slice[i]);
  }
  os << "\n]\n}\n";
}

void write_artifact_file(const std::string& path,
                         const ViolationArtifact& artifact) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) {
      artifact_error("cannot open " + tmp + " for writing");
    }
    write_artifact(os, artifact);
    os.flush();
    if (!os) {
      artifact_error("write to " + tmp + " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    artifact_error("cannot rename " + tmp + " to " + path);
  }
}

ViolationArtifact parse_artifact(const JsonValue& document) {
  if (!document.is_object()) {
    artifact_error("expected a JSON object");
  }
  reject_unknown_keys(document,
                      {"format", "engine", "violation_t", "oracle",
                       "adversary", "network", "violation", "views", "trace"},
                      "document");
  const std::string format =
      require(document, "format", "document").as_string();
  if (format != kArtifactFormat) {
    artifact_error("unsupported format \"" + format + "\" (expected \"" +
                   std::string(kArtifactFormat) + "\")");
  }
  ViolationArtifact artifact;
  artifact.engine = parse_engine(require(document, "engine", "document"));
  artifact.violation_t =
      require(document, "violation_t", "document").as_uint();
  artifact.oracle =
      parse_oracle_block(require(document, "oracle", "document"));
  artifact.adversary = parse_component(
      require(document, "adversary", "document"), "strategy", "adversary");
  artifact.network = parse_component(require(document, "network", "document"),
                                     "model", "network");
  artifact.violation =
      parse_violation(require(document, "violation", "document"));
  if (artifact.violation.round > artifact.engine.rounds) {
    artifact_error("violation: round " +
                   std::to_string(artifact.violation.round) +
                   " exceeds engine rounds " +
                   std::to_string(artifact.engine.rounds));
  }
  const std::uint32_t honest = sim::honest_miner_count(artifact.engine);
  if (artifact.violation.view_a >= honest ||
      artifact.violation.view_b >= honest) {
    artifact_error("violation: offending view out of honest range");
  }

  const JsonValue& views = require(document, "views", "document");
  std::size_t index = 0;
  for (const JsonValue& entry : views.as_array()) {
    artifact.views.push_back(parse_view(entry, index));
    ++index;
  }
  if (artifact.views.size() != honest) {
    artifact_error("views: expected one snapshot per honest miner (" +
                   std::to_string(honest) + "), got " +
                   std::to_string(artifact.views.size()));
  }

  const JsonValue& trace = require(document, "trace", "document");
  index = 0;
  for (const JsonValue& entry : trace.as_array()) {
    try {
      artifact.slice.push_back(sim::round_record_from_json(entry));
    } catch (const std::exception& e) {
      artifact_error("trace[" + std::to_string(index) + "]: " + e.what());
    }
    ++index;
  }
  // The slice must be exactly the contiguous window the oracle freezes:
  // min(round, slice_rounds) records, consecutive, ending at the
  // violating round.  Anything else is truncation or tampering.
  const std::uint64_t expected =
      std::min(artifact.violation.round, artifact.oracle.slice_rounds);
  if (artifact.slice.size() != expected) {
    artifact_error("trace: expected " + std::to_string(expected) +
                   " records, got " + std::to_string(artifact.slice.size()));
  }
  for (std::size_t i = 0; i < artifact.slice.size(); ++i) {
    const std::uint64_t want =
        artifact.violation.round - expected + 1 + i;
    if (artifact.slice[i].round != want) {
      artifact_error("trace[" + std::to_string(i) + "]: expected round " +
                     std::to_string(want) + ", got " +
                     std::to_string(artifact.slice[i].round));
    }
  }
  return artifact;
}

ViolationArtifact parse_artifact(std::string_view text) {
  JsonValue document;
  try {
    document = parse_json(text);
  } catch (const std::exception& e) {
    artifact_error(e.what());
  }
  return parse_artifact(document);
}

ViolationArtifact load_artifact_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    artifact_error("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  try {
    return parse_artifact(std::string_view{buffer.view()});
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(e.what()) + " [" + path + "]");
  }
}

ReplayResult replay_artifact(const ViolationArtifact& artifact,
                             const ScenarioRegistry& registry) {
  // Prefix determinism: the trajectory of rounds 1..r does not depend on
  // the configured total round count (checked against the full-length
  // original by tests/scenario/test_artifact.cpp), so replay runs
  // exactly to the violating round.
  sim::EngineConfig config = artifact.engine;
  config.rounds = artifact.violation.round;
  sim::InvariantOracle oracle(artifact.oracle);
  sim::ExecutionEngine engine(
      config,
      registry.make_adversary(artifact.network.kind, artifact.network.params,
                              artifact.adversary.kind,
                              artifact.adversary.params, config));
  (void)engine.run(oracle.observer());

  ReplayResult result;
  result.violated = oracle.violated();
  if (!result.violated) {
    result.mismatches.push_back(
        "replay ran " + std::to_string(config.rounds) +
        " rounds without tripping the oracle");
    return result;
  }
  result.violation = oracle.first_violation();
  const sim::OracleViolation& got = result.violation;
  const sim::OracleViolation& want = artifact.violation;
  if (!(got == want)) {
    result.mismatches.push_back(
        std::string("violation differs: replay saw ") +
        sim::invariant_name(got.kind) + " at round " +
        std::to_string(got.round) + " (measured " +
        std::to_string(got.measured) + ", bound " +
        std::to_string(got.bound) + ", views " + std::to_string(got.view_a) +
        "/" + std::to_string(got.view_b) + "), artifact says " +
        sim::invariant_name(want.kind) + " at round " +
        std::to_string(want.round) + " (measured " +
        std::to_string(want.measured) + ", bound " +
        std::to_string(want.bound) + ", views " +
        std::to_string(want.view_a) + "/" + std::to_string(want.view_b) +
        ")");
  }
  const auto& views = oracle.violating_views();
  if (views.size() != artifact.views.size()) {
    result.mismatches.push_back(
        "view count differs: replay has " + std::to_string(views.size()) +
        ", artifact has " + std::to_string(artifact.views.size()));
  } else {
    for (std::size_t i = 0; i < views.size(); ++i) {
      if (views[i] == artifact.views[i]) continue;
      result.mismatches.push_back(
          "view " + std::to_string(i) + " differs: replay tip " +
          std::to_string(views[i].tip) + " height " +
          std::to_string(views[i].height) + " hash " + hex16(views[i].hash) +
          ", artifact tip " + std::to_string(artifact.views[i].tip) +
          " height " + std::to_string(artifact.views[i].height) + " hash " +
          hex16(artifact.views[i].hash));
    }
  }
  const auto& slice = oracle.violation_slice();
  if (slice.size() != artifact.slice.size()) {
    result.mismatches.push_back(
        "trace slice length differs: replay has " +
        std::to_string(slice.size()) + ", artifact has " +
        std::to_string(artifact.slice.size()));
  } else {
    for (std::size_t i = 0; i < slice.size(); ++i) {
      // Serialized equality is exact field equality (all-integer schema).
      const std::string got_line = sim::to_jsonl_line(slice[i]);
      const std::string want_line = sim::to_jsonl_line(artifact.slice[i]);
      if (got_line == want_line) continue;
      result.mismatches.push_back("trace record " + std::to_string(i) +
                                  " differs: replay " + got_line +
                                  ", artifact " + want_line);
    }
  }
  result.reproduced = result.mismatches.empty();
  return result;
}

sim::OracleConfig resolve_oracle_config(const ScenarioSpec& spec) {
  const OracleSpec defaults;
  const OracleSpec& block = spec.oracle ? *spec.oracle : defaults;
  const auto armed = [&block](const char* name) {
    for (const std::string& entry : block.invariants) {
      if (entry == name) return true;
    }
    return false;
  };
  sim::OracleConfig config;
  config.common_prefix = armed("common-prefix");
  config.common_prefix_t =
      block.common_prefix_t.value_or(spec.violation_t);
  config.growth_window = armed("chain-growth") ? block.growth_window : 0;
  config.growth_min_blocks = block.growth_min_blocks;
  config.quality_window = armed("chain-quality") ? block.quality_window : 0;
  config.quality_min_ratio = block.quality_min_ratio;
  config.slice_rounds = block.slice_rounds;
  sim::validate_oracle_config(config);
  return config;
}

OracleScanResult run_scenario_oracle(const ScenarioSpec& spec,
                                     const ScenarioRegistry& registry,
                                     std::uint64_t max_runs) {
  const sim::OracleConfig oracle_config = resolve_oracle_config(spec);
  const exp::SweepGrid grid = build_grid(spec);
  OracleScanResult result;
  for (std::size_t cell = 0; cell < grid.size(); ++cell) {
    const sim::ExperimentConfig cell_config =
        build_config(spec, grid.point(cell));
    for (std::uint32_t seed_index = 0; seed_index < spec.seeds; ++seed_index) {
      if (max_runs != 0 && result.runs_scanned >= max_runs) return result;
      sim::EngineConfig engine_config = cell_config.engine;
      engine_config.seed = spec.base_seed + seed_index;
      sim::InvariantOracle oracle(oracle_config);
      sim::ExecutionEngine engine(
          engine_config,
          registry.make_adversary(spec.network.kind, spec.network.params,
                                  spec.adversary.kind, spec.adversary.params,
                                  engine_config));
      (void)engine.run(oracle.observer());
      ++result.runs_scanned;
      if (oracle.violated()) {
        result.cell_index = cell;
        result.seed_index = seed_index;
        result.artifact =
            build_artifact(engine_config, spec.violation_t, spec.adversary,
                           spec.network, oracle);
        return result;
      }
    }
  }
  return result;
}

}  // namespace neatbound::scenario
