#include "scenario/report.hpp"

#include <cctype>
#include <stdexcept>

#include "bounds/zhao.hpp"
#include "stats/summary.hpp"
#include "support/table.hpp"

namespace neatbound::scenario {

namespace {

const stats::RunningStats* stat_field(const sim::ExperimentSummary& summary,
                                      const std::string& name) {
  if (name == "convergence_opportunities") {
    return &summary.convergence_opportunities;
  }
  if (name == "adversary_blocks") return &summary.adversary_blocks;
  if (name == "honest_blocks") return &summary.honest_blocks;
  if (name == "violation_depth") return &summary.violation_depth;
  if (name == "max_reorg_depth") return &summary.max_reorg_depth;
  if (name == "max_divergence") return &summary.max_divergence;
  if (name == "disagreement_rounds") return &summary.disagreement_rounds;
  if (name == "chain_growth") return &summary.chain_growth;
  if (name == "chain_quality") return &summary.chain_quality;
  if (name == "best_height") return &summary.best_height;
  if (name == "violation_exceeds_t") return &summary.violation_exceeds_t;
  return nullptr;
}

double stat_aggregate(const stats::RunningStats& stat,
                      const std::string& aggregate, const std::string& name) {
  if (aggregate == "mean") return stat.mean();
  if (aggregate == "stderr") return stat.stderr_mean();
  if (aggregate == "stddev") return stat.stddev();
  if (aggregate == "variance") return stat.variance();
  if (aggregate == "min") return stat.min();
  if (aggregate == "max") return stat.max();
  if (aggregate == "count") return static_cast<double>(stat.count());
  throw std::runtime_error(
      "report value \"" + name +
      "\": unknown aggregate (mean | stderr | stddev | variance | min | "
      "max | count)");
}

}  // namespace

CellContext::CellContext(const ScenarioSpec& spec, const exp::SweepCell& cell)
    : spec_(spec), cell_(cell) {}

CellContext::CellContext(const ScenarioSpec& spec,
                         const exp::AdaptiveCell& cell)
    : spec_(spec), cell_(cell.cell), adaptive_(&cell) {}

double CellContext::value(const std::string& name) const {
  if (name == "seeds_used" || name == "violations" || name == "ci_low" ||
      name == "ci_high") {
    if (adaptive_ == nullptr) {
      throw std::runtime_error("report value \"" + name +
                               "\": only resolvable in adaptive runs");
    }
    if (name == "seeds_used") {
      return static_cast<double>(adaptive_->seeds_used);
    }
    if (name == "violations") {
      return static_cast<double>(adaptive_->violations);
    }
    return name == "ci_low" ? adaptive_->ci.lo : adaptive_->ci.hi;
  }
  // "<stat>.<agg>" — summary statistics.
  if (const std::size_t dot = name.find('.'); dot != std::string::npos) {
    const std::string field = name.substr(0, dot);
    const std::string aggregate = name.substr(dot + 1);
    const stats::RunningStats* stat = stat_field(cell_.summary, field);
    if (stat == nullptr) {
      throw std::runtime_error("report value \"" + name +
                               "\": unknown summary field \"" + field + "\"");
    }
    return stat_aggregate(*stat, aggregate, name);
  }

  const sim::EngineConfig& engine = cell_.config.engine;
  if (name == "miners") return static_cast<double>(engine.miner_count);
  if (name == "nu") return engine.adversary_fraction;
  if (name == "delta") return static_cast<double>(engine.delta);
  if (name == "rounds") return static_cast<double>(engine.rounds);
  if (name == "p") return engine.p;
  if (name == "seeds") return static_cast<double>(cell_.config.seeds);

  if (name == "bound" || name == "c" || name == "multiple") {
    const double bound = bounds::neat_bound_c(engine.adversary_fraction);
    if (name == "bound") return bound;
    double c;
    if (spec_.hardness_mode == "neat-bound-multiple") {
      // Recompute exactly as the config builder did, so "c" rows print
      // the same doubles a hand-written bench prints.
      const double multiple = spec_.has_axis("multiple")
                                  ? cell_.point.value("multiple")
                                  : spec_.hardness_multiple;
      if (name == "multiple") return multiple;
      c = bound * multiple;
    } else if (spec_.hardness_mode == "c") {
      c = spec_.has_axis("c") ? cell_.point.value("c") : spec_.hardness_c;
    } else {
      // fixed p: invert p = 1 / (c·n·Δ).
      c = 1.0 / (engine.p * static_cast<double>(engine.miner_count) *
                 static_cast<double>(engine.delta));
    }
    return name == "c" ? c : c / bound;
  }

  for (const AxisSpec& axis : spec_.axes) {
    if (axis.name == name) return cell_.point.value(name);
  }
  throw std::runtime_error(
      "report value \"" + name +
      "\": not an axis, engine parameter (miners|nu|delta|rounds|p|seeds), "
      "derived value (bound|c|multiple), adaptive verdict "
      "(seeds_used|violations|ci_low|ci_high) or \"<stat>.<aggregate>\"");
}

std::string format_label(const std::string& label_template,
                         const CellContext& context) {
  std::string out;
  for (std::size_t i = 0; i < label_template.size();) {
    const char c = label_template[i];
    if (c == '{' && i + 1 < label_template.size() &&
        label_template[i + 1] == '{') {
      out += '{';
      i += 2;
      continue;
    }
    if (c == '}' && i + 1 < label_template.size() &&
        label_template[i + 1] == '}') {
      out += '}';
      i += 2;
      continue;
    }
    if (c != '{') {
      out += c;
      ++i;
      continue;
    }
    const std::size_t close = label_template.find('}', i);
    if (close == std::string::npos) {
      throw std::runtime_error("section label: unterminated '{' in \"" +
                               label_template + "\"");
    }
    std::string hole = label_template.substr(i + 1, close - i - 1);
    int decimals = 6;
    if (const std::size_t colon = hole.find(':');
        colon != std::string::npos) {
      const std::string digits = hole.substr(colon + 1);
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        throw std::runtime_error("section label: bad precision in \"{" +
                                 hole + "}\"");
      }
      decimals = std::stoi(digits);
      hole = hole.substr(0, colon);
    }
    out += format_fixed(context.value(hole), decimals);
    i = close + 1;
  }
  return out;
}

std::vector<ColumnSpec> default_columns(const ScenarioSpec& spec) {
  std::vector<ColumnSpec> columns;
  for (const AxisSpec& axis : spec.axes) {
    columns.push_back({axis.name, axis.name, 4});
  }
  columns.push_back({"mean violation depth", "violation_depth.mean", 2});
  columns.push_back({"max reorg", "max_reorg_depth.max", 0});
  columns.push_back({"max divergence", "max_divergence.max", 0});
  columns.push_back({"P[depth > T]", "violation_exceeds_t.mean", 3});
  columns.push_back({"chain growth", "chain_growth.mean", 4});
  columns.push_back({"chain quality", "chain_quality.mean", 3});
  columns.push_back({"honest blocks", "honest_blocks.mean", 1});
  columns.push_back({"adversary blocks", "adversary_blocks.mean", 1});
  if (spec.adaptive) {
    columns.push_back({"seeds used", "seeds_used", 0});
    columns.push_back({"ci low", "ci_low", 4});
    columns.push_back({"ci high", "ci_high", 4});
  }
  return columns;
}

namespace {

const exp::GridPoint& point_of(const exp::SweepCell& cell) {
  return cell.point;
}
const exp::GridPoint& point_of(const exp::AdaptiveCell& cell) {
  return cell.cell.point;
}

/// Shared sectioning/column loop; Cell is SweepCell or AdaptiveCell
/// (CellContext is constructible from both).
template <typename Cell>
void render_cells(const ScenarioSpec& spec, const std::vector<Cell>& cells,
                  exp::ResultSink& sink) {
  const std::vector<ColumnSpec> columns =
      spec.report.columns.empty() ? default_columns(spec)
                                  : spec.report.columns;
  std::vector<std::string> headers;
  headers.reserve(columns.size());
  for (const ColumnSpec& column : columns) headers.push_back(column.header);

  bool section_open = false;
  double section_value = 0.0;
  for (const Cell& cell : cells) {
    const CellContext context(spec, cell);
    if (spec.report.section_by.empty()) {
      if (!section_open) {
        sink.begin_section("", headers);
        section_open = true;
      }
    } else {
      const double current = point_of(cell).value(spec.report.section_by);
      if (!section_open || current != section_value) {
        sink.begin_section(format_label(spec.report.section_label, context),
                           headers);
        section_open = true;
        section_value = current;
      }
    }
    std::vector<std::string> row;
    row.reserve(columns.size());
    for (const ColumnSpec& column : columns) {
      row.push_back(format_fixed(context.value(column.value),
                                 column.decimals));
    }
    sink.add_row(row);
  }
}

}  // namespace

void render_report(const ScenarioSpec& spec,
                   const std::vector<exp::SweepCell>& cells,
                   exp::ResultSink& sink) {
  render_cells(spec, cells, sink);
}

void render_adaptive_report(const ScenarioSpec& spec,
                            const std::vector<exp::AdaptiveCell>& cells,
                            exp::ResultSink& sink) {
  render_cells(spec, cells, sink);
}

}  // namespace neatbound::scenario
