#include "scenario/runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "bounds/zhao.hpp"
#include "exp/bench_io.hpp"

namespace neatbound::scenario {

void apply_overrides(ScenarioSpec& spec, const SpecOverrides& overrides) {
  if (overrides.miners) spec.miners = *overrides.miners;
  if (overrides.rng) spec.rng = *overrides.rng;
  if (overrides.nu) spec.nu = *overrides.nu;
  if (overrides.delta) spec.delta = *overrides.delta;
  if (overrides.rounds) spec.rounds = *overrides.rounds;
  if (overrides.seeds) {
    spec.seeds = *overrides.seeds;
    // Downsizing an adaptive spec must actually cap its budget: --seeds
    // becomes the max, and min/batch are clamped under it.
    if (spec.adaptive) {
      spec.adaptive->max_seeds = *overrides.seeds;
      spec.adaptive->min_seeds =
          std::min(spec.adaptive->min_seeds, spec.adaptive->max_seeds);
      spec.adaptive->batch =
          std::min(spec.adaptive->batch, spec.adaptive->max_seeds);
    }
  }
  if (overrides.base_seed) spec.base_seed = *overrides.base_seed;
  if (overrides.violation_t) spec.violation_t = *overrides.violation_t;
}

exp::SweepGrid build_grid(const ScenarioSpec& spec) {
  exp::SweepGrid grid;
  for (const AxisSpec& axis : spec.axes) {
    grid.axis(axis.name, axis.values);
  }
  return grid;
}

namespace {

double axis_or(const ScenarioSpec& spec, const exp::GridPoint& point,
               const std::string& axis, double fallback) {
  return spec.has_axis(axis) ? point.value(axis) : fallback;
}

}  // namespace

sim::ExperimentConfig build_config(const ScenarioSpec& spec,
                                   const exp::GridPoint& point) {
  sim::ExperimentConfig config;
  config.engine.miner_count = static_cast<std::uint32_t>(
      axis_or(spec, point, "miners", static_cast<double>(spec.miners)));
  config.engine.adversary_fraction = axis_or(spec, point, "nu", spec.nu);
  config.engine.delta = static_cast<std::uint64_t>(
      axis_or(spec, point, "delta", static_cast<double>(spec.delta)));
  config.engine.rounds = static_cast<std::uint64_t>(
      axis_or(spec, point, "rounds", static_cast<double>(spec.rounds)));
  config.engine.p = axis_or(spec, point, "p", spec.p);
  config.engine.rng_mode =
      spec.rng == "legacy" ? sim::RngMode::kLegacy : sim::RngMode::kCounter;

  if (spec.hardness_mode == "neat-bound-multiple") {
    // Operation-for-operation the arithmetic of bench_consistency_sweep:
    // c = neat_bound_c(nu) · multiple, p = 1 / (c·n·Δ).
    const double nu = config.engine.adversary_fraction;
    const double multiple =
        axis_or(spec, point, "multiple", spec.hardness_multiple);
    const double c = bounds::neat_bound_c(nu) * multiple;
    config.engine.p =
        1.0 / (c * static_cast<double>(config.engine.miner_count) *
               static_cast<double>(config.engine.delta));
  } else if (spec.hardness_mode == "c") {
    const double c = axis_or(spec, point, "c", spec.hardness_c);
    config.engine.p =
        1.0 / (c * static_cast<double>(config.engine.miner_count) *
               static_cast<double>(config.engine.delta));
  }

  config.seeds = spec.seeds;
  config.base_seed = spec.base_seed;
  sim::validate_engine_config(config.engine);
  return config;
}

void validate_components(const ScenarioSpec& spec,
                         const ScenarioRegistry& registry) {
  sim::EngineConfig probe =
      build_config(spec, build_grid(spec).point(0)).engine;
  probe.seed = spec.base_seed;
  (void)registry.make_adversary(spec.network.kind, spec.network.params,
                                spec.adversary.kind, spec.adversary.params,
                                probe);
}

std::vector<exp::SweepCell> run_scenario(const ScenarioSpec& spec,
                                         const ScenarioRegistry& registry,
                                         const ScenarioRunOptions& options) {
  const exp::SweepGrid grid = build_grid(spec);
  validate_components(spec, registry);

  const auto build = [&spec](const exp::GridPoint& point) {
    return build_config(spec, point);
  };
  const auto factory = [&spec, &registry](
                           const sim::ExperimentConfig&,
                           const sim::EngineConfig& engine_config) {
    return registry.make_adversary(spec.network.kind, spec.network.params,
                                   spec.adversary.kind,
                                   spec.adversary.params, engine_config);
  };
  return exp::run_sweep_with(
      grid, build,
      {.violation_t = spec.violation_t, .threads = options.threads}, factory);
}

exp::AdaptiveOptions resolve_adaptive_options(
    const ScenarioSpec& spec, const ScenarioRunOptions& options) {
  exp::AdaptiveOptions adaptive;
  if (spec.adaptive) {
    adaptive.min_seeds = spec.adaptive->min_seeds;
    adaptive.batch = spec.adaptive->batch;
    adaptive.max_seeds = spec.adaptive->max_seeds;
    adaptive.half_width = spec.adaptive->half_width;
    adaptive.confidence = spec.adaptive->confidence;
  } else {
    // Fixed-budget degenerate schedule: one wave of exactly spec.seeds
    // runs per cell, never stopping early — the summaries are
    // bit-identical to run_scenario, checkpointing comes for free.
    adaptive.min_seeds = spec.seeds;
    adaptive.batch = spec.seeds;
    adaptive.max_seeds = spec.seeds;
    adaptive.half_width = 0.0;
  }
  adaptive.checkpoint_path = options.checkpoint_path;
  adaptive.resume = options.resume;
  adaptive.stop_after_waves = options.stop_after_waves;
  adaptive.batch_seeds = options.batch_seeds;
  adaptive.progress = options.progress;
  // The automatic fingerprint only sees engine configs; the registry
  // components (and their parameters) decide what those configs *run*,
  // so they are part of the sweep's identity too.
  adaptive.fingerprint_context =
      "adversary:" + spec.adversary.kind + "{" +
      spec.adversary.params.fingerprint_text() + "}network:" +
      spec.network.kind + "{" + spec.network.params.fingerprint_text() + "}";
  return adaptive;
}

exp::AdaptiveSweepResult run_scenario_adaptive(
    const ScenarioSpec& spec, const ScenarioRegistry& registry,
    const ScenarioRunOptions& options) {
  const exp::SweepGrid grid = build_grid(spec);
  validate_components(spec, registry);

  const auto build = [&spec](const exp::GridPoint& point) {
    return build_config(spec, point);
  };
  const auto factory = [&spec, &registry](
                           const sim::ExperimentConfig&,
                           const sim::EngineConfig& engine_config) {
    return registry.make_adversary(spec.network.kind, spec.network.params,
                                   spec.adversary.kind,
                                   spec.adversary.params, engine_config);
  };
  return exp::run_sweep_adaptive_with(
      grid, build,
      {.violation_t = spec.violation_t, .threads = options.threads},
      resolve_adaptive_options(spec, options), factory);
}

sim::RunResult run_scenario_trace(const ScenarioSpec& spec,
                                  const ScenarioRegistry& registry,
                                  sim::RoundTraceSink& sink) {
  const exp::SweepGrid grid = build_grid(spec);
  sim::EngineConfig engine_config = build_config(spec, grid.point(0)).engine;
  engine_config.seed = spec.base_seed;
  sim::ExecutionEngine engine(
      engine_config,
      registry.make_adversary(spec.network.kind, spec.network.params,
                              spec.adversary.kind, spec.adversary.params,
                              engine_config));
  return engine.run(sim::make_round_tracer(sink));
}

void stamp_meta(const ScenarioSpec& spec, exp::BenchReporter& reporter) {
  // An engine parameter that is swept by an axis has no single value to
  // stamp — its per-point values live in the report rows — so only the
  // parameters that actually hold across the whole run are recorded.
  if (!spec.has_axis("miners")) {
    reporter.set_meta_number("miners", static_cast<double>(spec.miners));
  }
  if (!spec.has_axis("delta")) {
    reporter.set_meta_number("delta", static_cast<double>(spec.delta));
  }
  if (!spec.has_axis("rounds")) {
    reporter.set_meta_number("rounds", static_cast<double>(spec.rounds));
  }
  reporter.set_meta_number("seeds", static_cast<double>(spec.seeds));
  for (const auto& [key, value] : spec.extra_meta) {
    reporter.set_meta_number(key, value);
  }
}

}  // namespace neatbound::scenario
