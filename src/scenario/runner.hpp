// Executes a parsed scenario through the experiment orchestrator.
//
// The pipeline is exactly a hand-written bench's: the spec's axes become
// an exp::SweepGrid, each grid point is materialized into an
// sim::ExperimentConfig (axis overrides + hardness rule), every
// (cell × seed) engine run goes through exp::run_sweep_with on one shared
// work pool, and the cells render into any exp::ResultSink.  Because the
// grid enumeration, config arithmetic, adversary construction and
// aggregation all reuse the bench code paths, a scenario that mirrors a
// bench produces bit-identical summaries.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exp/adaptive.hpp"
#include "exp/orchestrator.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "sim/trace.hpp"

namespace neatbound::exp {
class BenchReporter;
}  // namespace neatbound::exp

namespace neatbound::scenario {

/// Command-line overrides applied on top of a scenario file (downsizing a
/// spec for CI smoke runs, sweeping a different seed count, …).  An
/// override replaces the spec's engine default; axes still win per point.
struct SpecOverrides {
  std::optional<std::uint32_t> miners;
  std::optional<double> nu;
  std::optional<std::uint64_t> delta;
  std::optional<std::uint64_t> rounds;
  std::optional<std::uint32_t> seeds;
  std::optional<std::uint64_t> base_seed;
  std::optional<std::uint64_t> violation_t;
  std::optional<std::string> rng;  ///< "counter" | "legacy"
};

void apply_overrides(ScenarioSpec& spec, const SpecOverrides& overrides);

/// The spec's axes as a SweepGrid (row-major, last axis fastest).
[[nodiscard]] exp::SweepGrid build_grid(const ScenarioSpec& spec);

/// One grid point's experiment config: engine defaults, axis overrides,
/// then the hardness rule for p.  Throws (via validate_engine_config) on
/// unusable parameter combinations.
[[nodiscard]] sim::ExperimentConfig build_config(const ScenarioSpec& spec,
                                                 const exp::GridPoint& point);

struct ScenarioRunOptions {
  unsigned threads = 0;  ///< sweep pool workers; 0 = hardware concurrency
  /// Checkpoint file for the adaptive path ("" = no checkpointing); see
  /// exp/checkpoint.hpp for the exactness contract.
  std::string checkpoint_path;
  bool resume = false;  ///< resume checkpoint_path if it exists
  /// Interrupt deterministically after N scheduling waves (0 = run to
  /// completion) — the CI/resume-test hook, surfaced by the CLI.
  std::uint32_t stop_after_waves = 0;
  /// Cross-seed batch width forwarded to exp::AdaptiveOptions::batch_seeds
  /// (the CLI's --batch-seeds); 0/1 = per-seed runs.
  std::uint32_t batch_seeds = 1;
  /// Wave-boundary progress callback, forwarded into
  /// exp::AdaptiveOptions::progress (adaptive path only; observation
  /// only, not part of the checkpoint fingerprint).
  std::function<void(const exp::WaveProgress&)> progress;
};

/// Fail-fast validation shared by run/describe: resolves the first grid
/// point's engine config and builds (and discards) one adversary, so
/// unknown components, bad parameters and unusable engine values all
/// throw before any engine run spawns.
void validate_components(const ScenarioSpec& spec,
                         const ScenarioRegistry& registry);

/// Runs the whole grid.  Component names/params are validated against the
/// registry up front (before any engine spawns), then every (cell × seed)
/// job builds its adversary through the registry.
[[nodiscard]] std::vector<exp::SweepCell> run_scenario(
    const ScenarioSpec& spec, const ScenarioRegistry& registry,
    const ScenarioRunOptions& options);

/// The exp::AdaptiveOptions a spec resolves to: the spec's "adaptive"
/// block when present, otherwise the fixed-budget degenerate schedule
/// (min = batch = max = spec.seeds, half_width 0 — bit-identical
/// summaries to run_scenario) so checkpointing works under plain specs
/// too.  Checkpoint/resume/interrupt fields come from `options`.
[[nodiscard]] exp::AdaptiveOptions resolve_adaptive_options(
    const ScenarioSpec& spec, const ScenarioRunOptions& options);

/// Adaptive/checkpointed variant of run_scenario: same grid, configs,
/// registry-built adversaries and validation, executed through
/// exp::run_sweep_adaptive_with.  result.complete is false when
/// options.stop_after_waves interrupted the sweep (the checkpoint, if
/// any, holds the partial state).
[[nodiscard]] exp::AdaptiveSweepResult run_scenario_adaptive(
    const ScenarioSpec& spec, const ScenarioRegistry& registry,
    const ScenarioRunOptions& options);

/// One dedicated traced engine run: the spec's *first* grid point (the
/// same cell validate_components probes), engine seed = spec.base_seed,
/// adversary and network built through the registry.  Every round is
/// streamed into `sink` as a sim::RoundRecord; the returned RunResult is
/// bit-identical to the same config's untraced run (the tracer is a
/// read-only observer).  Trace runs are deliberately single-run: the
/// multi-seed sweep stays untraced and full-speed.
[[nodiscard]] sim::RunResult run_scenario_trace(
    const ScenarioSpec& spec, const ScenarioRegistry& registry,
    sim::RoundTraceSink& sink);

/// Stamps the standard meta numbers (miners, delta, rounds, seeds — the
/// keys the engine benches stamp) plus the spec's extra meta entries.
void stamp_meta(const ScenarioSpec& spec, exp::BenchReporter& reporter);

}  // namespace neatbound::scenario
