#!/usr/bin/env python3
"""Fail when engine throughput regressed against the recorded baseline.

Usage:
    check_perf_regression.py BASELINE CURRENT_JSON [--max-regression F]

CURRENT_JSON is a bench_engine_throughput JSON summary (see
scripts/perf_baseline).  BASELINE is either another such summary
(e.g. BENCH_engine.json) or a BENCH_history.jsonl trajectory, in which
case the *latest* entry's rounds_per_sec is the reference.  The
comparison is on a rate, so the current run may be downsized (fewer
rounds/seeds) relative to the baseline.  Exit status 1 when

    current_rounds_per_sec < baseline_rounds_per_sec * (1 - F)

with F defaulting to 0.25 (the CI gate).  Machines differ; F is a guard
against order-of-magnitude regressions, not a microbenchmark oracle —
override with --max-regression when comparing across hardware tiers.
"""
import argparse
import json
import sys


def latest_history_entry(path: str) -> dict:
    entries = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    if not entries:
        raise SystemExit(f"{path}: empty history file")
    return entries[-1]


def rounds_per_sec(path: str) -> float:
    try:
        if path.endswith(".jsonl"):
            entry = latest_history_entry(path)
            value = float(entry["rounds_per_sec"])
            print(f"{path}: latest entry {entry.get('sha', '?')[:12]} "
                  f"({entry.get('date', '?')})")
        else:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
            value = float(doc["meta"]["rounds_per_sec"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"{path}: missing/invalid rounds_per_sec: {exc}")
    if value <= 0:
        raise SystemExit(f"{path}: non-positive rounds_per_sec {value}")
    return value


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    args = parser.parse_args()

    base = rounds_per_sec(args.baseline)
    cur = rounds_per_sec(args.current)
    floor = base * (1.0 - args.max_regression)
    ratio = cur / base
    print(f"baseline: {base:,.0f} rounds/s   current: {cur:,.0f} rounds/s   "
          f"ratio: {ratio:.2f}   floor: {floor:,.0f}")
    if cur < floor:
        print(f"FAIL: throughput regressed more than "
              f"{args.max_regression:.0%} against {args.baseline}",
              file=sys.stderr)
        return 1
    print("OK: within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
