#!/usr/bin/env python3
"""Fail when engine throughput regressed against the recorded baseline.

Usage:
    check_perf_regression.py BASELINE CURRENT_JSON [--max-regression F]

CURRENT_JSON is a bench_engine_throughput JSON summary (see
scripts/perf_baseline).  BASELINE is either another such summary
(e.g. BENCH_engine.json) or a BENCH_history.jsonl trajectory, in which
case the *latest* entry's rounds_per_sec is the reference.  The
comparison is on a rate, so the current run may be downsized (fewer
rounds/seeds) relative to the baseline.  Exit status 1 when

    current_rounds_per_sec < baseline_rounds_per_sec * (1 - F)

with F defaulting to 0.25 (the CI gate).  Machines differ; F is a guard
against order-of-magnitude regressions, not a microbenchmark oracle —
override with --max-regression when comparing across hardware tiers.
"""
import argparse
import json
import sys


def latest_history_entry(path: str) -> dict:
    entries = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    if not entries:
        raise SystemExit(f"{path}: empty history file")
    return entries[-1]


def perf_entry(path: str) -> dict:
    """The meta/entry dict holding the throughput keys for `path`."""
    if path.endswith(".jsonl"):
        entry = latest_history_entry(path)
        print(f"{path}: latest entry {entry.get('sha', '?')[:12]} "
              f"({entry.get('date', '?')})")
        return entry
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)["meta"]


def throughput(entry: dict, path: str, key: str) -> float:
    try:
        value = float(entry[key])
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"{path}: missing/invalid {key}: {exc}")
    if value <= 0:
        raise SystemExit(f"{path}: non-positive {key} {value}")
    return value


def gate(label: str, base: float, cur: float, max_regression: float) -> bool:
    floor = base * (1.0 - max_regression)
    ratio = cur / base
    print(f"{label}: baseline {base:,.0f} rounds/s   current {cur:,.0f} "
          f"rounds/s   ratio {ratio:.2f}   floor {floor:,.0f}")
    if cur < floor:
        print(f"FAIL: {label} regressed more than {max_regression:.0%}",
              file=sys.stderr)
        return False
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    args = parser.parse_args()

    base = perf_entry(args.baseline)
    cur = perf_entry(args.current)
    ok = gate("serial", throughput(base, args.baseline, "rounds_per_sec"),
              throughput(cur, args.current, "rounds_per_sec"),
              args.max_regression)
    # Mode-aware batched gate: enforced only when both sides carry the
    # batched row (older history entries predate the batch engine; a
    # current run without the row means --batch-seeds was 0, which the
    # CI invocation never does).
    if "batched_rounds_per_sec" in base and "batched_rounds_per_sec" in cur:
        ok = gate("batched",
                  throughput(base, args.baseline, "batched_rounds_per_sec"),
                  throughput(cur, args.current, "batched_rounds_per_sec"),
                  args.max_regression) and ok
    elif "batched_rounds_per_sec" in cur:
        print("batched: no baseline row yet — skipping (will be gated once "
              "the history records one)")
    if not ok:
        return 1
    print("OK: within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
