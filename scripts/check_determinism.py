#!/usr/bin/env python3
"""Repo-specific determinism lint for the neatbound sources.

The simulator's headline contract — same seed, same bytes, serial ≡
parallel — is sampled dynamically by the parity tests but enforced
nowhere.  This pass statically bans the constructions that historically
break that contract in simulation codebases:

  nondeterministic-source   std::random_device, rand()/srand(), time()-
                            style entropy.  Every random draw must come
                            from the seeded support/rng.hpp stream.
  wall-clock                std::chrono::system_clock /
                            high_resolution_clock.  steady_clock is
                            allowed only via the rule below.
  raw-steady-clock          std::chrono::steady_clock anywhere except
                            src/support/telemetry.{hpp,cpp} — the one
                            sanctioned timing point (phase scopes, the
                            reporter's elapsed_seconds routes through an
                            explicit allow).  Clock reads scattered
                            through sim code eventually leak into output
                            or, worse, into control flow.
  time-seeded-rng           any RNG or seed expression built from a
                            clock's now() — allowed clocks included.
  unordered-iteration       iterating an unordered_map/unordered_set.
                            Hash-order is libstdc++-version- and
                            pointer-dependent; anything iterated in hash
                            order eventually leaks into output or an
                            accumulation fold.  Membership lookups
                            (find/count/at/emplace) are fine.
  pointer-keyed-ordering    std::map/std::set keyed on a pointer, or a
                            std::less<T*> comparator: iteration order
                            becomes allocation order, which ASLR
                            reshuffles per process.

Justified exceptions carry an in-source allowlist comment on the same
line or the line above:

    // determinism-lint: allow(unordered-iteration) — <why it is safe>

Scanned: src/ and cli/ (*.hpp, *.cpp).  Exit 1 with file:line findings
on any un-allowlisted hit.

Self-test: `--self-test` runs the rules over tests/lint/fixtures/*.cpp;
each fixture declares the rules it must trigger with `// lint-expect:
<rule>` lines (a fixture with none must scan clean), and the run fails
unless every fixture fires exactly its declared rule set.  This is the
CTest entry `lint/determinism_self_test`.

Comment/string handling is delegated to the shared C++ lexer in
neatbound_srcmodel.py: comments (including multi-line /* */) AND string
literals (including raw strings) are blanked before the rules run, so
prose cannot trip a rule and a string containing "//" cannot hide a
real finding on the same line.
"""
import argparse
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import neatbound_srcmodel as srcmodel  # noqa: E402

ALLOW = re.compile(r"determinism-lint:\s*allow\(([a-z,\s-]+)\)")
EXPECT = re.compile(r"//\s*lint-expect:\s*([a-z-]+)")

# Declarations of unordered containers: remember the variable name so
# later iteration over it can be flagged even far from the declaration.
UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}]*?>\s*([A-Za-z_]\w*)\s*[;={]")
# Range-for target: the last identifier component of the iterated
# expression ("for (auto& x : foo.bar_)" -> "bar_").
RANGE_FOR = re.compile(r"for\s*\([^;)]*?:\s*([A-Za-z_][\w.\->]*)\s*\)")
ITER_CALL = re.compile(r"([A-Za-z_]\w*)\s*\.\s*(?:begin|end|cbegin|cend)\s*\(")

SIMPLE_RULES = {
    "nondeterministic-source": [
        re.compile(r"random_device"),
        re.compile(r"(?<![\w:])(?:std\s*::\s*)?s?rand\s*\("),
        re.compile(r"(?<![\w:])std\s*::\s*time\s*\("),
        re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
    ],
    "wall-clock": [
        re.compile(r"system_clock"),
        re.compile(r"high_resolution_clock"),
    ],
    "time-seeded-rng": [
        re.compile(
            r"(?:\bRng\b|\bmt19937(?:_64)?\b|\bminstd_rand0?\b"
            r"|\bdefault_random_engine\b|\branlux\w+\b|[Ss]eed\w*)"
            r"[^;]*?[({=][^;]*\bnow\s*\(\)"),
    ],
    "pointer-keyed-ordering": [
        re.compile(r"std\s*::\s*(?:map|set)\s*<\s*(?:const\s+)?"
                   r"[A-Za-z_:][\w:<>]*\s*\*"),
        re.compile(r"std\s*::\s*less\s*<[^>]*\*\s*>"),
    ],
}

# Rules whose verdict depends on *where* the code lives: the pattern is
# banned tree-wide except in the named root-relative files.  Fixtures
# (scanned with relpath=None) are never exempt, so self-test can prove
# the rule fires.
PATH_RULES = {
    "raw-steady-clock": {
        "patterns": [re.compile(r"steady_clock")],
        "exempt": ("src/support/telemetry.hpp", "src/support/telemetry.cpp"),
    },
}

ALL_RULES = sorted(
    list(SIMPLE_RULES) + list(PATH_RULES) + ["unordered-iteration"])


def allowed_rules(raw_lines: list[str], lineno: int) -> set[str]:
    """Rules allowlisted for 1-based line `lineno`: a comment on the line
    itself or the line directly above."""
    rules: set[str] = set()
    for candidate in (lineno - 1, lineno):  # 0-based: previous, current
        if 0 <= candidate - 1 < len(raw_lines):
            match = ALLOW.search(raw_lines[candidate - 1])
            if match:
                rules.update(r.strip() for r in match.group(1).split(","))
    return rules


def scan_file(path: pathlib.Path,
              relpath: str | None = None) -> list[tuple[int, str, str]]:
    """Returns (line, rule, excerpt) findings for one file.  `relpath` is
    the root-relative POSIX path, consulted by PATH_RULES exemptions;
    None (fixtures) means no exemption applies."""
    text = path.read_text(encoding="utf-8")
    raw = text.splitlines()
    # Shared lexer: blanks comments AND string literals (raw strings,
    # multi-line /* */ blocks) while preserving the line layout.
    clean = srcmodel.lex(text).code.splitlines()
    findings: list[tuple[int, str, str]] = []

    unordered_names = set()
    for line in clean:
        unordered_names.update(UNORDERED_DECL.findall(line))

    for lineno, line in enumerate(clean, start=1):
        hits: set[str] = set()
        for rule, patterns in SIMPLE_RULES.items():
            if any(p.search(line) for p in patterns):
                hits.add(rule)
        for rule, spec in PATH_RULES.items():
            if relpath in spec["exempt"]:
                continue
            if any(p.search(line) for p in spec["patterns"]):
                hits.add(rule)
        for match in RANGE_FOR.finditer(line):
            target = re.split(r"\.|->", match.group(1))[-1]
            if target in unordered_names or "unordered_" in match.group(0):
                hits.add("unordered-iteration")
        for match in ITER_CALL.finditer(line):
            if match.group(1) in unordered_names:
                hits.add("unordered-iteration")
        if not hits:
            continue
        allowed = allowed_rules(raw, lineno)
        for rule in sorted(hits - allowed):
            findings.append((lineno, rule, raw[lineno - 1].strip()))
    return findings


def lint_tree(root: pathlib.Path) -> int:
    failures = 0
    for subdir in ("src", "cli"):
        base = root / subdir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".hpp", ".cpp"):
                continue
            for lineno, rule, excerpt in scan_file(
                    path, path.relative_to(root).as_posix()):
                print(f"FAIL: {path.relative_to(root)}:{lineno}: [{rule}] "
                      f"{excerpt}", file=sys.stderr)
                failures += 1
    if failures:
        print(f"{failures} determinism-lint finding(s); add "
              f"'// determinism-lint: allow(<rule>)' only with a written "
              f"justification", file=sys.stderr)
        return 1
    print("OK: src/ and cli/ are clean under the determinism lint "
          f"({', '.join(ALL_RULES)})")
    return 0


def self_test(root: pathlib.Path) -> int:
    fixtures = sorted((root / "tests" / "lint" / "fixtures").glob("*.cpp"))
    if not fixtures:
        print("FAIL: no fixtures found under tests/lint/fixtures",
              file=sys.stderr)
        return 1
    failures = 0
    covered: set[str] = set()
    for fixture in fixtures:
        raw = fixture.read_text(encoding="utf-8").splitlines()
        expected = {m.group(1) for line in raw for m in [EXPECT.search(line)]
                    if m}
        fired = {rule for _, rule, _ in scan_file(fixture)}
        covered |= fired
        if fired != expected:
            print(f"FAIL: {fixture.name}: expected rules "
                  f"{sorted(expected) or '∅'}, fired {sorted(fired) or '∅'}",
                  file=sys.stderr)
            failures += 1
        else:
            print(f"ok: {fixture.name}: {sorted(fired) or ['clean']}")
    missing = set(ALL_RULES) - covered
    if missing:
        print(f"FAIL: no fixture exercises rule(s): {sorted(missing)}",
              file=sys.stderr)
        failures += 1
    if failures:
        return 1
    print(f"OK: {len(fixtures)} fixtures, every rule "
          f"({', '.join(ALL_RULES)}) proven to fire")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--root",
        default=str(pathlib.Path(__file__).resolve().parent.parent),
        help="repository root (default: the repo containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rules against tests/lint/fixtures "
                             "and require each to fire as declared")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()
    return self_test(root) if args.self_test else lint_tree(root)


if __name__ == "__main__":
    sys.exit(main())
