"""Shared C++ source model for the repo's Python lint/analysis tools.

This module is the text front end both `check_determinism.py` and
`neatbound_analyze.py` build on.  It deliberately implements a *lexer*,
not a parser: the tools need comment/string-safe pattern matching,
include edges, and function extents with a few declaration-level facts
(class, access, const/noexcept, annotations) — all of which a tracked
brace/paren scan recovers reliably for this codebase's style, without a
compiler dependency.  When libclang is available, `neatbound_analyze.py`
swaps this front end for a real AST; the model shapes are identical.

Pieces:

  lex(text)          -> Lexed(code, code_with_strings): the source with
                        comments (and, for `.code`, string/char literal
                        contents) blanked to spaces, newlines preserved,
                        so line/column arithmetic still works.  Handles
                        line comments, multi-line /* */ blocks, escaped
                        quotes, digit separators (1'000'000), and raw
                        string literals R"delim(...)delim" — the
                        constructs the pre-PR-7 determinism lint
                        mishandled: a raw string could swallow code, and
                        `//` inside a string ate the rest of the line.
  extract_includes   -> ordered [(lineno, target)] of quoted includes.
  extract_functions  -> ([Function], [Declaration]): every function
                        definition with its extent, enclosing class,
                        qualifiers, annotations, body-derived call names
                        and statement count; plus in-class member
                        declarations (no body) for access/annotation
                        lookup of out-of-line definitions.
  parse_allow_comments -> {lineno: rules} from in-source allowlist
                        comments (`<tag>: allow(rule-a, rule-b) — why`).
                        An allow on line L covers findings on L and L+1,
                        mirroring the determinism lint's "same line or
                        the line above" contract.
"""
from __future__ import annotations

import bisect
import dataclasses
import re

# ---------------------------------------------------------------------------
# Lexing


@dataclasses.dataclass
class Lexed:
    """Source text with non-code regions blanked (lengths preserved)."""

    code: str               # comments AND string/char literals blanked
    code_with_strings: str  # only comments blanked (for #include targets)


_RAW_OPEN = re.compile(r'(?:u8|[uUL])?R"([^ ()\\\t\v\f\n]{0,16})\(')


def lex(text: str) -> Lexed:
    """Blank comments and literals out of `text`, preserving layout."""
    n = len(text)
    code = list(text)
    code_ws = list(text)
    i = 0
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            for j in range(i, end):
                code[j] = code_ws[j] = " "
            i = end
        elif ch == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            for j in range(i, end):
                if text[j] != "\n":
                    code[j] = code_ws[j] = " "
            i = end
        elif ch == "'" and i > 0 and text[i - 1].isalnum() and \
                i + 1 < n and text[i + 1].isalnum():
            i += 1  # digit separator (1'000'000), not a char literal
        elif ch in "\"'uULR":
            end = _raw_string_at(text, i)
            if end is None:
                if ch == '"':
                    end = _skip_quoted(text, i, '"')
                elif ch == "'":
                    end = _skip_quoted(text, i, "'")
                else:  # a u/U/L/R that is just an identifier character
                    i += 1
                    continue
            for j in range(i, end):
                if text[j] != "\n":
                    code[j] = " "
            i = end
        else:
            i += 1
    return Lexed("".join(code), "".join(code_ws))


def _raw_string_at(text: str, i: int) -> int | None:
    """If a raw string literal starts at `i`, return its end offset."""
    if i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
        return None  # part of a longer identifier, e.g. FooR"..."
    m = _RAW_OPEN.match(text, i)
    if m is None:
        return None
    closer = ")" + m.group(1) + '"'
    end = text.find(closer, m.end())
    return len(text) if end == -1 else end + len(closer)


def _skip_quoted(text: str, i: int, quote: str) -> int:
    """End offset of a regular string/char literal starting at `i`."""
    j = i + 1
    while j < len(text):
        if text[j] == "\\":
            j += 2
        elif text[j] == quote or text[j] == "\n":  # unterminated: stop at EOL
            return j + 1
        else:
            j += 1
    return j


# ---------------------------------------------------------------------------
# Includes

_INCLUDE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def extract_includes(text: str) -> list[tuple[int, str]]:
    """(lineno, target) for every quoted include, comment-safe."""
    lexed = lex(text)
    out = []
    for lineno, line in enumerate(lexed.code_with_strings.splitlines(), 1):
        m = _INCLUDE.match(line)
        if m:
            out.append((lineno, m.group(1)))
    return out


# ---------------------------------------------------------------------------
# Allow comments


def parse_allow_comments(
    raw_lines: list[str], tag: str
) -> dict[int, set[str]]:
    """{covered_lineno: rules} for `// <tag>: allow(a, b) — why` comments.

    A comment on line L covers findings reported on L and on L+1 (the
    "same line or the line above" contract shared with the determinism
    lint).  When the allow opens a multi-line // rationale block, the
    coverage extends through the block to the first code line after it,
    so the written justification can be longer than one line."""
    pattern = re.compile(re.escape(tag) + r":\s*allow\(([a-z0-9,\s-]+)\)")
    covered: dict[int, set[str]] = {}
    for lineno, line in enumerate(raw_lines, 1):
        m = pattern.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        covered.setdefault(lineno, set()).update(rules)
        j = lineno + 1
        while (j <= len(raw_lines)
               and raw_lines[j - 1].lstrip().startswith("//")):
            covered.setdefault(j, set()).update(rules)
            j += 1
        covered.setdefault(j, set()).update(rules)
    return covered


# ---------------------------------------------------------------------------
# Function extraction

_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "alignof", "alignas", "decltype", "static_assert", "new",
    "delete", "throw", "case", "default", "noexcept", "requires",
}

# Member-call names that are overwhelmingly std-container/std-utility
# operations; call edges through them never resolve to project functions
# (a project accessor that shares one of these names — e.g. a `size()`
# wrapper — is by the same token too trivial to carry interesting
# reachability).
STD_MEMBER_NAMES = {
    "size", "empty", "clear", "begin", "end", "cbegin", "cend", "rbegin",
    "rend", "push_back", "emplace_back", "pop_back", "push_front", "pop",
    "push", "top", "front", "back", "reserve", "resize", "insert",
    "emplace", "erase", "find", "count", "at", "data", "swap", "assign",
    "append", "substr", "c_str", "str", "length", "get", "value",
    "value_or", "has_value", "reset", "release", "lock", "unlock", "load",
    "store", "min", "max", "clamp", "move", "forward", "make_pair",
    "to_string", "abs", "llround", "lround", "round", "floor", "ceil",
    "sqrt", "log", "log2", "log1p", "exp", "expm1", "pow", "isnan",
    "isinf", "isfinite", "bit_ceil", "has_single_bit", "countl_zero",
    "bit_width", "apply", "visit", "tie",
}

# The telemetry macro surface (support/telemetry.hpp).  ALL-UPPERCASE
# names are already invisible to the call graph (_IDENT_CALL filters
# them), but analyzers need the set to (a) treat the macros like the
# invariant/contract macros on side-effect-sensitive checks and (b) make
# clear that instrumentation does NOT change a function's hot-path
# classification.
TELEMETRY_MACROS = {
    "NEATBOUND_COUNT", "NEATBOUND_COUNT_ADD", "NEATBOUND_PHASE_SCOPE",
}

_IDENT_CALL = re.compile(r"([A-Za-z_]\w*)\s*\(")
_TRAILING_NAME = re.compile(
    r"(?:([A-Za-z_]\w*)\s*::\s*)?(~?[A-Za-z_]\w*)\s*$")
_CLASS_DECL = re.compile(
    r"\b(class|struct)\s+((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)"
    r"\s*(?:final\s*)?(?::[^;{]*)?$")
_NAMESPACE_DECL = re.compile(r"\bnamespace(\s+[A-Za-z_][\w:\s]*)?$")
_ACCESS = re.compile(r"\b(public|protected|private)\s*:$")
_INIT_LIST = re.compile(r"\)\s*(?:noexcept\s*)?:\s*(?!:)")


@dataclasses.dataclass
class Function:
    """One function definition (body present)."""

    name: str                 # simple name ("drain_due")
    class_name: str           # enclosing or explicit class, "" for free fns
    qualified: str            # "Class::name" or "name"
    line: int                 # 1-based line of the signature's first token
    body_start: int           # offset of '{' in the lexed text
    body_end: int             # offset past the matching '}'
    is_const: bool
    is_noexcept: bool
    is_static: bool
    access: str               # "public" | "protected" | "private" | ""
    annotated_hot: bool       # NEATBOUND_HOT on the definition
    calls: set[str] = dataclasses.field(default_factory=set)
    statements: int = 0       # ';' count in the body
    contains_contract: bool = False  # NEATBOUND_{EXPECTS,ENSURES,INVARIANT}
    contains_telemetry: bool = False  # any TELEMETRY_MACROS use in the body
    contains_throw: bool = False
    body_lines: tuple[int, int] = (0, 0)  # 1-based inclusive body extent


@dataclasses.dataclass
class Declaration:
    """An in-class member declaration without a body."""

    name: str
    class_name: str
    line: int
    is_const: bool
    is_noexcept: bool
    is_static: bool
    access: str
    annotated_hot: bool


@dataclasses.dataclass
class _Signature:
    name: str
    explicit_class: str  # "X" for an out-of-line "X::name" definition
    qualifiers: str      # text between the ')' and the '{' / ';'


def _signature_of(segment: str) -> _Signature | None:
    """If `segment` (code since the last ; { }) ends with a function
    signature `name (args) [quals]`, describe it; else None."""
    # Locate the last balanced top-level (...) group.
    depth = 0
    close = -1
    open_ = -1
    for idx in range(len(segment) - 1, -1, -1):
        c = segment[idx]
        if c == ")":
            if depth == 0 and close == -1:
                close = idx
            depth += 1
        elif c == "(":
            depth -= 1
            if depth == 0 and close != -1:
                open_ = idx
                break
            if depth < 0:
                return None
    if open_ == -1:
        return None
    before, quals = segment[:open_], segment[close + 1:]
    m = _TRAILING_NAME.search(before)
    if m is None:
        return None
    explicit_class, name = m.group(1) or "", m.group(2)
    if name.lstrip("~") in _KEYWORDS or explicit_class in _KEYWORDS:
        return None
    # The qualifier text may only contain known qualifier tokens, an
    # exception spec, or a trailing-return type; anything else means this
    # was not a function signature (e.g. a variable initializer).
    q = re.sub(r"noexcept\s*\([^)]*\)", "noexcept", quals)
    q = re.sub(r"->\s*[\w:&<>,\s*]+", " ", q)
    for tok in q.replace("&&", " ").replace("&", " ").split():
        if tok not in ("const", "noexcept", "override", "final", "try"):
            return None
    return _Signature(name=name, explicit_class=explicit_class,
                      qualifiers=quals)


def _signature_with_initlist(segment: str) -> _Signature | None:
    """Accepts a constructor initializer list after the ')' as well.

    The init-list split must run *first*: on a full ctor segment the last
    balanced paren group is the last member initializer ("rng_(seed)"),
    so plain _signature_of would mis-name the constructor after it."""
    m = _INIT_LIST.search(segment)
    if m is not None:
        close = segment.rfind(")", 0, m.end())
        tail = segment[m.end():]
        if not re.search(r"[;{}=]", re.sub(r"=\s*[\w.]+", "", tail)):
            sig = _signature_of(segment[: close + 1])
            if sig is not None:
                return sig
    return _signature_of(segment)


def _line_index(code: str):
    starts = [0]
    for idx, ch in enumerate(code):
        if ch == "\n":
            starts.append(idx + 1)

    def line_of(offset: int) -> int:
        return bisect.bisect_right(starts, offset)

    return line_of


def _skip_parens(code: str, i: int) -> int:
    """Offset just past the ')' matching the '(' at `i` (or, defensively,
    at an unbalanced structural character)."""
    depth = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def extract_functions(
    text: str, lexed: Lexed | None = None
) -> tuple[list[Function], list[Declaration]]:
    """All function definitions and in-class member declarations."""
    lexed = lexed or lex(text)
    code = lexed.code
    line_of = _line_index(code)

    functions: list[Function] = []
    declarations: list[Declaration] = []
    # Context stack entries are mutable lists:
    #   ["namespace", name, ""] | ["class", name, current_access]
    #   | ["function", <fields…>] | ["other", "", ""]
    stack: list[list] = []
    seg_start = 0
    i = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == "(":
            i = _skip_parens(code, i)  # keeps for(;;), lambdas, args whole
            continue
        if c == "{":
            segment = code[seg_start:i]
            stack.append(_classify(segment, seg_start, i, stack, line_of))
            seg_start = i + 1
        elif c == "}":
            if stack:
                ctx = stack.pop()
                if ctx[0] == "function":
                    functions.append(_finish(ctx, code, i + 1, line_of))
            seg_start = i + 1
        elif c == ";":
            decl = _declaration(code[seg_start:i], stack, line_of, seg_start)
            if decl is not None:
                declarations.append(decl)
            seg_start = i + 1
        elif c == ":" and stack and stack[-1][0] == "class":
            m = _ACCESS.search(code[max(seg_start, i - 12): i + 1])
            if m:
                stack[-1][2] = m.group(1)
                seg_start = i + 1
        i += 1
    return functions, declarations


def _enclosing_class(stack: list[list]) -> tuple[str, str]:
    for ctx in reversed(stack):
        if ctx[0] == "class":
            return ctx[1], ctx[2]
        if ctx[0] == "function":
            break
    return "", ""


def _classify(segment, seg_start, brace_pos, stack, line_of):
    stripped = segment.strip()
    if _NAMESPACE_DECL.search(stripped):
        return ["namespace", "", ""]
    if stripped.startswith("enum") or " enum " in stripped:
        return ["other", "", ""]
    m = _CLASS_DECL.search(stripped)
    if m:
        name = re.split(r"\s*::\s*", m.group(2))[-1]
        default_access = "private" if m.group(1) == "class" else "public"
        return ["class", name, default_access]
    in_function = any(ctx[0] == "function" for ctx in stack)
    sig = None if in_function else _signature_with_initlist(stripped)
    if sig is not None:
        class_name, access = _enclosing_class(stack)
        if sig.explicit_class:
            class_name, access = sig.explicit_class, ""
        first_token = seg_start + (len(segment) - len(segment.lstrip()))
        return [
            "function", sig.name, access, class_name,
            re.search(r"\bconst\b", sig.qualifiers) is not None,
            re.search(r"\bnoexcept\b", sig.qualifiers) is not None,
            re.search(r"\bstatic\b", segment) is not None,
            "NEATBOUND_HOT" in segment,
            line_of(first_token), brace_pos,
        ]
    return ["other", "", ""]


def _finish(ctx, code, end, line_of) -> Function:
    (_, name, access, class_name, is_const, is_noexcept, is_static,
     annotated, line, body_start) = ctx
    body = code[body_start + 1: end - 1]
    calls = {
        m.group(1)
        for m in _IDENT_CALL.finditer(body)
        if m.group(1) not in _KEYWORDS and not m.group(1).isupper()
    }
    return Function(
        name=name,
        class_name=class_name,
        qualified=f"{class_name}::{name}" if class_name else name,
        line=line,
        body_start=body_start,
        body_end=end,
        is_const=is_const,
        is_noexcept=is_noexcept,
        is_static=is_static,
        access=access,
        annotated_hot=annotated,
        calls=calls,
        statements=body.count(";"),
        contains_contract=bool(
            re.search(r"NEATBOUND_(EXPECTS|ENSURES|INVARIANT)\b", body)),
        contains_telemetry=bool(
            re.search(r"NEATBOUND_(COUNT|COUNT_ADD|PHASE_SCOPE)\b", body)),
        contains_throw=bool(re.search(r"\bthrow\b", body)),
        body_lines=(line_of(body_start), line_of(end - 1)),
    )


def _declaration(segment, stack, line_of, seg_start):
    if not stack or stack[-1][0] != "class":
        return None
    stripped = re.sub(r"=\s*(default|delete|0)\s*$", "", segment.strip())
    if "=" in stripped:
        return None  # field with initializer / default argument: not needed
    sig = _signature_of(stripped.rstrip())
    if sig is None:
        return None
    return Declaration(
        name=sig.name,
        class_name=stack[-1][1],
        line=line_of(seg_start + (len(segment) - len(segment.lstrip()))),
        is_const=re.search(r"\bconst\b", sig.qualifiers) is not None,
        is_noexcept=re.search(r"\bnoexcept\b", sig.qualifiers) is not None,
        is_static=re.search(r"\bstatic\b", segment) is not None,
        access=stack[-1][2],
        annotated_hot="NEATBOUND_HOT" in segment,
    )
