#!/usr/bin/env python3
"""Require two neatbound JSON summaries to be semantically identical.

Usage:
    diff_summaries.py A.json B.json [--ignore KEY ...]

Compares the full documents key by key and exits 1 on the first
difference, printing every diverging path.  Meta keys that legitimately
vary between otherwise-identical runs are ignored: wall-clock timings
(elapsed_seconds and anything ending in _seconds), thread counts, and
the batch width — CI uses this to assert that `neatbound_cli run
--batch-seeds W` reproduces the serial summary bit for bit (the batched
pass is an execution schedule, not a semantic knob), so the one knob
that *names* the schedule must not count as a difference.
"""
import argparse
import json
import sys

DEFAULT_IGNORED = {"elapsed_seconds", "threads", "batch_seeds"}


def volatile(key: str, ignored: set[str]) -> bool:
    return key in ignored or key.endswith("_seconds")


def diff(a, b, path: str, ignored: set[str], out: list[str]) -> None:
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if volatile(key, ignored):
                continue
            diff(a.get(key), b.get(key), f"{path}/{key}", ignored, out)
        return
    if isinstance(a, list) and isinstance(b, list) and len(a) == len(b):
        for i, (x, y) in enumerate(zip(a, b)):
            diff(x, y, f"{path}[{i}]", ignored, out)
        return
    if a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("a")
    parser.add_argument("b")
    parser.add_argument("--ignore", action="append", default=[],
                        help="additional meta keys to ignore")
    args = parser.parse_args()

    with open(args.a, encoding="utf-8") as fh:
        doc_a = json.load(fh)
    with open(args.b, encoding="utf-8") as fh:
        doc_b = json.load(fh)

    ignored = DEFAULT_IGNORED | set(args.ignore)
    differences: list[str] = []
    diff(doc_a, doc_b, "", ignored, differences)
    if differences:
        print(f"FAIL: {args.a} and {args.b} diverge:", file=sys.stderr)
        for line in differences:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"OK: {args.a} == {args.b} (modulo timing meta)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
