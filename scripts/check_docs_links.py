#!/usr/bin/env python3
"""Keep README and the docs/ tree consistent.

Checks, from the repo root (or --root):
  1. every `docs/<name>.md` referenced from README.md exists on disk;
  2. every file in docs/ is referenced from README.md (no orphan docs);
  3. every relative markdown link inside docs/*.md resolves to a real
     file in the repository;
  4. every relative markdown link in README.md itself resolves too.

Exit status 1 with a per-violation message on any failure.
"""
import argparse
import pathlib
import re
import sys

# docs/foo.md mentions in README (inline code, links, bare text).
DOCS_REF = re.compile(r"docs/[A-Za-z0-9_.-]+\.md")
# [label](target) markdown links, excluding images and external URLs.
MD_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()
    readme = root / "README.md"
    docs_dir = root / "docs"
    failures: list[str] = []

    readme_text = readme.read_text(encoding="utf-8")
    referenced = set(DOCS_REF.findall(readme_text))

    for ref in sorted(referenced):
        if not (root / ref).is_file():
            failures.append(f"README.md references {ref}, which does not exist")

    on_disk = {f"docs/{p.name}" for p in docs_dir.glob("*.md")}
    for doc in sorted(on_disk - referenced):
        failures.append(f"{doc} exists but README.md never references it")

    for doc in sorted(docs_dir.glob("*.md")) + [readme]:
        for target in MD_LINK.findall(doc.read_text(encoding="utf-8")):
            if "://" in target or target.startswith("mailto:"):
                continue
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                failures.append(
                    f"{doc.relative_to(root)} links to {target}, "
                    f"which does not exist")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"OK: {len(referenced)} README→docs references, "
          f"{len(on_disk)} docs files, all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
