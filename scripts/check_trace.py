#!/usr/bin/env python3
"""Validate a neatbound round-trace JSONL file (and optionally a Chrome
trace) against the documented schema.

Usage:
    check_trace.py TRACE.jsonl [--chrome CHROME.json] [--allow-empty]
    check_trace.py --artifact VIOLATION.json
    check_trace.py --self-test

This is the CI-side half of the trace contract: `neatbound_cli run
--trace` promises the schema documented in docs/observability.md, and
this checker fails the build when a record drifts from it.  Checks per
record (one JSON object per line):

  * exactly the eight keys: round, honest_mined, adversary_mined,
    mined_by, delivered, adoptions, best_height, violation_depth
  * every value a non-negative integer; mined_by a list of them
  * len(mined_by) == honest_mined (one miner id per honest block), or
    mined_by empty when miner identity is not modeled (the aggregate
    engine streams counting-only records through the same schema)
  * round >= 1 and strictly increasing across records
  * best_height and violation_depth nondecreasing (both are running
    maxima inside the engine)
  * adoptions <= delivered + honest_mined (a tip switch only happens
    on a delivery or on mining one's own block)

--chrome additionally validates the exporter output: a JSON object with
a "traceEvents" list whose events carry a "ph" in {M, X, I}, with
complete ("X") events holding finite non-negative ts/dur numbers (the
exporter emits fixed-point fractional microseconds, e.g. 1234.567).

--artifact validates a replayable violation artifact from `neatbound_cli
run --oracle --oracle-dump` (schema in docs/observability.md): the
"neatbound-violation-v2" format tag, exact key sets at every level, a
known invariant name, a measured value that actually violates the bound
(strictly above it for common-prefix, strictly below for the window
invariants), a violating round inside the run, views indexed 0..n-1
with fixed-width "0x"+16-hex-digit hashes, and a trace slice that
passes every per-record trace check above, is contiguous, ends exactly
at the violating round, and — for common-prefix violations — ends with
violation_depth equal to the measured depth.

Plain python3, stdlib only.  Exit 0 on success, 1 on violations.
"""
from __future__ import annotations

import argparse
import json
import math
import sys

TRACE_KEYS = (
    "round",
    "honest_mined",
    "adversary_mined",
    "mined_by",
    "delivered",
    "adoptions",
    "best_height",
    "violation_depth",
)


def _is_uint(value: object) -> bool:
    # bool is an int subclass; a JSON true/false here is schema drift.
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def _is_nonneg_number(value: object) -> bool:
    # Chrome-trace ts/dur: integer or fractional-µs, finite, >= 0.
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value) and value >= 0)


def check_trace_lines(lines: list[str], *, allow_empty: bool = False,
                      label: str = "trace") -> list[str]:
    """Return a list of human-readable violations (empty == valid)."""
    errors: list[str] = []
    records = 0
    prev_round = 0
    prev_best_height = -1
    prev_violation_depth = -1
    for lineno, line in enumerate(lines, start=1):
        where = f"{label}:{lineno}"
        line = line.strip()
        if not line:
            errors.append(f"{where}: blank line inside trace")
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: not valid JSON: {exc}")
            continue
        if not isinstance(record, dict):
            errors.append(f"{where}: record is not a JSON object")
            continue
        keys = set(record)
        expected = set(TRACE_KEYS)
        if keys != expected:
            missing = sorted(expected - keys)
            extra = sorted(keys - expected)
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extra:
                detail.append(f"unexpected {extra}")
            errors.append(f"{where}: wrong key set ({', '.join(detail)})")
            continue
        bad_type = False
        for key in TRACE_KEYS:
            if key == "mined_by":
                continue
            if not _is_uint(record[key]):
                errors.append(f"{where}: {key} must be a non-negative "
                              f"integer, got {record[key]!r}")
                bad_type = True
        mined_by = record["mined_by"]
        if not isinstance(mined_by, list) or not all(
                _is_uint(m) for m in mined_by):
            errors.append(f"{where}: mined_by must be a list of "
                          f"non-negative integers, got {mined_by!r}")
            bad_type = True
        if bad_type:
            continue
        records += 1
        if record["round"] < 1:
            errors.append(f"{where}: round is 1-based, got "
                          f"{record['round']}")
        if record["round"] <= prev_round:
            errors.append(f"{where}: round {record['round']} not strictly "
                          f"greater than previous round {prev_round}")
        prev_round = record["round"]
        # Empty mined_by is the aggregate-engine form: counting-only
        # records where miner identity is not modeled.
        if mined_by and len(mined_by) != record["honest_mined"]:
            errors.append(f"{where}: len(mined_by)={len(mined_by)} != "
                          f"honest_mined={record['honest_mined']}")
        if record["best_height"] < prev_best_height:
            errors.append(f"{where}: best_height decreased "
                          f"({prev_best_height} -> {record['best_height']})")
        prev_best_height = record["best_height"]
        if record["violation_depth"] < prev_violation_depth:
            errors.append(f"{where}: violation_depth decreased "
                          f"({prev_violation_depth} -> "
                          f"{record['violation_depth']})")
        prev_violation_depth = record["violation_depth"]
        if record["adoptions"] > record["delivered"] + record["honest_mined"]:
            errors.append(f"{where}: adoptions={record['adoptions']} exceeds "
                          f"delivered+honest_mined="
                          f"{record['delivered'] + record['honest_mined']}")
    if records == 0 and not allow_empty:
        errors.append(f"{label}: no trace records (pass --allow-empty if the "
                      f"window was intentionally out of range)")
    return errors


def check_chrome_trace(text: str, *, label: str = "chrome") -> list[str]:
    """Validate the shape of a write_chrome_trace export."""
    errors: list[str] = []
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        return [f"{label}: not valid JSON: {exc}"]
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return [f"{label}: expected an object with a traceEvents key"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return [f"{label}: traceEvents is not a list"]
    phases = set()
    for i, event in enumerate(events):
        where = f"{label}: traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event is not an object")
            continue
        ph = event.get("ph")
        if ph not in ("M", "X", "I"):
            errors.append(f"{where}: unexpected phase {ph!r}")
            continue
        phases.add(ph)
        if "name" not in event:
            errors.append(f"{where}: missing name")
        if ph == "X":
            for key in ("ts", "dur"):
                if not _is_nonneg_number(event.get(key)):
                    errors.append(f"{where}: {key} must be a finite "
                                  f"non-negative number, "
                                  f"got {event.get(key)!r}")
    if "M" not in phases:
        errors.append(f"{label}: no metadata (\"M\") event — process_name "
                      f"record is part of the exporter contract")
    return errors


ARTIFACT_FORMAT = "neatbound-violation-v2"
ARTIFACT_KEYS = ("format", "engine", "violation_t", "oracle", "adversary",
                 "network", "violation", "views", "trace")
ENGINE_KEYS = ("miners", "nu", "delta", "rounds", "p", "seed", "rng")
RNG_MODES = ("counter", "legacy")
ORACLE_KEYS = ("common_prefix", "common_prefix_t", "growth_window",
               "growth_min_blocks", "quality_window", "quality_min_ratio",
               "slice_rounds")
VIOLATION_KEYS = ("invariant", "round", "measured", "bound", "view_a",
                  "view_b")
VIEW_KEYS = ("miner", "tip", "height", "hash")
INVARIANTS = ("common-prefix", "chain-growth", "chain-quality")
_HEX_DIGITS = set("0123456789abcdef")


def _is_hash(value: object) -> bool:
    return (isinstance(value, str) and len(value) == 18
            and value.startswith("0x") and set(value[2:]) <= _HEX_DIGITS)


def _check_keys(obj: object, expected: tuple, where: str,
                errors: list) -> bool:
    if not isinstance(obj, dict):
        errors.append(f"{where}: not a JSON object")
        return False
    keys, want = set(obj), set(expected)
    if keys != want:
        missing = sorted(want - keys)
        extra = sorted(keys - want)
        detail = []
        if missing:
            detail.append(f"missing {missing}")
        if extra:
            detail.append(f"unexpected {extra}")
        errors.append(f"{where}: wrong key set ({', '.join(detail)})")
        return False
    return True


def check_artifact(text: str, *, label: str = "artifact") -> list[str]:
    """Validate a replayable violation artifact (empty list == valid)."""
    errors: list[str] = []
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        return [f"{label}: not valid JSON: {exc}"]
    if not _check_keys(doc, ARTIFACT_KEYS, label, errors):
        return errors
    if doc["format"] != ARTIFACT_FORMAT:
        errors.append(f"{label}: format {doc['format']!r} is not "
                      f"{ARTIFACT_FORMAT!r}")

    engine = doc["engine"]
    rounds = 0
    if _check_keys(engine, ENGINE_KEYS, f"{label}: engine", errors):
        for key in ("miners", "delta", "rounds", "seed"):
            if not _is_uint(engine[key]):
                errors.append(f"{label}: engine.{key} must be a "
                              f"non-negative integer, got {engine[key]!r}")
        for key in ("nu", "p"):
            if not _is_nonneg_number(engine[key]):
                errors.append(f"{label}: engine.{key} must be a finite "
                              f"non-negative number, got {engine[key]!r}")
        if engine["rng"] not in RNG_MODES:
            errors.append(f"{label}: engine.rng must be one of "
                          f"{', '.join(RNG_MODES)}, got {engine['rng']!r}")
        if _is_uint(engine["rounds"]):
            rounds = engine["rounds"]

    oracle = doc["oracle"]
    slice_rounds = 0
    if _check_keys(oracle, ORACLE_KEYS, f"{label}: oracle", errors):
        if _is_uint(oracle["slice_rounds"]) and oracle["slice_rounds"] >= 1:
            slice_rounds = oracle["slice_rounds"]
        else:
            errors.append(f"{label}: oracle.slice_rounds must be a positive "
                          f"integer, got {oracle['slice_rounds']!r}")

    for name, selector in (("adversary", "strategy"), ("network", "model")):
        component = doc[name]
        if not isinstance(component, dict) or selector not in component:
            errors.append(f"{label}: {name} must be an object with a "
                          f"{selector!r} selector")
        elif not isinstance(component[selector], str):
            errors.append(f"{label}: {name}.{selector} must be a string")

    violation = doc["violation"]
    violating_round = 0
    measured = None
    common_prefix = False
    if _check_keys(violation, VIOLATION_KEYS, f"{label}: violation", errors):
        for key in ("round", "measured", "bound", "view_a", "view_b"):
            if not _is_uint(violation[key]):
                errors.append(f"{label}: violation.{key} must be a "
                              f"non-negative integer, "
                              f"got {violation[key]!r}")
        invariant = violation["invariant"]
        if invariant not in INVARIANTS:
            errors.append(f"{label}: unknown invariant {invariant!r} "
                          f"(known: {', '.join(INVARIANTS)})")
        elif _is_uint(violation["measured"]) and _is_uint(violation["bound"]):
            common_prefix = invariant == "common-prefix"
            measured = violation["measured"]
            if common_prefix and measured <= violation["bound"]:
                errors.append(f"{label}: common-prefix measured="
                              f"{measured} does not exceed bound="
                              f"{violation['bound']}")
            if not common_prefix and measured >= violation["bound"]:
                errors.append(f"{label}: {invariant} measured={measured} "
                              f"not below bound={violation['bound']}")
        if _is_uint(violation["round"]):
            violating_round = violation["round"]
            if violating_round < 1:
                errors.append(f"{label}: violation.round is 1-based, "
                              f"got {violating_round}")
            if rounds and violating_round > rounds:
                errors.append(f"{label}: violation.round {violating_round} "
                              f"exceeds engine.rounds {rounds}")

    views = doc["views"]
    if not isinstance(views, list) or not views:
        errors.append(f"{label}: views must be a non-empty list")
    else:
        for i, view in enumerate(views):
            where = f"{label}: views[{i}]"
            if not _check_keys(view, VIEW_KEYS, where, errors):
                continue
            if view["miner"] != i:
                errors.append(f"{where}: miner {view['miner']!r} out of "
                              f"order (expected {i})")
            for key in ("tip", "height"):
                if not _is_uint(view[key]):
                    errors.append(f"{where}: {key} must be a non-negative "
                                  f"integer, got {view[key]!r}")
            if not _is_hash(view["hash"]):
                errors.append(f"{where}: hash must be \"0x\" + 16 lowercase "
                              f"hex digits, got {view['hash']!r}")
        if isinstance(violation, dict):
            for key in ("view_a", "view_b"):
                if _is_uint(violation.get(key)) and \
                        violation[key] >= len(views):
                    errors.append(f"{label}: violation.{key}="
                                  f"{violation[key]} has no matching view")

    trace = doc["trace"]
    if not isinstance(trace, list):
        errors.append(f"{label}: trace must be a list")
    else:
        # Every per-record trace-schema check applies to the slice too.
        lines = [json.dumps(record) for record in trace]
        errors += check_trace_lines(lines, label=f"{label}: trace")
        if trace and violating_round:
            last = trace[-1]
            first = trace[0]
            if isinstance(last, dict) and last.get("round") != \
                    violating_round:
                errors.append(f"{label}: trace ends at round "
                              f"{last.get('round')!r}, not the violating "
                              f"round {violating_round}")
            expected_len = min(violating_round, slice_rounds or
                               violating_round)
            if len(trace) != expected_len:
                errors.append(f"{label}: trace has {len(trace)} record(s), "
                              f"expected min(violation.round, slice_rounds)"
                              f"={expected_len}")
            elif isinstance(first, dict) and first.get("round") != \
                    violating_round - expected_len + 1:
                errors.append(f"{label}: trace starts at round "
                              f"{first.get('round')!r}, expected "
                              f"{violating_round - expected_len + 1}")
            if common_prefix and measured is not None and \
                    isinstance(last, dict) and \
                    last.get("violation_depth") != measured:
                errors.append(f"{label}: last trace record has "
                              f"violation_depth="
                              f"{last.get('violation_depth')!r} but the "
                              f"frozen common-prefix measurement is "
                              f"{measured}")
    return errors


# --- self-test ---------------------------------------------------------

def _record(**overrides: object) -> dict:
    base = {"round": 1, "honest_mined": 1, "adversary_mined": 0,
            "mined_by": [3], "delivered": 0, "adoptions": 1,
            "best_height": 1, "violation_depth": 0}
    base.update(overrides)
    return base


_GOOD_TRACE = [
    json.dumps(_record()),
    json.dumps(_record(round=2, honest_mined=0, mined_by=[], delivered=4,
                       adoptions=2, best_height=2)),
    json.dumps(_record(round=5, honest_mined=2, mined_by=[0, 7], delivered=3,
                       adoptions=4, best_height=2, violation_depth=3)),
    # Aggregate-engine form: honest blocks counted, miner identity not
    # modeled, so mined_by stays empty.
    json.dumps(_record(round=7, honest_mined=3, mined_by=[],
                       best_height=2, violation_depth=3)),
]

# (case name, lines, substring that must appear in some violation)
_BAD_TRACES = [
    ("not-json", ["{nope"], "not valid JSON"),
    ("not-object", ["[1, 2]"], "not a JSON object"),
    ("missing-key", [json.dumps({k: v for k, v in _record().items()
                                 if k != "delivered"})], "wrong key set"),
    ("extra-key", [json.dumps({**_record(), "extra": 1})], "wrong key set"),
    ("bool-count", [json.dumps(_record(delivered=True))],
     "non-negative integer"),
    ("negative", [json.dumps(_record(best_height=-1))],
     "non-negative integer"),
    ("mined-by-type", [json.dumps(_record(mined_by=["a"]))],
     "mined_by must be a list"),
    ("mined-by-len", [json.dumps(_record(honest_mined=2))],
     "len(mined_by)"),
    ("zero-round", [json.dumps(_record(round=0))], "1-based"),
    ("round-order", [json.dumps(_record(round=3)),
                     json.dumps(_record(round=3))], "strictly greater"),
    ("height-drop", [json.dumps(_record(best_height=5)),
                     json.dumps(_record(round=2, best_height=4))],
     "best_height decreased"),
    ("violation-drop", [json.dumps(_record(violation_depth=2)),
                        json.dumps(_record(round=2))],
     "violation_depth decreased"),
    ("adoption-bound", [json.dumps(_record(adoptions=9))],
     "adoptions=9 exceeds"),
    ("blank-line", [json.dumps(_record()), ""], "blank line"),
    ("empty", [], "no trace records"),
]

_GOOD_CHROME = json.dumps({"traceEvents": [
    {"ph": "M", "name": "process_name", "pid": 1,
     "args": {"name": "neatbound"}},
    # Fixed-point fractional-µs ts/dur, as write_chrome_trace emits.
    {"ph": "X", "name": "deliver", "pid": 1, "tid": 1, "ts": 1234567.891,
     "dur": 12.005},
    {"ph": "X", "name": "mine", "pid": 1, "tid": 1, "ts": 0, "dur": 12},
    {"ph": "I", "name": "counters", "pid": 1, "tid": 1, "ts": 0, "s": "g",
     "args": {"deliveries": 4}},
]})

_BAD_CHROMES = [
    ("chrome-not-json", "{", "not valid JSON"),
    ("chrome-no-events", json.dumps({"foo": []}), "traceEvents"),
    ("chrome-bad-phase", json.dumps({"traceEvents": [
        {"ph": "M", "name": "process_name"}, {"ph": "Z", "name": "x"}]}),
     "unexpected phase"),
    ("chrome-bad-dur", json.dumps({"traceEvents": [
        {"ph": "M", "name": "process_name"},
        {"ph": "X", "name": "deliver", "ts": 0, "dur": -3}]}),
     "dur must be a finite non-negative number"),
    ("chrome-inf-ts", json.dumps({"traceEvents": [
        {"ph": "M", "name": "process_name"},
        {"ph": "X", "name": "deliver", "ts": float("inf"), "dur": 1}]}),
     "ts must be a finite non-negative number"),
    ("chrome-string-ts", json.dumps({"traceEvents": [
        {"ph": "M", "name": "process_name"},
        {"ph": "X", "name": "deliver", "ts": "0", "dur": 1}]}),
     "ts must be a finite non-negative number"),
    ("chrome-no-meta", json.dumps({"traceEvents": [
        {"ph": "X", "name": "deliver", "ts": 0, "dur": 1}]}),
     "no metadata"),
]


def _artifact(**overrides: object) -> dict:
    base = {
        "format": ARTIFACT_FORMAT,
        "engine": {"miners": 12, "nu": 0.4, "delta": 3, "rounds": 400,
                   "p": 0.03, "seed": 611, "rng": "counter"},
        "violation_t": 3,
        "oracle": {"common_prefix": True, "common_prefix_t": 3,
                   "growth_window": 0, "growth_min_blocks": 1,
                   "quality_window": 0, "quality_min_ratio": 0.05,
                   "slice_rounds": 24},
        "adversary": {"strategy": "fork-balancer"},
        "network": {"model": "strategy"},
        "violation": {"invariant": "common-prefix", "round": 2,
                      "measured": 4, "bound": 3, "view_a": 0, "view_b": 1},
        "views": [
            {"miner": 0, "tip": 9, "height": 4,
             "hash": "0x063f3615ae01bb1d"},
            {"miner": 1, "tip": 11, "height": 5,
             "hash": "0x065c3e9045d0c28a"},
        ],
        "trace": [
            _record(),
            _record(round=2, honest_mined=0, mined_by=[], delivered=4,
                    adoptions=2, best_height=2, violation_depth=4),
        ],
    }
    base.update(overrides)
    return base


def _mutated(path: list, value: object) -> str:
    """The good artifact with one nested field replaced (None = delete)."""
    doc = json.loads(json.dumps(_artifact()))
    target = doc
    for key in path[:-1]:
        target = target[key]
    if value is None:
        del target[path[-1]]
    else:
        target[path[-1]] = value
    return json.dumps(doc)


_BAD_ARTIFACTS = [
    ("artifact-not-json", "{nope", "not valid JSON"),
    ("artifact-missing-key", _mutated(["violation_t"], None),
     "wrong key set"),
    ("artifact-extra-key", json.dumps({**_artifact(), "surprise": 1}),
     "wrong key set"),
    ("artifact-bad-format", _mutated(["format"], "neatbound-violation-v9"),
     "is not 'neatbound-violation-v2'"),
    ("artifact-engine-keys", _mutated(["engine", "seed"], None),
     "wrong key set"),
    ("artifact-bad-nu", _mutated(["engine", "nu"], -0.4),
     "engine.nu"),
    ("artifact-bad-rng", _mutated(["engine", "rng"], "sequential"),
     "engine.rng"),
    ("artifact-bad-invariant",
     _mutated(["violation", "invariant"], "common-suffix"),
     "unknown invariant"),
    ("artifact-not-violating", _mutated(["violation", "measured"], 3),
     "does not exceed bound"),
    ("artifact-window-not-violating", json.dumps(_artifact(
        violation={"invariant": "chain-growth", "round": 2, "measured": 5,
                   "bound": 5, "view_a": 0, "view_b": 0})),
     "not below bound"),
    ("artifact-round-zero", _mutated(["violation", "round"], 0), "1-based"),
    ("artifact-round-late", _mutated(["violation", "round"], 500),
     "exceeds engine.rounds"),
    ("artifact-view-order", _mutated(["views", 1, "miner"], 7),
     "out of order"),
    ("artifact-view-keys", _mutated(["views", 0, "tip"], None),
     "wrong key set"),
    ("artifact-bad-hash",
     _mutated(["views", 0, "hash"], "0x063f3615ae01bb1z"),
     "hex digits"),
    ("artifact-view-index", _mutated(["violation", "view_b"], 9),
     "no matching view"),
    ("artifact-trace-schema",
     _mutated(["trace", 0, "delivered"], None), "wrong key set"),
    ("artifact-trace-end", _mutated(["violation", "round"], 3),
     "not the violating round"),
    ("artifact-trace-depth", _mutated(["trace", 1, "violation_depth"], 9),
     "frozen common-prefix measurement"),
]


def self_test() -> int:
    failures = []
    errors = check_trace_lines(_GOOD_TRACE, label="good")
    if errors:
        failures.append(f"good trace flagged: {errors}")
    if check_trace_lines([], allow_empty=True, label="empty-ok"):
        failures.append("--allow-empty did not accept an empty trace")
    for name, lines, needle in _BAD_TRACES:
        errors = check_trace_lines(lines, label=name)
        if not any(needle in e for e in errors):
            failures.append(f"{name}: expected a violation containing "
                            f"{needle!r}, got {errors}")
    if check_chrome_trace(_GOOD_CHROME, label="good-chrome"):
        failures.append("good chrome trace flagged")
    for name, text, needle in _BAD_CHROMES:
        errors = check_chrome_trace(text, label=name)
        if not any(needle in e for e in errors):
            failures.append(f"{name}: expected a violation containing "
                            f"{needle!r}, got {errors}")
    errors = check_artifact(json.dumps(_artifact()), label="good-artifact")
    if errors:
        failures.append(f"good artifact flagged: {errors}")
    for name, text, needle in _BAD_ARTIFACTS:
        errors = check_artifact(text, label=name)
        if not any(needle in e for e in errors):
            failures.append(f"{name}: expected a violation containing "
                            f"{needle!r}, got {errors}")
    if failures:
        for failure in failures:
            print(f"self-test FAILED: {failure}")
        return 1
    print(f"OK: {len(_BAD_TRACES)} bad traces, {len(_BAD_CHROMES)} bad "
          f"chrome exports and {len(_BAD_ARTIFACTS)} bad artifacts "
          f"rejected, good ones accepted")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?",
                        help="round-trace JSONL file from --trace")
    parser.add_argument("--chrome",
                        help="Chrome trace JSON from --chrome-trace")
    parser.add_argument("--artifact",
                        help="violation artifact JSON from --oracle-dump")
    parser.add_argument("--allow-empty", action="store_true",
                        help="accept a trace with zero records")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the checker against known-bad inputs")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.trace is None and args.chrome is None and args.artifact is None:
        parser.error("need a TRACE.jsonl, --chrome, --artifact, or "
                     "--self-test")
    errors: list[str] = []
    if args.trace is not None:
        with open(args.trace, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        errors += check_trace_lines(lines, allow_empty=args.allow_empty,
                                    label=args.trace)
    if args.chrome is not None:
        with open(args.chrome, encoding="utf-8") as fh:
            errors += check_chrome_trace(fh.read(), label=args.chrome)
    if args.artifact is not None:
        with open(args.artifact, encoding="utf-8") as fh:
            errors += check_artifact(fh.read(), label=args.artifact)
    for error in errors:
        print(error)
    if errors:
        print(f"FAILED: {len(errors)} violation(s)")
        return 1
    checked = [p for p in (args.trace, args.chrome, args.artifact)
               if p is not None]
    print(f"OK: {', '.join(checked)} conform to the trace schema")
    return 0


if __name__ == "__main__":
    sys.exit(main())
