#!/usr/bin/env python3
"""neatbound-analyze: repo-specific static analysis over src/ and cli/.

The determinism lint (check_determinism.py) bans *token-level* hazards.
This tool enforces the *structural* discipline the upcoming engine
rewrites (million-miner loop, Philox RNG, PoS protocol family) must not
regress — each rule encodes a bug class a previous PR fixed by hand:

  layering            the module dependency DAG, from real #include
                      edges.  Modules are layered (see LAYERS below);
                      an include may only point at a strictly lower
                      layer, or stay inside its own module.  This is
                      the PR 5 bug class (scenario/json had to move to
                      support/json so exp/ could parse checkpoints
                      without inverting the layering) made mechanical.
  include-cycle       no include cycles and no self-includes, detected
                      on the file-level include graph.
  hot-alloc           functions annotated NEATBOUND_HOT (support/
                      hot.hpp), plus everything reachable from them
                      through the project call graph, must not allocate:
                      new / malloc / make_unique / allocating container
                      calls / local std container construction.  The
                      PR 4 overhaul removed per-delivery allocations;
                      this rule keeps them out.  Amortized or
                      deliberately cold growth paths carry an in-source
                      allow with a written rationale.
  rng-stream          no std::<...>_distribution, no std RNG engines,
                      no <random> include — their sequences are
                      implementation-defined (non-reproducible across
                      standard libraries).  Since the counter-based
                      generator landed, the sequential support::Rng is
                      additionally banned outside support/ itself: its
                      hidden stream state is order-dependent, which is
                      exactly what the cross-seed batched engine cannot
                      replay.  New draws go through support/crng.hpp,
                      addressed as (key = (cell, seed), counter =
                      (round, actor, purpose, slot)); the RngMode::
                      kLegacy compatibility sites carry in-source
                      allows until the legacy path is retired.
  contract-coverage   every public mutating method defined in
                      protocol/, net/ and exp/ with a non-trivial body
                      (>= 2 statements) contains at least one
                      NEATBOUND_EXPECTS / NEATBOUND_ENSURES /
                      NEATBOUND_INVARIANT, or carries an explicit allow
                      naming why it needs none.
  hot-hygiene         NEATBOUND_HOT functions keep their declared
                      hygiene: accessor-named members are const, and a
                      hot *leaf* (no project calls, no contract macros,
                      no throw, no allocation) is noexcept.  Telemetry
                      macros (srcmodel.TELEMETRY_MACROS) are invisible
                      to both the call graph and leaf-ness: counting a
                      function never changes its classification.
  trace-io            simulation-core modules (sim/, net/, protocol/)
                      must not open files or use C stdio writers.  Every
                      structured per-round stream goes through the one
                      sanctioned serialization point,
                      sim::BoundedTraceWriter (src/sim/trace.cpp, the
                      rule's only exemption), writing to a caller-owned
                      ostream — so output stays bounded, schema'd, and
                      out of the engine's hot path.  Report/sink I/O
                      lives in exp/ and support/, outside this rule.

Allowlist syntax (same line as the finding or the line above):

    // neatbound-analyze: allow(<rule>[, <rule>]) — <why it is safe>

For hot-alloc, an allow on a function's signature line (or the line
above it) marks the whole function as an accepted allocation boundary:
its body is not scanned and hotness does not propagate through it (use
for append-only amortized growth like BlockStore::add).

Front ends (--frontend):
  libclang  AST-precise, driven by the exported compile database
            (compile_commands.json); preferred when the clang Python
            bindings and a libclang shared library are installed.
  text      the built-in lexer front end (scripts/neatbound_srcmodel.py):
            comment/string-safe, include-exact, with a conservative
            name-based call graph.  No dependencies beyond Python.
  auto      libclang when fully functional, otherwise text (with a
            notice).  The degraded mode is not include-graph-only: every
            rule runs on the text front end; libclang adds precision
            (real overload resolution, exact extents), not coverage.

Self-test: `--self-test` runs every rule over the mini source trees in
tests/lint/fixtures/analyze/*/ — each case declares the rules its files
must trigger with `// analyze-expect: <rule>` lines, the `allowlisted`
case proves the allow syntax silences every rule, and the run fails
unless the fired set matches exactly and every rule is covered.  CTest
entries: lint/analyze_self_test, lint/analyze_src.
"""
from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import neatbound_srcmodel as srcmodel  # noqa: E402

ALLOW_TAG = "neatbound-analyze"
EXPECT = re.compile(r"//\s*analyze-expect:\s*([a-z-]+)")

# The machine-enforced module layering.  An include edge must point at a
# strictly lower layer (or stay inside its own module); modules sharing a
# layer are siblings and may not include each other.  Documented in
# docs/architecture.md — extend here *and there* when adding a module.
LAYERS: dict[str, int] = {
    "support": 0,
    "stats": 1, "protocol": 1, "markov": 1,
    "net": 2, "chains": 2,
    "sim": 3, "bounds": 3,
    "exp": 4, "analysis": 4,
    "scenario": 5,
    "cli": 6,
}

ALL_RULES = [
    "layering", "include-cycle", "hot-alloc", "rng-stream",
    "contract-coverage", "hot-hygiene", "trace-io",
]

DAG_TEXT = ("support → stats/protocol/markov → net/chains → sim/bounds → "
            "exp/analysis → scenario → cli")

# --- rule pattern tables ----------------------------------------------------

ALLOC_PATTERNS = [
    (re.compile(r"(?<![\w:])new\b(?!\s*\()"), "new expression"),
    (re.compile(r"(?<![\w:])new\s*\("), "placement/new expression"),
    (re.compile(r"\b(malloc|calloc|realloc|strdup|aligned_alloc)\s*\("),
     "C heap allocation"),
    (re.compile(r"\bmake_(unique|shared)\b"), "make_unique/make_shared"),
    (re.compile(r"\.\s*(push_back|emplace_back|push_front|emplace_front|"
                r"insert|emplace|resize|reserve|append|assign|push)\s*\("),
     "allocating container call"),
    (re.compile(r"\bstd\s*::\s*(vector|deque|list|map|set|multimap|multiset|"
                r"unordered_map|unordered_set|basic_string|function)\s*<"),
     "local std container construction"),
    (re.compile(r"\bstd\s*::\s*(string|ostringstream|stringstream)\b"),
     "std::string/stream construction"),
    (re.compile(r"\bto_string\s*\("), "std::to_string (allocates)"),
]

RNG_PATTERNS = [
    (re.compile(r"\b\w+_distribution\s*<"),
     "std::*_distribution has an implementation-defined sequence"),
    (re.compile(r"\b(mt19937(_64)?|minstd_rand0?|ranlux\w+|knuth_b|"
                r"default_random_engine|mersenne_twister_engine|"
                r"linear_congruential_engine|subtract_with_carry_engine)\b"),
     "std RNG engine: sequential hidden state blocks addressable streams"),
    (re.compile(r"#\s*include\s*<random>"),
     "<random> is banned in src/ and cli/"),
]

# The legacy sequential generator (support/rng.hpp) by unqualified class
# name.  Does not match crng:: (no word boundary before the R) or RngMode
# (no word boundary after the g).
LEGACY_RNG_RE = re.compile(r"\bRng\b")

# Simulation-core modules may not grow private file writers; the single
# exemption is the sanctioned bounded trace serializer.
TRACE_IO_MODULES = {"sim", "net", "protocol"}
TRACE_IO_EXEMPT = {"src/sim/trace.cpp"}
TRACE_IO_PATTERNS = [
    (re.compile(r"\bo?fstream\b"), "file stream construction"),
    (re.compile(r"\bfreopen\s*\(|\bfopen\s*\("), "C stdio open"),
    (re.compile(r"\bFILE\s*\*"), "FILE* handle"),
    (re.compile(r"\bf(printf|write|puts|putc)\s*\("), "C stdio write"),
]

ACCESSOR_NAME = re.compile(
    r"^(get_|is_|has_|peek_)|(_of|_height|_count|_size)$"
    r"|^(tip|size|pending|horizon|knows|ancestor)"
    r"|(ancestor)$")


# --- model ------------------------------------------------------------------

class FileModel:
    def __init__(self, rel: str, text: str):
        self.rel = rel
        self.module = module_of(rel)
        self.raw_lines = text.splitlines()
        self.lexed = srcmodel.lex(text)
        self.code_lines = self.lexed.code.splitlines()
        self.includes = srcmodel.extract_includes(text)
        self.functions, self.declarations = srcmodel.extract_functions(
            text, self.lexed)
        self.allows = srcmodel.parse_allow_comments(self.raw_lines,
                                                    ALLOW_TAG)

    def allowed(self, lineno: int, rule: str) -> bool:
        return rule in self.allows.get(lineno, set())


class Model:
    """All scanned files plus cross-file indexes."""

    def __init__(self, root: pathlib.Path, frontend: str):
        self.root = root
        self.frontend = frontend
        self.files: dict[str, FileModel] = {}

    def add_file(self, rel: str, text: str) -> None:
        self.files[rel] = FileModel(rel, text)

    def finalize(self) -> None:
        # Declaration index: (class, name) -> [Declaration], for merging
        # access/annotation facts into out-of-line definitions.
        self.decl_index: dict[tuple[str, str], list] = {}
        for fm in self.files.values():
            for d in fm.declarations:
                self.decl_index.setdefault((d.class_name, d.name),
                                           []).append(d)
        # Function name index for the call graph.
        self.name_index: dict[str, list] = {}
        for fm in self.files.values():
            for f in fm.functions:
                self.name_index.setdefault(f.name, []).append((fm, f))

    def merged(self, f) -> tuple[str, bool]:
        """(access, annotated_hot) for a definition, folding in its
        in-class declaration when the definition is out-of-line."""
        access, annotated = f.access, f.annotated_hot
        for d in self.decl_index.get((f.class_name, f.name), []):
            access = access or d.access
            annotated = annotated or d.annotated_hot
        return access, annotated


def module_of(rel: str) -> str | None:
    parts = pathlib.PurePosixPath(rel).parts
    if not parts:
        return None
    if parts[0] == "src" and len(parts) > 1:
        return parts[1]
    if parts[0] == "cli":
        return "cli"
    return None


def source_files(root: pathlib.Path) -> list[pathlib.Path]:
    out = []
    for subdir in ("src", "cli"):
        base = root / subdir
        if base.is_dir():
            out.extend(p for p in sorted(base.rglob("*"))
                       if p.suffix in (".hpp", ".cpp"))
    return out


def build_model_text(root: pathlib.Path) -> Model:
    model = Model(root, "text")
    for path in source_files(root):
        rel = path.relative_to(root).as_posix()
        model.add_file(rel, path.read_text(encoding="utf-8"))
    model.finalize()
    return model


# --- libclang front end -----------------------------------------------------

def _locate_libclang() -> bool:
    """Point clang.cindex at a libclang shared object, if findable."""
    import glob

    from clang import cindex
    if cindex.Config.loaded:
        return True
    candidates = []
    for pattern in ("/usr/lib/llvm-*/lib/libclang.so*",
                    "/usr/lib/llvm-*/lib/libclang-*.so*",
                    "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
                    "/usr/lib/x86_64-linux-gnu/libclang.so*"):
        candidates.extend(sorted(glob.glob(pattern), reverse=True))
    for lib in candidates:
        if "libclang-cpp" in lib:
            continue  # the C++ API library, not the C API libclang needs
        try:
            cindex.Config.set_library_file(lib)
            cindex.Index.create()
            return True
        except Exception:  # noqa: BLE001 — probe the next candidate
            cindex.Config.loaded = False
            cindex.Config.library_file = None
    try:
        cindex.Index.create()  # maybe a plain `libclang.so` is on the path
        return True
    except Exception:  # noqa: BLE001
        return False


def libclang_available() -> bool:
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        return False
    try:
        return _locate_libclang()
    except Exception:  # noqa: BLE001
        return False


def build_model_libclang(root: pathlib.Path,
                         compile_db: pathlib.Path | None) -> Model:
    """AST front end: same Model shapes, cursor-accurate facts."""
    from clang import cindex

    args_for: dict[str, list[str]] = {}
    if compile_db and compile_db.is_file():
        for entry in json.loads(compile_db.read_text()):
            file = pathlib.Path(entry["directory"], entry["file"]).resolve()
            raw = entry.get("arguments") or entry.get("command", "").split()
            args = [a for a in raw[1:] if a.startswith(("-I", "-D", "-std",
                                                        "-isystem"))]
            args_for[str(file)] = args
    default_args = ["-std=c++20", f"-I{root / 'src'}", f"-I{root}"]

    model = Model(root, "libclang")
    index = cindex.Index.create()
    seen_functions: set[tuple[str, int, str]] = set()
    for path in source_files(root):
        rel = path.relative_to(root).as_posix()
        model.add_file(rel, path.read_text(encoding="utf-8"))
    for rel, fm in list(model.files.items()):
        if not rel.endswith(".cpp"):
            continue
        path = root / rel
        args = args_for.get(str(path.resolve()), default_args)
        tu = index.parse(str(path), args=args,
                         options=cindex.TranslationUnit
                         .PARSE_DETAILED_PROCESSING_RECORD)
        _harvest_tu(model, root, tu, seen_functions)
    model.finalize()
    return model


def _harvest_tu(model, root, tu, seen) -> None:
    from clang import cindex

    K = cindex.CursorKind

    def rel_of(location) -> str | None:
        if location.file is None:
            return None
        try:
            p = pathlib.Path(str(location.file)).resolve()
            rel = p.relative_to(root.resolve()).as_posix()
        except ValueError:
            return None
        return rel if rel in model.files else None

    def walk(cursor):
        for child in cursor.get_children():
            rel = rel_of(child.location)
            if rel is None and child.kind not in (K.NAMESPACE,):
                continue
            if child.kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                              K.DESTRUCTOR, K.FUNCTION_TEMPLATE):
                if child.is_definition() and rel is not None:
                    key = (rel, child.extent.start.line, child.spelling)
                    if key not in seen:
                        seen.add(key)
                        _replace_function(model.files[rel], child)
                continue
            if child.kind in (K.NAMESPACE, K.CLASS_DECL, K.STRUCT_DECL,
                              K.CLASS_TEMPLATE, K.UNEXPOSED_DECL):
                walk(child)

    walk(tu.cursor)


def _replace_function(fm: FileModel, cursor) -> None:
    """Overwrite the lexer's record for this definition with AST facts."""
    from clang import cindex

    K = cindex.CursorKind
    start, end = cursor.extent.start.line, cursor.extent.end.line
    calls: set[str] = set()
    allocates = False

    def visit(c):
        nonlocal allocates
        if c.kind == K.CALL_EXPR and c.spelling:
            calls.add(c.spelling)
        if c.kind == K.CXX_NEW_EXPR:
            allocates = True
        for g in c.get_children():
            visit(g)

    visit(cursor)
    tokens = {t.spelling for t in cursor.get_tokens()}
    parent = cursor.semantic_parent
    class_name = parent.spelling if parent is not None and parent.kind in (
        K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE) else ""
    access = {"public": "public", "protected": "protected",
              "private": "private"}.get(
        str(cursor.access_specifier).split(".")[-1].lower(), "")
    spec = cursor.exception_specification_kind
    noexcept = str(spec).split(".")[-1] in ("BASIC_NOEXCEPT",
                                            "COMPUTED_NOEXCEPT")
    record = srcmodel.Function(
        name=cursor.spelling,
        class_name=class_name,
        qualified=(f"{class_name}::{cursor.spelling}"
                   if class_name else cursor.spelling),
        line=start,
        body_start=0, body_end=0,
        is_const=bool(cursor.is_const_method()),
        is_noexcept=noexcept,
        is_static=bool(cursor.is_static_method()),
        access=access,
        annotated_hot=("NEATBOUND_HOT" in tokens or any(
            c.kind == K.ANNOTATE_ATTR and c.spelling == "neatbound_hot"
            for c in cursor.get_children())),
        calls=calls,
        statements=sum(t == ";" for t in
                       (tok.spelling for tok in cursor.get_tokens())),
        contains_contract=bool(tokens & {"NEATBOUND_EXPECTS",
                                         "NEATBOUND_ENSURES",
                                         "NEATBOUND_INVARIANT"}),
        contains_throw="throw" in tokens,
        body_lines=(start, end),
    )
    if allocates:
        record.calls.add("operator new")
    fm.functions = [f for f in fm.functions
                    if not (f.name == record.name and f.line == record.line)]
    fm.functions.append(record)


# --- findings ---------------------------------------------------------------

class Finding:
    def __init__(self, rel: str, line: int, rule: str, message: str):
        self.rel, self.line, self.rule, self.message = rel, line, rule, message

    def key(self):
        return (self.rel, self.line, self.rule, self.message)


def run_rules(model: Model) -> list[Finding]:
    findings: list[Finding] = []
    findings += rule_layering(model)
    findings += rule_include_cycle(model)
    findings += rule_rng(model)
    findings += rule_hot_alloc(model)
    findings += rule_contract_coverage(model)
    findings += rule_hot_hygiene(model)
    findings += rule_trace_io(model)
    kept = []
    for f in sorted(findings, key=Finding.key):
        fm = model.files.get(f.rel)
        if fm is not None and fm.allowed(f.line, f.rule):
            continue
        kept.append(f)
    return kept


# --- rule: layering ---------------------------------------------------------

def rule_layering(model: Model) -> list[Finding]:
    out = []
    for fm in model.files.values():
        if fm.module is None or fm.module not in LAYERS:
            if fm.module is not None:
                out.append(Finding(
                    fm.rel, 1, "layering",
                    f"module '{fm.module}' is not in the layer map — "
                    f"extend LAYERS in scripts/neatbound_analyze.py and "
                    f"the DAG in docs/architecture.md"))
            continue
        src_layer = LAYERS[fm.module]
        for lineno, target in fm.includes:
            tgt_module = pathlib.PurePosixPath(target).parts[0] \
                if pathlib.PurePosixPath(target).parts else ""
            if tgt_module == fm.module or tgt_module not in LAYERS:
                continue
            tgt_layer = LAYERS[tgt_module]
            if tgt_layer >= src_layer:
                kind = ("layering inversion" if tgt_layer > src_layer
                        else "sibling-layer include")
                out.append(Finding(
                    fm.rel, lineno, "layering",
                    f"{kind}: '{fm.module}' (layer {src_layer}) includes "
                    f"'{tgt_module}' (layer {tgt_layer}); the enforced "
                    f"direction is {DAG_TEXT}"))
    return out


# --- rule: include-cycle ----------------------------------------------------

def build_include_graph(
    includes_by_file: dict[str, list[str]]
) -> dict[str, list[str]]:
    """File-level include digraph, restricted to files in the mapping.
    Include targets are repo-root-relative module paths ("sim/engine.hpp");
    files are repo-relative ("src/sim/engine.hpp")."""
    resolvable = {}
    for rel in includes_by_file:
        p = pathlib.PurePosixPath(rel)
        if p.parts and p.parts[0] == "src":
            resolvable[pathlib.PurePosixPath(*p.parts[1:]).as_posix()] = rel
        resolvable[rel] = rel
    graph: dict[str, list[str]] = {rel: [] for rel in includes_by_file}
    for rel, targets in includes_by_file.items():
        for target in targets:
            resolved = resolvable.get(target)
            if resolved is not None:
                graph[rel].append(resolved)
    return graph


def find_cycles(graph: dict[str, list[str]]) -> list[list[str]]:
    """Elementary cycles via Tarjan SCCs (plus self-loops), each cycle a
    node list in deterministic order starting at its smallest node."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    cycles: list[list[str]] = []

    def strongconnect(v: str) -> None:
        work = [(v, iter(sorted(graph.get(v, ()))))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in graph:
                    continue
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                if len(scc) > 1:
                    # Deterministic representative path: start at the
                    # smallest node and follow smallest unvisited
                    # successors within the SCC.
                    members = set(scc)
                    cur = min(scc)
                    path, seen_local = [cur], {cur}
                    while True:
                        nxt = next(
                            (w for w in sorted(graph.get(cur, ()))
                             if w in members and w not in seen_local), None)
                        if nxt is None:
                            break
                        path.append(nxt)
                        seen_local.add(nxt)
                        cur = nxt
                    cycles.append(path)
                elif node in graph.get(node, ()):
                    cycles.append([node])

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return sorted(cycles)


def rule_include_cycle(model: Model) -> list[Finding]:
    includes_by_file = {fm.rel: [t for _, t in fm.includes]
                        for fm in model.files.values()}
    graph = build_include_graph(includes_by_file)
    resolvable: dict[str, str] = {}
    for rel in includes_by_file:
        p = pathlib.PurePosixPath(rel)
        if p.parts and p.parts[0] == "src":
            resolvable[pathlib.PurePosixPath(*p.parts[1:]).as_posix()] = rel
        resolvable[rel] = rel
    out = []
    for cycle in find_cycles(graph):
        anchor = cycle[0]
        fm = model.files[anchor]
        nxt = cycle[1] if len(cycle) > 1 else cycle[0]
        lineno = next((ln for ln, t in fm.includes
                       if resolvable.get(t) == nxt), 1)
        label = (" -> ".join(cycle + [cycle[0]])
                 if len(cycle) > 1 else f"{anchor} includes itself")
        out.append(Finding(anchor, lineno, "include-cycle",
                           f"include cycle: {label}"))
    return out


# --- rule: rng-stream -------------------------------------------------------

def rule_rng(model: Model) -> list[Finding]:
    out = []
    for fm in model.files.values():
        if fm.module is None:
            continue
        for lineno, line in enumerate(fm.code_lines, 1):
            hit = None
            for pattern, why in RNG_PATTERNS:
                if pattern.search(line):
                    hit = (f"{why}; key draws through support/crng.hpp "
                           f"so every draw stays addressable as "
                           f"(key, counter)")
                    break
            # The sequential support::Rng is the pre-counter legacy path:
            # hidden state makes draw N depend on draws 1..N-1, which is
            # exactly what the batched engine cannot replay out of order.
            # It survives behind RngMode::kLegacy for one release; those
            # sites carry allows.  `\bRng\b` does not match crng:: or
            # RngMode, and support/ itself (where Rng is defined) is
            # exempt.
            if hit is None and fm.module != "support" \
                    and LEGACY_RNG_RE.search(line):
                hit = ("sequential support::Rng draw outside support/: "
                       "hidden stream state is order-dependent and blocks "
                       "batched replay; new code keys draws through "
                       "support/crng.hpp (legacy-mode sites carry an "
                       "allow until kLegacy is retired)")
            if hit is not None:
                out.append(Finding(fm.rel, lineno, "rng-stream", hit))
    return out


# --- rule: hot-alloc --------------------------------------------------------

def body_line_texts(fm: FileModel, f):
    """(lineno, lexed text) for each line of f's body — starting *after*
    the opening brace, so types in the signature (e.g. a std::vector<>&
    return type) cannot trip the allocation patterns."""
    if f.body_start > 0 and f.body_end > f.body_start:
        segment = fm.lexed.code[f.body_start + 1: f.body_end - 1]
        for i, text in enumerate(segment.split("\n")):
            yield f.body_lines[0] + i, text
        return
    start, end = f.body_lines  # libclang extent: full-definition lines
    for lineno in range(start, min(end, len(fm.code_lines)) + 1):
        yield lineno, fm.code_lines[lineno - 1]


def _is_boundary(fm: FileModel, func) -> bool:
    return fm.allowed(func.line, "hot-alloc")


def hot_closure(model: Model) -> dict[int, tuple]:
    """id(func) -> (fm, func, chain-string) for every function reachable
    from a NEATBOUND_HOT annotation through the project call graph,
    stopping at allocation-boundary allows."""
    hot: dict[int, tuple] = {}
    work = []
    for fm in model.files.values():
        for f in fm.functions:
            _, annotated = model.merged(f)
            if annotated and not _is_boundary(fm, f):
                hot[id(f)] = (fm, f, f.qualified)
                work.append(f)
    while work:
        f = work.pop()
        chain = hot[id(f)][2]
        for call in sorted(f.calls):
            if call in srcmodel.STD_MEMBER_NAMES:
                continue
            for gm, g in model.name_index.get(call, []):
                if id(g) in hot or _is_boundary(gm, g):
                    continue
                hot[id(g)] = (gm, g, f"{chain} -> {g.qualified}")
                work.append(g)
    return hot


def rule_hot_alloc(model: Model) -> list[Finding]:
    out = []
    for fm, f, chain in hot_closure(model).values():
        if f.body_lines[0] == 0:
            continue
        for lineno, line in body_line_texts(fm, f):
            for pattern, what in ALLOC_PATTERNS:
                if pattern.search(line):
                    out.append(Finding(
                        fm.rel, lineno, "hot-alloc",
                        f"{what} in '{f.qualified}', reachable from "
                        f"NEATBOUND_HOT via {chain}"))
                    break
    return out


# --- rule: contract-coverage ------------------------------------------------

CONTRACT_MODULES = {"protocol", "net", "exp"}


def rule_contract_coverage(model: Model) -> list[Finding]:
    out = []
    for fm in model.files.values():
        if fm.module not in CONTRACT_MODULES:
            continue
        for f in fm.functions:
            access, _ = model.merged(f)
            if (not f.class_name or access != "public" or f.is_static
                    or f.is_const or f.name == f.class_name
                    or f.name.startswith("~") or f.statements < 2
                    or f.contains_contract):
                continue
            out.append(Finding(
                fm.rel, f.line, "contract-coverage",
                f"public mutating method '{f.qualified}' has no "
                f"NEATBOUND_EXPECTS/ENSURES/INVARIANT; add a contract or "
                f"an explicit allow naming why none is needed"))
    return out


# --- rule: hot-hygiene ------------------------------------------------------

def rule_hot_hygiene(model: Model) -> list[Finding]:
    out = []
    for fm in model.files.values():
        for f in fm.functions:
            _, annotated = model.merged(f)
            if not annotated:
                continue
            if (f.class_name and ACCESSOR_NAME.search(f.name)
                    and not f.is_const):
                out.append(Finding(
                    fm.rel, f.line, "hot-hygiene",
                    f"hot accessor '{f.qualified}' is not const-qualified"))
            project_calls = {c for c in f.calls
                             if c not in srcmodel.STD_MEMBER_NAMES
                             and c in model.name_index}
            allocs = any(
                pattern.search(text)
                for _, text in body_line_texts(fm, f)
                for pattern, _ in ALLOC_PATTERNS
            ) if f.body_lines[0] else False
            if (not project_calls and not f.contains_contract
                    and not f.contains_throw and not allocs
                    and not f.is_noexcept):
                out.append(Finding(
                    fm.rel, f.line, "hot-hygiene",
                    f"hot leaf function '{f.qualified}' (no project calls, "
                    f"no contracts, no allocation) should be noexcept"))
    return out


# --- rule: trace-io ---------------------------------------------------------

def rule_trace_io(model: Model) -> list[Finding]:
    out = []
    for fm in model.files.values():
        if fm.module not in TRACE_IO_MODULES or fm.rel in TRACE_IO_EXEMPT:
            continue
        for lineno, line in enumerate(fm.code_lines, 1):
            for pattern, what in TRACE_IO_PATTERNS:
                if pattern.search(line):
                    out.append(Finding(
                        fm.rel, lineno, "trace-io",
                        f"{what} in simulation-core module '{fm.module}': "
                        f"route structured output through "
                        f"sim::BoundedTraceWriter (sim/trace.hpp) and let "
                        f"the caller own the stream"))
                    break
    return out


# --- driver -----------------------------------------------------------------

def probe_compile_db(root: pathlib.Path,
                     explicit: str | None) -> pathlib.Path | None:
    if explicit:
        p = pathlib.Path(explicit)
        return p if p.is_file() else None
    for candidate in sorted(root.glob("build*/compile_commands.json")):
        return candidate
    return None


def build_model(root: pathlib.Path, frontend: str,
                compile_db: pathlib.Path | None,
                quiet: bool = False) -> Model:
    if frontend == "libclang" or (frontend == "auto"
                                  and libclang_available()):
        if frontend == "libclang" and not libclang_available():
            print("FAIL: --frontend=libclang requested but the clang "
                  "Python bindings / libclang shared library are not "
                  "available", file=sys.stderr)
            raise SystemExit(2)
        try:
            return build_model_libclang(root, compile_db)
        except Exception as error:  # noqa: BLE001
            if frontend == "libclang":
                raise
            if not quiet:
                print(f"note: libclang front end failed ({error}); "
                      f"falling back to the text front end",
                      file=sys.stderr)
    if frontend == "auto" and not quiet and not libclang_available():
        print("note: libclang not available — running the built-in text "
              "front end (all rules active; libclang adds precision only)",
              file=sys.stderr)
    return build_model_text(root)


def analyze_tree(root: pathlib.Path, frontend: str,
                 compile_db: pathlib.Path | None) -> int:
    model = build_model(root, frontend, compile_db)
    findings = run_rules(model)
    for f in findings:
        excerpt = ""
        fm = model.files.get(f.rel)
        if fm and 0 < f.line <= len(fm.raw_lines):
            excerpt = " | " + fm.raw_lines[f.line - 1].strip()
        print(f"FAIL: {f.rel}:{f.line}: [{f.rule}] {f.message}{excerpt}",
              file=sys.stderr)
    if findings:
        print(f"{len(findings)} neatbound-analyze finding(s); add "
              f"'// {ALLOW_TAG}: allow(<rule>)' only with a written "
              f"rationale", file=sys.stderr)
        return 1
    print(f"OK: src/ and cli/ are clean under neatbound-analyze "
          f"({', '.join(ALL_RULES)}; front end: {model.frontend})")
    return 0


def self_test(repo_root: pathlib.Path, frontend: str) -> int:
    cases_dir = repo_root / "tests" / "lint" / "fixtures" / "analyze"
    cases = sorted(p for p in cases_dir.iterdir() if p.is_dir()) \
        if cases_dir.is_dir() else []
    if not cases:
        print(f"FAIL: no fixture cases under {cases_dir}", file=sys.stderr)
        return 1
    failures = 0
    covered: set[str] = set()
    allow_proven = False
    for case in cases:
        model = build_model(case, frontend, None, quiet=True)
        fired = {(f.rel, f.rule) for f in run_rules(model)}
        expected = set()
        for fm in model.files.values():
            for line in fm.raw_lines:
                m = EXPECT.search(line)
                if m:
                    expected.add((fm.rel, m.group(1)))
        covered |= {rule for _, rule in fired}
        if case.name == "allowlisted":
            allow_proven = not fired and not expected
        if fired != expected:
            missing = sorted(expected - fired)
            extra = sorted(fired - expected)
            print(f"FAIL: {case.name}: expected-but-missing {missing}, "
                  f"fired-but-unexpected {extra}", file=sys.stderr)
            failures += 1
        else:
            rules = sorted({r for _, r in fired}) or ["clean"]
            print(f"ok: {case.name}: {rules}")
    missing_rules = set(ALL_RULES) - covered
    if missing_rules:
        print(f"FAIL: no fixture case fires rule(s): "
              f"{sorted(missing_rules)}", file=sys.stderr)
        failures += 1
    if not allow_proven:
        print("FAIL: the 'allowlisted' case must exist and scan clean "
              "(it proves the allow syntax for every rule)",
              file=sys.stderr)
        failures += 1
    if failures:
        return 1
    print(f"OK: {len(cases)} cases, every rule ({', '.join(ALL_RULES)}) "
          f"proven to fire and proven silenceable")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--root",
        default=str(pathlib.Path(__file__).resolve().parent.parent),
        help="repository root (default: the repo containing this script)")
    parser.add_argument(
        "--compile-db", default=None,
        help="compile_commands.json (default: probe build*/); used by the "
             "libclang front end for per-TU flags")
    parser.add_argument(
        "--frontend", choices=("auto", "libclang", "text"), default="auto",
        help="AST front end selection (default: auto)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rules against "
                             "tests/lint/fixtures/analyze/ and require "
                             "each case to fire exactly as declared")
    parser.add_argument("--print-dag", action="store_true",
                        help="print the enforced module layering and exit")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()
    if args.print_dag:
        print(DAG_TEXT)
        for module, layer in sorted(LAYERS.items(), key=lambda kv: kv[1]):
            print(f"  layer {layer}: {module}")
        return 0
    if args.self_test:
        return self_test(root, args.frontend)
    return analyze_tree(root, args.frontend,
                        probe_compile_db(root, args.compile_db))


if __name__ == "__main__":
    sys.exit(main())
