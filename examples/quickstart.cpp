// Quickstart: evaluate the paper's consistency bound for your parameters.
//
//   ./quickstart --n=1e5 --delta=1e13 --nu=0.25 --c=2
//
// Reports the derived per-round quantities, whether Theorem 1 / Theorem 2 /
// PSS certify consistency, the tolerance frontier at your c, and the
// minimum c for your ν.
#include <iostream>

#include "bounds/frontier.hpp"
#include "bounds/pss.hpp"
#include "bounds/zhao.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  using bounds::BoundKind;

  CliArgs args(argc, argv);
  const double n = args.get_double("n", 1e5);
  const double delta = args.get_double("delta", 1e13);
  const double nu = args.get_double("nu", 0.25);
  const double c = args.get_double("c", 2.0);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  const auto params = bounds::ProtocolParams::from_c(n, delta, nu, c);

  std::cout << "Parameters\n"
            << "  n      = " << format_general(params.n()) << "  (miners)\n"
            << "  delta  = " << format_general(params.delta())
            << "  (max message delay, rounds)\n"
            << "  nu     = " << format_fixed(params.nu(), 4)
            << "  (adversarial fraction; mu = "
            << format_fixed(params.mu(), 4) << ")\n"
            << "  c      = " << format_general(params.c())
            << "  (expected delta-delays per block; p = "
            << format_sci(params.p(), 3) << ")\n\n";

  std::cout << "Per-round quantities (Table I)\n"
            << "  ln(alpha)     = " << format_general(params.alpha().log(), 6)
            << "   P[some honest block]\n"
            << "  ln(alpha_bar) = "
            << format_general(params.alpha_bar().log(), 6)
            << "   P[no honest block]\n"
            << "  ln(alpha1)    = " << format_general(params.alpha1().log(), 6)
            << "   P[exactly one honest block]\n"
            << "  p*nu*n        = " << format_sci(params.adversary_rate(), 3)
            << "   adversary blocks per round\n\n";

  const double neat = bounds::neat_bound_c(nu);
  const double full = bounds::theorem2_c_infimum(nu, delta);
  const double margin = bounds::theorem1_margin(params).log();
  std::cout << "Consistency verdicts at (nu, c)\n"
            << "  neat bound:  need c > 2mu/ln(mu/nu) = "
            << format_general(neat, 6) << "  ->  "
            << (c > neat ? "OK" : "VIOLATED") << '\n'
            << "  Theorem 2:   need c > " << format_general(full, 6)
            << "  ->  " << (c > full ? "OK" : "VIOLATED") << '\n'
            << "  Theorem 1:   ln(conv.rate / adv.rate) = "
            << format_general(margin, 4) << "  ->  "
            << (margin > 0 ? "OK" : "VIOLATED") << '\n'
            << "  PSS (2017):  need c > "
            << format_general(bounds::pss_consistency_c_min(nu), 6)
            << "  ->  "
            << (bounds::pss_consistency_exact(params) ? "OK" : "VIOLATED")
            << '\n'
            << "  PSS attack:  breaks consistency for nu > "
            << format_fixed(bounds::pss_attack_nu_threshold(c), 6)
            << "  ->  "
            << (bounds::pss_attack_applies(nu, c) ? "ATTACK APPLIES" : "safe")
            << "\n\n";

  std::cout << "Tolerance frontier at your c\n";
  TablePrinter table({"bound", "nu_max at c=" + format_general(c)});
  for (const BoundKind kind :
       {BoundKind::kZhaoTheorem1Exact, BoundKind::kZhaoTheorem2,
        BoundKind::kZhaoNeat, BoundKind::kPssConsistency,
        BoundKind::kPssAttack}) {
    table.add_row({bounds::bound_name(kind),
                   format_fixed(bounds::nu_max(kind, c, n, delta), 6)});
  }
  table.print(std::cout);
  return 0;
}
