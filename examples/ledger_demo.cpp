// Ledger-level consistency: the application view of Definition 1.
//
// Runs the protocol with the environment Z feeding transaction batches to
// miners, reads the ledger of every honest player via ext(κ, C), and
// reports how many trailing entries they disagree on — the T a wallet
// must wait before treating a transaction as final — under a benign
// network and under a withholding attack.
//
//   ./ledger_demo --miners=30 --delta=3 --c=4 --rounds=15000
#include <iostream>
#include <memory>

#include "sim/engine.hpp"
#include "sim/environment.hpp"
#include "sim/strategies.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace neatbound;

struct LedgerReport {
  sim::RunResult run;
  sim::LedgerAgreement agreement;
  std::vector<std::string> sample;
};

LedgerReport run_with(std::uint32_t miners, double nu, std::uint64_t delta,
                      double c, std::uint64_t rounds, std::uint64_t seed,
                      std::unique_ptr<sim::Adversary> adversary) {
  sim::EngineConfig config;
  config.miner_count = miners;
  config.adversary_fraction = nu;
  config.delta = delta;
  config.p = 1.0 / (c * static_cast<double>(miners) *
                    static_cast<double>(delta));
  config.rounds = rounds;
  config.seed = seed;
  sim::ExecutionEngine engine(
      config, std::move(adversary),
      std::make_unique<sim::SequentialTransactionEnvironment>());
  LedgerReport report{engine.run(), {}, {}};
  report.agreement =
      sim::measure_ledger_agreement(engine.store(), engine.honest_tips());
  const auto ledger =
      engine.store().extract_messages(engine.best_honest_tip());
  for (std::size_t i = 0; i < std::min<std::size_t>(3, ledger.size()); ++i) {
    report.sample.push_back(ledger[i]);
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto miners = static_cast<std::uint32_t>(args.get_uint("miners", 30));
  const std::uint64_t delta = args.get_uint("delta", 3);
  const double c = args.get_double("c", 4.0);
  const std::uint64_t rounds = args.get_uint("rounds", 15000);
  const std::uint64_t seed = args.get_uint("seed", 7);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "Ledger consistency demo: n=" << miners << " delta=" << delta
            << " c=" << c << " T=" << rounds << "\n\n";

  TablePrinter table({"scenario", "ledger length", "common prefix",
                      "trailing disagreement", "reorg depth",
                      "quality"});
  const LedgerReport benign =
      run_with(miners, 0.0, delta, c, rounds, seed,
               std::make_unique<sim::MaxDelayAdversary>(delta));
  table.add_row({"benign (max delay)",
                 std::to_string(benign.agreement.max_length),
                 std::to_string(benign.agreement.common_prefix),
                 std::to_string(benign.agreement.suffix_disagreement),
                 std::to_string(benign.run.max_reorg_depth),
                 format_fixed(benign.run.chain.quality, 3)});
  const LedgerReport attacked =
      run_with(miners, 0.35, delta, c, rounds, seed,
               std::make_unique<sim::PrivateWithholdAdversary>());
  table.add_row({"withholding nu=0.35",
                 std::to_string(attacked.agreement.max_length),
                 std::to_string(attacked.agreement.common_prefix),
                 std::to_string(attacked.agreement.suffix_disagreement),
                 std::to_string(attacked.run.max_reorg_depth),
                 format_fixed(attacked.run.chain.quality, 3)});
  table.print(std::cout);

  std::cout << "\nFirst ledger entries (ext of the best honest chain):\n";
  for (const auto& entry : benign.sample) std::cout << "  " << entry << '\n';
  std::cout << "\nhow to read: 'trailing disagreement' is the ledger-level "
               "T of Definition 1 — entries deeper than it are final for "
               "every honest player.  The withholding attacker raises the "
               "required T via deep reorgs (see 'reorg depth').\n";
  return 0;
}
