// Scenario subsystem demo: defines a small declarative scenario inline
// (the same JSON you would put in a scenarios/*.json file), runs it
// through the registry + sweep orchestrator, and prints the report.
//
// The scenario pits the delay-saturating withholder against a bursty
// network, sweeping the adversary fraction ν; compare the same strategy
// on its native always-Δ network by flipping the model to "strategy".
//
//   ./scenario_demo --rounds 2000 --seeds 3 --threads 2
#include <iostream>

#include "exp/sinks.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "support/cli.hpp"

namespace {

constexpr const char* kDemoScenario = R"({
  "name": "scenario_demo",
  "title": "delay-saturating withholder on a bursty network",
  "engine": {"miners": 24, "delta": 3, "rounds": 4000},
  "axes": [
    {"name": "nu", "values": [0.1, 0.2, 0.3, 0.4]}
  ],
  "hardness": {"mode": "neat-bound-multiple", "multiple": 1.5},
  "seeds": 3,
  "violation_t": 8,
  "adversary": {"strategy": "delay-saturate"},
  "network": {"model": "bursty", "period": 8, "burst_length": 4},
  "report": {
    "columns": [
      {"header": "nu", "value": "nu", "decimals": 2},
      {"header": "c", "value": "c", "decimals": 3},
      {"header": "mean violation depth", "value": "violation_depth.mean",
       "decimals": 1},
      {"header": "max reorg", "value": "max_reorg_depth.max", "decimals": 0},
      {"header": "chain quality", "value": "chain_quality.mean",
       "decimals": 3}
    ]
  }
})";

}  // namespace

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const std::uint64_t rounds =
      args.get_uint("rounds", 0, "override rounds per run (0 = spec value)");
  const std::uint64_t seeds =
      args.get_uint("seeds", 0, "override seeds per cell (0 = spec value)");
  const auto threads = static_cast<unsigned>(
      args.get_uint("threads", 0, "sweep workers (0 = hardware)"));
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  scenario::ScenarioSpec spec = scenario::parse_scenario(kDemoScenario);
  scenario::SpecOverrides overrides;
  if (rounds > 0) overrides.rounds = rounds;
  if (seeds > 0) overrides.seeds = static_cast<std::uint32_t>(seeds);
  scenario::apply_overrides(spec, overrides);

  std::cout << "# " << spec.name << " — " << spec.title << "\n"
            << "# adversary: " << spec.adversary.kind
            << ", network: " << spec.network.kind << ", "
            << spec.grid_size() << " cells x " << spec.seeds << " seeds, T="
            << spec.rounds << "\n";

  scenario::ScenarioRunOptions run_options;
  run_options.threads = threads;
  const auto cells = scenario::run_scenario(
      spec, scenario::ScenarioRegistry::builtin(), run_options);
  exp::TableSink table(std::cout);
  scenario::render_report(spec, cells, table);
  table.finish();

  std::cout << "\nreading: the bursty network hands the withholder free "
               "partition windows, so violation depth climbs with nu well "
               "before the always-Delta regime would let it; swap the "
               "network model for \"strategy\" to recover the classic "
               "bench behaviour.\n";
  return 0;
}
