// Attack explorer: pit every built-in adversary strategy against one
// parameter point and compare what each attack actually damages —
// consistency depth, chain quality, or agreement.
//
//   ./attack_explorer --miners=40 --nu=0.3 --delta=4 --c=2 --rounds=20000
#include <iostream>

#include "bounds/pss.hpp"
#include "bounds/zhao.hpp"
#include "sim/runner.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const auto miners = static_cast<std::uint32_t>(args.get_uint("miners", 40));
  const double nu = args.get_double("nu", 0.3);
  const std::uint64_t delta = args.get_uint("delta", 4);
  const double c = args.get_double("c", 2.0);
  const std::uint64_t rounds = args.get_uint("rounds", 20000);
  const auto seeds = static_cast<std::uint32_t>(args.get_uint("seeds", 4));
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "Attack explorer: n=" << miners << " nu=" << nu
            << " delta=" << delta << " c=" << c << " T=" << rounds
            << " seeds=" << seeds << "\n"
            << "analytic context: neat bound needs c > "
            << format_fixed(bounds::neat_bound_c(nu), 3)
            << "; PSS attack regime is nu > "
            << format_fixed(bounds::pss_attack_nu_threshold(c), 3)
            << " at this c\n\n";

  TablePrinter table({"strategy", "violation depth", "max reorg",
                      "max divergence", "disagree frac", "quality",
                      "growth/round", "conv opps", "adv blocks"});
  for (const auto kind :
       {sim::AdversaryKind::kNull, sim::AdversaryKind::kMaxDelay,
        sim::AdversaryKind::kPrivateWithhold,
        sim::AdversaryKind::kBalanceAttack,
        sim::AdversaryKind::kSelfishMining}) {
    sim::ExperimentConfig config;
    config.engine.miner_count = miners;
    config.engine.adversary_fraction = nu;
    config.engine.delta = delta;
    config.engine.p = 1.0 / (c * static_cast<double>(miners) *
                             static_cast<double>(delta));
    config.engine.rounds = rounds;
    config.adversary = kind;
    config.seeds = seeds;
    const auto s = sim::run_experiment(config, 8);
    table.add_row(
        {sim::adversary_kind_name(kind),
         format_fixed(s.violation_depth.mean(), 1),
         format_fixed(s.max_reorg_depth.mean(), 1),
         format_fixed(s.max_divergence.mean(), 1),
         format_fixed(s.disagreement_rounds.mean() /
                          static_cast<double>(rounds),
                      3),
         format_fixed(s.chain_quality.mean(), 3),
         format_fixed(s.chain_growth.mean(), 5),
         format_fixed(s.convergence_opportunities.mean(), 0),
         format_fixed(s.adversary_blocks.mean(), 0)});
  }
  table.print(std::cout);
  std::cout << "\nhow to read: private-withhold targets consistency (reorg "
               "depth), balance-attack targets agreement (divergence), "
               "selfish-mining targets chain quality; null/max-delay are "
               "the benign baselines bracketing honest behaviour.\n";
  return 0;
}
