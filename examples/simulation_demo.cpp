// Execution-engine walkthrough: runs the protocol of Section III at laptop
// scale with a withholding adversary, then dissects the result — final
// chain validation against the random oracle, ext() message extraction,
// per-round block-count histogram, and the convergence-opportunity count
// compared with Eq. (26).
//
//   ./simulation_demo --miners=30 --nu=0.2 --delta=3 --c=4 --rounds=20000
#include <cmath>
#include <iostream>
#include <memory>

#include "bounds/params.hpp"
#include "chains/convergence.hpp"
#include "protocol/validation.hpp"
#include "sim/engine.hpp"
#include "sim/strategies.hpp"
#include "stats/histogram.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const auto miners = static_cast<std::uint32_t>(args.get_uint("miners", 30));
  const double nu = args.get_double("nu", 0.2);
  const std::uint64_t delta = args.get_uint("delta", 3);
  const double c = args.get_double("c", 4.0);
  const std::uint64_t rounds = args.get_uint("rounds", 20000);
  const std::uint64_t seed = args.get_uint("seed", 2024);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  sim::EngineConfig config;
  config.miner_count = miners;
  config.adversary_fraction = nu;
  config.delta = delta;
  config.p = 1.0 / (c * static_cast<double>(miners) *
                    static_cast<double>(delta));
  config.rounds = rounds;
  config.seed = seed;

  std::cout << "Running " << rounds << " rounds: n=" << miners
            << ", nu=" << nu << ", delta=" << delta << ", c=" << c
            << ", p=" << format_sci(config.p, 3) << ", seed=" << seed
            << "\n\n";

  sim::ExecutionEngine engine(config,
                              std::make_unique<sim::PrivateWithholdAdversary>());
  const sim::RunResult result = engine.run();

  std::cout << "Blocks\n"
            << "  honest mined        : " << result.honest_blocks_total << '\n'
            << "  adversary mined     : " << result.adversary_blocks_total
            << '\n'
            << "  best chain height   : " << result.chain.best_height << '\n'
            << "  growth per round    : "
            << format_fixed(result.chain.growth_per_round, 5) << '\n'
            << "  chain quality       : "
            << format_fixed(result.chain.quality, 4) << "  ("
            << result.chain.adversary_blocks_in_chain
            << " adversary blocks in the winning chain)\n\n";

  std::cout << "Consistency\n"
            << "  max reorg depth     : " << result.max_reorg_depth << '\n'
            << "  max view divergence : " << result.max_divergence << '\n'
            << "  disagreement rounds : " << result.disagreement_rounds
            << " / " << rounds << '\n'
            << "  => consistency held for every T > "
            << result.violation_depth << "\n\n";

  // Convergence opportunities: measured vs Eq. (26).
  const auto params = bounds::ProtocolParams::from_c(
      static_cast<double>(miners), static_cast<double>(delta), nu, c);
  const double expected =
      chains::expected_convergence_opportunities(
          params.alpha_bar(), params.alpha1(), delta,
          static_cast<double>(rounds))
          .linear();
  std::cout << "Convergence opportunities (pattern H N^{>=delta} H1 "
               "N^{delta})\n"
            << "  measured            : " << result.convergence_opportunities
            << '\n'
            << "  Eq. (26) expectation: " << format_fixed(expected, 1)
            << "  (ratio "
            << format_fixed(static_cast<double>(
                                result.convergence_opportunities) /
                                expected,
                            3)
            << ")\n\n";

  // Validate the winning chain against the oracle (H.ver + PoW target).
  const auto report = protocol::validate_chain(
      engine.store(), engine.best_honest_tip(), engine.oracle(),
      engine.target(), engine.validation_policy());
  std::cout << "Winning-chain validation (H.ver + PoW target): "
            << (report.valid ? "VALID" : ("INVALID - " + report.failure))
            << "\n\n";

  // Distribution of per-round honest block counts (the H_h detailed states).
  stats::Histogram hist(0.0, 5.0, 5);
  for (const auto count : result.honest_counts) hist.add(count);
  std::cout << "Per-round honest block count distribution:\n"
            << hist.render(40) << '\n';
  std::cout << "ext(): the winning chain carries "
            << engine.store().extract_messages(engine.best_honest_tip()).size()
            << " environment messages (payloads are digests in simulation "
               "runs).\n";
  return 0;
}
