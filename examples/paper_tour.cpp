// A guided tour of the paper, theorem by theorem, with every headline
// claim recomputed live.  No flags; just run it.
#include <cmath>
#include <iostream>

#include "bounds/frontier.hpp"
#include "bounds/lemmas.hpp"
#include "bounds/pss.hpp"
#include "bounds/zhao.hpp"
#include "chains/convergence.hpp"
#include "chains/suffix_chain.hpp"
#include "markov/stationary.hpp"
#include "support/table.hpp"

int main() {
  using namespace neatbound;
  std::cout <<
      "================================================================\n"
      " Zhao (ICDCS 2020): Blockchain Consistency in Asynchronous\n"
      " Networks — a tour of the results, recomputed by this library\n"
      "================================================================\n\n";

  // --- Section III: the model quantities --------------------------------
  const auto params = bounds::ProtocolParams::from_c(1e5, 1e13, 0.25, 2.0);
  std::cout << "SECTION III — model quantities at n=1e5, delta=1e13, "
               "nu=1/4, c=2 (Figure-1 scale):\n"
            << "  p = 1/(c n delta) = " << format_sci(params.p(), 3)
            << ", ln(alpha_bar) = " << format_sci(params.alpha_bar().log(), 3)
            << ", alpha1/alpha = "
            << format_fixed(
                   std::exp(params.alpha1().log() - params.alpha().log()), 9)
            << "\n  (two honest blocks in one round are vanishingly rare — "
               "the H1 pattern dominates)\n\n";

  // --- Section V-A: the suffix chain ------------------------------------
  std::cout << "SECTION V-A — the suffix chain C_F (Fig. 2) at delta=3, "
               "alpha=0.3:\n";
  const chains::SuffixStateSpace space(3);
  const auto matrix = chains::build_suffix_chain_matrix(space, 0.3);
  const auto closed = chains::stationary_closed_form_vector(space, 0.3);
  const auto solved = markov::solve_stationary_direct(matrix);
  double worst = 0.0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    worst = std::max(worst,
                     std::fabs(closed[i] - solved.distribution[i]));
  }
  std::cout << "  closed form (Eq. 37) vs direct linear solve: max |err| = "
            << format_sci(worst, 2) << " over " << space.size()
            << " states\n"
            << "  pi(HN>=3) = alpha_bar^3 = " << format_fixed(closed[3], 6)
            << " (Eq. 37c)\n\n";

  // --- Theorem 1 ---------------------------------------------------------
  std::cout << "THEOREM 1 — consistency if alpha_bar^(2 delta) * alpha1 >= "
               "(1+d1) p nu n:\n";
  const auto sides = bounds::theorem1_sides(params);
  std::cout << "  at the Section-III point: ln(conv rate) = "
            << format_fixed(sides.convergence_rate.log(), 4)
            << ", ln(adv rate) = "
            << format_fixed(sides.adversary_rate.log(), 4)
            << " -> margin e^"
            << format_fixed(bounds::theorem1_margin(params).log(), 4)
            << " (holds)\n\n";

  // --- Theorem 2 / the neat bound ----------------------------------------
  std::cout << "THEOREM 2 — the neat bound c > 2mu/ln(mu/nu):\n";
  TablePrinter neat({"nu", "2mu/ln(mu/nu)", "full Thm-2 threshold",
                     "overhead at delta=1e13"});
  for (const double nu : {0.1, 0.25, 0.4}) {
    const double neat_c = bounds::neat_bound_c(nu);
    const double full_c = bounds::theorem2_c_infimum(nu, 1e13);
    neat.add_row({format_fixed(nu, 2), format_fixed(neat_c, 9),
                  format_fixed(full_c, 9),
                  format_sci(full_c / neat_c - 1.0, 2)});
  }
  neat.print(std::cout);
  std::cout << "  -> \"just slightly greater\": the overhead is ~1e-13.\n\n";

  // --- Remark 1 ----------------------------------------------------------
  const auto w1 = bounds::remark1_window(1e13, 1.0 / 6.0, 1.0 / 2.0);
  const auto w2 = bounds::remark1_window(1e13, 1.0 / 8.0, 2.0 / 3.0);
  std::cout << "REMARK 1 — explicit windows at delta = 1e13:\n"
            << "  (d1,d2)=(1/6,1/2): nu in [10^"
            << format_fixed(w1.log10_nu_lo, 1) << ", 1/2 - "
            << format_sci(w1.half_minus_hi, 1) << "], factor 1 + "
            << format_sci(w1.factor_minus_one, 1)
            << "   (paper: [1e-63, 1/2 - 1e-7], 1 + 5e-5)\n"
            << "  (d1,d2)=(1/8,2/3): nu in [10^"
            << format_fixed(w2.log10_nu_lo, 1) << ", 1/2 - "
            << format_sci(w2.half_minus_hi, 1) << "], factor 1 + "
            << format_sci(w2.factor_minus_one, 1)
            << "   (paper: [1e-18, 1/2 - 1e-9], 1 + 2e-3)\n\n";

  // --- Figure 1 ----------------------------------------------------------
  std::cout << "FIGURE 1 — who tolerates what at c = 2:\n"
            << "  ours (magenta):  nu_max = "
            << format_fixed(
                   bounds::nu_max(bounds::BoundKind::kZhaoNeat, 2.0, 1e5,
                                  1e13),
                   4)
            << "\n  PSS (blue):      nu_max = "
            << format_fixed(bounds::pss_consistency_nu_max(2.0), 4)
            << "  (zero: PSS needs c > 2)\n  attack (red):    breaks above "
            << format_fixed(bounds::pss_attack_nu_threshold(2.0), 4)
            << "\n  -> the paper's bound certifies 34% adversaries where "
               "the prior art certified none.\n\n";

  // --- The open gap ------------------------------------------------------
  std::cout << "OPEN QUESTION (paper Section I): the magenta-red gap.  At "
               "c = 2 it spans nu in ("
            << format_fixed(
                   bounds::nu_max(bounds::BoundKind::kZhaoNeat, 2.0, 1e5,
                                  1e13),
                   4)
            << ", "
            << format_fixed(bounds::pss_attack_nu_threshold(2.0), 4)
            << ") — neither certified consistent nor known attackable.\n";
  return 0;
}
