// Security-margin calculator: how large must the window T be before the
// "convergence opportunities exceed adversary blocks" event — the engine
// behind Definition 1 — holds except with probability ≤ target?
//
// Thin wrapper over bounds::required_confirmation_window, which assembles
// the paper's proof machinery (Eqs. 23, 26, 27, 47, 49); the ε-mixing
// time τ(1/8) is computed from the explicit suffix chain at these
// parameters.
//
//   ./security_margin --n=200 --delta=4 --nu=0.25 --c=4 --target=1e-9
#include <cmath>
#include <iostream>

#include "bounds/confirmation.hpp"
#include "bounds/zhao.hpp"
#include "chains/suffix_chain.hpp"
#include "markov/mixing.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const double n = args.get_double("n", 200);
  const double delta = args.get_double("delta", 4);
  const double nu = args.get_double("nu", 0.25);
  const double c = args.get_double("c", 4.0);
  const double target = args.get_double("target", 1e-9);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  const auto params = bounds::ProtocolParams::from_c(n, delta, nu, c);
  const double log_margin = bounds::theorem1_margin(params).log();
  std::cout << "Parameters: n=" << n << " delta=" << delta << " nu=" << nu
            << " c=" << c << "\nTheorem-1 ln-margin: "
            << format_fixed(log_margin, 4) << '\n';
  if (log_margin <= 0.0) {
    std::cout << "Theorem 1 does not apply here (margin <= 1); no window "
                 "length yields the guarantee. Raise c or lower nu.\n";
    return 1;
  }

  // Mixing time of the explicit suffix chain at these parameters.
  const chains::SuffixStateSpace space(static_cast<std::uint64_t>(delta));
  const auto matrix =
      chains::build_suffix_chain_matrix(space, params.alpha().linear());
  const auto pi =
      chains::stationary_closed_form_vector(space, params.alpha().linear());
  const auto mix = markov::mixing_time(matrix, pi, 1.0 / 8.0, 1 << 18);
  const double tau = std::max<double>(1.0, static_cast<double>(mix.time));
  std::cout << "eps-mixing time tau(1/8) of C_F: " << tau << " rounds\n\n";

  TablePrinter table({"window T (rounds)", "ln P[C-tail]", "ln P[A-tail]",
                      "failure bound"});
  for (double window = 1000; window <= 2e7; window *= 4.0) {
    const auto fb = bounds::confirmation_failure_bound(params, tau, window);
    table.add_row({format_general(window, 4), format_fixed(fb.log_c_tail, 1),
                   format_fixed(fb.log_a_tail, 1),
                   format_sci(std::exp(fb.log_failure), 2)});
  }
  table.print(std::cout);

  const auto window =
      bounds::required_confirmation_window(params, tau, target);
  if (window.has_value()) {
    std::cout << "\nSmallest window with failure bound <= "
              << format_sci(target, 1) << ": T ~= "
              << format_general(window->rounds, 5) << " rounds (~"
              << format_general(window->expected_blocks, 4)
              << " honest-block arrivals, ~"
              << format_general(window->delta_delays, 4)
              << " delta-delays)\n"
              << "Consistency guideline: treat blocks deeper than the "
                 "opportunities mined in that window as final.\n";
  } else {
    std::cout << "\nTarget not reached within the search limit — margin "
                 "too thin; raise c, lower nu, or relax the target.\n";
  }
  return 0;
}
