// neatbound_cli — the unified scenario driver.
//
//   neatbound_cli run <scenario.json> [--threads N] [--csv P] [--json P]
//                  [--miners N] [--nu X] [--delta N] [--rounds N]
//                  [--seeds N] [--base-seed N] [--violation-t N]
//                  [--checkpoint P] [--resume] [--stop-after-waves N]
//       loads a scenario file, builds the sweep grid and executes every
//       (cell × seed) engine run on one work pool, reporting through the
//       same stdout/CSV/JSON sink stack the benches use.  The override
//       flags replace the spec's engine defaults (axes still win per
//       point) — the CI smoke job uses them to downsize bundled specs.
//       Specs with an "adaptive" block (and any run given --checkpoint /
//       --resume) execute through the adaptive sequential-stopping
//       sweep: --checkpoint snapshots every cell's accumulators after
//       each scheduling wave, --resume picks a matching snapshot back up
//       without recomputation, and --stop-after-waves N interrupts
//       deterministically after N waves (exit status 3) — the hook CI's
//       kill-and-resume round trip uses.  A resumed run's summary is
//       bit-identical to an uninterrupted one.
//
//   neatbound_cli list [--scenarios DIR]
//       prints every registered network model and adversary strategy
//       (with accepted parameters), plus the *.json files in DIR when
//       given.
//
//   neatbound_cli describe <scenario.json>
//       parses and validates a scenario file and prints the resolved
//       configuration: engine defaults, axes and grid size, hardness
//       rule, components, report columns.
#include <algorithm>
#include <exception>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "exp/bench_io.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "support/cli.hpp"

namespace {

using namespace neatbound;

int usage(std::ostream& os, int code) {
  os << "usage: neatbound_cli <command> ...\n"
        "\n"
        "commands:\n"
        "  run <scenario.json> [flags]   execute a scenario (--help for "
        "flags)\n"
        "  list [--scenarios DIR]        registered network models and "
        "adversary strategies\n"
        "  describe <scenario.json>      parsed + validated scenario "
        "summary\n";
  return code;
}

void print_entries(
    const char* heading,
    const std::vector<scenario::ScenarioRegistry::EntryInfo>& entries) {
  std::cout << heading << "\n";
  for (const auto& entry : entries) {
    std::cout << "  " << entry.name << " — " << entry.summary << "\n";
    for (const auto& param : entry.params) {
      std::cout << "      param: " << param.key << " (" << param.describe
                << ")\n";
    }
  }
}

int run_command(int argc, char** argv) {
  // `run <path> [flags]`; `run --help` (no path) still prints the flags.
  const bool has_path =
      argc >= 3 && std::string(argv[2]).rfind("--", 0) != 0;
  const std::string path = has_path ? argv[2] : "";
  // The slot before the first flag acts as the "program name" CliArgs
  // skips: the path when present, the subcommand itself otherwise.
  CliArgs args(has_path ? argc - 2 : argc - 1,
               has_path ? argv + 2 : argv + 1);

  scenario::SpecOverrides overrides;
  if (const auto v = args.get_opt_uint(
          "miners", "override engine miner count (spec value otherwise)")) {
    overrides.miners = static_cast<std::uint32_t>(*v);
  }
  overrides.nu = args.get_opt_double(
      "nu", "override adversary fraction (spec value otherwise)");
  overrides.delta = args.get_opt_uint(
      "delta", "override max message delay (spec value otherwise)");
  overrides.rounds = args.get_opt_uint(
      "rounds", "override rounds per run (spec value otherwise)");
  if (const auto v = args.get_opt_uint(
          "seeds", "override seeds per cell (spec value otherwise)")) {
    overrides.seeds = static_cast<std::uint32_t>(*v);
  }
  overrides.base_seed = args.get_opt_uint(
      "base-seed", "override base seed (spec value otherwise)");
  overrides.violation_t = args.get_opt_uint(
      "violation-t", "override consistency depth T (spec value otherwise)");
  scenario::ScenarioRunOptions run_options;
  run_options.checkpoint_path = args.get_string(
      "checkpoint", "", "snapshot accumulators here after every wave");
  if (run_options.checkpoint_path == "true") {
    std::cerr << "neatbound_cli run: --checkpoint expects a path\n";
    return 2;
  }
  run_options.resume = args.get_bool(
      "resume", false, "resume the --checkpoint file if it exists");
  run_options.stop_after_waves = static_cast<std::uint32_t>(args.get_uint(
      "stop-after-waves", 0,
      "interrupt after N scheduling waves, exit 3 (0 = run to the end)"));
  const exp::BenchOptions io = exp::parse_bench_options(args);
  if (args.handle_help(std::cout)) return 0;
  if (!has_path) {
    std::cerr << "neatbound_cli run: expected a scenario file path\n";
    return usage(std::cerr, 2);
  }
  args.reject_unconsumed();
  run_options.threads = io.threads;
  if (run_options.resume && run_options.checkpoint_path.empty()) {
    std::cerr << "neatbound_cli run: --resume needs --checkpoint PATH\n";
    return 2;
  }
  if (run_options.stop_after_waves != 0 &&
      run_options.checkpoint_path.empty()) {
    // Interrupting without a snapshot would just discard the work.
    std::cerr
        << "neatbound_cli run: --stop-after-waves needs --checkpoint PATH\n";
    return 2;
  }

  scenario::ScenarioSpec spec = scenario::load_scenario_file(path);
  scenario::apply_overrides(spec, overrides);

  std::cout << "# scenario: " << spec.name;
  if (!spec.title.empty()) std::cout << " — " << spec.title;
  std::cout << "\n# adversary: " << spec.adversary.kind
            << ", network: " << spec.network.kind << ", grid "
            << spec.grid_size() << " cells x ";
  if (spec.adaptive) {
    std::cout << spec.adaptive->min_seeds << ".." << spec.adaptive->max_seeds
              << " seeds (adaptive, half-width "
              << spec.adaptive->half_width << ")\n";
  } else {
    std::cout << spec.seeds << " seeds\n";
  }

  // Any checkpoint/resume/interrupt request routes through the adaptive
  // sweep; a spec without an "adaptive" block runs its fixed budget
  // there (bit-identical summaries), so checkpointing is universal.
  const bool adaptive_path = spec.adaptive.has_value() ||
                             !run_options.checkpoint_path.empty() ||
                             run_options.stop_after_waves != 0;

  exp::BenchReporter report(spec.name, io);
  scenario::stamp_meta(spec, report);
  const auto& registry = scenario::ScenarioRegistry::builtin();
  if (!adaptive_path) {
    const std::vector<exp::SweepCell> cells =
        scenario::run_scenario(spec, registry, run_options);
    scenario::render_report(spec, cells, report);
    report.finish();
    return 0;
  }

  const exp::AdaptiveSweepResult result =
      scenario::run_scenario_adaptive(spec, registry, run_options);
  report.set_meta_number("engine_runs",
                         static_cast<double>(result.engine_runs));
  report.set_meta_number("waves", static_cast<double>(result.waves));
  if (!result.complete) {
    // Interrupted by --stop-after-waves: the checkpoint (if any) holds
    // the partial state; no report rows — the resumed run renders them.
    report.set_meta_number("interrupted", 1.0);
    report.finish();
    std::cout << "# interrupted after " << result.waves
              << " wave(s); resume with --checkpoint "
              << run_options.checkpoint_path << " --resume\n";
    return 3;
  }
  scenario::render_adaptive_report(spec, result.cells, report);
  report.finish();
  return 0;
}

int list_command(int argc, char** argv) {
  CliArgs args(argc - 1, argv + 1);
  const std::string dir = args.get_string(
      "scenarios", "", "directory whose *.json specs to list");
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  const auto& registry = scenario::ScenarioRegistry::builtin();
  print_entries("network models:", registry.network_models());
  std::cout << "\n";
  print_entries("adversary strategies:", registry.adversary_strategies());

  if (!dir.empty()) {
    std::cout << "\nscenarios in " << dir << ":\n";
    std::vector<std::string> paths;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".json") {
        paths.push_back(entry.path().string());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& spec_path : paths) {
      try {
        const scenario::ScenarioSpec spec =
            scenario::load_scenario_file(spec_path);
        std::cout << "  " << spec_path << " — " << spec.name << " ("
                  << spec.grid_size() << " cells, adversary "
                  << spec.adversary.kind << ", network " << spec.network.kind
                  << ")\n";
      } catch (const std::exception& e) {
        std::cout << "  " << spec_path << " — INVALID: " << e.what() << "\n";
      }
    }
  }
  return 0;
}

int describe_command(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[2]) == "--help") {
    std::cout << "usage: neatbound_cli describe <scenario.json>\n";
    return 0;
  }
  if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
    std::cerr << "neatbound_cli describe: expected a scenario file path\n";
    return usage(std::cerr, 2);
  }
  const std::string path = argv[2];
  CliArgs args(argc - 2, argv + 2);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  const scenario::ScenarioSpec spec = scenario::load_scenario_file(path);
  // Resolve the first grid point so component/param errors surface here.
  const exp::SweepGrid grid = scenario::build_grid(spec);
  const sim::ExperimentConfig first =
      scenario::build_config(spec, grid.point(0));
  scenario::validate_components(spec, scenario::ScenarioRegistry::builtin());

  std::cout << "scenario:    " << spec.name << "\n";
  if (!spec.title.empty()) std::cout << "title:       " << spec.title << "\n";
  if (!spec.description.empty()) {
    std::cout << "description: " << spec.description << "\n";
  }
  std::cout << "engine:      miners=" << spec.miners << " nu=" << spec.nu
            << " delta=" << spec.delta << " rounds=" << spec.rounds
            << " p=" << spec.p << "\n";
  std::cout << "hardness:    " << spec.hardness_mode << "\n";
  std::cout << "experiment:  seeds=" << spec.seeds
            << " base_seed=" << spec.base_seed
            << " violation_t=" << spec.violation_t << "\n";
  if (spec.adaptive) {
    std::cout << "adaptive:    min_seeds=" << spec.adaptive->min_seeds
              << " batch=" << spec.adaptive->batch
              << " max_seeds=" << spec.adaptive->max_seeds
              << " half_width=" << spec.adaptive->half_width
              << " confidence=" << spec.adaptive->confidence << "\n";
  }
  std::cout << "adversary:   " << spec.adversary.kind << "\n";
  std::cout << "network:     " << spec.network.kind << "\n";
  std::cout << "axes:        " << spec.axes.size() << " (grid "
            << spec.grid_size() << " cells, ";
  if (spec.adaptive) {
    std::cout << spec.grid_size() * spec.adaptive->min_seeds << ".."
              << spec.grid_size() * spec.adaptive->max_seeds
              << " engine runs, adaptive)\n";
  } else {
    std::cout << spec.grid_size() * spec.seeds << " engine runs)\n";
  }
  for (const scenario::AxisSpec& axis : spec.axes) {
    std::cout << "  " << axis.name << ": [";
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      std::cout << (i > 0 ? ", " : "") << axis.values[i];
    }
    std::cout << "]\n";
  }
  std::cout << "first point: p=" << first.engine.p << "\n";
  const std::vector<scenario::ColumnSpec> columns =
      spec.report.columns.empty() ? scenario::default_columns(spec)
                                  : spec.report.columns;
  std::cout << "report:      " << columns.size() << " columns";
  if (!spec.report.section_by.empty()) {
    std::cout << ", sectioned by " << spec.report.section_by;
  }
  std::cout << "\n";
  for (const scenario::ColumnSpec& column : columns) {
    std::cout << "  " << column.header << " <- " << column.value << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage(std::cerr, 2);
    const std::string command = argv[1];
    if (command == "run") return run_command(argc, argv);
    if (command == "list") return list_command(argc, argv);
    if (command == "describe") return describe_command(argc, argv);
    if (command == "--help" || command == "help") {
      return usage(std::cout, 0);
    }
    std::cerr << "neatbound_cli: unknown command '" << command << "'\n";
    return usage(std::cerr, 2);
  } catch (const std::exception& e) {
    std::cerr << "neatbound_cli: " << e.what() << "\n";
    return 1;
  }
}
