// neatbound_cli — the unified scenario driver.
//
//   neatbound_cli run <scenario.json> [--threads N] [--csv P] [--json P]
//                  [--miners N] [--nu X] [--delta N] [--rounds N]
//                  [--seeds N] [--base-seed N] [--violation-t N]
//                  [--checkpoint P] [--resume] [--stop-after-waves N]
//                  [--trace P] [--trace-rounds A:B] [--chrome-trace P]
//                  [--progress] [--telemetry-meta]
//                  [--oracle] [--oracle-dump P] [--oracle-max-runs N]
//       loads a scenario file, builds the sweep grid and executes every
//       (cell × seed) engine run on one work pool, reporting through the
//       same stdout/CSV/JSON sink stack the benches use.  The override
//       flags replace the spec's engine defaults (axes still win per
//       point) — the CI smoke job uses them to downsize bundled specs.
//       Specs with an "adaptive" block (and any run given --checkpoint /
//       --resume) execute through the adaptive sequential-stopping
//       sweep: --checkpoint snapshots every cell's accumulators after
//       each scheduling wave, --resume picks a matching snapshot back up
//       without recomputation, and --stop-after-waves N interrupts
//       deterministically after N waves (exit status 3) — the hook CI's
//       kill-and-resume round trip uses.  A resumed run's summary is
//       bit-identical to an uninterrupted one.
//
//       Observability (docs/observability.md): --trace P streams one
//       dedicated run (first grid point, base seed) as per-round JSONL;
//       --trace-rounds A:B restricts the window (inclusive, 1-based);
//       --chrome-trace P writes that run's phase timeline for
//       chrome://tracing / Perfetto (phase events need a build with
//       -DNEATBOUND_TELEMETRY=ON); --progress prints per-wave adaptive
//       progress to stderr; --telemetry-meta stamps the sweep's folded
//       telemetry counters into the report meta.  None of these change
//       summary values: the traced run is read-only and extra.
//
//       Falsification (docs/observability.md): --oracle re-runs the grid
//       serially after the report with the invariant oracle armed
//       (invariants from the spec's "oracle" block; common-prefix at
//       T = violation_t by default) and reports the first violation;
//       --oracle-dump P additionally writes it as a replayable artifact;
//       --oracle-max-runs N caps the scan.  Oracle runs are read-only
//       observers too — sweep summaries never change.
//
//   neatbound_cli replay <artifact.json>
//       re-executes a violation artifact deterministically to its
//       violating round and re-asserts the oracle verdict bit-for-bit:
//       exit 0 when the violation, every honest view and every trace
//       record reproduce exactly; exit 1 with the divergences otherwise;
//       exit 2 when the artifact itself is truncated or tampered (the
//       strict reader names the offence).
//
//   neatbound_cli list [--scenarios DIR]
//       prints every registered network model and adversary strategy
//       (with accepted parameters), plus the *.json files in DIR when
//       given.
//
//   neatbound_cli describe <scenario.json>
//       parses and validates a scenario file and prints the resolved
//       configuration: engine defaults, axes and grid size, hardness
//       rule, components, report columns.
#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "exp/bench_io.hpp"
#include "scenario/artifact.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "sim/trace.hpp"
#include "support/cli.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace neatbound;

int usage(std::ostream& os, int code) {
  os << "usage: neatbound_cli <command> ...\n"
        "\n"
        "commands:\n"
        "  run <scenario.json> [flags]   execute a scenario (--help for "
        "flags)\n"
        "  replay <artifact.json>        re-execute a violation artifact "
        "and re-assert the verdict\n"
        "  list [--scenarios DIR]        registered network models and "
        "adversary strategies\n"
        "  describe <scenario.json>      parsed + validated scenario "
        "summary\n";
  return code;
}

void print_entries(
    const char* heading,
    const std::vector<scenario::ScenarioRegistry::EntryInfo>& entries) {
  std::cout << heading << "\n";
  for (const auto& entry : entries) {
    std::cout << "  " << entry.name << " — " << entry.summary << "\n";
    for (const auto& param : entry.params) {
      std::cout << "      param: " << param.key << " (" << param.describe
                << ")\n";
    }
  }
}

/// Stamps a sweep's folded telemetry totals as report meta numbers.
/// Opt-in (--telemetry-meta): the keys are additive extras that perf
/// tooling must ignore when unknown (scripts/check_perf_regression.py
/// compares only its known metric keys).
void stamp_telemetry_meta(exp::BenchReporter& report,
                          const telemetry::TelemetryAccumulator& total) {
  report.set_meta_number("telemetry_enabled",
                         telemetry::enabled() ? 1.0 : 0.0);
  report.set_meta_number("telemetry_runs", static_cast<double>(total.runs));
  for (std::size_t c = 0; c < telemetry::kCounterCount; ++c) {
    report.set_meta_number(
        std::string("tel_") +
            telemetry::counter_name(static_cast<telemetry::Counter>(c)),
        static_cast<double>(total.counters[c]));
  }
  for (std::size_t ph = 0; ph < telemetry::kPhaseCount; ++ph) {
    report.set_meta_number(
        std::string("tel_phase_") +
            telemetry::phase_name(static_cast<telemetry::Phase>(ph)) +
            "_seconds",
        static_cast<double>(total.phase_nanos[ph]) * 1e-9);
  }
}

/// Swallows records: --chrome-trace without --trace still needs a traced
/// run, just not its JSONL.
class DiscardTraceSink final : public sim::RoundTraceSink {
 public:
  void on_round(const sim::RoundRecord&) override {}
};

int run_command(int argc, char** argv) {
  // `run <path> [flags]`; `run --help` (no path) still prints the flags.
  const bool has_path =
      argc >= 3 && std::string(argv[2]).rfind("--", 0) != 0;
  const std::string path = has_path ? argv[2] : "";
  // The slot before the first flag acts as the "program name" CliArgs
  // skips: the path when present, the subcommand itself otherwise.
  CliArgs args(has_path ? argc - 2 : argc - 1,
               has_path ? argv + 2 : argv + 1);

  scenario::SpecOverrides overrides;
  if (const auto v = args.get_opt_uint(
          "miners", "override engine miner count (spec value otherwise)")) {
    overrides.miners = static_cast<std::uint32_t>(*v);
  }
  overrides.nu = args.get_opt_double(
      "nu", "override adversary fraction (spec value otherwise)");
  overrides.delta = args.get_opt_uint(
      "delta", "override max message delay (spec value otherwise)");
  overrides.rounds = args.get_opt_uint(
      "rounds", "override rounds per run (spec value otherwise)");
  if (const auto v = args.get_opt_uint(
          "seeds", "override seeds per cell (spec value otherwise)")) {
    overrides.seeds = static_cast<std::uint32_t>(*v);
  }
  overrides.base_seed = args.get_opt_uint(
      "base-seed", "override base seed (spec value otherwise)");
  overrides.violation_t = args.get_opt_uint(
      "violation-t", "override consistency depth T (spec value otherwise)");
  const std::string rng_override = args.get_string(
      "rng", "", "override the RNG discipline: counter | legacy");
  if (!rng_override.empty()) {
    if (rng_override != "counter" && rng_override != "legacy") {
      std::cerr << "neatbound_cli run: --rng expects counter or legacy\n";
      return 2;
    }
    overrides.rng = rng_override;
  }
  scenario::ScenarioRunOptions run_options;
  run_options.batch_seeds = static_cast<std::uint32_t>(args.get_uint(
      "batch-seeds", 1,
      "run W seeds of a cell as one lockstep batched pass (counter RNG "
      "only; results are bit-identical for every W)"));
  run_options.checkpoint_path = args.get_string(
      "checkpoint", "", "snapshot accumulators here after every wave");
  if (run_options.checkpoint_path == "true") {
    std::cerr << "neatbound_cli run: --checkpoint expects a path\n";
    return 2;
  }
  run_options.resume = args.get_bool(
      "resume", false, "resume the --checkpoint file if it exists");
  run_options.stop_after_waves = static_cast<std::uint32_t>(args.get_uint(
      "stop-after-waves", 0,
      "interrupt after N scheduling waves, exit 3 (0 = run to the end)"));
  const std::string trace_path = args.get_string(
      "trace", "", "write a per-round JSONL trace of one dedicated run");
  const std::string trace_rounds_text = args.get_string(
      "trace-rounds", "",
      "restrict --trace to rounds A:B (inclusive, 1-based)");
  const std::string chrome_path = args.get_string(
      "chrome-trace", "",
      "write the traced run's phase timeline for chrome://tracing");
  const bool progress = args.get_bool(
      "progress", false, "print per-wave scheduling progress to stderr");
  const bool telemetry_meta = args.get_bool(
      "telemetry-meta", false,
      "stamp folded telemetry counters into the report meta");
  bool oracle_armed = args.get_bool(
      "oracle", false,
      "scan the grid serially with the invariant oracle armed, report the "
      "first violation");
  const std::string oracle_dump = args.get_string(
      "oracle-dump", "",
      "write the first violation as a replayable artifact (implies "
      "--oracle)");
  const std::uint64_t oracle_max_runs_flag = args.get_uint(
      "oracle-max-runs", 0,
      "cap the oracle scan at N engine runs (0 = spec value / unlimited)");
  const exp::BenchOptions io = exp::parse_bench_options(args);
  if (args.handle_help(std::cout)) return 0;
  if (!has_path) {
    std::cerr << "neatbound_cli run: expected a scenario file path\n";
    return usage(std::cerr, 2);
  }
  args.reject_unconsumed();
  run_options.threads = io.threads;
  if (run_options.resume && run_options.checkpoint_path.empty()) {
    std::cerr << "neatbound_cli run: --resume needs --checkpoint PATH\n";
    return 2;
  }
  if (run_options.stop_after_waves != 0 &&
      run_options.checkpoint_path.empty()) {
    // Interrupting without a snapshot would just discard the work.
    std::cerr
        << "neatbound_cli run: --stop-after-waves needs --checkpoint PATH\n";
    return 2;
  }
  if (trace_path == "true") {
    std::cerr << "neatbound_cli run: --trace expects a path\n";
    return 2;
  }
  if (chrome_path == "true") {
    std::cerr << "neatbound_cli run: --chrome-trace expects a path\n";
    return 2;
  }
  if (oracle_dump == "true") {
    std::cerr << "neatbound_cli run: --oracle-dump expects a path\n";
    return 2;
  }
  if (!oracle_dump.empty() || oracle_max_runs_flag != 0) {
    oracle_armed = true;
  }
  sim::TraceBounds trace_bounds;
  if (!trace_rounds_text.empty()) {
    if (trace_path.empty()) {
      std::cerr << "neatbound_cli run: --trace-rounds needs --trace PATH\n";
      return 2;
    }
    try {
      trace_bounds = sim::parse_trace_rounds(trace_rounds_text);
    } catch (const std::invalid_argument& e) {
      std::cerr << "neatbound_cli run: --trace-rounds: " << e.what() << "\n";
      return 2;
    }
  }
  if (progress) {
    // Wave boundaries only exist on the adaptive path; the printer below
    // is why plain specs with --progress run their fixed budget there
    // (bit-identical summaries, see resolve_adaptive_options).
    run_options.progress = [](const exp::WaveProgress& p) {
      std::cerr << "# wave " << p.wave << ": " << p.cells_stopped << "/"
                << p.cells_total << " cells stopped, " << p.seeds_spent
                << " seeds spent";
      if (p.cells_stopped < p.cells_total) {
        std::cerr << ", widest half-width " << p.widest_half_width;
      }
      std::cerr << "\n";
    };
  }

  scenario::ScenarioSpec spec = scenario::load_scenario_file(path);
  scenario::apply_overrides(spec, overrides);

  std::cout << "# scenario: " << spec.name;
  if (!spec.title.empty()) std::cout << " — " << spec.title;
  std::cout << "\n# adversary: " << spec.adversary.kind
            << ", network: " << spec.network.kind << ", grid "
            << spec.grid_size() << " cells x ";
  if (spec.adaptive) {
    std::cout << spec.adaptive->min_seeds << ".." << spec.adaptive->max_seeds
              << " seeds (adaptive, half-width "
              << spec.adaptive->half_width << ")\n";
  } else {
    std::cout << spec.seeds << " seeds\n";
  }

  // Any checkpoint/resume/interrupt request routes through the adaptive
  // sweep; a spec without an "adaptive" block runs its fixed budget
  // there (bit-identical summaries), so checkpointing is universal.
  const bool adaptive_path = spec.adaptive.has_value() ||
                             !run_options.checkpoint_path.empty() ||
                             run_options.stop_after_waves != 0 || progress;

  exp::BenchReporter report(spec.name, io);
  scenario::stamp_meta(spec, report);
  const auto& registry = scenario::ScenarioRegistry::builtin();

  // One dedicated traced run (first grid point, base seed) after the
  // sweep: the sweep itself stays untraced and full-speed, and the
  // traced run's summary is bit-identical anyway (read-only observer).
  const auto write_traces = [&]() {
    if (trace_path.empty() && chrome_path.empty()) return;
    std::optional<std::ofstream> trace_os;
    std::optional<sim::BoundedTraceWriter> writer;
    DiscardTraceSink discard;
    sim::RoundTraceSink* sink = &discard;
    if (!trace_path.empty()) {
      trace_os.emplace(trace_path, std::ios::trunc);
      if (!*trace_os) {
        throw std::runtime_error("cannot open " + trace_path +
                                 " for writing");
      }
      writer.emplace(*trace_os, trace_bounds);
      sink = &*writer;
    }
    (void)scenario::run_scenario_trace(spec, registry, *sink);
    if (writer) {
      std::cout << "# trace: " << writer->records_written()
                << " round(s) -> " << trace_path
                << (writer->truncated() ? " (truncated at record cap)" : "")
                << "\n";
    }
    if (!chrome_path.empty()) {
      std::ofstream os(chrome_path, std::ios::trunc);
      if (!os) {
        throw std::runtime_error("cannot open " + chrome_path +
                                 " for writing");
      }
      // The traced run executed on this thread, so the thread-local
      // phase registry holds exactly its timeline.
      telemetry::write_chrome_trace(os, telemetry::phase_events(),
                                    telemetry::snapshot());
      std::cout << "# chrome-trace: -> " << chrome_path;
      if (!telemetry::enabled()) {
        std::cout << " (telemetry compiled out — no phase events; rebuild "
                     "with -DNEATBOUND_TELEMETRY=ON)";
      }
      std::cout << "\n";
    }
  };

  // The falsification scan (--oracle) also runs after the sweep, one
  // serial armed run per (cell × seed) in grid order, stopping at the
  // first violation — like the traced run, pure observation on top of an
  // unchanged report.
  const auto run_oracle_scan = [&]() {
    if (!oracle_armed) return;
    const std::uint64_t max_runs =
        oracle_max_runs_flag != 0
            ? oracle_max_runs_flag
            : (spec.oracle ? spec.oracle->max_runs : 0);
    const scenario::OracleScanResult scan =
        scenario::run_scenario_oracle(spec, registry, max_runs);
    if (!scan.artifact) {
      std::cout << "# oracle: no violation in " << scan.runs_scanned
                << " run(s) scanned\n";
      if (!oracle_dump.empty()) {
        std::cout << "# oracle-artifact: nothing to write (no violation)\n";
      }
      return;
    }
    const sim::OracleViolation& violation = scan.artifact->violation;
    std::cout << "# oracle: " << sim::invariant_name(violation.kind)
              << " violation at round " << violation.round << " (measured "
              << violation.measured << ", bound " << violation.bound
              << ", seed " << scan.artifact->engine.seed << ", cell "
              << scan.cell_index << ", run " << scan.runs_scanned << " of the "
              << "scan)\n";
    if (!oracle_dump.empty()) {
      scenario::write_artifact_file(oracle_dump, *scan.artifact);
      std::cout << "# oracle-artifact: -> " << oracle_dump
                << " (replay with: neatbound_cli replay " << oracle_dump
                << ")\n";
    }
  };

  if (!adaptive_path) {
    const std::vector<exp::SweepCell> cells =
        scenario::run_scenario(spec, registry, run_options);
    if (telemetry_meta) {
      telemetry::TelemetryAccumulator total;
      for (const exp::SweepCell& cell : cells) {
        total.merge(cell.summary.telemetry);
      }
      stamp_telemetry_meta(report, total);
    }
    scenario::render_report(spec, cells, report);
    report.finish();
    write_traces();
    run_oracle_scan();
    return 0;
  }

  const exp::AdaptiveSweepResult result =
      scenario::run_scenario_adaptive(spec, registry, run_options);
  report.set_meta_number("engine_runs",
                         static_cast<double>(result.engine_runs));
  report.set_meta_number("waves", static_cast<double>(result.waves));
  if (telemetry_meta) {
    telemetry::TelemetryAccumulator total;
    for (const exp::AdaptiveCell& cell : result.cells) {
      total.merge(cell.cell.summary.telemetry);
    }
    stamp_telemetry_meta(report, total);
  }
  if (!result.complete) {
    // Interrupted by --stop-after-waves: the checkpoint (if any) holds
    // the partial state; no report rows — the resumed run renders them.
    report.set_meta_number("interrupted", 1.0);
    report.finish();
    std::cout << "# interrupted after " << result.waves
              << " wave(s); resume with --checkpoint "
              << run_options.checkpoint_path << " --resume\n";
    if (!trace_path.empty() || !chrome_path.empty()) {
      // The dedicated traced run only executes after a completed sweep;
      // say so rather than leaving the flags silently ignored (and any
      // pre-existing file at those paths stale).
      std::cout << "# trace output skipped: run interrupted by "
                   "--stop-after-waves, no trace files written\n";
    }
    if (oracle_armed) {
      std::cout << "# oracle scan skipped: run interrupted by "
                   "--stop-after-waves\n";
    }
    return 3;
  }
  scenario::render_adaptive_report(spec, result.cells, report);
  report.finish();
  write_traces();
  run_oracle_scan();
  return 0;
}

int replay_command(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[2]) == "--help") {
    std::cout << "usage: neatbound_cli replay <artifact.json>\n"
                 "  re-executes the artifact's run to its violating round "
                 "and re-asserts the oracle verdict.\n"
                 "  exit 0: reproduced bit-for-bit; exit 1: replay "
                 "diverged; exit 2: unreadable/tampered artifact.\n";
    return 0;
  }
  if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
    std::cerr << "neatbound_cli replay: expected an artifact file path\n";
    return usage(std::cerr, 2);
  }
  const std::string path = argv[2];
  CliArgs args(argc - 2, argv + 2);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  scenario::ViolationArtifact artifact;
  try {
    artifact = scenario::load_artifact_file(path);
  } catch (const std::exception& e) {
    std::cerr << "neatbound_cli replay: " << e.what() << "\n";
    return 2;
  }
  std::cout << "# artifact: " << sim::invariant_name(artifact.violation.kind)
            << " violation at round " << artifact.violation.round
            << " (measured " << artifact.violation.measured << ", bound "
            << artifact.violation.bound << ")\n";
  std::cout << "# engine: miners=" << artifact.engine.miner_count
            << " nu=" << artifact.engine.adversary_fraction
            << " delta=" << artifact.engine.delta
            << " p=" << artifact.engine.p
            << " seed=" << artifact.engine.seed << ", adversary "
            << artifact.adversary.kind << ", network " << artifact.network.kind
            << "\n";
  const scenario::ReplayResult result = scenario::replay_artifact(
      artifact, scenario::ScenarioRegistry::builtin());
  if (result.reproduced) {
    std::cout << "# replay: reproduced — same violation, "
              << artifact.views.size() << " view(s) and "
              << artifact.slice.size()
              << " trace record(s) all bit-identical\n";
    return 0;
  }
  std::cerr << "# replay: FAILED to reproduce (" << result.mismatches.size()
            << " divergence(s)):\n";
  for (const std::string& mismatch : result.mismatches) {
    std::cerr << "#   " << mismatch << "\n";
  }
  return 1;
}

int list_command(int argc, char** argv) {
  CliArgs args(argc - 1, argv + 1);
  const std::string dir = args.get_string(
      "scenarios", "", "directory whose *.json specs to list");
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  const auto& registry = scenario::ScenarioRegistry::builtin();
  print_entries("network models:", registry.network_models());
  std::cout << "\n";
  print_entries("adversary strategies:", registry.adversary_strategies());

  if (!dir.empty()) {
    std::cout << "\nscenarios in " << dir << ":\n";
    std::vector<std::string> paths;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".json") {
        paths.push_back(entry.path().string());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& spec_path : paths) {
      try {
        const scenario::ScenarioSpec spec =
            scenario::load_scenario_file(spec_path);
        std::cout << "  " << spec_path << " — " << spec.name << " ("
                  << spec.grid_size() << " cells, adversary "
                  << spec.adversary.kind << ", network " << spec.network.kind
                  << ")\n";
      } catch (const std::exception& e) {
        std::cout << "  " << spec_path << " — INVALID: " << e.what() << "\n";
      }
    }
  }
  return 0;
}

int describe_command(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[2]) == "--help") {
    std::cout << "usage: neatbound_cli describe <scenario.json>\n";
    return 0;
  }
  if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
    std::cerr << "neatbound_cli describe: expected a scenario file path\n";
    return usage(std::cerr, 2);
  }
  const std::string path = argv[2];
  CliArgs args(argc - 2, argv + 2);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  const scenario::ScenarioSpec spec = scenario::load_scenario_file(path);
  // Resolve the first grid point so component/param errors surface here.
  const exp::SweepGrid grid = scenario::build_grid(spec);
  const sim::ExperimentConfig first =
      scenario::build_config(spec, grid.point(0));
  scenario::validate_components(spec, scenario::ScenarioRegistry::builtin());

  std::cout << "scenario:    " << spec.name << "\n";
  if (!spec.title.empty()) std::cout << "title:       " << spec.title << "\n";
  if (!spec.description.empty()) {
    std::cout << "description: " << spec.description << "\n";
  }
  std::cout << "engine:      miners=" << spec.miners << " nu=" << spec.nu
            << " delta=" << spec.delta << " rounds=" << spec.rounds
            << " p=" << spec.p << "\n";
  std::cout << "hardness:    " << spec.hardness_mode << "\n";
  std::cout << "experiment:  seeds=" << spec.seeds
            << " base_seed=" << spec.base_seed
            << " violation_t=" << spec.violation_t << "\n";
  if (spec.adaptive) {
    std::cout << "adaptive:    min_seeds=" << spec.adaptive->min_seeds
              << " batch=" << spec.adaptive->batch
              << " max_seeds=" << spec.adaptive->max_seeds
              << " half_width=" << spec.adaptive->half_width
              << " confidence=" << spec.adaptive->confidence << "\n";
  }
  std::cout << "adversary:   " << spec.adversary.kind << "\n";
  std::cout << "network:     " << spec.network.kind << "\n";
  std::cout << "axes:        " << spec.axes.size() << " (grid "
            << spec.grid_size() << " cells, ";
  if (spec.adaptive) {
    std::cout << spec.grid_size() * spec.adaptive->min_seeds << ".."
              << spec.grid_size() * spec.adaptive->max_seeds
              << " engine runs, adaptive)\n";
  } else {
    std::cout << spec.grid_size() * spec.seeds << " engine runs)\n";
  }
  for (const scenario::AxisSpec& axis : spec.axes) {
    std::cout << "  " << axis.name << ": [";
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      std::cout << (i > 0 ? ", " : "") << axis.values[i];
    }
    std::cout << "]\n";
  }
  std::cout << "first point: p=" << first.engine.p << "\n";
  const std::vector<scenario::ColumnSpec> columns =
      spec.report.columns.empty() ? scenario::default_columns(spec)
                                  : spec.report.columns;
  std::cout << "report:      " << columns.size() << " columns";
  if (!spec.report.section_by.empty()) {
    std::cout << ", sectioned by " << spec.report.section_by;
  }
  std::cout << "\n";
  for (const scenario::ColumnSpec& column : columns) {
    std::cout << "  " << column.header << " <- " << column.value << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage(std::cerr, 2);
    const std::string command = argv[1];
    if (command == "run") return run_command(argc, argv);
    if (command == "replay") return replay_command(argc, argv);
    if (command == "list") return list_command(argc, argv);
    if (command == "describe") return describe_command(argc, argv);
    if (command == "--help" || command == "help") {
      return usage(std::cout, 0);
    }
    std::cerr << "neatbound_cli: unknown command '" << command << "'\n";
    return usage(std::cerr, 2);
  } catch (const std::exception& e) {
    std::cerr << "neatbound_cli: " << e.what() << "\n";
    return 1;
  }
}
