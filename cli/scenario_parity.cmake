# CTest script: `neatbound_cli run` on the bundled consistency-sweep
# scenario must produce a JSON summary bit-identical to the hand-written
# bench_consistency_sweep — same sections, rows, and meta.  Both sides run
# downsized (the full spec is a multi-minute sweep) with --threads 1; the
# only tolerated difference is the elapsed_seconds meta value, which is
# wall-clock by nature and normalized away before comparison.
#
# Inputs: -DBENCH_EXE, -DCLI_EXE, -DSPEC, -DWORK_DIR.
foreach(var BENCH_EXE CLI_EXE SPEC WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "scenario_parity.cmake: ${var} not set")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})
set(DOWNSIZE --miners 16 --delta 2 --rounds 600 --seeds 2 --threads 1)

execute_process(
  COMMAND ${BENCH_EXE} ${DOWNSIZE} --json ${WORK_DIR}/bench.json
  RESULT_VARIABLE bench_status
  OUTPUT_VARIABLE bench_stdout
  ERROR_VARIABLE bench_stderr)
if(NOT bench_status EQUAL 0)
  message(FATAL_ERROR "bench_consistency_sweep failed (${bench_status}):\n"
    "${bench_stdout}\n${bench_stderr}")
endif()

execute_process(
  COMMAND ${CLI_EXE} run ${SPEC} ${DOWNSIZE} --json ${WORK_DIR}/cli.json
  RESULT_VARIABLE cli_status
  OUTPUT_VARIABLE cli_stdout
  ERROR_VARIABLE cli_stderr)
if(NOT cli_status EQUAL 0)
  message(FATAL_ERROR "neatbound_cli run failed (${cli_status}):\n"
    "${cli_stdout}\n${cli_stderr}")
endif()

file(READ ${WORK_DIR}/bench.json bench_doc)
file(READ ${WORK_DIR}/cli.json cli_doc)
foreach(doc bench_doc cli_doc)
  string(REGEX REPLACE "\"elapsed_seconds\": [0-9.eE+-]+"
    "\"elapsed_seconds\": <normalized>" ${doc} "${${doc}}")
endforeach()

if(NOT bench_doc STREQUAL cli_doc)
  message(FATAL_ERROR "scenario/CLI JSON summaries differ.\n"
    "bench: ${WORK_DIR}/bench.json\ncli:   ${WORK_DIR}/cli.json")
endif()
message(STATUS "scenario parity OK: summaries bit-identical "
  "(elapsed_seconds normalized)")
