#!/usr/bin/env python3
"""Unit tests for the analyzer's pure-Python core: the include-graph
builder / cycle detector and the shared lexer + allowlist parser.  No
libclang, no compile database — these must pass on a bare Python 3.

Run directly (CTest entry `lint/analyze_units`):
    python3 tests/lint/test_analyze_units.py
"""
import pathlib
import sys
import unittest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO / "scripts"))

import neatbound_analyze as analyze  # noqa: E402
import neatbound_srcmodel as srcmodel  # noqa: E402


class IncludeGraphTests(unittest.TestCase):
    def test_resolves_src_relative_targets(self):
        graph = analyze.build_include_graph({
            "src/sim/a.hpp": ["sim/b.hpp", "support/rng.hpp"],
            "src/sim/b.hpp": [],
        })
        self.assertEqual(graph["src/sim/a.hpp"], ["src/sim/b.hpp"])
        self.assertEqual(graph["src/sim/b.hpp"], [])

    def test_unresolvable_targets_are_dropped(self):
        graph = analyze.build_include_graph(
            {"src/net/x.hpp": ["nonexistent/y.hpp"]})
        self.assertEqual(graph["src/net/x.hpp"], [])

    def test_cli_files_resolve_by_full_path(self):
        graph = analyze.build_include_graph({
            "cli/main.cpp": ["cli/args.hpp"],
            "cli/args.hpp": [],
        })
        self.assertEqual(graph["cli/main.cpp"], ["cli/args.hpp"])

    def test_acyclic_chain_has_no_cycles(self):
        self.assertEqual(analyze.find_cycles(
            {"a": ["b"], "b": ["c"], "c": []}), [])

    def test_diamond_is_not_a_cycle(self):
        graph = {"top": ["left", "right"], "left": ["bottom"],
                 "right": ["bottom"], "bottom": []}
        self.assertEqual(analyze.find_cycles(graph), [])

    def test_simple_cycle_starts_at_smallest_node(self):
        cycles = analyze.find_cycles({"b": ["c"], "c": ["a"], "a": ["b"]})
        self.assertEqual(cycles, [["a", "b", "c"]])

    def test_self_include_is_a_cycle(self):
        self.assertEqual(analyze.find_cycles({"a": ["a"], "b": []}),
                         [["a"]])

    def test_two_disjoint_cycles_both_reported(self):
        graph = {"a": ["b"], "b": ["a"], "x": ["y"], "y": ["x"], "z": []}
        self.assertEqual(analyze.find_cycles(graph),
                         [["a", "b"], ["x", "y"]])

    def test_cycle_with_acyclic_tail(self):
        graph = {"entry": ["a"], "a": ["b"], "b": ["a"]}
        self.assertEqual(analyze.find_cycles(graph), [["a", "b"]])

    def test_edges_to_unknown_nodes_are_ignored(self):
        # find_cycles only follows edges whose target is a graph node.
        self.assertEqual(analyze.find_cycles({"a": ["ghost"]}), [])


class AllowlistParsingTests(unittest.TestCase):
    TAG = "neatbound-analyze"

    def parse(self, lines):
        return srcmodel.parse_allow_comments(lines, self.TAG)

    def test_same_line_and_next_line_covered(self):
        covered = self.parse([
            "int x;  // neatbound-analyze: allow(hot-alloc) — why",
            "int y;",
            "int z;",
        ])
        self.assertEqual(covered.get(1), {"hot-alloc"})
        self.assertEqual(covered.get(2), {"hot-alloc"})
        self.assertNotIn(3, covered)

    def test_multiple_rules_with_spaces(self):
        covered = self.parse(
            ["// neatbound-analyze: allow(layering,  include-cycle) — x"])
        self.assertEqual(covered.get(1), {"layering", "include-cycle"})

    def test_multiline_comment_block_extends_coverage(self):
        covered = self.parse([
            "// neatbound-analyze: allow(contract-coverage) — a rationale",
            "// that keeps going for another line",
            "void frob() {",
        ])
        self.assertEqual(covered.get(3), {"contract-coverage"})

    def test_wrong_tag_is_ignored(self):
        covered = self.parse(
            ["// determinism-lint: allow(unordered-iteration)"])
        self.assertEqual(covered, {})

    def test_empty_rule_list_covers_nothing(self):
        covered = self.parse(["// neatbound-analyze: allow() — nothing"])
        self.assertEqual(covered, {})

    def test_coverage_does_not_leak_past_first_code_line(self):
        covered = self.parse([
            "// neatbound-analyze: allow(rng-stream) — one draw",
            "first_code_line();",
            "second_code_line();",
        ])
        self.assertIn(2, covered)
        self.assertNotIn(3, covered)


class LexerTests(unittest.TestCase):
    def test_raw_string_is_blanked(self):
        lexed = srcmodel.lex('auto s = R"(std::random_device)";\nint x;\n')
        self.assertNotIn("random_device", lexed.code)
        self.assertIn("int x;", lexed.code)

    def test_raw_string_with_delimiter(self):
        lexed = srcmodel.lex('auto s = R"doc(payload )" still)doc"; f();\n')
        self.assertNotIn("payload", lexed.code)
        self.assertIn("f();", lexed.code)

    def test_multiline_block_comment_blanked_but_layout_kept(self):
        text = "a();\n/* rand()\n   srand() */\nb();\n"
        lexed = srcmodel.lex(text)
        self.assertNotIn("rand", lexed.code)
        self.assertEqual(lexed.code.count("\n"), text.count("\n"))

    def test_string_with_comment_marker_does_not_hide_code(self):
        lexed = srcmodel.lex('auto u = "http://x"; hidden();\n')
        self.assertIn("hidden();", lexed.code)
        self.assertNotIn("http", lexed.code)

    def test_digit_separators_are_not_char_literals(self):
        lexed = srcmodel.lex("int n = 1'000'000; trailing();\n")
        self.assertIn("trailing();", lexed.code)

    def test_includes_survive_in_code_with_strings(self):
        text = '#include "sim/engine.hpp"\n'
        self.assertEqual(srcmodel.extract_includes(text),
                         [(1, "sim/engine.hpp")])


class TelemetryMacroTests(unittest.TestCase):
    """The telemetry macros are observation, not calls: they must stay
    invisible to the call graph (ALL-UPPERCASE filter) while still being
    recorded on the containing function via contains_telemetry."""

    SOURCE = (
        "namespace neatbound::sim {\n"
        "void counted() {\n"
        "  NEATBOUND_COUNT(kDeliveries);\n"
        "  helper();\n"
        "}\n"
        "void plain() { helper(); }\n"
        "}\n"
    )

    def _functions(self):
        functions, _declarations = srcmodel.extract_functions(self.SOURCE)
        return {f.name: f for f in functions}

    def test_macro_is_not_a_call(self):
        functions = self._functions()
        self.assertIn("helper", functions["counted"].calls)
        for macro in srcmodel.TELEMETRY_MACROS:
            self.assertNotIn(macro, functions["counted"].calls)

    def test_contains_telemetry_flag(self):
        functions = self._functions()
        self.assertTrue(functions["counted"].contains_telemetry)
        self.assertFalse(functions["plain"].contains_telemetry)


if __name__ == "__main__":
    unittest.main(verbosity=2)
