// Known-bad fixture for scripts/check_determinism.py: hash-order
// iteration feeding a sink.  Membership operations are fine; the
// range-for is what leaks libstdc++'s bucket order into output.
// lint-expect: unordered-iteration
#include <iostream>
#include <unordered_map>

void dump_counts(std::ostream& sink) {
  std::unordered_map<int, int> counts{{1, 2}, {3, 4}};
  counts.emplace(5, 6);
  for (const auto& [key, value] : counts) {
    sink << key << ' ' << value << '\n';
  }
}
