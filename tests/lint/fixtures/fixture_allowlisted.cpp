// Every banned construction below carries a justification allowlist
// comment, so this fixture must scan *clean* — the self-test's proof
// that the escape hatch works and that prose in comments (rand(),
// unordered_map iteration, system_clock) never trips a rule by itself.
#include <chrono>
#include <random>
#include <unordered_map>

unsigned long long justified_exceptions() {
  // determinism-lint: allow(nondeterministic-source) — fixture demo only
  std::random_device device;
  // determinism-lint: allow(wall-clock) — fixture demo only
  const auto wall = std::chrono::system_clock::now();
  std::unordered_map<int, int> cache{{1, 2}};
  unsigned long long sum =
      device() + static_cast<unsigned long long>(
                     wall.time_since_epoch().count());
  // determinism-lint: allow(unordered-iteration) — fixture demo only
  for (const auto& [key, value] : cache) {
    sum += static_cast<unsigned long long>(key + value);
  }
  return sum;
}
