// Known-bad fixture for scripts/check_determinism.py: wall-clock reads.
// (steady_clock has its own rule, raw-steady-clock — see
// fixture_steady_clock.cpp.)
// lint-expect: wall-clock
#include <chrono>

long long stamp_output_row() {
  const auto wall = std::chrono::system_clock::now();
  const auto precise = std::chrono::high_resolution_clock::now();
  return (wall.time_since_epoch() - precise.time_since_epoch()).count();
}
