// Known-bad fixture for scripts/check_determinism.py: wall-clock reads.
// steady_clock is the allowed exception (elapsed-time metadata only).
// lint-expect: wall-clock
#include <chrono>

long long stamp_output_row() {
  const auto wall = std::chrono::system_clock::now();
  const auto precise = std::chrono::high_resolution_clock::now();
  return (wall.time_since_epoch() - precise.time_since_epoch()).count();
}
