// Known-bad fixture for scripts/check_determinism.py: a clock feeding a
// seed.  steady_clock on its own is allowed, which is exactly why the
// seeding pattern needs its own rule.
// lint-expect: time-seeded-rng
#include <chrono>

#include "support/rng.hpp"

neatbound::Rng jittery_stream() {
  const auto seed = std::chrono::steady_clock::now().time_since_epoch().count();
  return neatbound::Rng(static_cast<unsigned long long>(seed));
}
