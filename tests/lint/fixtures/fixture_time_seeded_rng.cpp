// Known-bad fixture for scripts/check_determinism.py: a clock feeding a
// seed.  The raw steady_clock read is a finding of its own
// (raw-steady-clock); the seeding pattern stays a separate rule because
// an *allowed* clock read feeding a seed must still fire.
// lint-expect: time-seeded-rng
// lint-expect: raw-steady-clock
#include <chrono>

#include "support/rng.hpp"

neatbound::Rng jittery_stream() {
  const auto seed = std::chrono::steady_clock::now().time_since_epoch().count();
  return neatbound::Rng(static_cast<unsigned long long>(seed));
}
