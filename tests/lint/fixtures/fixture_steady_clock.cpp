// Known-bad fixture for scripts/check_determinism.py: raw steady_clock
// use.  Only src/support/telemetry.{hpp,cpp} may read steady_clock;
// fixtures are scanned without an exempt path, so the bare read below
// must fire while the allowlisted one stays silent.
// lint-expect: raw-steady-clock
#include <chrono>

long long raw_elapsed() {
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

long long allowed_elapsed() {
  // determinism-lint: allow(raw-steady-clock) — fixture: proves the
  // allow-comment path of the rule.
  const auto t1 = std::chrono::steady_clock::now();
  return t1.time_since_epoch().count();
}
