// Known-bad fixture for scripts/check_determinism.py: unseeded entropy
// sources.  Never compiled — scanned by the lint self-test only.
// lint-expect: nondeterministic-source
#include <cstdlib>
#include <random>

int entropy_soup() {
  std::random_device device;  // hardware entropy: different bytes every run
  std::srand(42);             // C RNG: process-global hidden state
  return static_cast<int>(device()) + std::rand();
}
