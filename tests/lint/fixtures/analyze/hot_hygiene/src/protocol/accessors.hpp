// Fixture: hot-hygiene violations — an accessor-named hot member that
// is not const, and a hot leaf (no project calls, contracts, throws or
// allocation) that is not noexcept.  The const-and-noexcept sibling
// proves the rule stays silent on hygienic code.
// analyze-expect: hot-hygiene
#pragma once

#include <cstdint>
#include <vector>

#include "support/hot.hpp"

namespace neatbound::protocol {

class HeightTable {
 public:
  NEATBOUND_HOT std::uint64_t height_of(std::size_t i) { return h_[i]; }

  NEATBOUND_HOT std::uint64_t tip() const { return t_; }

  NEATBOUND_HOT std::uint64_t tip_round() const noexcept { return t_; }

 private:
  std::vector<std::uint64_t> h_;
  std::uint64_t t_ = 0;
};

}  // namespace neatbound::protocol
