// Fixture: every banned randomness construction — the <random> include,
// a std engine, and a std distribution.  Draws must go through
// support/rng.hpp so streams stay addressable for the Philox migration.
// analyze-expect: rng-stream
#include <random>

namespace neatbound::sim {

int draw_badly(unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_int_distribution<int> dist(0, 5);
  return dist(gen);
}

}  // namespace neatbound::sim
