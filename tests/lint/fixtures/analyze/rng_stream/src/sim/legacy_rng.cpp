// Fixture: the sequential legacy generator by name, outside support/.
// Since the counter-based RNG landed, unqualified support::Rng use in
// any other module must carry an allow (RngMode::kLegacy sites) or be
// migrated to support/crng.hpp keyed streams.
// analyze-expect: rng-stream
#include "support/rng.hpp"

namespace neatbound::sim {

unsigned long long draw_sequentially(unsigned long long seed) {
  Rng rng(seed);
  return rng.bits();
}

}  // namespace neatbound::sim
