// Fixture: the allow syntax must silence the layering and cycle rules.
// No analyze-expect lines anywhere in this case: it must scan clean.
#pragma once

// neatbound-analyze: allow(layering) — fixture: proving the allowlist
// silences a deliberate inversion with a written rationale.
#include "scenario/spec.hpp"

// neatbound-analyze: allow(include-cycle) — fixture: deliberate
// self-include, silenced.
#include "support/legacy_bridge.hpp"

namespace neatbound::support {
inline int bridged() { return 1; }
}  // namespace neatbound::support
