// Fixture: allowlisted hot-path allocation and RNG draws.
#pragma once

#include <cstdint>
#include <vector>

#include "support/hot.hpp"

namespace neatbound::sim {

class AllowedLoop {
 public:
  NEATBOUND_HOT void step(std::uint64_t round) {
    // neatbound-analyze: allow(hot-alloc) — fixture: amortized append,
    // silenced with a rationale exactly like the real calendar bucket.
    trace_.push_back(round);
  }

  int draw(unsigned seed) {
    // neatbound-analyze: allow(rng-stream) — fixture: silenced engine use
    std::mt19937 gen(seed);
    return static_cast<int>(gen());
  }

 private:
  std::vector<std::uint64_t> trace_;
};

}  // namespace neatbound::sim
