// Fixture: allowlisted trace-io — the allow syntax must silence the
// rule on both the include and the stream construction.
#pragma once

// neatbound-analyze: allow(trace-io) — fixture: proves the allow syntax.
#include <fstream>

namespace neatbound::sim {

inline void debug_dump(unsigned long long round) {
  // neatbound-analyze: allow(trace-io) — fixture: proves the allow
  // syntax covers a multi-line rationale block too.
  std::ofstream os("debug.log", std::ios::app);
  os << round << '\n';
}

}  // namespace neatbound::sim
