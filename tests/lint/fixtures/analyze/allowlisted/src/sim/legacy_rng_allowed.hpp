// Fixture: allowlisted legacy support::Rng use — the kLegacy
// compatibility pattern the real engine carries until the sequential
// path is retired.
#pragma once

namespace neatbound::sim {

class LegacyLane {
 public:
  // neatbound-analyze: allow(rng-stream) — fixture: RngMode::kLegacy
  // compatibility state, silenced with a rationale.
  explicit LegacyLane(Rng rng) : rng_(rng) {}

 private:
  // neatbound-analyze: allow(rng-stream) — fixture: legacy state (above)
  Rng rng_;
};

}  // namespace neatbound::sim
