// Fixture: allowlisted contract-coverage and hot-hygiene findings.
#pragma once

#include <cstdint>

#include "support/hot.hpp"

namespace neatbound::net {

class AllowedTracker {
 public:
  // neatbound-analyze: allow(contract-coverage) — fixture: total
  // function with nothing to assert, silenced with a rationale.
  void advance(std::uint64_t rounds) {
    base_ += rounds;
    width_ += rounds / 2;
  }

  // neatbound-analyze: allow(hot-hygiene) — fixture: non-const hot
  // accessor and non-noexcept leaf, silenced.
  NEATBOUND_HOT std::uint64_t base_of(std::size_t) { return base_; }

 private:
  std::uint64_t base_ = 0;
  std::uint64_t width_ = 0;
};

}  // namespace neatbound::net
