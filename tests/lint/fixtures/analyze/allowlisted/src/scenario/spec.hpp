#pragma once

namespace neatbound::scenario {
struct Spec {};
}  // namespace neatbound::scenario
