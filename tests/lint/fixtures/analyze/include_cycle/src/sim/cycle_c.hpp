#pragma once

#include "sim/cycle_a.hpp"

namespace neatbound::sim {
inline int c() { return 3; }
}  // namespace neatbound::sim
