#pragma once

#include "sim/cycle_c.hpp"

namespace neatbound::sim {
inline int b() { return 2; }
}  // namespace neatbound::sim
