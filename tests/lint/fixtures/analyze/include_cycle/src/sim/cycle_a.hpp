// Fixture: three-file include cycle inside one module (so the layering
// rule stays silent and only the cycle detector speaks).  The finding is
// anchored at the lexicographically smallest participant — this file.
// analyze-expect: include-cycle
#pragma once

#include "sim/cycle_b.hpp"

namespace neatbound::sim {
inline int a() { return 1; }
}  // namespace neatbound::sim
