// Fixture: a file including itself is the degenerate cycle.
// analyze-expect: include-cycle
#pragma once

#include "sim/self_include.hpp"

namespace neatbound::sim {
inline int s() { return 4; }
}  // namespace neatbound::sim
