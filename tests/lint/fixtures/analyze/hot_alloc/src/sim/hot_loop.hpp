// Fixture: a NEATBOUND_HOT method that allocates directly, and a hot
// call into a helper that allocates — both must be flagged, proving the
// call-graph propagation.
// analyze-expect: hot-alloc
#pragma once

#include <cstdint>
#include <vector>

#include "sim/hot_helper.hpp"
#include "support/hot.hpp"

namespace neatbound::sim {

class HotLoop {
 public:
  NEATBOUND_HOT void step(std::uint64_t round) {
    trace_.push_back(round);
    splice_waiting(round);
  }

 private:
  std::vector<std::uint64_t> trace_;
};

}  // namespace neatbound::sim
