// Reached from HotLoop::step through the project call graph; the `new`
// here must be reported even though this function carries no annotation.
// analyze-expect: hot-alloc
#pragma once

#include <cstdint>

namespace neatbound::sim {

inline std::uint64_t* splice_waiting(std::uint64_t round) {
  return new std::uint64_t(round);
}

}  // namespace neatbound::sim
