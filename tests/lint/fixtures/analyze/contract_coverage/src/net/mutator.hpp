// Fixture: a public mutating method with a non-trivial body and no
// contract macro must be flagged; its contract-carrying sibling and the
// single-statement setter must not be.
// analyze-expect: contract-coverage
#pragma once

#include <cstdint>

#include "support/contracts.hpp"

namespace neatbound::net {

class WindowTracker {
 public:
  void advance(std::uint64_t rounds) {
    base_ += rounds;
    width_ += rounds / 2;
  }

  void advance_checked(std::uint64_t rounds) {
    NEATBOUND_EXPECTS(rounds > 0, "advance needs at least one round");
    base_ += rounds;
    width_ += rounds / 2;
  }

  void reset() { base_ = 0; }

  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }

 private:
  std::uint64_t base_ = 0;
  std::uint64_t width_ = 0;
};

}  // namespace neatbound::net
