// Fixture: private file writers inside a simulation-core module.  Both
// the C++ stream and the C stdio path must fire trace-io — structured
// output belongs to sim::BoundedTraceWriter with a caller-owned stream.
// analyze-expect: trace-io
#include <cstdio>
#include <fstream>

namespace neatbound::sim {

void dump_round(unsigned long long round) {
  std::ofstream os("rounds.log", std::ios::app);
  os << round << '\n';
}

void dump_round_c(unsigned long long round) {
  FILE* handle = std::fopen("rounds.log", "a");
  if (handle != nullptr) {
    std::fprintf(handle, "%llu\n", round);
    std::fclose(handle);
  }
}

}  // namespace neatbound::sim
