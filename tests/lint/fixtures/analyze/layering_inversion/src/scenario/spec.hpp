// Target of the inversion; itself clean.
#pragma once

namespace neatbound::scenario {
struct Spec {};
}  // namespace neatbound::scenario
