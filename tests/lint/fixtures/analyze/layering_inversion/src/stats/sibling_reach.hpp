// Fixture: stats and protocol share layer 1 — siblings must not include
// each other even though neither is "above" the other.
// analyze-expect: layering
#pragma once

#include "protocol/block.hpp"

namespace neatbound::stats {
inline int uses_protocol() { return 2; }
}  // namespace neatbound::stats
