// Fixture: a layer-0 module including a layer-5 module (the PR 5
// scenario/json inversion, reconstructed) plus a sibling-layer include.
// analyze-expect: layering
#pragma once

#include "scenario/spec.hpp"

namespace neatbound::support {
inline int uses_scenario() { return 1; }
}  // namespace neatbound::support
