// Fixture: telemetry macros never change a function's hot-path
// classification.  `tick` is a hot leaf (its only "call" is
// NEATBOUND_COUNT, which the call graph ignores) and is not noexcept,
// so hot-hygiene must still fire on it; `tock` shows the compliant
// form and must stay silent.
// analyze-expect: hot-hygiene
#pragma once

#include "support/hot.hpp"
#include "support/telemetry.hpp"

namespace neatbound::sim {

struct CountedLeaf {
  NEATBOUND_HOT void tick() {
    NEATBOUND_COUNT(kDeliveries);
    ++ticks;
  }

  NEATBOUND_HOT void tock() noexcept {
    NEATBOUND_COUNT(kDeliveries);
    ++ticks;
  }

  unsigned long long ticks = 0;
};

}  // namespace neatbound::sim
