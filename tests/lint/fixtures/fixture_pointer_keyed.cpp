// Known-bad fixture for scripts/check_determinism.py: ordered containers
// keyed on addresses — iteration order becomes allocation order, which
// ASLR reshuffles per process.
// lint-expect: pointer-keyed-ordering
#include <map>
#include <set>

struct Block;

int address_ordered(const Block* block) {
  std::map<const Block*, int> first_seen;
  std::set<Block*> frontier;
  first_seen[block] = 1;
  return static_cast<int>(first_seen.size() + frontier.size());
}
