// Regression fixture: a string containing "//" followed by a REAL
// finding on the same line.  The old stripper treated the quoted "//"
// as a comment start and blanked the rest of the line, hiding the
// finding; the shared lexer blanks only the string itself.
// lint-expect: nondeterministic-source
#include <random>
#include <string>

namespace fixture {

inline unsigned hidden_after_url() {
  const std::string tag = "http://seed"; std::random_device dev;
  return dev() + static_cast<unsigned>(tag.size());
}

}  // namespace fixture
