// Regression fixture for the shared-lexer migration: rule-triggering
// text inside raw string literals and multi-line block comments must NOT
// fire.  The old line-oriented stripper mis-lexed both (a raw string
// could swallow code; a block comment was handled but strings were not).
// No lint-expect lines: this file must scan clean.
#include <string>

/* A multi-line block comment mentioning std::random_device and
   rand() and system_clock across
   several lines must stay invisible to every rule. */

namespace fixture {

inline std::string docs() {
  // Raw string: the payload looks exactly like findings but is data.
  return R"doc(
    std::random_device entropy;
    std::mt19937 gen(std::chrono::system_clock::now().time_since_epoch().count());
    for (auto& kv : table.unordered_map_field) {}
  )doc";
}

inline std::string plain_string() {
  // A '//' inside a string is not a comment; nothing after it on this
  // line is a finding either.
  return "see https://example.org/rand?q=srand(time(NULL))";
}

}  // namespace fixture
