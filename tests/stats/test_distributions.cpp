#include "stats/distributions.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace neatbound::stats {
namespace {

TEST(Binomial, PmfMatchesHandValues) {
  const Binomial b(4, 0.5);
  EXPECT_NEAR(b.pmf(0).linear(), 1.0 / 16, 1e-14);
  EXPECT_NEAR(b.pmf(1).linear(), 4.0 / 16, 1e-14);
  EXPECT_NEAR(b.pmf(2).linear(), 6.0 / 16, 1e-14);
  EXPECT_NEAR(b.pmf(4).linear(), 1.0 / 16, 1e-14);
}

TEST(Binomial, PmfSumsToOne) {
  const Binomial b(12, 0.3);
  LogProb total = LogProb::zero();
  for (double k = 0; k <= 12; ++k) total += b.pmf(k);
  EXPECT_NEAR(total.linear(), 1.0, 1e-12);
}

TEST(Binomial, CdfComplementsSf) {
  const Binomial b(20, 0.1);
  for (std::uint64_t k : {0ULL, 1ULL, 3ULL, 10ULL}) {
    EXPECT_NEAR(b.cdf(k).linear() + b.sf(k + 1).linear(), 1.0, 1e-10);
  }
}

TEST(Binomial, ZeroOneShortcutsMatchPmf) {
  const Binomial b(50, 0.02);
  EXPECT_NEAR(b.prob_zero().log(), b.pmf(0).log(), 1e-12);
  EXPECT_NEAR(b.prob_one().log(), b.pmf(1).log(), 1e-12);
  EXPECT_NEAR(b.prob_positive().linear(), 1.0 - b.pmf(0).linear(), 1e-12);
}

TEST(Binomial, PaperScaleAlphaQuantities) {
  // n = 10⁵ miners, μ = 0.75, Δ = 10¹³, c = 2 → p = 1/(c·n·Δ) = 5·10⁻¹⁹.
  const double mu_n = 0.75e5;
  const double p = 5e-19;
  const Binomial b(mu_n, p);
  // ᾱ = (1−p)^{μn}: ln ᾱ ≈ −μn·p = −3.75·10⁻¹⁴.
  EXPECT_NEAR(b.prob_zero().log(), -mu_n * p, 1e-20);
  // α ≈ μn·p at this scale.
  EXPECT_NEAR(b.prob_positive().linear(), mu_n * p, mu_n * p * 1e-6);
  // α₁ ≈ α (two successes in one round are vanishingly unlikely).
  EXPECT_NEAR(b.prob_one().linear() / b.prob_positive().linear(), 1.0, 1e-10);
}

TEST(Binomial, RealValuedTrialsSupported) {
  // μn need not be integral; pmf via gamma functions must still normalize
  // over the integer support closely for large fractional n.
  const Binomial b(10.5, 0.2);
  EXPECT_GT(b.pmf(2).linear(), 0.0);
  EXPECT_NEAR(b.mean(), 2.1, 1e-12);
}

TEST(Binomial, DegenerateP) {
  const Binomial zero(10, 0.0);
  EXPECT_EQ(zero.pmf(0).linear(), 1.0);
  EXPECT_TRUE(zero.pmf(3).is_zero());
  const Binomial one(10, 1.0);
  EXPECT_EQ(one.pmf(10).linear(), 1.0);
  EXPECT_TRUE(one.pmf(3).is_zero());
}

TEST(Binomial, ContractChecks) {
  EXPECT_THROW(Binomial(-1, 0.5), neatbound::ContractViolation);
  EXPECT_THROW(Binomial(10, 1.5), neatbound::ContractViolation);
  const Binomial b(10, 0.5);
  EXPECT_THROW((void)b.pmf(11), neatbound::ContractViolation);
}

TEST(Geometric, PmfAndSf) {
  const Geometric g(0.25);
  EXPECT_NEAR(g.pmf(0).linear(), 0.25, 1e-14);
  EXPECT_NEAR(g.pmf(2).linear(), 0.75 * 0.75 * 0.25, 1e-14);
  EXPECT_NEAR(g.sf(3).linear(), std::pow(0.75, 3.0), 1e-14);
  EXPECT_NEAR(g.mean(), 3.0, 1e-12);
}

TEST(Geometric, PmfSumsToOne) {
  const Geometric g(0.4);
  LogProb total = LogProb::zero();
  for (std::uint64_t k = 0; k < 100; ++k) total += g.pmf(k);
  EXPECT_NEAR(total.linear(), 1.0, 1e-12);
}

TEST(Poisson, MatchesHandValues) {
  const Poisson po(2.0);
  EXPECT_NEAR(po.pmf(0).linear(), std::exp(-2.0), 1e-14);
  EXPECT_NEAR(po.pmf(2).linear(), 2.0 * std::exp(-2.0), 1e-14);
}

TEST(Poisson, LimitsOfBinomial) {
  // Binomial(n, λ/n) → Poisson(λ): the approximation the paper's "c means
  // expected Δ-delays per block" intuition rests on.
  const double lambda = 0.8;
  const Binomial b(1e7, lambda / 1e7);
  const Poisson po(lambda);
  for (std::uint64_t k = 0; k <= 5; ++k) {
    EXPECT_NEAR(b.pmf(static_cast<double>(k)).linear(), po.pmf(k).linear(),
                1e-7);
  }
}

// Property sweep: prob_one ≤ prob_positive, and the three α-quantities
// respect α + ᾱ = 1 across the (n, p) grid.
struct AlphaCase {
  double n;
  double p;
};

class BinomialAlphaSweep : public ::testing::TestWithParam<AlphaCase> {};

TEST_P(BinomialAlphaSweep, AlphaIdentities) {
  const auto [n, p] = GetParam();
  const Binomial b(n, p);
  EXPECT_NEAR((b.prob_zero() + b.prob_positive()).linear(), 1.0, 1e-9);
  EXPECT_LE(b.prob_one().log(), b.prob_positive().log() + 1e-12);
  // α₁ = np(1−p)^{n−1} exactly (Eq. 9):
  EXPECT_NEAR(b.prob_one().log(),
              std::log(n * p) + (n - 1) * std::log1p(-p), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BinomialAlphaSweep,
    ::testing::Values(AlphaCase{10, 0.3}, AlphaCase{100, 0.01},
                      AlphaCase{1000, 1e-4}, AlphaCase{75000, 5e-19},
                      AlphaCase{64, 0.5}, AlphaCase{4, 0.24},
                      AlphaCase{1e5, 1e-9}));

}  // namespace
}  // namespace neatbound::stats
