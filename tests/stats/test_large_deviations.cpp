#include "stats/large_deviations.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "stats/distributions.hpp"
#include "support/contracts.hpp"

namespace neatbound::stats {
namespace {

TEST(RelativeEntropy, ZeroWhenEqual) {
  EXPECT_EQ(bernoulli_relative_entropy(0.3, 0.3), 0.0);
  EXPECT_EQ(bernoulli_relative_entropy(0.0, 0.0), 0.0);
  EXPECT_EQ(bernoulli_relative_entropy(1.0, 1.0), 0.0);
}

TEST(RelativeEntropy, PositiveWhenDifferent) {
  EXPECT_GT(bernoulli_relative_entropy(0.4, 0.3), 0.0);
  EXPECT_GT(bernoulli_relative_entropy(0.2, 0.3), 0.0);
}

TEST(RelativeEntropy, HandValue) {
  // D(0.5 ‖ 0.25) = 0.5·ln2 + 0.5·ln(2/3).
  const double expected = 0.5 * std::log(2.0) + 0.5 * std::log(2.0 / 3.0);
  EXPECT_NEAR(bernoulli_relative_entropy(0.5, 0.25), expected, 1e-12);
}

TEST(RelativeEntropy, InfiniteOffSupport) {
  EXPECT_TRUE(std::isinf(bernoulli_relative_entropy(0.5, 0.0)));
  EXPECT_TRUE(std::isinf(bernoulli_relative_entropy(0.5, 1.0)));
}

TEST(RelativeEntropy, Eq48FormMatches) {
  // Eq. (48) written out directly.
  const double p = 0.01, d3 = 0.5;
  const double direct = (1 + d3) * p * std::log(1 + d3) +
                        (1 - (1 + d3) * p) *
                            std::log((1 - (1 + d3) * p) / (1 - p));
  EXPECT_NEAR(relative_entropy_scaled(p, d3), direct, 1e-12);
}

TEST(RelativeEntropy, ScaledRejectsOverflowingA) {
  EXPECT_THROW((void)relative_entropy_scaled(0.6, 1.0),
               neatbound::ContractViolation);
}

TEST(TailBounds, UpperBoundDominatesExactTail) {
  // Arratia–Gordon: P[X ≥ (1+δ)Np] ≤ exp(−N·D).  Check against the exact
  // binomial survival function.
  const double n = 200, p = 0.05, d3 = 0.6;
  const Binomial binom(n, p);
  const auto threshold =
      static_cast<std::uint64_t>(std::ceil((1 + d3) * n * p));
  const double exact = binom.sf(threshold).linear();
  const double bound = binomial_upper_tail_bound(n, p, d3).linear();
  EXPECT_LE(exact, bound * (1.0 + 1e-9));
}

TEST(TailBounds, LowerBoundDominatesExactTail) {
  const double n = 200, p = 0.2, d = 0.5;
  const Binomial binom(n, p);
  const auto threshold =
      static_cast<std::uint64_t>(std::floor((1 - d) * n * p));
  const double exact = binom.cdf(threshold).linear();
  const double bound = binomial_lower_tail_bound(n, p, d).linear();
  EXPECT_LE(exact, bound * (1.0 + 1e-9));
}

TEST(TailBounds, DecayExponentiallyInTrials) {
  // Doubling N must square the bound (paper: exponential decay in T).
  const double p = 0.01, d3 = 0.5;
  const LogProb b1 = binomial_upper_tail_bound(1000, p, d3);
  const LogProb b2 = binomial_upper_tail_bound(2000, p, d3);
  EXPECT_NEAR(b2.log(), 2.0 * b1.log(), 1e-9);
}

TEST(TailBounds, TightenWithDeviation) {
  const double n = 1000, p = 0.01;
  EXPECT_LT(binomial_upper_tail_bound(n, p, 1.0).log(),
            binomial_upper_tail_bound(n, p, 0.5).log());
  EXPECT_LT(binomial_lower_tail_bound(n, p, 0.9).log(),
            binomial_lower_tail_bound(n, p, 0.5).log());
}

TEST(Chernoff, WeakerThanArratiaGordonUpper) {
  // The multiplicative Chernoff bound must never be tighter than the
  // relative-entropy bound (D ≥ δ²p/(2+δ) pointwise).
  const double n = 500, p = 0.02;
  for (const double d3 : {0.1, 0.5, 1.0, 2.0}) {
    EXPECT_GE(chernoff_upper_bound(n * p, d3).log(),
              binomial_upper_tail_bound(n, p, d3).log() - 1e-9);
  }
}

TEST(Chernoff, LowerBoundSane) {
  const double mean = 50.0;
  const LogProb b = chernoff_lower_bound(mean, 0.5);
  EXPECT_NEAR(b.log(), -mean * 0.25 / 2.0, 1e-12);
}

TEST(Chernoff, ContractChecks) {
  EXPECT_THROW((void)chernoff_lower_bound(10.0, 1.5),
               neatbound::ContractViolation);
  EXPECT_THROW((void)chernoff_upper_bound(-1.0, 0.5),
               neatbound::ContractViolation);
}

// Sweep: bound validity P[X ≥ (1+δ)Np] ≤ bound over a parameter grid.
struct TailCase {
  double n;
  double p;
  double delta;
};

class TailSweep : public ::testing::TestWithParam<TailCase> {};

TEST_P(TailSweep, UpperBoundValid) {
  const auto [n, p, delta] = GetParam();
  const Binomial binom(n, p);
  const auto threshold =
      static_cast<std::uint64_t>(std::ceil((1 + delta) * n * p));
  if (static_cast<double>(threshold) > n) GTEST_SKIP();
  const double exact = binom.sf(threshold).linear();
  const double bound = binomial_upper_tail_bound(n, p, delta).linear();
  EXPECT_LE(exact, bound * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TailSweep,
    ::testing::Values(TailCase{50, 0.1, 0.5}, TailCase{100, 0.05, 1.0},
                      TailCase{400, 0.02, 0.25}, TailCase{1000, 0.004, 2.0},
                      TailCase{30, 0.3, 0.8}, TailCase{2000, 0.001, 3.0}));

}  // namespace
}  // namespace neatbound::stats
