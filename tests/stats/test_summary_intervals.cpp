#include <cmath>
#include <gtest/gtest.h>
#include <vector>

#include "stats/intervals.hpp"
#include "stats/summary.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace neatbound::stats {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> data = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats s;
  for (const double x : data) s.add(x);
  EXPECT_EQ(s.count(), data.size());
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  // Sample variance with n−1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(31);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean_before);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean_before);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  // Welford's point: values 10⁹ + small noise must not lose variance.
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(s.variance(), 0.25025, 1e-3);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> data = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(quantile(data, 0.0), 1.0);
  EXPECT_EQ(quantile(data, 1.0), 4.0);
  EXPECT_NEAR(quantile(data, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(quantile(data, 1.0 / 3.0), 2.0, 1e-12);
}

TEST(Quantile, RejectsEmptyAndBadQ) {
  const std::vector<double> empty;
  EXPECT_THROW((void)quantile(empty, 0.5), neatbound::ContractViolation);
  const std::vector<double> one = {1.0};
  EXPECT_THROW((void)quantile(one, 1.5), neatbound::ContractViolation);
}

TEST(MeanOf, Basics) {
  const std::vector<double> d = {1.0, 2.0, 6.0};
  EXPECT_NEAR(mean_of(d), 3.0, 1e-12);
  const std::vector<double> empty;
  EXPECT_EQ(mean_of(empty), 0.0);
}

TEST(Wilson, CentersNearPhat) {
  const Interval iv = wilson_interval(50, 100);
  EXPECT_TRUE(iv.contains(0.5));
  EXPECT_GT(iv.lo, 0.39);
  EXPECT_LT(iv.hi, 0.61);
}

TEST(Wilson, SmallCountsStayInUnitRange) {
  const Interval zero = wilson_interval(0, 10);
  EXPECT_GE(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);  // does not collapse like the Wald interval
  const Interval all = wilson_interval(10, 10);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_LE(all.hi, 1.0);
}

TEST(Wilson, ShrinksWithTrials) {
  const Interval small = wilson_interval(5, 10);
  const Interval large = wilson_interval(500, 1000);
  EXPECT_LT(large.width(), small.width());
}

TEST(Wilson, ContractChecks) {
  EXPECT_THROW((void)wilson_interval(5, 0), neatbound::ContractViolation);
  EXPECT_THROW((void)wilson_interval(11, 10), neatbound::ContractViolation);
}

TEST(Wilson, EmpiricalCoverage) {
  // 95% interval should cover the true p in ≈95% of repetitions.
  Rng rng(77);
  const double p = 0.07;
  int covered = 0;
  const int reps = 2000;
  for (int r = 0; r < reps; ++r) {
    const std::uint64_t hits = rng.binomial(400, p);
    covered += wilson_interval(hits, 400).contains(p);
  }
  const double coverage = static_cast<double>(covered) / reps;
  EXPECT_GT(coverage, 0.92);
  EXPECT_LT(coverage, 0.985);
}

TEST(MeanInterval, SymmetricAroundMean) {
  const Interval iv = mean_interval(10.0, 2.0);
  EXPECT_NEAR((iv.lo + iv.hi) / 2.0, 10.0, 1e-12);
  EXPECT_NEAR(iv.width(), 2.0 * 1.959963984540054 * 2.0, 1e-9);
}

TEST(ZForConfidence, KnownQuantiles) {
  EXPECT_NEAR(z_for_confidence(0.95), 1.959964, 1e-4);
  EXPECT_NEAR(z_for_confidence(0.99), 2.575829, 1e-4);
  EXPECT_NEAR(z_for_confidence(0.90), 1.644854, 1e-4);
  EXPECT_NEAR(z_for_confidence(0.999), 3.290527, 1e-4);
}

TEST(ZForConfidence, RejectsOutOfRange) {
  EXPECT_THROW((void)z_for_confidence(0.0), neatbound::ContractViolation);
  EXPECT_THROW((void)z_for_confidence(1.0), neatbound::ContractViolation);
}

TEST(Wilson, EdgeCountsAreFiniteAndOrdered) {
  // k = 0: pinned to 0 on the left (up to rounding), open on the right
  // (hi = z²/(n+z²)).
  const Interval none = wilson_interval(0, 25);
  EXPECT_NEAR(none.lo, 0.0, 1e-12);
  const double z2 = 1.959963984540054 * 1.959963984540054;
  EXPECT_NEAR(none.hi, z2 / (25.0 + z2), 1e-12);
  // k = n: the mirror image — hi is exactly 1 in exact arithmetic.
  const Interval all = wilson_interval(25, 25);
  EXPECT_NEAR(all.hi, 1.0, 1e-12);
  EXPECT_NEAR(all.lo, 1.0 - none.hi, 1e-12);
  // n = 1 in all three outcomes: wide but sane.
  for (const std::uint64_t k : {std::uint64_t{0}, std::uint64_t{1}}) {
    const Interval one = wilson_interval(k, 1);
    EXPECT_GE(one.lo, 0.0);
    EXPECT_LE(one.hi, 1.0);
    EXPECT_LT(one.lo, one.hi);
    EXPECT_TRUE(one.contains(static_cast<double>(k)));
  }
  // Huge n: no overflow, width collapses toward 0 around phat.
  const Interval huge = wilson_interval(500'000'000'000ULL,
                                        1'000'000'000'000ULL);
  EXPECT_TRUE(std::isfinite(huge.lo));
  EXPECT_TRUE(std::isfinite(huge.hi));
  EXPECT_TRUE(huge.contains(0.5));
  EXPECT_LT(huge.width(), 1e-5);
}

TEST(WilsonHalfWidth, MatchesIntervalAndShrinksWithTrials) {
  EXPECT_DOUBLE_EQ(wilson_half_width(7, 20),
                   wilson_interval(7, 20).width() / 2.0);
  double previous = 1.0;
  for (const std::uint64_t n : {4ULL, 16ULL, 64ULL, 256ULL, 4096ULL}) {
    const double hw = wilson_half_width(n / 2, n);
    EXPECT_LT(hw, previous);
    previous = hw;
  }
}

/// The sequential-stopping decision is monotone along both axes the
/// adaptive sweep relies on: more trials never un-stops a proportion,
/// and a looser target stops no later than a tighter one.
TEST(PrecisionReached, MonotoneInTrialsAndTarget) {
  const double target = 0.1;
  bool reached_before = false;
  for (std::uint64_t n = 1; n <= 600; ++n) {
    const bool reached = precision_reached(n / 2, n, target);
    EXPECT_FALSE(reached_before && !reached) << "un-stopped at n=" << n;
    reached_before = reached;
  }
  EXPECT_TRUE(reached_before);

  // For a fixed (k, n), the smallest stopping target is a threshold:
  // every looser target stops too.
  const std::uint64_t k = 3, n = 60;
  bool stopped = false;
  for (const double t : {0.01, 0.05, 0.08, 0.12, 0.3}) {
    const bool now = precision_reached(k, n, t);
    EXPECT_FALSE(stopped && !now) << "non-monotone at target " << t;
    stopped = now;
  }
  EXPECT_TRUE(stopped);

  // Target 0 (the fixed-budget degenerate) never stops.
  EXPECT_FALSE(precision_reached(0, 1'000'000, 0.0));
  EXPECT_FALSE(precision_reached(0, 1'000'000, -1.0));
}

TEST(RunningStatsState, RoundTripsBitExactly) {
  RunningStats original;
  for (int i = 1; i <= 37; ++i) original.add(1.0 / i - 0.5 * (i % 3));
  const RunningStatsState state = original.state();
  const RunningStats rebuilt = RunningStats::from_state(state);
  EXPECT_EQ(rebuilt.count(), original.count());
  EXPECT_DOUBLE_EQ(rebuilt.mean(), original.mean());
  EXPECT_DOUBLE_EQ(rebuilt.variance(), original.variance());
  EXPECT_DOUBLE_EQ(rebuilt.min(), original.min());
  EXPECT_DOUBLE_EQ(rebuilt.max(), original.max());
  // Continuing the stream from the rebuilt state matches continuing the
  // original — the checkpoint/resume identity at the accumulator level.
  RunningStats a = original;
  RunningStats b = RunningStats::from_state(state);
  for (int i = 0; i < 11; ++i) {
    a.add(0.123 * i);
    b.add(0.123 * i);
  }
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.variance(), b.variance());
}

}  // namespace
}  // namespace neatbound::stats
