#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace neatbound::stats {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total_count(), 3u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi edge counts as overflow (half-open bins)
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total_count(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(2.0, 12.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 12.0);
}

TEST(Histogram, Fractions) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(3.9);
  EXPECT_DOUBLE_EQ(h.bin_fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.25);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.25);
  h.add(0.75);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

TEST(Histogram, ContractChecks) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), neatbound::ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), neatbound::ContractViolation);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.bin(2), std::out_of_range);
  EXPECT_THROW((void)h.bin_lo(5), neatbound::ContractViolation);
}

}  // namespace
}  // namespace neatbound::stats
