#include "stats/batch_means.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace neatbound::stats {
namespace {

/// AR(1) series x_{t+1} = φ·x_t + ε with known integrated autocorrelation
/// time (1+φ)/(1−φ).
std::vector<double> ar1(double phi, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  double cur = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    // Sum of 12 uniforms − 6: near-Gaussian innovation, mean 0, var 1.
    double eps = -6.0;
    for (int k = 0; k < 12; ++k) eps += rng.uniform();
    cur = phi * cur + eps;
    x[t] = cur;
  }
  return x;
}

TEST(BatchMeans, IidSeriesMatchesNaive) {
  const auto series = ar1(0.0, 64000, 1);
  const auto result = batch_means(series);
  EXPECT_NEAR(result.mean, 0.0, 5.0 * result.stderr_mean);
  // For iid data the two stderrs coincide up to noise.
  EXPECT_NEAR(result.stderr_mean / result.naive_stderr, 1.0, 0.35);
  EXPECT_LT(result.autocorrelation_time, 2.0);
}

TEST(BatchMeans, CorrelatedSeriesInflatesError) {
  const double phi = 0.9;  // tau = (1+phi)/(1-phi) = 19
  const auto series = ar1(phi, 200000, 2);
  const auto result = batch_means(series, 20);
  EXPECT_GT(result.stderr_mean, 2.0 * result.naive_stderr);
  EXPECT_NEAR(result.autocorrelation_time, 19.0, 10.0);
}

TEST(BatchMeans, MeanIsBatchInvariant) {
  const auto series = ar1(0.5, 9600, 3);
  const auto a = batch_means(series, 8);
  const auto b = batch_means(series, 32);
  EXPECT_NEAR(a.mean, b.mean, 1e-12);  // same used prefix length? close
}

TEST(BatchMeans, ContractChecks) {
  const std::vector<double> tiny = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)batch_means(tiny, 2), neatbound::ContractViolation);
  EXPECT_THROW((void)batch_means(tiny, 1), neatbound::ContractViolation);
}

TEST(Autocovariance, Lag0IsVariance) {
  const auto series = ar1(0.0, 50000, 4);
  const double c0 = autocovariance(series, 0);
  EXPECT_NEAR(c0, 1.0, 0.05);  // innovations have variance 1
}

TEST(Autocovariance, DecaysGeometrically) {
  const double phi = 0.7;
  const auto series = ar1(phi, 400000, 5);
  const double c0 = autocovariance(series, 0);
  for (std::size_t lag : {1UL, 2UL, 4UL}) {
    const double rho = autocovariance(series, lag) / c0;
    EXPECT_NEAR(rho, std::pow(phi, static_cast<double>(lag)), 0.03)
        << "lag " << lag;
  }
}

TEST(Autocovariance, LagBoundsChecked) {
  const std::vector<double> s = {1.0, 2.0};
  EXPECT_THROW((void)autocovariance(s, 2), neatbound::ContractViolation);
}

TEST(IntegratedTau, MatchesAr1ClosedForm) {
  for (const double phi : {0.0, 0.5, 0.8}) {
    const auto series = ar1(phi, 400000, 6);
    const double expected = (1.0 + phi) / (1.0 - phi);
    EXPECT_NEAR(integrated_autocorrelation_time(series), expected,
                expected * 0.2 + 0.2)
        << "phi=" << phi;
  }
}

TEST(IntegratedTau, ConstantSeriesIsOne) {
  const std::vector<double> flat(100, 3.5);
  EXPECT_EQ(integrated_autocorrelation_time(flat), 1.0);
}

}  // namespace
}  // namespace neatbound::stats
