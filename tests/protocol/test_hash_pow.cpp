#include <gtest/gtest.h>

#include "protocol/hash.hpp"
#include "protocol/mining.hpp"
#include "stats/intervals.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace neatbound::protocol {
namespace {

TEST(PowTarget, ProbabilityRoundTrips) {
  for (const double p : {1e-9, 1e-4, 0.01, 0.25, 0.75}) {
    const PowTarget target = PowTarget::from_probability(p);
    EXPECT_NEAR(target.probability(), p, p * 1e-9);
  }
}

TEST(PowTarget, SatisfiedByThresholdBoundary) {
  const PowTarget target = PowTarget::from_probability(0.5);
  EXPECT_TRUE(target.satisfied_by(0));
  EXPECT_TRUE(target.satisfied_by(target.threshold()));
  EXPECT_FALSE(target.satisfied_by(target.threshold() + 1));
}

TEST(PowTarget, RejectsDegenerateP) {
  EXPECT_THROW((void)PowTarget::from_probability(0.0), ContractViolation);
  EXPECT_THROW((void)PowTarget::from_probability(1.0), ContractViolation);
}

TEST(RandomOracle, Deterministic) {
  const RandomOracle a(42), b(42);
  EXPECT_EQ(a.query(1, 2, 3), b.query(1, 2, 3));
}

TEST(RandomOracle, SeedSeparation) {
  const RandomOracle a(42), b(43);
  EXPECT_NE(a.query(1, 2, 3), b.query(1, 2, 3));
}

TEST(RandomOracle, InputSensitivity) {
  const RandomOracle oracle(7);
  const HashValue base = oracle.query(10, 20, 30);
  EXPECT_NE(oracle.query(11, 20, 30), base);
  EXPECT_NE(oracle.query(10, 21, 30), base);
  EXPECT_NE(oracle.query(10, 20, 31), base);
}

TEST(RandomOracle, VerifyMatchesQuery) {
  const RandomOracle oracle(7);
  const HashValue h = oracle.query(1, 2, 3);
  EXPECT_TRUE(oracle.verify(1, 2, 3, h));
  EXPECT_FALSE(oracle.verify(1, 2, 3, h ^ 1));
  EXPECT_FALSE(oracle.verify(2, 2, 3, h));
}

TEST(RandomOracle, OutputLooksUniform) {
  // Bucket the top 3 bits of 80k queries; chi-square against uniform.
  const RandomOracle oracle(11);
  std::vector<int> buckets(8, 0);
  const int reps = 80000;
  for (int i = 0; i < reps; ++i) {
    ++buckets[oracle.query(static_cast<HashValue>(i), 0, 0) >> 61];
  }
  double chi2 = 0.0;
  const double expected = reps / 8.0;
  for (const int b : buckets) {
    chi2 += (b - expected) * (b - expected) / expected;
  }
  // 7 dof: P[chi2 > 24.3] ≈ 0.001.
  EXPECT_LT(chi2, 24.3);
}

TEST(TryMine, SuccessRateMatchesP) {
  const RandomOracle oracle(3);
  const double p = 0.01;
  const PowTarget target = PowTarget::from_probability(p);
  Rng rng(5);
  std::uint64_t successes = 0;
  const std::uint64_t trials = 300000;
  for (std::uint64_t i = 0; i < trials; ++i) {
    if (try_mine(oracle, target, /*parent=*/i, /*payload=*/i, rng)) {
      ++successes;
    }
  }
  const auto ci = stats::wilson_interval(successes, trials,
                                         stats::z_for_confidence(0.999));
  EXPECT_TRUE(ci.contains(p)) << "successes=" << successes;
}

TEST(TryMine, SuccessfulBlockVerifies) {
  const RandomOracle oracle(9);
  const PowTarget target = PowTarget::from_probability(0.5);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto block = try_mine(oracle, target, 1234, 5678, rng);
    if (!block) continue;
    EXPECT_TRUE(oracle.verify(1234, block->nonce, 5678, block->hash));
    EXPECT_TRUE(target.satisfied_by(block->hash));
    EXPECT_EQ(block->parent_hash, 1234u);
    EXPECT_EQ(block->payload_digest, 5678u);
    return;  // found and checked at least one success
  }
  FAIL() << "no mining success in 100 tries at p = 0.5";
}

}  // namespace
}  // namespace neatbound::protocol
