#include "protocol/block_store.hpp"

#include <gtest/gtest.h>

#include "protocol/mining.hpp"
#include "protocol/validation.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace neatbound::protocol {
namespace {

/// Appends a block with a synthetic (but unique) hash under `parent`.
BlockIndex append(BlockStore& store, BlockIndex parent, HashValue hash,
                  std::uint64_t round = 1,
                  MinerClass who = MinerClass::kHonest,
                  std::string message = "") {
  Block b;
  b.hash = hash;
  b.parent_hash = store.block(parent).hash;
  b.round = round;
  b.miner_class = who;
  b.message = std::move(message);
  return store.add(std::move(b));
}

TEST(BlockStore, StartsWithGenesis) {
  const BlockStore store;
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.block(kGenesisIndex).height, 0u);
  EXPECT_EQ(store.block(kGenesisIndex).miner_class, MinerClass::kGenesis);
  EXPECT_TRUE(store.contains_hash(0));
}

TEST(BlockStore, AddFillsHeightAndParentIndex) {
  BlockStore store;
  const BlockIndex a = append(store, kGenesisIndex, 100);
  const BlockIndex b = append(store, a, 200, 2);
  EXPECT_EQ(store.block(a).height, 1u);
  EXPECT_EQ(store.block(b).height, 2u);
  EXPECT_EQ(store.block(b).parent, a);
  EXPECT_EQ(store.index_of(200), b);
}

TEST(BlockStore, RejectsUnknownParent) {
  BlockStore store;
  Block orphan;
  orphan.hash = 5;
  orphan.parent_hash = 999;  // never added
  EXPECT_THROW((void)store.add(std::move(orphan)), ContractViolation);
}

TEST(BlockStore, RejectsDuplicateHash) {
  BlockStore store;
  append(store, kGenesisIndex, 100);
  EXPECT_THROW(append(store, kGenesisIndex, 100), ContractViolation);
}

TEST(BlockStore, RejectsRoundRegression) {
  BlockStore store;
  const BlockIndex a = append(store, kGenesisIndex, 100, /*round=*/5);
  Block child;
  child.hash = 101;
  child.parent_hash = store.block(a).hash;
  child.round = 3;  // precedes parent
  EXPECT_THROW((void)store.add(std::move(child)), ContractViolation);
}

TEST(BlockStore, AncestorWalk) {
  BlockStore store;
  BlockIndex tip = kGenesisIndex;
  for (HashValue h = 1; h <= 5; ++h) tip = append(store, tip, h, h);
  EXPECT_EQ(store.ancestor(tip, 0), tip);
  EXPECT_EQ(store.height_of(store.ancestor(tip, 2)), 3u);
  // Clamps at genesis.
  EXPECT_EQ(store.ancestor(tip, 100), kGenesisIndex);
}

TEST(BlockStore, CommonAncestorOfFork) {
  BlockStore store;
  const BlockIndex shared = append(store, kGenesisIndex, 1);
  BlockIndex left = shared;
  for (HashValue h = 10; h < 13; ++h) left = append(store, left, h, 2);
  BlockIndex right = shared;
  for (HashValue h = 20; h < 22; ++h) right = append(store, right, h, 2);
  EXPECT_EQ(store.common_ancestor(left, right), shared);
  EXPECT_EQ(store.common_prefix_height(left, right), 1u);
  EXPECT_EQ(store.common_ancestor(left, left), left);
  EXPECT_EQ(store.common_ancestor(left, shared), shared);
}

TEST(BlockStore, IsAncestor) {
  BlockStore store;
  const BlockIndex a = append(store, kGenesisIndex, 1);
  const BlockIndex b = append(store, a, 2, 2);
  const BlockIndex sibling = append(store, kGenesisIndex, 3);
  EXPECT_TRUE(store.is_ancestor(kGenesisIndex, b));
  EXPECT_TRUE(store.is_ancestor(a, b));
  EXPECT_TRUE(store.is_ancestor(b, b));
  EXPECT_FALSE(store.is_ancestor(b, a));
  EXPECT_FALSE(store.is_ancestor(sibling, b));
}

TEST(BlockStore, ChainToGenesisFirst) {
  BlockStore store;
  const BlockIndex a = append(store, kGenesisIndex, 1);
  const BlockIndex b = append(store, a, 2, 2);
  const auto chain = store.chain_to(b);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], kGenesisIndex);
  EXPECT_EQ(chain[1], a);
  EXPECT_EQ(chain[2], b);
}

TEST(BlockStore, ExtractMessagesInChainOrder) {
  BlockStore store;
  const BlockIndex a = append(store, kGenesisIndex, 1, 1,
                              MinerClass::kHonest, "tx-batch-1");
  const BlockIndex b = append(store, a, 2, 2, MinerClass::kHonest, "");
  const BlockIndex c =
      append(store, b, 3, 3, MinerClass::kHonest, "tx-batch-2");
  const auto messages = store.extract_messages(c);
  ASSERT_EQ(messages.size(), 2u);  // empty payloads skipped
  EXPECT_EQ(messages[0], "tx-batch-1");
  EXPECT_EQ(messages[1], "tx-batch-2");
}

TEST(BlockStore, IndexOfUnknownHashThrows) {
  const BlockStore store;
  EXPECT_THROW((void)store.index_of(12345), ContractViolation);
}

TEST(Validation, AcceptsHonestlyMinedChain) {
  // Build a chain through real mining so H.ver and the target hold.
  const RandomOracle oracle(21);
  const PowTarget target = PowTarget::from_probability(0.5);
  BlockStore store;
  Rng rng(22);
  BlockIndex tip = kGenesisIndex;
  std::uint64_t round = 1;
  while (store.height_of(tip) < 5) {
    auto mined = try_mine(oracle, target, store.block(tip).hash,
                          mix64(round), rng);
    ++round;
    if (!mined) continue;
    mined->round = round;
    tip = store.add(std::move(*mined));
  }
  const ValidationReport report = validate_chain(store, tip, oracle, target);
  EXPECT_TRUE(report.valid) << report.failure;
}

TEST(Validation, RejectsForgedBlock) {
  const RandomOracle oracle(31);
  const PowTarget target = PowTarget::from_probability(1e-6);
  BlockStore store;
  // A forged block whose hash was never produced by the oracle.
  Block fake;
  fake.hash = 1;  // satisfies the target numerically…
  fake.parent_hash = 0;
  fake.nonce = 99;
  fake.payload_digest = 7;
  fake.round = 1;
  const BlockIndex tip = store.add(std::move(fake));
  const ValidationReport report = validate_chain(store, tip, oracle, target);
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.failure.find("H.ver"), std::string::npos);
}

}  // namespace
}  // namespace neatbound::protocol
