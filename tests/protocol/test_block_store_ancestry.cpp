// Property tests for the skip-pointer ancestry queries: on randomly grown
// trees of several shapes, ancestor()/common_ancestor()/is_ancestor()
// must agree with the naive O(h) parent-walk implementations they
// replaced, and the documented genesis clamp of ancestor() must hold.
#include "protocol/block_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace neatbound::protocol {
namespace {

/// Appends a block with a synthetic (but unique) hash under `parent`.
BlockIndex append(BlockStore& store, BlockIndex parent, HashValue hash) {
  Block b;
  b.hash = hash;
  b.parent_hash = store.hash_of(parent);
  b.round = store.round_of(parent) + 1;
  return store.add(std::move(b));
}

// --- naive reference implementations (pre-skip-table semantics) ---------

BlockIndex naive_ancestor(const BlockStore& store, BlockIndex index,
                          std::uint64_t steps) {
  while (steps > 0 && index != kGenesisIndex) {
    index = store.parent_of(index);
    --steps;
  }
  return index;
}

BlockIndex naive_common_ancestor(const BlockStore& store, BlockIndex a,
                                 BlockIndex b) {
  while (store.height_of(a) > store.height_of(b)) a = store.parent_of(a);
  while (store.height_of(b) > store.height_of(a)) b = store.parent_of(b);
  while (a != b) {
    a = store.parent_of(a);
    b = store.parent_of(b);
  }
  return a;
}

// --- tree growers -------------------------------------------------------

/// One chain of `blocks` blocks — the deep, fork-free extreme.
BlockStore grow_chain(std::size_t blocks) {
  BlockStore store;
  BlockIndex tip = kGenesisIndex;
  for (std::size_t i = 0; i < blocks; ++i) {
    tip = append(store, tip, 1000 + i);
  }
  return store;
}

/// Every block picks a uniformly random existing parent — short and bushy.
BlockStore grow_random_attach(std::size_t blocks, std::uint64_t seed) {
  BlockStore store;
  Rng rng(seed);
  for (std::size_t i = 0; i < blocks; ++i) {
    const auto parent =
        static_cast<BlockIndex>(rng.uniform_below(store.size()));
    append(store, parent, 2000 + i);
  }
  return store;
}

/// Mostly extends the current tip, occasionally forking a few blocks
/// back — the shape real longest-chain executions produce.
BlockStore grow_chain_with_forks(std::size_t blocks, std::uint64_t seed) {
  BlockStore store;
  Rng rng(seed);
  BlockIndex tip = kGenesisIndex;
  for (std::size_t i = 0; i < blocks; ++i) {
    BlockIndex parent = tip;
    if (rng.bernoulli(0.15)) {
      parent = naive_ancestor(store, tip, rng.uniform_below(6));
    }
    const BlockIndex child = append(store, parent, 3000 + i);
    if (store.height_of(child) > store.height_of(tip)) tip = child;
  }
  return store;
}

void check_against_naive(const BlockStore& store, std::uint64_t seed,
                         std::size_t pairs) {
  Rng rng(seed);
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto a = static_cast<BlockIndex>(rng.uniform_below(store.size()));
    const auto b = static_cast<BlockIndex>(rng.uniform_below(store.size()));
    const BlockIndex expected = naive_common_ancestor(store, a, b);
    ASSERT_EQ(store.common_ancestor(a, b), expected)
        << "pair " << i << ": a=" << a << " b=" << b;
    ASSERT_EQ(store.common_prefix_height(a, b), store.height_of(expected));
    // Random-step ancestor walks, including past-genesis overshoots.
    const std::uint64_t steps = rng.uniform_below(store.size() + 10);
    ASSERT_EQ(store.ancestor(a, steps), naive_ancestor(store, a, steps))
        << "pair " << i << ": a=" << a << " steps=" << steps;
    // is_ancestor agrees with walking b's chain down to a's height.
    const std::uint64_t ha = store.height_of(a);
    const std::uint64_t hb = store.height_of(b);
    const bool expect_anc =
        ha <= hb && naive_ancestor(store, b, hb - ha) == a;
    ASSERT_EQ(store.is_ancestor(a, b), expect_anc)
        << "pair " << i << ": a=" << a << " b=" << b;
  }
}

TEST(BlockStoreAncestry, MatchesNaiveOnDeepChain) {
  const BlockStore store = grow_chain(1500);
  check_against_naive(store, 11, 1200);
}

TEST(BlockStoreAncestry, MatchesNaiveOnBushyRandomAttach) {
  const BlockStore store = grow_random_attach(1200, 7);
  check_against_naive(store, 13, 1200);
}

TEST(BlockStoreAncestry, MatchesNaiveOnChainWithForks) {
  const BlockStore store = grow_chain_with_forks(1500, 3);
  check_against_naive(store, 17, 1200);
}

TEST(BlockStoreAncestry, AncestorAtHeightWalksToExactHeight) {
  const BlockStore store = grow_chain_with_forks(600, 5);
  Rng rng(19);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<BlockIndex>(rng.uniform_below(store.size()));
    const std::uint64_t target = rng.uniform_below(store.height_of(a) + 1);
    const BlockIndex anc = store.ancestor_at_height(a, target);
    EXPECT_EQ(store.height_of(anc), target);
    EXPECT_TRUE(store.is_ancestor(anc, a));
  }
  EXPECT_THROW((void)store.ancestor_at_height(kGenesisIndex, 1),
               ContractViolation);
}

// --- the documented genesis clamp (regression for the header contract) --

TEST(BlockStoreAncestry, AncestorClampsAtGenesis) {
  BlockStore store;
  // On a fresh store: every walk from genesis stays at genesis.
  EXPECT_EQ(store.ancestor(kGenesisIndex, 0), kGenesisIndex);
  EXPECT_EQ(store.ancestor(kGenesisIndex, 1), kGenesisIndex);
  EXPECT_EQ(store.ancestor(kGenesisIndex, 1u << 20), kGenesisIndex);

  BlockIndex tip = kGenesisIndex;
  for (HashValue h = 1; h <= 40; ++h) tip = append(store, tip, h);
  // Walking exactly height steps lands on genesis…
  EXPECT_EQ(store.ancestor(tip, 40), kGenesisIndex);
  // …and any longer walk clamps there instead of underflowing.
  EXPECT_EQ(store.ancestor(tip, 41), kGenesisIndex);
  EXPECT_EQ(store.ancestor(tip, ~std::uint64_t{0}), kGenesisIndex);
  // Genesis again, now on a non-trivial store.
  EXPECT_EQ(store.ancestor(kGenesisIndex, 1000), kGenesisIndex);
}

}  // namespace
}  // namespace neatbound::protocol
