#include "chains/suffix_chain.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "markov/stationary.hpp"
#include "markov/structure.hpp"
#include "markov/walk.hpp"
#include "support/contracts.hpp"

namespace neatbound::chains {
namespace {

TEST(SuffixChain, MatrixIsStochastic) {
  for (const std::uint64_t delta : {1ULL, 2ULL, 5ULL, 16ULL}) {
    const SuffixStateSpace space(delta);
    const auto m = build_suffix_chain_matrix(space, 0.2);
    EXPECT_NO_THROW(m.check_stochastic());
  }
}

TEST(SuffixChain, IsErgodicAsThePaperAsserts) {
  // §V-A claims C_F is time-homogeneous, irreducible and ergodic; verify
  // mechanically for a range of Δ.
  for (const std::uint64_t delta : {1ULL, 2ULL, 3ULL, 8ULL, 32ULL}) {
    const SuffixStateSpace space(delta);
    const auto m = build_suffix_chain_matrix(space, 0.37);
    EXPECT_TRUE(markov::is_irreducible(m)) << "delta=" << delta;
    EXPECT_TRUE(markov::is_ergodic(m)) << "delta=" << delta;
  }
}

TEST(SuffixChain, ClosedFormSumsToOne) {
  for (const std::uint64_t delta : {1ULL, 2ULL, 4ULL, 9ULL, 33ULL}) {
    const SuffixStateSpace space(delta);
    for (const double alpha : {0.01, 0.2, 0.5, 0.9}) {
      const auto pi = stationary_closed_form_vector(space, alpha);
      double sum = 0.0;
      for (const double x : pi) sum += x;
      EXPECT_NEAR(sum, 1.0, 1e-12) << "delta=" << delta
                                   << " alpha=" << alpha;
    }
  }
}

TEST(SuffixChain, ClosedFormSatisfiesBalanceEquations) {
  // π = πP verified directly: the strongest check of Eq. (37a–d) against
  // the transition structure of Fig. 2.
  for (const std::uint64_t delta : {1ULL, 2ULL, 3ULL, 7ULL, 16ULL}) {
    const SuffixStateSpace space(delta);
    for (const double alpha : {0.05, 0.3, 0.75}) {
      const auto m = build_suffix_chain_matrix(space, alpha);
      const auto pi = stationary_closed_form_vector(space, alpha);
      EXPECT_LT(markov::stationarity_residual(m, pi), 1e-13)
          << "delta=" << delta << " alpha=" << alpha;
    }
  }
}

TEST(SuffixChain, ClosedFormMatchesEq37Values) {
  // Hand-check (37a–d) at Δ = 2, α = 0.4 (ᾱ = 0.6):
  //   π(HN^{≤1}H)    = 0.4·(1−0.36)        = 0.256
  //   π(HN^{≤1}HN¹)  = 0.256·0.6           = 0.1536
  //   π(HN^{≥2})     = 0.36
  //   π(HN^{≥2}HN⁰)  = 0.4·0.36            = 0.144
  //   π(HN^{≥2}HN¹)  = 0.4·0.216           = 0.0864
  const SuffixStateSpace space(2);
  const auto pi = stationary_closed_form_vector(space, 0.4);
  EXPECT_NEAR(pi[space.index_of({SuffixKind::kShortGapHead, 0})], 0.256,
              1e-12);
  EXPECT_NEAR(pi[space.index_of({SuffixKind::kShortGapTail, 1})], 0.1536,
              1e-12);
  EXPECT_NEAR(pi[space.index_of({SuffixKind::kLongGap, 0})], 0.36, 1e-12);
  EXPECT_NEAR(pi[space.index_of({SuffixKind::kLongGapTail, 0})], 0.144,
              1e-12);
  EXPECT_NEAR(pi[space.index_of({SuffixKind::kLongGapTail, 1})], 0.0864,
              1e-12);
}

TEST(SuffixChain, LogSpaceClosedFormMatchesVector) {
  const SuffixStateSpace space(6);
  const double alpha = 0.15;
  const LogProb abar = LogProb::from_linear(1.0 - alpha);
  const auto vec = stationary_closed_form_vector(space, alpha);
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_NEAR(
        stationary_closed_form(space.state_at(i), space.delta(), abar)
            .linear(),
        vec[i], 1e-14);
  }
}

TEST(SuffixChain, ClosedFormWorksAtPaperScale) {
  // Δ = 10¹³ and ᾱ = exp(−3.75·10⁻¹⁴/round): cannot materialize the state
  // space, but single-state closed forms must still evaluate.
  const std::uint64_t delta = 10000000000000ULL;  // 10¹³
  const LogProb abar = LogProb::from_log(-3.75e-14);
  // π(HN^{≥Δ}) = ᾱ^Δ = exp(−0.375).
  const LogProb lg =
      stationary_closed_form({SuffixKind::kLongGap, 0}, delta, abar);
  EXPECT_NEAR(lg.log(), -0.375, 1e-12);
  // π(HN^{≤Δ−1}H) = α(1−ᾱ^Δ).
  const LogProb head =
      stationary_closed_form({SuffixKind::kShortGapHead, 0}, delta, abar);
  const double alpha_lin = -std::expm1(-3.75e-14);
  EXPECT_NEAR(head.linear() / alpha_lin, -std::expm1(-0.375), 1e-9);
}

TEST(SuffixChain, NumericSolversAgreeWithClosedForm) {
  for (const std::uint64_t delta : {1ULL, 3ULL, 8ULL}) {
    const SuffixStateSpace space(delta);
    for (const double alpha : {0.1, 0.45}) {
      const auto m = build_suffix_chain_matrix(space, alpha);
      const auto closed = stationary_closed_form_vector(space, alpha);
      const auto power = markov::solve_stationary_power(m);
      ASSERT_TRUE(power.converged);
      for (std::size_t i = 0; i < space.size(); ++i) {
        EXPECT_NEAR(power.distribution[i], closed[i], 1e-9)
            << "delta=" << delta << " alpha=" << alpha << " state=" << i;
      }
    }
  }
}

TEST(SuffixChain, MinStationaryMatchesVectorMin) {
  for (const std::uint64_t delta : {1ULL, 2ULL, 5ULL, 12ULL}) {
    const SuffixStateSpace space(delta);
    for (const double alpha : {0.05, 0.3, 0.8}) {
      const auto pi = stationary_closed_form_vector(space, alpha);
      double min_pi = 1.0;
      for (const double x : pi) min_pi = std::min(min_pi, x);
      const double closed =
          min_stationary_suffix(delta, LogProb::from_linear(1.0 - alpha))
              .linear();
      EXPECT_NEAR(closed, min_pi, 1e-12)
          << "delta=" << delta << " alpha=" << alpha;
    }
  }
}

TEST(SuffixChain, NamedChainHasReadableStates) {
  const SuffixStateSpace space(2);
  const auto chain = build_suffix_chain(space, 0.3);
  EXPECT_EQ(chain.state_name(0), "HN<=1.H");
  EXPECT_EQ(chain.state_name(2), "HN>=2");
}

TEST(SuffixChain, RejectsDegenerateAlpha) {
  const SuffixStateSpace space(2);
  EXPECT_THROW((void)build_suffix_chain_matrix(space, 0.0),
               ContractViolation);
  EXPECT_THROW((void)build_suffix_chain_matrix(space, 1.0),
               ContractViolation);
}

// Property sweep over (Δ, α): the LongGap mass ᾱ^Δ dominates-or-not in a
// way that must match the closed form's min computation (Eq. 99 split).
struct ChainCase {
  std::uint64_t delta;
  double alpha;
};

class SuffixChainSweep : public ::testing::TestWithParam<ChainCase> {};

TEST_P(SuffixChainSweep, StationaryResidualTiny) {
  const auto [delta, alpha] = GetParam();
  const SuffixStateSpace space(delta);
  const auto m = build_suffix_chain_matrix(space, alpha);
  const auto pi = stationary_closed_form_vector(space, alpha);
  EXPECT_LT(markov::stationarity_residual(m, pi), 1e-12);
}

TEST_P(SuffixChainSweep, WalkFrequenciesApproachClosedForm) {
  const auto [delta, alpha] = GetParam();
  const SuffixStateSpace space(delta);
  const auto m = build_suffix_chain_matrix(space, alpha);
  const auto pi = stationary_closed_form_vector(space, alpha);
  markov::RandomWalk walk(m, 0, Rng(1234 + delta));
  const std::uint64_t steps = 200000;
  const auto visits = walk.visit_counts(steps);
  for (std::size_t i = 0; i < space.size(); ++i) {
    const double freq = static_cast<double>(visits[i]) /
                        static_cast<double>(steps);
    // 5σ of a binomial proportion estimate.
    const double tolerance =
        5.0 * std::sqrt(pi[i] * (1 - pi[i]) / static_cast<double>(steps)) +
        1e-4;
    EXPECT_NEAR(freq, pi[i], tolerance) << "state " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SuffixChainSweep,
                         ::testing::Values(ChainCase{1, 0.3},
                                           ChainCase{2, 0.1},
                                           ChainCase{3, 0.5},
                                           ChainCase{4, 0.05},
                                           ChainCase{6, 0.25},
                                           ChainCase{8, 0.6}));

}  // namespace
}  // namespace neatbound::chains
