#include "chains/concatenated_chain.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "markov/stationary.hpp"
#include "markov/structure.hpp"
#include "support/contracts.hpp"

namespace neatbound::chains {
namespace {

DetailedStateModel model_for(std::uint32_t m, double p) {
  return DetailedStateModel{.honest_trials = static_cast<double>(m), .p = p};
}

TEST(ConcatenatedSpace, SizeIsProduct) {
  // (2Δ+1)·(m+1)^{Δ+1}.
  const ConcatenatedStateSpace s1(1, 3);
  EXPECT_EQ(s1.size(), 3u * 16u);
  const ConcatenatedStateSpace s2(2, 2);
  EXPECT_EQ(s2.size(), 5u * 27u);
}

TEST(ConcatenatedSpace, IndexDecodeRoundTrips) {
  const ConcatenatedStateSpace space(2, 2);
  SuffixState f;
  std::vector<std::uint32_t> window;
  for (std::size_t i = 0; i < space.size(); ++i) {
    space.decode(i, f, window);
    EXPECT_EQ(space.index_of(f, window), i);
  }
}

TEST(ConcatenatedSpace, ConvergenceVertexDecodes) {
  const ConcatenatedStateSpace space(3, 2);
  SuffixState f;
  std::vector<std::uint32_t> window;
  space.decode(space.convergence_vertex(), f, window);
  EXPECT_EQ(f.kind, SuffixKind::kLongGap);
  ASSERT_EQ(window.size(), 4u);
  EXPECT_EQ(window[0], 1u);  // H₁
  EXPECT_EQ(window[1], 0u);
  EXPECT_EQ(window[2], 0u);
  EXPECT_EQ(window[3], 0u);
}

TEST(ConcatenatedSpace, RejectsOversizedSpace) {
  EXPECT_THROW(ConcatenatedStateSpace(8, 8), ContractViolation);
}

TEST(ConcatenatedChain, MatrixStochasticAndErgodic) {
  const ConcatenatedStateSpace space(2, 2);
  const auto matrix =
      build_concatenated_matrix(space, model_for(2, 0.15));
  EXPECT_NO_THROW(matrix.check_stochastic(1e-9));
  // The paper asserts C_{F‖P} is irreducible and ergodic (§V-A).
  EXPECT_TRUE(markov::is_irreducible(matrix));
  EXPECT_TRUE(markov::is_ergodic(matrix));
}

TEST(ConcatenatedChain, ProductFormIsStationary) {
  // The heart of Appendix J / Eq. (40): π_F(f)·ΠP[sⁱ] solves π = πP for
  // the *explicit* transition matrix.
  for (const std::uint32_t m : {1u, 2u, 3u}) {
    for (const double p : {0.05, 0.3}) {
      const ConcatenatedStateSpace space(2, m);
      const auto matrix = build_concatenated_matrix(space, model_for(m, p));
      const auto pi = concatenated_stationary_product_form(space,
                                                           model_for(m, p));
      double sum = 0.0;
      for (const double x : pi) sum += x;
      EXPECT_NEAR(sum, 1.0, 1e-10) << "m=" << m << " p=" << p;
      EXPECT_LT(markov::stationarity_residual(matrix, pi), 1e-10)
          << "m=" << m << " p=" << p;
    }
  }
}

TEST(ConcatenatedChain, NumericSolverAgreesWithProductForm) {
  const ConcatenatedStateSpace space(1, 3);
  const auto model = model_for(3, 0.2);
  const auto matrix = build_concatenated_matrix(space, model);
  const auto product = concatenated_stationary_product_form(space, model);
  const auto solved = markov::solve_stationary_power(matrix);
  ASSERT_TRUE(solved.converged);
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_NEAR(solved.distribution[i], product[i], 1e-9) << "state " << i;
  }
}

TEST(ConcatenatedChain, ConvergenceVertexMassIsEq44) {
  // π(HN^{≥Δ} ‖ H₁N^Δ) = ᾱ^{2Δ}·α₁, verified against the numerically
  // solved stationary distribution of the explicit chain.
  for (const std::uint64_t delta : {1ULL, 2ULL}) {
    const std::uint32_t m = 3;
    const double p = 0.1;
    const ConcatenatedStateSpace space(delta, m);
    const auto model = model_for(m, p);
    const auto matrix = build_concatenated_matrix(space, model);
    const auto solved = markov::solve_stationary_power(matrix);
    ASSERT_TRUE(solved.converged);
    const double expected = convergence_opportunity_probability(
                                model.prob_n(), model.prob_one(), delta)
                                .linear();
    EXPECT_NEAR(solved.distribution[space.convergence_vertex()], expected,
                1e-9)
        << "delta=" << delta;
  }
}

TEST(ConcatenatedChain, MinStationaryMatchesProposition1) {
  // Proposition 1's min π_{F‖P} formula vs the true minimum of the
  // product-form vector.
  const ConcatenatedStateSpace space(2, 2);
  const auto model = model_for(2, 0.2);
  const auto pi = concatenated_stationary_product_form(space, model);
  double min_pi = 1.0;
  for (const double x : pi) min_pi = std::min(min_pi, x);
  const double closed =
      min_stationary_concatenated(model, 2, model.prob_n()).linear();
  EXPECT_NEAR(closed, min_pi, min_pi * 1e-9);
}

TEST(ConcatenatedChain, PiNormBoundHolds) {
  // ‖φ‖_π ≤ 1/sqrt(min π) for any initial distribution φ — spot-check a
  // point mass at the convergence vertex.
  const ConcatenatedStateSpace space(1, 2);
  const auto model = model_for(2, 0.25);
  const auto pi = concatenated_stationary_product_form(space, model);
  std::vector<double> phi(space.size(), 0.0);
  phi[space.convergence_vertex()] = 1.0;
  double norm = 0.0;
  for (std::size_t i = 0; i < phi.size(); ++i) {
    if (phi[i] > 0) norm += phi[i] * phi[i] / pi[i];
  }
  norm = std::sqrt(norm);
  double min_pi = 1.0;
  for (const double x : pi) min_pi = std::min(min_pi, x);
  EXPECT_LE(norm, 1.0 / std::sqrt(min_pi) + 1e-12);
}

}  // namespace
}  // namespace neatbound::chains
