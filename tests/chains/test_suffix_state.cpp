#include "chains/suffix_state.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace neatbound::chains {
namespace {

TEST(SuffixStateSpace, SizeIsTwoDeltaPlusOne) {
  for (const std::uint64_t delta : {1ULL, 2ULL, 3ULL, 10ULL, 64ULL}) {
    EXPECT_EQ(SuffixStateSpace(delta).size(), 2 * delta + 1);
  }
}

TEST(SuffixStateSpace, IndexBijection) {
  const SuffixStateSpace space(5);
  for (std::size_t i = 0; i < space.size(); ++i) {
    const SuffixState s = space.state_at(i);
    EXPECT_EQ(space.index_of(s), i);
  }
}

TEST(SuffixStateSpace, IndexLayoutMatchesDocumentation) {
  const SuffixStateSpace space(4);
  EXPECT_EQ(space.state_at(0).kind, SuffixKind::kShortGapHead);
  EXPECT_EQ(space.state_at(1).kind, SuffixKind::kShortGapTail);
  EXPECT_EQ(space.state_at(1).tail, 1u);
  EXPECT_EQ(space.state_at(3).tail, 3u);
  EXPECT_EQ(space.state_at(4).kind, SuffixKind::kLongGap);
  EXPECT_EQ(space.state_at(5).kind, SuffixKind::kLongGapTail);
  EXPECT_EQ(space.state_at(5).tail, 0u);
  EXPECT_EQ(space.state_at(8).tail, 3u);
}

TEST(SuffixStateSpace, RejectsInvalidStates) {
  const SuffixStateSpace space(3);
  EXPECT_THROW((void)space.index_of({SuffixKind::kShortGapTail, 0}),
               ContractViolation);
  EXPECT_THROW((void)space.index_of({SuffixKind::kShortGapTail, 3}),
               ContractViolation);
  EXPECT_THROW((void)space.index_of({SuffixKind::kLongGapTail, 3}),
               ContractViolation);
  EXPECT_THROW((void)space.state_at(7), ContractViolation);
}

TEST(SuffixStateSpace, NamesAreDescriptive) {
  const SuffixStateSpace space(3);
  EXPECT_EQ(space.name_of({SuffixKind::kShortGapHead, 0}), "HN<=2.H");
  EXPECT_EQ(space.name_of({SuffixKind::kShortGapTail, 2}), "HN<=2.H.N2");
  EXPECT_EQ(space.name_of({SuffixKind::kLongGap, 0}), "HN>=3");
  EXPECT_EQ(space.name_of({SuffixKind::kLongGapTail, 1}), "HN>=3.H.N1");
}

// --- transition rules ①–④ of Section V-A ------------------------------

TEST(SuffixTransition, Rule3_HReturnsToHead) {
  const SuffixStateSpace space(4);
  const SuffixState head{SuffixKind::kShortGapHead, 0};
  EXPECT_EQ(space.transition(head, true), head);
  EXPECT_EQ(space.transition({SuffixKind::kShortGapTail, 2}, true), head);
  EXPECT_EQ(space.transition({SuffixKind::kLongGapTail, 3}, true), head);
}

TEST(SuffixTransition, Rule2_LongGapPlusHStartsTail) {
  const SuffixStateSpace space(4);
  const SuffixState result =
      space.transition({SuffixKind::kLongGap, 0}, true);
  EXPECT_EQ(result.kind, SuffixKind::kLongGapTail);
  EXPECT_EQ(result.tail, 0u);
}

TEST(SuffixTransition, Rule1_NExtendsShortTail) {
  const SuffixStateSpace space(4);
  SuffixState s{SuffixKind::kShortGapHead, 0};
  s = space.transition(s, false);
  EXPECT_EQ(s, (SuffixState{SuffixKind::kShortGapTail, 1}));
  s = space.transition(s, false);
  EXPECT_EQ(s, (SuffixState{SuffixKind::kShortGapTail, 2}));
  s = space.transition(s, false);
  EXPECT_EQ(s, (SuffixState{SuffixKind::kShortGapTail, 3}));
  // The 4th N reaches Δ consecutive N → HN^{≥Δ} (rule ④).
  s = space.transition(s, false);
  EXPECT_EQ(s, (SuffixState{SuffixKind::kLongGap, 0}));
}

TEST(SuffixTransition, Rule4_LongGapAbsorbsN) {
  const SuffixStateSpace space(4);
  const SuffixState lg{SuffixKind::kLongGap, 0};
  EXPECT_EQ(space.transition(lg, false), lg);
}

TEST(SuffixTransition, Rule4_LongTailCollapsesAtDelta) {
  const SuffixStateSpace space(3);
  SuffixState s{SuffixKind::kLongGapTail, 0};
  s = space.transition(s, false);
  EXPECT_EQ(s, (SuffixState{SuffixKind::kLongGapTail, 1}));
  s = space.transition(s, false);
  EXPECT_EQ(s, (SuffixState{SuffixKind::kLongGapTail, 2}));
  s = space.transition(s, false);
  EXPECT_EQ(s, (SuffixState{SuffixKind::kLongGap, 0}));
}

TEST(SuffixTransition, DeltaOneDegenerateSpace) {
  // Δ = 1: no short-gap tails; a single N lands in HN^{≥1} directly.
  const SuffixStateSpace space(1);
  EXPECT_EQ(space.size(), 3u);
  const SuffixState head{SuffixKind::kShortGapHead, 0};
  EXPECT_EQ(space.transition(head, false),
            (SuffixState{SuffixKind::kLongGap, 0}));
  EXPECT_EQ(space.transition({SuffixKind::kLongGapTail, 0}, false),
            (SuffixState{SuffixKind::kLongGap, 0}));
}

// --- classify_series ----------------------------------------------------

TEST(ClassifySeries, PaperExampleDelta3) {
  // Paper, Section V-A: Δ = 3, states rounds 1..10 = H,N,H,H,N,N,H,N,N,N;
  // then F₇..F₁₀ = HN^{≤2}H, HN^{≤2}HN¹, HN^{≤2}HN², HN^{≥3}.
  const std::vector<bool> series = {true,  false, true,  true, false,
                                    false, true,  false, false, false};
  const auto states = classify_series(series, 3);
  ASSERT_TRUE(states[6].has_value());
  EXPECT_EQ(*states[6], (SuffixState{SuffixKind::kShortGapHead, 0}));
  EXPECT_EQ(*states[7], (SuffixState{SuffixKind::kShortGapTail, 1}));
  EXPECT_EQ(*states[8], (SuffixState{SuffixKind::kShortGapTail, 2}));
  EXPECT_EQ(*states[9], (SuffixState{SuffixKind::kLongGap, 0}));
}

TEST(ClassifySeries, UndefinedBeforeEnoughHistory) {
  const std::vector<bool> series = {false, false, true, false, true};
  const auto states = classify_series(series, 3);
  EXPECT_FALSE(states[0].has_value());
  EXPECT_FALSE(states[1].has_value());
  EXPECT_FALSE(states[2].has_value());  // only one H so far, gap < Δ
  EXPECT_FALSE(states[3].has_value());
  ASSERT_TRUE(states[4].has_value());  // second H arrived
  EXPECT_EQ(states[4]->kind, SuffixKind::kShortGapHead);
}

TEST(ClassifySeries, LongGapReportableWithSingleH) {
  // One H then Δ N's: HN^{≥Δ} is a legitimate suffix with a single H.
  const std::vector<bool> series = {true, false, false, false, false};
  const auto states = classify_series(series, 3);
  EXPECT_FALSE(states[2].has_value());  // gap 2 < Δ
  ASSERT_TRUE(states[3].has_value());   // gap reached Δ = 3
  EXPECT_EQ(states[3]->kind, SuffixKind::kLongGap);
  EXPECT_EQ(states[4]->kind, SuffixKind::kLongGap);
}

TEST(ClassifySeries, AllNIsNeverDefined) {
  const std::vector<bool> series(10, false);
  for (const auto& s : classify_series(series, 2)) {
    EXPECT_FALSE(s.has_value());
  }
}

TEST(ClassifySeries, OnceDefinedFollowsTransitionFunction) {
  // Property: after the first defined index, every subsequent state equals
  // transition(previous, series value).
  const SuffixStateSpace space(4);
  // A deterministic but irregular pattern.
  std::vector<bool> series;
  for (int i = 0; i < 200; ++i) {
    series.push_back((i * i + i / 3) % 7 == 0);
  }
  const auto states = classify_series(series, 4);
  bool seen = false;
  for (std::size_t t = 1; t < states.size(); ++t) {
    if (states[t - 1].has_value()) {
      seen = true;
      ASSERT_TRUE(states[t].has_value());
      EXPECT_EQ(*states[t], space.transition(*states[t - 1], series[t]));
    }
  }
  EXPECT_TRUE(seen);
}

TEST(SuffixStateSpace, RejectsDeltaZero) {
  EXPECT_THROW(SuffixStateSpace(0), ContractViolation);
}

}  // namespace
}  // namespace neatbound::chains
