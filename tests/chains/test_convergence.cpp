#include "chains/convergence.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "stats/distributions.hpp"
#include "support/contracts.hpp"

namespace neatbound::chains {
namespace {

TEST(DetailedStateModel, MatchesBinomialPmf) {
  const DetailedStateModel model{.honest_trials = 20, .p = 0.1};
  const stats::Binomial binom(20, 0.1);
  EXPECT_NEAR(model.prob_n().log(), binom.prob_zero().log(), 1e-12);
  EXPECT_NEAR(model.prob_one().log(), binom.prob_one().log(), 1e-12);
  EXPECT_NEAR(model.prob_some().log(), binom.prob_positive().log(), 1e-12);
  for (std::uint64_t h : {1ULL, 2ULL, 5ULL}) {
    EXPECT_NEAR(model.prob_h(h).log(),
                binom.pmf(static_cast<double>(h)).log(), 1e-12);
  }
}

TEST(DetailedStateModel, MinDetailedProbEq97) {
  // p ≤ ½ → min is p^{μn} (all honest miners succeed at once).
  const DetailedStateModel small_p{.honest_trials = 10, .p = 0.2};
  EXPECT_NEAR(small_p.min_detailed_prob().log(), 10.0 * std::log(0.2),
              1e-12);
  // p > ½ → min is (1−p)^{μn} (nobody succeeds).
  const DetailedStateModel large_p{.honest_trials = 10, .p = 0.8};
  EXPECT_NEAR(large_p.min_detailed_prob().log(), 10.0 * std::log(0.2),
              1e-12);
}

TEST(DetailedStateModel, HZeroRejected) {
  const DetailedStateModel model{.honest_trials = 10, .p = 0.1};
  EXPECT_THROW((void)model.prob_h(0), ContractViolation);
}

TEST(ConvergenceProbability, Eq44Product) {
  // π = ᾱ^{2Δ}·α₁ exactly.
  const LogProb abar = LogProb::from_linear(0.9);
  const LogProb a1 = LogProb::from_linear(0.08);
  const LogProb pi = convergence_opportunity_probability(abar, a1, 3);
  EXPECT_NEAR(pi.linear(), std::pow(0.9, 6.0) * 0.08, 1e-12);
}

TEST(ConvergenceProbability, PaperScale) {
  // Paper scale: ᾱ^{2Δ} ≈ e^{−2μ/c}; with μ/c = 0.375: e^{−0.75}.
  const std::uint64_t delta = 10000000000000ULL;  // 10¹³
  const LogProb abar = LogProb::from_log(-3.75e-14 / 1e13);
  const LogProb a1 = LogProb::from_linear(1e-14);
  const LogProb pi = convergence_opportunity_probability(abar, a1, delta);
  EXPECT_NEAR(pi.log(), -2.0 * 3.75e-14 / 1e13 * 1e13 + std::log(1e-14),
              1e-9);
}

TEST(ExpectedConvergence, Eq26LinearInWindow) {
  const LogProb abar = LogProb::from_linear(0.95);
  const LogProb a1 = LogProb::from_linear(0.04);
  const double t1 =
      expected_convergence_opportunities(abar, a1, 2, 1000).linear();
  const double t2 =
      expected_convergence_opportunities(abar, a1, 2, 2000).linear();
  EXPECT_NEAR(t2, 2.0 * t1, 1e-9);
}

TEST(MinStationaryConcatenated, Proposition1Product) {
  // min π_{F‖P} = min π_F · (min detailed)^{Δ+1}.
  const DetailedStateModel model{.honest_trials = 8, .p = 0.25};
  const std::uint64_t delta = 3;
  const LogProb abar = model.prob_n();
  const LogProb expected =
      min_stationary_suffix(delta, abar) *
      model.min_detailed_prob().pow(static_cast<double>(delta) + 1.0);
  EXPECT_NEAR(min_stationary_concatenated(model, delta, abar).log(),
              expected.log(), 1e-12);
}

// --- count_convergence_opportunities ------------------------------------

TEST(CountOpportunities, SimplePattern) {
  // Δ = 2; genesis provides the leading quiet H.  Series:
  // round:  0 1 2 3 4
  // blocks: 0 0 1 0 0   → round 2 is H₁ with quiet-before = 2 (+ genesis)
  //                       and quiet-after = 2 → one opportunity.
  const std::vector<std::uint32_t> counts = {0, 0, 1, 0, 0};
  EXPECT_EQ(count_convergence_opportunities(counts, 2), 1u);
}

TEST(CountOpportunities, GenesisSuppliesLeadingQuiet) {
  // H₁ at round 0 counts if Δ quiet rounds follow (quiet_before starts
  // at Δ thanks to genesis).
  const std::vector<std::uint32_t> counts = {1, 0, 0};
  EXPECT_EQ(count_convergence_opportunities(counts, 2), 1u);
}

TEST(CountOpportunities, TwoBlocksInRoundDisqualify) {
  const std::vector<std::uint32_t> counts = {0, 0, 2, 0, 0};
  EXPECT_EQ(count_convergence_opportunities(counts, 2), 0u);
}

TEST(CountOpportunities, ShortQuietBeforeDisqualifies) {
  // Block at round 1 breaks the pre-quiet of the H₁ at round 2.
  const std::vector<std::uint32_t> counts = {0, 1, 1, 0, 0, 0, 0};
  EXPECT_EQ(count_convergence_opportunities(counts, 2), 0u);
}

TEST(CountOpportunities, ShortQuietAfterDisqualifies) {
  const std::vector<std::uint32_t> counts = {0, 0, 1, 1, 0, 0, 0};
  EXPECT_EQ(count_convergence_opportunities(counts, 2), 0u);
}

TEST(CountOpportunities, TruncatedTailDoesNotCount) {
  // Quiet-after extends past the end of the window: not counted (the
  // window must contain the full N^Δ suffix).
  const std::vector<std::uint32_t> counts = {0, 0, 1, 0};
  EXPECT_EQ(count_convergence_opportunities(counts, 2), 0u);
}

TEST(CountOpportunities, MultipleOpportunities) {
  // Δ = 1: pattern "1 0" repeated, with genesis leading.
  const std::vector<std::uint32_t> counts = {1, 0, 1, 0, 1, 0};
  EXPECT_EQ(count_convergence_opportunities(counts, 1), 3u);
}

TEST(CountOpportunities, BackToBackBlocksDelta1) {
  const std::vector<std::uint32_t> counts = {1, 1, 0, 0};
  // Round 0: quiet-after fails (round 1 has a block).
  // Round 1: quiet-before = 0 < Δ.  So zero opportunities.
  EXPECT_EQ(count_convergence_opportunities(counts, 1), 0u);
}

TEST(CountOpportunities, EmptySeries) {
  const std::vector<std::uint32_t> counts;
  EXPECT_EQ(count_convergence_opportunities(counts, 3), 0u);
}

TEST(CountOpportunities, AllQuiet) {
  const std::vector<std::uint32_t> counts(20, 0);
  EXPECT_EQ(count_convergence_opportunities(counts, 3), 0u);
}

}  // namespace
}  // namespace neatbound::chains
