#include "chains/frequencies.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "sim/aggregate.hpp"

namespace neatbound::chains {
namespace {

TEST(SuffixFrequencies, HandCraftedTrace) {
  // Δ = 2; counts 1,0,1,0,0,0,1 → series H,N,H,N,N,N,H.
  // Classified from t=2 (second H): states:
  //   t2: ShortGapHead; t3: ShortGapTail(1); t4: LongGap (run hits Δ=2);
  //   wait — tail 1 + N → tail 2 > Δ−1=1 → LongGap at t4; t5: LongGap;
  //   t6: LongGapTail(0).
  const std::vector<std::uint32_t> counts = {1, 0, 1, 0, 0, 0, 1};
  const auto report = suffix_frequencies(counts, 2);
  const SuffixStateSpace space(2);
  EXPECT_EQ(report.total_rounds, 7u);
  EXPECT_EQ(report.classified_rounds, 5u);
  EXPECT_EQ(report.visits[space.index_of({SuffixKind::kShortGapHead, 0})],
            1u);
  EXPECT_EQ(report.visits[space.index_of({SuffixKind::kShortGapTail, 1})],
            1u);
  EXPECT_EQ(report.visits[space.index_of({SuffixKind::kLongGap, 0})], 2u);
  EXPECT_EQ(report.visits[space.index_of({SuffixKind::kLongGapTail, 0})],
            1u);
}

TEST(SuffixFrequencies, EmptyTrace) {
  const std::vector<std::uint32_t> counts;
  const auto report = suffix_frequencies(counts, 3);
  EXPECT_EQ(report.classified_rounds, 0u);
  EXPECT_EQ(report.frequency(0), 0.0);
}

TEST(SuffixFrequencies, MultiBlockRoundsCountAsH) {
  const std::vector<std::uint32_t> counts = {3, 2, 7};
  const auto report = suffix_frequencies(counts, 2);
  const SuffixStateSpace space(2);
  // H,H,H: classified from the 2nd round; both are ShortGapHead.
  EXPECT_EQ(report.visits[space.index_of({SuffixKind::kShortGapHead, 0})],
            2u);
}

// The pipeline test: simulate per-round binomial mining, classify, and
// compare the visit frequencies with the Eq. (37) stationary law.
struct PipelineCase {
  std::uint64_t delta;
  double honest_trials;
  double p;
};

class FrequencyPipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(FrequencyPipeline, EmpiricalMatchesClosedForm) {
  const auto [delta, trials, p] = GetParam();
  sim::AggregateConfig config;
  config.honest_trials = trials;
  config.adversary_trials = 0.0;
  config.p = p;
  config.delta = delta;
  config.rounds = 400000;
  config.seed = 321;
  std::vector<std::uint32_t> trace;
  (void)sim::run_aggregate_traced(config, trace);

  const auto report = suffix_frequencies(trace, delta);
  const SuffixStateSpace space(delta);
  const double alpha = 1.0 - std::pow(1.0 - p, trials);
  // Dependent-sample tolerance: generous 5/sqrt(T) plus a floor.
  const double tolerance =
      5.0 / std::sqrt(static_cast<double>(report.classified_rounds)) + 1e-3;
  EXPECT_LT(max_frequency_error(report, space, alpha), tolerance);
  EXPECT_GT(static_cast<double>(report.classified_rounds),
            0.9 * static_cast<double>(report.total_rounds));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FrequencyPipeline,
    ::testing::Values(PipelineCase{1, 100, 0.002},
                      PipelineCase{2, 150, 0.001},
                      PipelineCase{4, 150, 0.001},
                      PipelineCase{8, 200, 0.0005},
                      PipelineCase{3, 50, 0.01}));

}  // namespace
}  // namespace neatbound::chains
