#include "bounds/confirmation.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "bounds/zhao.hpp"
#include "support/contracts.hpp"

namespace neatbound::bounds {
namespace {

ProtocolParams comfy_params() {
  // c = 6 at ν = 0.25, Δ = 4: margin well above 1.
  return ProtocolParams::from_c(200, 4, 0.25, 6.0);
}

TEST(Confirmation, BoundDecomposition) {
  const auto bound = confirmation_failure_bound(comfy_params(), 4.0, 1e6);
  EXPECT_GT(bound.delta1, 0.0);
  EXPECT_GT(bound.delta2, 0.0);
  EXPECT_LT(bound.delta2, 1.0);
  EXPECT_GT(bound.delta3, 0.0);
  EXPECT_LT(bound.log_c_tail, 0.0);
  EXPECT_LT(bound.log_a_tail, 0.0);
  // Union bound at least as large as each part.
  EXPECT_GE(bound.log_failure, bound.log_c_tail);
  EXPECT_GE(bound.log_failure, bound.log_a_tail);
}

TEST(Confirmation, Eq23SplitIsValid) {
  // (1−δ₂)(1+δ₁) − (1+δ₃) must be positive — that's what makes the
  // surviving gap Ω(T) in display (25).
  const auto bound = confirmation_failure_bound(comfy_params(), 4.0, 1e5);
  const double gap = (1.0 - bound.delta2) * (1.0 + bound.delta1) -
                     (1.0 + bound.delta3);
  EXPECT_GT(gap, 0.0);
}

TEST(Confirmation, ExponentialDecayInT) {
  // ln failure must scale linearly with T (the paper's exp(−Ω(T))).
  const auto params = comfy_params();
  const auto b1 = confirmation_failure_bound(params, 4.0, 2e6);
  const auto b2 = confirmation_failure_bound(params, 4.0, 4e6);
  EXPECT_NEAR(b2.log_c_tail, 2.0 * b1.log_c_tail, std::fabs(b1.log_c_tail) * 0.01 + 1.0);
}

TEST(Confirmation, WindowMeetsTarget) {
  const auto params = comfy_params();
  const auto window =
      required_confirmation_window(params, 4.0, 1e-9, 1e12);
  ASSERT_TRUE(window.has_value());
  EXPECT_GT(window->rounds, 0.0);
  const auto at_window =
      confirmation_failure_bound(params, 4.0, window->rounds * 1.01);
  EXPECT_LE(at_window.log_failure, std::log(1e-9) + 0.1);
  // Just below the window the target must not be met.
  const auto below =
      confirmation_failure_bound(params, 4.0, window->rounds * 0.9);
  EXPECT_GT(below.log_failure, std::log(1e-9));
}

TEST(Confirmation, TighterTargetNeedsLongerWindow) {
  const auto params = comfy_params();
  const auto loose = required_confirmation_window(params, 4.0, 1e-3);
  const auto tight = required_confirmation_window(params, 4.0, 1e-12);
  ASSERT_TRUE(loose.has_value());
  ASSERT_TRUE(tight.has_value());
  EXPECT_GT(tight->rounds, loose->rounds);
}

TEST(Confirmation, ThinnerMarginNeedsLongerWindow) {
  const auto strong = ProtocolParams::from_c(200, 4, 0.15, 6.0);
  const auto weak = ProtocolParams::from_c(200, 4, 0.35, 6.0);
  const auto ws = required_confirmation_window(strong, 4.0, 1e-9);
  const auto ww = required_confirmation_window(weak, 4.0, 1e-9);
  ASSERT_TRUE(ws.has_value());
  ASSERT_TRUE(ww.has_value());
  EXPECT_GT(ww->rounds, ws->rounds);
}

TEST(Confirmation, NoWindowBelowBound) {
  // Below the consistency bound the margin is ≤ 1: no window exists.
  const auto params = ProtocolParams::from_c(200, 4, 0.4, 0.8);
  ASSERT_LT(theorem1_margin(params).log(), 0.0);
  EXPECT_FALSE(required_confirmation_window(params, 4.0, 1e-9).has_value());
}

TEST(Confirmation, LargerPiNormWeakensBound) {
  const auto params = comfy_params();
  const auto tight = confirmation_failure_bound(params, 4.0, 1e6, 1.0);
  const auto loose = confirmation_failure_bound(params, 4.0, 1e6, 100.0);
  EXPECT_LT(tight.log_c_tail, loose.log_c_tail);
}

TEST(Confirmation, ContractChecks) {
  EXPECT_THROW((void)confirmation_failure_bound(comfy_params(), 0.5, 1e5),
               ContractViolation);
  EXPECT_THROW((void)confirmation_failure_bound(comfy_params(), 4.0, 0.0),
               ContractViolation);
  EXPECT_THROW((void)required_confirmation_window(comfy_params(), 4.0, 2.0),
               ContractViolation);
}

}  // namespace
}  // namespace neatbound::bounds
