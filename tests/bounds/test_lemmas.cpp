// Mechanical verification of the proof chain (52)–(59): each lemma's
// inequality is checked across a parameter grid, and the implication
// chain is checked end-to-end (whenever the (k+1)-th condition holds, the
// k-th must hold too).
#include "bounds/lemmas.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "bounds/zhao.hpp"
#include "support/contracts.hpp"

namespace neatbound::bounds {
namespace {

struct SweepCase {
  double nu;
  double delta;
  double eps1;
  double eps2;
};

class LemmaSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  /// A parameter point satisfying Inequality (50) with slack: c is put at
  /// 2× the Theorem-2 infimum.
  [[nodiscard]] ProtocolParams params() const {
    const auto [nu, delta, eps1, eps2] = GetParam();
    const double c = 2.0 * theorem2_c_infimum(nu, delta);
    return ProtocolParams::from_c(1e5, delta, nu, c);
  }
  [[nodiscard]] double delta4() const {
    const auto [nu, delta, eps1, eps2] = GetParam();
    return delta4_from_epsilons(nu, eps1, eps2);
  }
};

TEST_P(LemmaSweep, Lemma2AlphaOneLowerBound) {
  const Lemma2Sides sides = lemma2_sides(params());
  EXPECT_TRUE(sides.holds())
      << "alpha1=" << sides.alpha1 << " lower=" << sides.lower_bound;
}

TEST_P(LemmaSweep, Lemma3Inequality70) {
  const auto [nu, delta, eps1, eps2] = GetParam();
  const auto p = params();
  // Lemma 3 requires condition (50); enforce it before asserting (70).
  if (!theorem3_pn_condition(p, eps1)) GTEST_SKIP();
  const Lemma3Sides sides = lemma3_sides(p, eps1, delta4());
  EXPECT_GT(sides.delta1, 0.0);
  EXPECT_TRUE(sides.holds()) << "lhs=" << sides.lhs << " rhs=" << sides.rhs;
}

TEST_P(LemmaSweep, Proposition2Positive) {
  const auto [nu, delta, eps1, eps2] = GetParam();
  EXPECT_GT(proposition2_value(nu, delta, delta4()), 0.0);
}

TEST_P(LemmaSweep, Lemma5ThresholdOrdering) {
  const Lemma5Sides sides = lemma5_sides(params(), delta4());
  EXPECT_TRUE(sides.holds()) << "lhs=" << sides.lhs << " rhs=" << sides.rhs;
}

TEST_P(LemmaSweep, Lemma6StrictOrdering) {
  const auto [nu, delta, eps1, eps2] = GetParam();
  const Lemma6Sides sides = lemma6_sides(nu, delta, delta4());
  EXPECT_TRUE(sides.holds()) << "lhs=" << sides.lhs << " rhs=" << sides.rhs;
}

TEST_P(LemmaSweep, Lemma8EpsilonBound) {
  const auto [nu, delta, eps1, eps2] = GetParam();
  const Lemma8Sides sides = lemma8_sides(nu, eps1, eps2);
  EXPECT_TRUE(sides.holds()) << "lhs=" << sides.lhs << " rhs=" << sides.rhs;
}

TEST_P(LemmaSweep, ImplicationChainEndToEnd) {
  // If condition (71) holds then (66) holds then (10) holds — i.e., the
  // chain Lemma 3 → Lemma 2 → Theorem 1 fires at this parameter point.
  const auto [nu, delta, eps1, eps2] = GetParam();
  const auto p = params();
  if (!theorem3_pn_condition(p, eps1)) GTEST_SKIP();
  const double d4 = delta4();
  const double d1 = delta1_from_delta4(nu, eps1, d4);
  if (lemma3_condition_71(p, d4)) {
    EXPECT_TRUE(lemma2_condition_66(p, d1))
        << "Lemma 3's conclusion failed to imply Lemma 2's antecedent";
    EXPECT_TRUE(theorem1_holds(p, d1))
        << "Lemma 2's conclusion failed to imply Theorem 1";
  }
}

TEST_P(LemmaSweep, CThresholdChainMonotone) {
  // The chain of c-thresholds must be ordered:
  //   (74) ≤ (77) < (80) ≤ (83)-with-μ/Δ ≤ (51)-shape,
  // so each weakening step only raises the required c.
  const auto [nu, delta, eps1, eps2] = GetParam();
  const auto p = params();
  const double d4 = delta4();
  const double lg = std::log((1.0 - nu) / nu);
  const double t74 = lemma4_c_threshold(p, d4);
  const Lemma5Sides l5 = lemma5_sides(p, d4);
  const double t77 = l5.lhs;
  const double mu = 1.0 - nu;
  const double one_minus_root = -std::expm1(-lg / (2.0 * delta));
  const double t80 =
      mu / (delta * one_minus_root) * (1.0 + d4 / (lg - d4));
  const double t83 =
      (2.0 * mu / lg + mu / delta) * (1.0 + d4 / (lg - d4));
  EXPECT_LE(t74, t77 * (1.0 + 1e-12));
  EXPECT_LT(t77, t80);
  EXPECT_LE(t80, t83 * (1.0 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LemmaSweep,
    ::testing::Values(SweepCase{0.1, 1e13, 0.3, 0.1},
                      SweepCase{0.25, 1e13, 0.5, 0.01},
                      SweepCase{0.4, 1e13, 0.1, 0.5},
                      SweepCase{0.45, 1e6, 0.2, 0.05},
                      SweepCase{0.05, 1e3, 0.7, 0.3},
                      SweepCase{0.3, 100.0, 0.4, 0.2},
                      SweepCase{0.2, 16.0, 0.25, 0.1},
                      SweepCase{0.35, 4.0, 0.3, 0.4}));

TEST(Lemma2, ExactlyEq100) {
  // α₁ ≥ pμn(1−pμn) — also check it is reasonably tight for small pμn.
  const ProtocolParams p(1000, 1e-5, 2, 0.2);
  const Lemma2Sides sides = lemma2_sides(p);
  EXPECT_TRUE(sides.holds());
  EXPECT_NEAR(sides.alpha1 / sides.lower_bound, 1.0, 1e-3);
}

TEST(Lemma2, RequiresCondition65) {
  // pμn ≥ 1 violates (65).
  const ProtocolParams p(1000, 2e-3, 2, 0.2);  // pμn = 1.6
  EXPECT_THROW((void)lemma2_sides(p), ContractViolation);
}

TEST(Lemma4, ThresholdImpliesInequality71) {
  // Construct params with c exactly at the Lemma-4 threshold ×(1+ε) and
  // verify (71) holds; at ×(1−ε) it must fail.
  const double nu = 0.3, delta = 8.0;
  const double eps1 = 0.3, eps2 = 0.1;
  const double d4 = delta4_from_epsilons(nu, eps1, eps2);
  const auto probe = ProtocolParams::from_c(1e4, delta, nu, 5.0);
  const double threshold = lemma4_c_threshold(probe, d4);
  // Note: the threshold depends on p only through c; re-solve with the
  // same n, Δ.
  const auto above =
      ProtocolParams::from_c(1e4, delta, nu, threshold * 1.0001);
  EXPECT_TRUE(lemma3_condition_71(above, d4));
  const auto below =
      ProtocolParams::from_c(1e4, delta, nu, threshold * 0.99);
  EXPECT_FALSE(lemma3_condition_71(below, d4));
}

TEST(Proposition2, RequiresDelta4BelowLog) {
  EXPECT_THROW((void)proposition2_value(0.3, 4.0, 10.0), ContractViolation);
  EXPECT_THROW((void)proposition2_value(0.3, 4.0, 0.0), ContractViolation);
}

}  // namespace
}  // namespace neatbound::bounds
