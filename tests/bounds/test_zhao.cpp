#include "bounds/zhao.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace neatbound::bounds {
namespace {

constexpr double kPaperN = 1e5;
constexpr double kPaperDelta = 1e13;

TEST(Theorem1, SidesMatchDefinitions) {
  const ProtocolParams params(200, 1e-4, 4, 0.25);
  const Theorem1Sides sides = theorem1_sides(params);
  const double expected_lhs =
      params.alpha_bar().pow(2.0 * params.delta()).log() +
      params.alpha1().log();
  EXPECT_NEAR(sides.convergence_rate.log(), expected_lhs, 1e-12);
  EXPECT_NEAR(sides.adversary_rate.linear(), params.adversary_rate(), 1e-15);
}

TEST(Theorem1, HoldsWhenCWellAboveBound) {
  // ν = 0.2 → neat bound ≈ 2·0.8/ln4 ≈ 1.154; c = 10 is far above.
  const auto params = ProtocolParams::from_c(kPaperN, kPaperDelta, 0.2, 10.0);
  EXPECT_TRUE(theorem1_holds(params, 0.1));
  EXPECT_GT(theorem1_margin(params).log(), 0.0);
}

TEST(Theorem1, FailsWhenCWellBelowBound) {
  const auto params = ProtocolParams::from_c(kPaperN, kPaperDelta, 0.2, 0.5);
  EXPECT_FALSE(theorem1_holds(params, 0.01));
  EXPECT_LT(theorem1_margin(params).log(), 0.0);
}

TEST(Theorem1, RequiresPositiveDelta1) {
  const auto params = ProtocolParams::from_c(kPaperN, kPaperDelta, 0.2, 10.0);
  EXPECT_THROW((void)theorem1_holds(params, 0.0), ContractViolation);
}

TEST(NeatBound, HandValues) {
  // ν = 1/3: 2·(2/3)/ln2 ≈ 1.9239.
  EXPECT_NEAR(neat_bound_c(1.0 / 3.0), (4.0 / 3.0) / std::log(2.0), 1e-12);
  // ν → 0: bound → 0 (any c tolerates a vanishing adversary).
  EXPECT_LT(neat_bound_c(1e-30), 0.03);
}

TEST(NeatBound, IncreasingInNu) {
  double prev = 0.0;
  for (double nu = 0.01; nu < 0.5; nu += 0.01) {
    const double cur = neat_bound_c(nu);
    EXPECT_GT(cur, prev) << "nu=" << nu;
    prev = cur;
  }
}

TEST(NeatBound, DivergesAtOneHalf) {
  EXPECT_GT(neat_bound_c(0.4999999), 1e5);
}

TEST(Theorem1CMin, FrontierBracketsThePredicate) {
  const double nu = 0.3, delta1 = 0.05;
  const double c_min = theorem1_c_min(nu, kPaperN, kPaperDelta, delta1);
  ASSERT_TRUE(std::isfinite(c_min));
  EXPECT_FALSE(theorem1_holds(
      ProtocolParams::from_c(kPaperN, kPaperDelta, nu, c_min * 0.999),
      delta1));
  EXPECT_TRUE(theorem1_holds(
      ProtocolParams::from_c(kPaperN, kPaperDelta, nu, c_min * 1.001),
      delta1));
}

TEST(Theorem1CMin, GrowsWithDelta1) {
  // A larger witness δ₁ demands a larger c (more margin).
  const double nu = 0.25;
  const double small = theorem1_c_min(nu, kPaperN, kPaperDelta, 0.01);
  const double large = theorem1_c_min(nu, kPaperN, kPaperDelta, 1.0);
  EXPECT_GT(large, small);
}

TEST(Theorem1CMin, ApproachesNeatBoundAsDelta1Vanishes) {
  const double nu = 0.2;
  const double c_min = theorem1_c_min(nu, kPaperN, kPaperDelta, 1e-9);
  EXPECT_NEAR(c_min, neat_bound_c(nu), neat_bound_c(nu) * 1e-3);
}

TEST(Theorem2, InfimumBarelyAboveNeatBoundAtPaperDelta) {
  // The whole point of the paper: at Δ = 10¹³ the full Theorem 2 threshold
  // exceeds 2μ/ln(μ/ν) only microscopically.
  for (const double nu : {0.1, 0.25, 0.4, 0.49}) {
    const double neat = neat_bound_c(nu);
    const double full = theorem2_c_infimum(nu, kPaperDelta);
    EXPECT_GT(full, neat);
    EXPECT_LT((full - neat) / neat, 1e-11) << "nu=" << nu;
  }
}

TEST(Theorem2, InfimumVisiblyAboveNeatBoundAtSmallDelta) {
  // At Δ = 4 the 1/Δ and ε₁ terms matter.
  const double neat = neat_bound_c(0.25);
  const double full = theorem2_c_infimum(0.25, 4.0);
  EXPECT_GT((full - neat) / neat, 0.05);
}

TEST(Theorem2, InfimumIsTheOptimalEpsilonChoice) {
  // For any admissible (ε₁, ε₂), the RHS of (11) must be ≥ the infimum.
  const double nu = 0.3, delta = 100.0;
  const double inf = theorem2_c_infimum(nu, delta);
  const double mu = 1.0 - nu;
  const double lg = std::log(mu / nu);
  for (const double eps1 : {0.05, 0.2, 0.5, 0.9}) {
    for (const double eps2 : {1e-9, 0.01, 0.3}) {
      const double term1 =
          (2.0 * mu / lg + 1.0 / delta) * (1.0 + eps2) / (1.0 - eps1);
      const double term2 = (lg + 1.0) * mu / (eps1 * delta * lg);
      EXPECT_GE(std::max(term1, term2), inf * (1.0 - 1e-12));
    }
  }
}

TEST(Theorem2, PredicateConsistentWithConditions) {
  const auto params = ProtocolParams::from_c(kPaperN, kPaperDelta, 0.3, 5.0);
  // Pick the equalizing ε₁ and tiny ε₂: both conditions must pass since
  // c = 5 is far above the infimum (≈ 1.65).
  const double mu = params.mu();
  const double lg = params.log_mu_over_nu();
  const double a = 2.0 * mu / lg + 1.0 / params.delta();
  const double b = (lg + 1.0) * mu / (params.delta() * lg);
  const double eps1 = b / (a + b);
  EXPECT_TRUE(theorem2_holds(params, eps1, 1e-6));
  EXPECT_TRUE(theorem3_pn_condition(params, eps1));
  EXPECT_TRUE(theorem3_c_condition(params, eps1, 1e-6));
}

TEST(Theorem2, FailsBelowInfimum) {
  const double nu = 0.3;
  const double c_inf = theorem2_c_infimum(nu, kPaperDelta);
  const auto params =
      ProtocolParams::from_c(kPaperN, kPaperDelta, nu, c_inf * 0.9);
  for (const double eps1 : {0.01, 0.1, 0.5, 0.9}) {
    EXPECT_FALSE(theorem2_holds(params, eps1, 1e-9));
  }
}

TEST(Deltas, Positivity6063) {
  // Eq. (60)/(61): δ₄ > 0 and δ₁ > 0 for all 0 < ε₁ < 1, ε₂ > 0 (the
  // paper's display (62)–(63)).
  for (const double nu : {0.05, 0.25, 0.45}) {
    for (const double eps1 : {0.05, 0.4, 0.9}) {
      for (const double eps2 : {1e-6, 0.1, 2.0}) {
        const double d4 = delta4_from_epsilons(nu, eps1, eps2);
        EXPECT_GT(d4, 0.0);
        const double d1 = delta1_from_delta4(nu, eps1, d4);
        EXPECT_GT(d1, 0.0)
            << "nu=" << nu << " eps1=" << eps1 << " eps2=" << eps2;
        // δ₄ < ln(μ/ν) (condition 73, shown in Remark 5).
        EXPECT_LT(d4, std::log((1.0 - nu) / nu));
      }
    }
  }
}

TEST(Lemma7, SandwichHoldsAcrossScales) {
  for (const double nu : {1e-10, 0.01, 0.25, 0.49}) {
    for (const double delta : {1.0, 4.0, 1e3, 1e13}) {
      const Lemma7Sandwich s = lemma7_sandwich(nu, delta);
      EXPECT_TRUE(s.holds()) << "nu=" << nu << " delta=" << delta
                             << " [" << s.lower << ", " << s.middle << ", "
                             << s.upper << "]";
    }
  }
}

TEST(Lemma7, MiddleApproachesLowerForLargeDelta) {
  const Lemma7Sandwich s = lemma7_sandwich(0.3, 1e13);
  EXPECT_NEAR(s.middle, s.lower, s.lower * 1e-9);
}

// --- Remark 1 ------------------------------------------------------------

TEST(Remark1, FirstExponentPairMatchesPaper) {
  // (δ₁, δ₂) = (1/6, 1/2) at Δ = 10¹³ → Inequalities (14)–(15):
  //   10⁻⁶³ ≤ ν ≤ ½ − 10⁻⁷ and factor ≈ 1 + 5·10⁻⁵.
  const Remark1Window w = remark1_window(1e13, 1.0 / 6.0, 1.0 / 2.0);
  // ν_lo ≈ e^{−Δ^{1/6}} = e^{−147.36} ≈ 9.1·10⁻⁶⁵ (paper rounds to 10⁻⁶³).
  EXPECT_NEAR(std::log10(w.nu_lo), -64.0, 1.0);
  // ½ − ν_hi ≈ 7.9·10⁻⁸ (paper: 10⁻⁷).
  EXPECT_NEAR(std::log10(w.half_minus_hi), -7.1, 0.2);
  // factor − 1 ≈ 4.64·10⁻⁵ (paper: 5·10⁻⁵).
  EXPECT_NEAR(w.factor_minus_one, 5e-5, 1e-5);
}

TEST(Remark1, SecondExponentPairMatchesPaper) {
  // (δ₁, δ₂) = (1/8, 2/3) → Inequalities (16)–(17):
  //   10⁻¹⁸ ≤ ν ≤ ½ − 10⁻⁹ and factor ≈ 1 + 2·10⁻³.
  const Remark1Window w = remark1_window(1e13, 1.0 / 8.0, 2.0 / 3.0);
  EXPECT_NEAR(std::log10(w.nu_lo), -18.3, 0.5);
  EXPECT_NEAR(std::log10(w.half_minus_hi), -9.3, 0.3);
  EXPECT_NEAR(w.factor_minus_one, 2e-3, 3e-4);
}

TEST(Remark1, WindowWidensAsFactorLoosens) {
  // Raising δ₂ extends the upper end of the window (ν closer to ½) at the
  // price of a larger factor — the trade-off Remark 1 walks through.
  const Remark1Window tight = remark1_window(1e13, 1.0 / 6.0, 1.0 / 2.0);
  const Remark1Window wide = remark1_window(1e13, 1.0 / 8.0, 2.0 / 3.0);
  EXPECT_LT(wide.half_minus_hi, tight.half_minus_hi);
  EXPECT_GT(wide.factor_minus_one, tight.factor_minus_one);
}

TEST(Remark1, ThresholdBarelyAboveNeatBound) {
  const double nu = 0.25;
  const double threshold =
      remark1_c_threshold(nu, 1e13, 1.0 / 6.0, 1.0 / 2.0, /*eps2=*/0.0);
  const double neat = neat_bound_c(nu);
  EXPECT_GT(threshold, neat);
  EXPECT_LT((threshold - neat) / neat, 1e-4);
}

TEST(Remark1, RejectsProbeOutsideWindow) {
  EXPECT_THROW(
      (void)remark1_c_threshold(1e-70, 1e13, 1.0 / 8.0, 2.0 / 3.0, 0.0),
      ContractViolation);
}

TEST(Remark1, RejectsBadExponents) {
  EXPECT_THROW((void)remark1_window(1e13, 0.5, 0.6), ContractViolation);
  EXPECT_THROW((void)remark1_window(1e13, 0.0, 0.5), ContractViolation);
}

}  // namespace
}  // namespace neatbound::bounds
