#include "bounds/frontier.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "bounds/zhao.hpp"

namespace neatbound::bounds {
namespace {

constexpr double kN = 1e5;
constexpr double kDelta = 1e13;

TEST(Frontier, NamesAreDistinct) {
  EXPECT_NE(bound_name(BoundKind::kZhaoNeat),
            bound_name(BoundKind::kPssConsistency));
  EXPECT_FALSE(bound_name(BoundKind::kPssAttack).empty());
}

TEST(Frontier, NuMaxIsOnTheFrontier) {
  // certifies just below, fails just above — for every predicate bound.
  for (const BoundKind kind :
       {BoundKind::kZhaoNeat, BoundKind::kZhaoTheorem2,
        BoundKind::kZhaoTheorem1Exact, BoundKind::kPssConsistencyExact,
        BoundKind::kKifferCorrected}) {
    const double c = 5.0;
    const double frontier = nu_max(kind, c, kN, kDelta);
    ASSERT_GT(frontier, 0.0) << bound_name(kind);
    const auto below =
        ProtocolParams::from_c(kN, kDelta, frontier * 0.999, c);
    const auto above = ProtocolParams::from_c(
        kN, kDelta, std::min(0.4999, frontier * 1.001), c);
    EXPECT_TRUE(certifies(kind, below)) << bound_name(kind);
    EXPECT_FALSE(certifies(kind, above)) << bound_name(kind);
  }
}

TEST(Frontier, PaperOrderingMagentaAboveBlue) {
  // The paper's headline comparison: the Zhao frontier strictly dominates
  // the PSS frontier at every plotted c.
  for (const double c : {0.1, 0.3, 1.0, 2.0, 3.0, 10.0, 30.0, 100.0}) {
    const double magenta = nu_max(BoundKind::kZhaoNeat, c, kN, kDelta);
    const double blue = nu_max(BoundKind::kPssConsistency, c, kN, kDelta);
    EXPECT_GT(magenta, blue) << "c=" << c;
  }
}

TEST(Frontier, AttackLineAboveMagenta) {
  // No contradiction: the attack threshold must lie above what the bound
  // certifies (the gap is the open question the paper's §I discusses).
  for (const double c : {0.1, 1.0, 3.0, 10.0, 100.0}) {
    const double magenta = nu_max(BoundKind::kZhaoNeat, c, kN, kDelta);
    const double red = nu_max(BoundKind::kPssAttack, c, kN, kDelta);
    EXPECT_GT(red, magenta) << "c=" << c;
  }
}

TEST(Frontier, Theorem1DominatesTheorem2) {
  // Theorem 2 is derived from Theorem 1 by weakening; the exact Markov
  // frontier must tolerate at least as much at every c.
  for (const double c : {1.0, 2.0, 5.0, 20.0}) {
    const double exact = nu_max(BoundKind::kZhaoTheorem1Exact, c, kN, kDelta);
    const double neat = nu_max(BoundKind::kZhaoTheorem2, c, kN, kDelta);
    EXPECT_GE(exact, neat * (1.0 - 1e-6)) << "c=" << c;
  }
}

TEST(Frontier, NeatAndTheorem2AgreeAtPaperDelta) {
  for (const double c : {0.5, 1.0, 5.0, 50.0}) {
    const double neat = nu_max(BoundKind::kZhaoNeat, c, kN, kDelta);
    const double full = nu_max(BoundKind::kZhaoTheorem2, c, kN, kDelta);
    if (neat > 0.0) {
      EXPECT_NEAR(full / neat, 1.0, 1e-6) << "c=" << c;
    }
  }
}

TEST(Frontier, MagentaHandValues) {
  // Solve c = 2(1−ν)/ln((1−ν)/ν) by hand at ν = 1/3: c ≈ 1.9239.  So at
  // c = 1.9239 the frontier is ≈ 1/3.
  const double c = (4.0 / 3.0) / std::log(2.0);
  EXPECT_NEAR(nu_max(BoundKind::kZhaoNeat, c, kN, kDelta), 1.0 / 3.0, 1e-6);
}

TEST(Frontier, NuMaxMonotoneInC) {
  for (const BoundKind kind :
       {BoundKind::kZhaoNeat, BoundKind::kPssConsistency,
        BoundKind::kPssAttack, BoundKind::kZhaoTheorem1Exact}) {
    double prev = -1.0;
    for (const double c : {0.2, 0.5, 1.0, 2.5, 6.0, 15.0, 40.0, 100.0}) {
      const double cur = nu_max(kind, c, kN, kDelta);
      EXPECT_GE(cur, prev - 1e-9) << bound_name(kind) << " c=" << c;
      prev = cur;
    }
  }
}

TEST(Frontier, CMinInvertsNuMax) {
  for (const BoundKind kind :
       {BoundKind::kZhaoNeat, BoundKind::kZhaoTheorem2,
        BoundKind::kPssConsistency, BoundKind::kZhaoTheorem1Exact}) {
    for (const double nu : {0.1, 0.3, 0.45}) {
      const double c = c_min(kind, nu, kN, kDelta);
      ASSERT_TRUE(std::isfinite(c)) << bound_name(kind);
      const double back = nu_max(kind, c * 1.0001, kN, kDelta);
      EXPECT_NEAR(back, nu, nu * 0.01)
          << bound_name(kind) << " nu=" << nu;
    }
  }
}

TEST(Frontier, NuMaxApproachesHalfForHugeC) {
  EXPECT_GT(nu_max(BoundKind::kZhaoNeat, 1e6, kN, kDelta), 0.499);
  EXPECT_GT(nu_max(BoundKind::kPssConsistency, 1e6, kN, kDelta), 0.499);
}

TEST(Frontier, SmallCStillToleratesSomething) {
  // Unlike PSS (zero below c = 2), the Zhao bound certifies a positive —
  // if tiny — ν even at c = 0.1 (visible in Figure 1's left edge).
  const double magenta = nu_max(BoundKind::kZhaoNeat, 0.1, kN, kDelta);
  EXPECT_GT(magenta, 0.0);
  EXPECT_LT(magenta, 1e-6);
  EXPECT_EQ(nu_max(BoundKind::kPssConsistency, 0.1, kN, kDelta), 0.0);
}

TEST(Frontier, CertifiesAttackKindMeansNoAttack) {
  const auto safe = ProtocolParams::from_c(kN, kDelta, 0.1, 10.0);
  EXPECT_TRUE(certifies(BoundKind::kPssAttack, safe));
  const auto unsafe = ProtocolParams::from_c(kN, kDelta, 0.45, 0.5);
  EXPECT_FALSE(certifies(BoundKind::kPssAttack, unsafe));
}

}  // namespace
}  // namespace neatbound::bounds
