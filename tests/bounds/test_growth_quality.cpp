#include "bounds/growth_quality.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <memory>

#include "sim/engine.hpp"
#include "sim/strategies.hpp"
#include "support/contracts.hpp"

namespace neatbound::bounds {
namespace {

ProtocolParams lab_params(double delta, double c, double nu = 0.2) {
  return ProtocolParams::from_c(40, delta, nu, c);
}

TEST(Growth, EstimatesStayInsideTheAlphaEnvelope) {
  // Both estimates are positive and never exceed α (one level per
  // H-round is the hard ceiling).
  for (const double delta : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    for (const double c : {1.0, 4.0, 16.0}) {
      const auto params = lab_params(delta, c);
      const double pess = growth_pessimistic(params);
      const double renewal = growth_renewal(params);
      const double upper = growth_upper(params);
      EXPECT_GT(pess, 0.0) << "delta=" << delta << " c=" << c;
      EXPECT_LE(pess, upper * (1.0 + 1e-12));
      EXPECT_LE(renewal, upper * (1.0 + 1e-12));
    }
  }
}

TEST(Growth, EstimatesCrossOverWithDeltaAlpha) {
  // For small Δα the quiet-predecessor estimate exceeds the renewal one
  // ((1−α)^{Δ−1}(1+Δα) > 1); for large Δα the inequality flips.  Both
  // behaviours are expected — the estimates answer slightly different
  // worst cases — and the simulator sits between them (see below).
  const auto sparse = lab_params(2.0, 8.0);   // Δα ≪ 1
  EXPECT_GT(growth_pessimistic(sparse), growth_renewal(sparse));
  const auto dense = lab_params(16.0, 0.5);   // Δα ≳ 1
  EXPECT_LT(growth_pessimistic(dense), growth_renewal(dense));
}

TEST(Growth, DeltaOneCollapsesPessimisticToAlpha) {
  const auto params = lab_params(1.0, 4.0);
  EXPECT_NEAR(growth_pessimistic(params), growth_upper(params), 1e-12);
}

TEST(Growth, SimulatedGrowthBracketedByBounds) {
  // Max-delay delivery, no adversary blocks: measured growth must lie in
  // [pessimistic, upper] and near the renewal estimate.
  for (const std::uint64_t delta : {2ULL, 6ULL}) {
    sim::EngineConfig config;
    config.miner_count = 40;
    config.adversary_fraction = 0.0;
    config.delta = delta;
    config.p = 0.003;
    config.rounds = 30000;
    config.seed = 17;
    sim::ExecutionEngine engine(
        config, std::make_unique<sim::MaxDelayAdversary>(delta));
    const auto result = engine.run();
    // All 40 simulated miners are honest; build params with μn = 40
    // (n = 50, ν = 0.2) so the growth formulas see the right α.
    const ProtocolParams params(50, 0.003, static_cast<double>(delta), 0.2);
    EXPECT_GE(result.chain.growth_per_round,
              growth_pessimistic(params) * 0.95)
        << "delta=" << delta;
    EXPECT_LE(result.chain.growth_per_round, growth_upper(params) * 1.05);
    EXPECT_NEAR(result.chain.growth_per_round, growth_renewal(params),
                growth_renewal(params) * 0.25);
  }
}

TEST(Quality, BoundsAndClamping) {
  const auto params = lab_params(4.0, 4.0, 0.3);
  const double q = quality_bound_for_growth(params, growth_renewal(params));
  EXPECT_GE(q, 0.0);
  EXPECT_LE(q, 1.0);
  // Absurdly small growth clamps to zero quality.
  EXPECT_EQ(quality_bound_for_growth(params, 1e-12), 0.0);
  EXPECT_THROW((void)quality_bound_for_growth(params, 0.0),
               ContractViolation);
}

TEST(Quality, IdealShareHandValues) {
  EXPECT_NEAR(quality_ideal_share(lab_params(4.0, 4.0, 0.25)),
              1.0 - 0.25 / 0.75, 1e-12);
  EXPECT_NEAR(quality_ideal_share(lab_params(4.0, 4.0, 0.4)),
              1.0 - 0.4 / 0.6, 1e-9);
}

TEST(Quality, PessimisticWeakerThanIdealShare) {
  // The adversarial displacement bound is weaker (lower) than the ideal
  // fair-share line whenever growth < honest mining rate.
  const auto params = lab_params(8.0, 2.0, 0.3);
  EXPECT_LE(quality_pessimistic(params),
            quality_ideal_share(params) + 1e-12);
}

TEST(Quality, SimulatedQualityAboveDisplacementBound) {
  // Measured quality under withholding must respect 1 − pνn/g with the
  // *measured* growth.
  sim::EngineConfig config;
  config.miner_count = 40;
  config.adversary_fraction = 0.3;
  config.delta = 3;
  config.p = 0.002;
  config.rounds = 40000;
  config.seed = 23;
  sim::ExecutionEngine engine(config,
                              std::make_unique<sim::PrivateWithholdAdversary>());
  const auto result = engine.run();
  const auto params = ProtocolParams::from_c(
      40, 3.0, 0.3, 1.0 / (0.002 * 40 * 3.0));
  const double bound = quality_bound_for_growth(
      params, result.chain.growth_per_round);
  EXPECT_GE(result.chain.quality, bound - 0.05);
}

}  // namespace
}  // namespace neatbound::bounds
