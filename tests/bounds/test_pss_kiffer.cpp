#include <cmath>
#include <gtest/gtest.h>

#include "bounds/kiffer.hpp"
#include "bounds/pss.hpp"
#include "support/contracts.hpp"

namespace neatbound::bounds {
namespace {

TEST(Pss, SidesMatchDefinition) {
  const ProtocolParams params(200, 1e-4, 4, 0.25);
  const PssSides sides = pss_sides(params);
  const double alpha = params.alpha().linear();
  EXPECT_NEAR(sides.lhs, alpha * (1.0 - 10.0 * alpha), 1e-12);
  EXPECT_NEAR(sides.rhs, params.adversary_rate(), 1e-15);
}

TEST(Pss, ClosedFormNuMaxHandValues) {
  // c = 4: (2−4+√8)/2 = (−2+2.828)/2 ≈ 0.4142.
  EXPECT_NEAR(pss_consistency_nu_max(4.0), (std::sqrt(8.0) - 2.0) / 2.0,
              1e-12);
  // c ≤ 2: no tolerance.
  EXPECT_EQ(pss_consistency_nu_max(2.0), 0.0);
  EXPECT_EQ(pss_consistency_nu_max(0.5), 0.0);
}

TEST(Pss, ClosedFormApproachesHalf) {
  EXPECT_NEAR(pss_consistency_nu_max(1e6), 0.5, 1e-5);
}

TEST(Pss, CMinInvertsNuMax) {
  for (const double nu : {0.05, 0.2, 0.35, 0.45}) {
    const double c = pss_consistency_c_min(nu);
    EXPECT_NEAR(pss_consistency_nu_max(c), nu, 1e-9) << "nu=" << nu;
  }
}

TEST(Pss, CMinHandValue) {
  // ν = ¼: 2·(0.75)²/0.5 = 2.25.
  EXPECT_NEAR(pss_consistency_c_min(0.25), 2.25, 1e-12);
}

TEST(Pss, AttackThresholdHandValues) {
  // c = 1: (2+1−√5)/2 ≈ 0.38197.
  EXPECT_NEAR(pss_attack_nu_threshold(1.0), (3.0 - std::sqrt(5.0)) / 2.0,
              1e-12);
  // Large c → ½.
  EXPECT_NEAR(pss_attack_nu_threshold(1e8), 0.5, 1e-8);
}

TEST(Pss, AttackConditionMatchesThreshold) {
  for (const double c : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    const double threshold = pss_attack_nu_threshold(c);
    EXPECT_TRUE(pss_attack_applies(threshold * 1.001, c)) << "c=" << c;
    EXPECT_FALSE(pss_attack_applies(threshold * 0.999, c)) << "c=" << c;
  }
}

TEST(Pss, ExactConditionTracksClosedFormAtPaperScale) {
  // At n = 10⁵, Δ = 10¹³ the approximations α ≈ μnp and 2Δ+2 ≈ 2Δ are
  // excellent, so exact and closed-form frontiers nearly coincide.
  const double c = 5.0;
  const double closed = pss_consistency_nu_max(c);
  const auto just_below =
      ProtocolParams::from_c(1e5, 1e13, closed * 0.995, c);
  const auto just_above =
      ProtocolParams::from_c(1e5, 1e13, std::min(0.499, closed * 1.005), c);
  EXPECT_TRUE(pss_consistency_exact(just_below));
  EXPECT_FALSE(pss_consistency_exact(just_above));
}

TEST(Pss, ContractChecks) {
  EXPECT_THROW((void)pss_consistency_nu_max(0.0), ContractViolation);
  EXPECT_THROW((void)pss_consistency_c_min(0.6), ContractViolation);
  EXPECT_THROW((void)pss_attack_applies(0.0, 1.0), ContractViolation);
}

// --- Kiffer variants -----------------------------------------------------

TEST(Kiffer, CorrectedNeverExceedsPublished) {
  // ℓ_corrected = 1/α ≥ 1/(pμn) = ℓ_published (since α ≤ pμn), so the
  // corrected opportunity rate is the smaller (more conservative) one.
  for (const double c : {0.5, 2.0, 10.0}) {
    for (const double nu : {0.1, 0.3}) {
      const auto params = ProtocolParams::from_c(1000, 8, nu, c);
      EXPECT_LE(
          kiffer_opportunity_rate(params, KifferVariant::kCorrected),
          kiffer_opportunity_rate(params, KifferVariant::kAsPublished) *
              (1.0 + 1e-12));
    }
  }
}

TEST(Kiffer, VariantsCoincideForTinyBlockRate) {
  // As pμn → 0, α → pμn and the flagged error becomes harmless — exactly
  // the paper's point that the issue is with the *computation*, visible
  // whenever pμn is non-negligible.
  const auto params = ProtocolParams::from_c(1e5, 1e13, 0.2, 5.0);
  const double a = kiffer_opportunity_rate(params, KifferVariant::kCorrected);
  const double b =
      kiffer_opportunity_rate(params, KifferVariant::kAsPublished);
  EXPECT_NEAR(a / b, 1.0, 1e-9);
}

TEST(Kiffer, VariantsDivergeForLargeBlockRate) {
  // pμn = 0.8 per round: α = 1−e^{−0.8}·ish ≈ 0.55, visibly below pμn.
  // Δ = 1 keeps the 2Δ term from drowning the ℓ difference.
  const ProtocolParams params(1000, 1e-3, 1, 0.2);
  const double corrected =
      kiffer_opportunity_rate(params, KifferVariant::kCorrected);
  const double published =
      kiffer_opportunity_rate(params, KifferVariant::kAsPublished);
  EXPECT_LT(corrected / published, 0.9);
}

TEST(Kiffer, RateShape) {
  // rate = 1/(2Δ + 2ℓ); for the corrected variant with α and Δ known:
  const ProtocolParams params(100, 1e-3, 5, 0.25);
  const double alpha = params.alpha().linear();
  EXPECT_NEAR(kiffer_opportunity_rate(params, KifferVariant::kCorrected),
              1.0 / (10.0 + 2.0 / alpha), 1e-12);
}

TEST(Kiffer, ConditionMonotoneInNu) {
  // Higher ν must never turn a failing condition into a passing one.
  const double c = 3.0;
  bool prev = true;
  for (double nu = 0.05; nu < 0.5; nu += 0.05) {
    const auto params = ProtocolParams::from_c(1000, 8, nu, c);
    const bool now =
        kiffer_condition_holds(params, KifferVariant::kCorrected, 0.0);
    EXPECT_TRUE(prev || !now) << "non-monotone at nu=" << nu;
    prev = now;
  }
}

}  // namespace
}  // namespace neatbound::bounds
