#include "bounds/params.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace neatbound::bounds {
namespace {

TEST(ProtocolParams, StoresAndDerives) {
  const ProtocolParams params(1000, 1e-5, 10, 0.3);
  EXPECT_EQ(params.n(), 1000);
  EXPECT_EQ(params.p(), 1e-5);
  EXPECT_EQ(params.delta(), 10);
  EXPECT_EQ(params.nu(), 0.3);
  EXPECT_DOUBLE_EQ(params.mu(), 0.7);
  EXPECT_NEAR(params.c(), 1.0 / (1e-5 * 1000 * 10), 1e-9);
  EXPECT_DOUBLE_EQ(params.honest_trials(), 700.0);
  EXPECT_DOUBLE_EQ(params.adversary_trials(), 300.0);
  EXPECT_NEAR(params.adversary_rate(), 1e-5 * 300, 1e-15);
}

TEST(ProtocolParams, FromCRoundTrips) {
  const ProtocolParams params = ProtocolParams::from_c(1e5, 1e13, 0.25, 2.0);
  EXPECT_NEAR(params.c(), 2.0, 1e-12);
  EXPECT_NEAR(params.p(), 1.0 / (2.0 * 1e5 * 1e13), 1e-30);
}

TEST(ProtocolParams, AlphaIdentities) {
  const ProtocolParams params(200, 1e-3, 4, 0.2);
  // α + ᾱ = 1 (Eqs. 7–8).
  EXPECT_NEAR((params.alpha() + params.alpha_bar()).linear(), 1.0, 1e-12);
  // α₁ ≤ α, both positive.
  EXPECT_LE(params.alpha1().log(), params.alpha().log());
  EXPECT_GT(params.alpha1().linear(), 0.0);
  // Explicit forms: ᾱ = (1−p)^{μn}, α₁ = pμn(1−p)^{μn−1}.
  const double mu_n = params.honest_trials();
  EXPECT_NEAR(params.alpha_bar().log(), mu_n * std::log1p(-1e-3), 1e-12);
  EXPECT_NEAR(params.alpha1().log(),
              std::log(1e-3 * mu_n) + (mu_n - 1) * std::log1p(-1e-3), 1e-12);
}

TEST(ProtocolParams, LogMuOverNu) {
  const ProtocolParams params(100, 1e-4, 2, 0.25);
  EXPECT_NEAR(params.log_mu_over_nu(), std::log(3.0), 1e-12);
}

TEST(ProtocolParams, PaperScaleAlphaDoesNotUnderflow) {
  // Figure 1 parameters: n = 10⁵, Δ = 10¹³, c = 0.1 … 100.
  const ProtocolParams params = ProtocolParams::from_c(1e5, 1e13, 0.49, 0.1);
  EXPECT_TRUE(std::isfinite(params.alpha_bar().log()));
  EXPECT_TRUE(std::isfinite(params.alpha1().log()));
  EXPECT_LT(params.alpha_bar().log(), 0.0);
  // ᾱ^{2Δ} = e^{−2μ/c} approximately: ln = 2Δ·μn·ln(1−p) ≈ −2μ/c.
  const double expected = -2.0 * params.mu() / params.c();
  EXPECT_NEAR(params.alpha_bar().pow(2.0 * params.delta()).log(), expected,
              std::fabs(expected) * 1e-6);
}

TEST(ProtocolParams, ValidationContracts) {
  EXPECT_THROW(ProtocolParams(3, 0.1, 1, 0.2), ContractViolation);   // n < 4
  EXPECT_THROW(ProtocolParams(10, 0.0, 1, 0.2), ContractViolation);  // p = 0
  EXPECT_THROW(ProtocolParams(10, 1.0, 1, 0.2), ContractViolation);  // p = 1
  EXPECT_THROW(ProtocolParams(10, 0.1, 0.5, 0.2),
               ContractViolation);  // Δ < 1
  EXPECT_THROW(ProtocolParams(10, 0.1, 1, 0.0),
               ContractViolation);  // ν = 0 violates (2)
  EXPECT_THROW(ProtocolParams(10, 0.1, 1, 0.5),
               ContractViolation);  // ν = ½ violates (2)
  EXPECT_THROW(ProtocolParams::from_c(10, 1, 0.2, 0.0), ContractViolation);
}

}  // namespace
}  // namespace neatbound::bounds
