// NEATBOUND_INVARIANT contract: in checking builds (Debug, sanitized, or
// -DNEATBOUND_CHECK_INVARIANTS=ON) a false condition throws
// ContractViolation from the mutation site; in Release the condition is
// not even evaluated.  Both halves are asserted here, so whichever
// configuration this suite is built in, the macro's behaviour in *that*
// configuration is pinned.
#include "support/invariant.hpp"

#include <gtest/gtest.h>

namespace neatbound {
namespace {

TEST(Invariant, TrueConditionIsAlwaysSilent) {
  EXPECT_NO_THROW(NEATBOUND_INVARIANT(1 + 1 == 2, "arithmetic works"));
}

TEST(Invariant, FalseConditionThrowsExactlyInCheckingBuilds) {
  if (invariant_checks_enabled()) {
    EXPECT_THROW(NEATBOUND_INVARIANT(false, "must be loud"),
                 ContractViolation);
  } else {
    EXPECT_NO_THROW(NEATBOUND_INVARIANT(false, "compiled out"));
  }
}

TEST(Invariant, ConditionNotEvaluatedWhenCompiledOut) {
  int evaluations = 0;
  [[maybe_unused]] const auto probe = [&]() {
    ++evaluations;
    return true;
  };
  NEATBOUND_INVARIANT(probe(), "side-effect probe");
  EXPECT_EQ(evaluations, invariant_checks_enabled() ? 1 : 0);
}

TEST(Invariant, MessageNamesTheMutationSite) {
  if (!invariant_checks_enabled()) GTEST_SKIP() << "checks compiled out";
  try {
    NEATBOUND_INVARIANT(2 < 1, "ordering went backwards");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("structural invariant"), std::string::npos);
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("ordering went backwards"), std::string::npos);
    EXPECT_NE(what.find("test_invariant.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace neatbound
