#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "support/cli.hpp"
#include "support/contracts.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace neatbound {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"a", "long-header"});
  t.add_row({"1", "2"});
  t.add_row({"100", "20000"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("| 100 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), ContractViolation);
}

TEST(Format, General) {
  EXPECT_EQ(format_general(0.5), "0.5");
  EXPECT_EQ(format_general(123456789.0, 3), "1.23e+08");
}

TEST(Format, Fixed) { EXPECT_EQ(format_fixed(1.23456, 2), "1.23"); }

TEST(Format, Sci) { EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04"); }

TEST(CsvWriter, WritesAndQuotes) {
  const std::string path = ::testing::TempDir() + "neatbound_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "note"});
    csv.add_row({"1", "plain"});
    csv.add_row({"2", "has,comma"});
    csv.add_row({"3", "has\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,note");
  std::getline(in, line);
  EXPECT_EQ(line, "1,plain");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"has\"\"quote\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWrongWidth) {
  const std::string path = ::testing::TempDir() + "neatbound_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), ContractViolation);
  csv.close();
  std::remove(path.c_str());
}

TEST(CliArgs, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--rounds=100", "--nu", "0.3", "--verbose"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_uint("rounds", 0), 100u);
  EXPECT_DOUBLE_EQ(args.get_double("nu", 0.0), 0.3);
  EXPECT_TRUE(args.get_bool("verbose", false));
  args.reject_unconsumed();
}

TEST(CliArgs, DefaultsApply) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("missing", -7), -7);
  EXPECT_EQ(args.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--typo=1"};
  CliArgs args(2, argv);
  (void)args.get_int("rounds", 0);
  EXPECT_THROW(args.reject_unconsumed(), std::runtime_error);
}

TEST(CliArgs, RejectsMalformedNumber) {
  const char* argv[] = {"prog", "--x=abc"};
  CliArgs args(2, argv);
  EXPECT_THROW((void)args.get_double("x", 0.0), std::runtime_error);
}

TEST(CliArgs, RejectsNegativeUint) {
  const char* argv[] = {"prog", "--x=-5"};
  CliArgs args(2, argv);
  EXPECT_THROW((void)args.get_uint("x", 0), std::runtime_error);
}

TEST(CliArgs, RejectsNonFlagToken) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(CliArgs(2, argv), std::runtime_error);
}

}  // namespace
}  // namespace neatbound
