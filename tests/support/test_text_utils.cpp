#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "support/cli.hpp"
#include "support/contracts.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace neatbound {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"a", "long-header"});
  t.add_row({"1", "2"});
  t.add_row({"100", "20000"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("| 100 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), ContractViolation);
}

TEST(Format, General) {
  EXPECT_EQ(format_general(0.5), "0.5");
  EXPECT_EQ(format_general(123456789.0, 3), "1.23e+08");
}

TEST(Format, Fixed) { EXPECT_EQ(format_fixed(1.23456, 2), "1.23"); }

TEST(Format, Sci) { EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04"); }

TEST(CsvWriter, WritesAndQuotes) {
  const std::string path = ::testing::TempDir() + "neatbound_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "note"});
    csv.add_row({"1", "plain"});
    csv.add_row({"2", "has,comma"});
    csv.add_row({"3", "has\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,note");
  std::getline(in, line);
  EXPECT_EQ(line, "1,plain");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"has\"\"quote\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWrongWidth) {
  const std::string path = ::testing::TempDir() + "neatbound_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), ContractViolation);
  csv.close();
  std::remove(path.c_str());
}

TEST(CliArgs, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--rounds=100", "--nu", "0.3", "--verbose"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_uint("rounds", 0), 100u);
  EXPECT_DOUBLE_EQ(args.get_double("nu", 0.0), 0.3);
  EXPECT_TRUE(args.get_bool("verbose", false));
  args.reject_unconsumed();
}

TEST(CliArgs, DefaultsApply) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("missing", -7), -7);
  EXPECT_EQ(args.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--typo=1"};
  CliArgs args(2, argv);
  (void)args.get_int("rounds", 0);
  EXPECT_THROW(args.reject_unconsumed(), std::runtime_error);
}

TEST(CliArgs, RejectsMalformedNumber) {
  const char* argv[] = {"prog", "--x=abc"};
  CliArgs args(2, argv);
  EXPECT_THROW((void)args.get_double("x", 0.0), std::runtime_error);
}

TEST(CliArgs, RejectsNegativeUint) {
  const char* argv[] = {"prog", "--x=-5"};
  CliArgs args(2, argv);
  EXPECT_THROW((void)args.get_uint("x", 0), std::runtime_error);
}

TEST(CliArgs, RejectsNonFlagToken) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(CliArgs(2, argv), std::runtime_error);
}

// Regression: has() used to leave the flag unconsumed, so probing a flag
// only via has() made reject_unconsumed() report it as unknown.
TEST(CliArgs, HasCountsAsConsumption) {
  const char* argv[] = {"prog", "--probe-only=1"};
  CliArgs args(2, argv);
  EXPECT_TRUE(args.has("probe-only"));
  EXPECT_NO_THROW(args.reject_unconsumed());
}

// Regression: get_uint parsed through std::stoll, rejecting valid values
// in (INT64_MAX, UINT64_MAX].
TEST(CliArgs, GetUintAcceptsFullUnsignedRange) {
  const char* argv[] = {"prog", "--big=18446744073709551615",
                        "--above-int64=9223372036854775808"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_uint("big", 0), 18446744073709551615ull);
  EXPECT_EQ(args.get_uint("above-int64", 0), 9223372036854775808ull);
  args.reject_unconsumed();
}

TEST(CliArgs, GetUintRejectsOverflowAndGarbage) {
  const char* argv[] = {"prog", "--x=18446744073709551616", "--y=12abc"};
  CliArgs args(3, argv);
  EXPECT_THROW((void)args.get_uint("x", 0), std::runtime_error);
  EXPECT_THROW((void)args.get_uint("y", 0), std::runtime_error);
}

TEST(CliArgs, GetUintRejectsNegativeBehindAnyWhitespace) {
  // std::stoull skips all isspace characters, so the negative guard must
  // too — "\v-2" used to wrap to 18446744073709551614.
  const char* argv[] = {"prog", "--a=\v-2", "--b= \n-7"};
  CliArgs args(3, argv);
  EXPECT_THROW((void)args.get_uint("a", 0), std::runtime_error);
  EXPECT_THROW((void)args.get_uint("b", 0), std::runtime_error);
}

TEST(CliArgs, UsageListsRegisteredFlagsWithTypesAndDefaults) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  (void)args.get_uint("rounds", 1000, "rounds per run");
  (void)args.get_double("nu", 0.25);
  (void)args.get_string("csv", "");
  const std::string usage = args.usage();
  EXPECT_NE(usage.find("--rounds <uint>"), std::string::npos) << usage;
  EXPECT_NE(usage.find("(default: 1000)"), std::string::npos) << usage;
  EXPECT_NE(usage.find("rounds per run"), std::string::npos) << usage;
  EXPECT_NE(usage.find("--nu <number>"), std::string::npos) << usage;
  EXPECT_NE(usage.find("--csv <string>"), std::string::npos) << usage;
  EXPECT_NE(usage.find("--help"), std::string::npos) << usage;
}

TEST(CliArgs, HandleHelpPrintsUsageOnlyWhenRequested) {
  {
    const char* argv[] = {"prog", "--help"};
    CliArgs args(2, argv);
    (void)args.get_uint("rounds", 1000);
    std::ostringstream os;
    EXPECT_TRUE(args.handle_help(os));
    EXPECT_NE(os.str().find("--rounds <uint>"), std::string::npos);
    // --help counts as consumed; nothing else to reject.
    EXPECT_NO_THROW(args.reject_unconsumed());
  }
  {
    const char* argv[] = {"prog"};
    CliArgs args(1, argv);
    std::ostringstream os;
    EXPECT_FALSE(args.handle_help(os));
    EXPECT_TRUE(os.str().empty());
  }
}

TEST(CliArgs, OptionalGettersDistinguishAbsentFromProvided) {
  const char* argv[] = {"prog", "--rounds=200"};
  CliArgs args(2, argv);
  EXPECT_EQ(args.get_opt_uint("rounds", "override"), 200u);
  EXPECT_EQ(args.get_opt_uint("seeds"), std::nullopt);
  EXPECT_EQ(args.get_opt_double("nu"), std::nullopt);
  EXPECT_NO_THROW(args.reject_unconsumed());
  // Registered without a default: usage shows no "(default: …)".
  const std::string usage = args.usage();
  EXPECT_NE(usage.find("--seeds <uint>"), std::string::npos) << usage;
  EXPECT_EQ(usage.find("(default:"), std::string::npos) << usage;
}

TEST(CliArgs, OptionalGettersStillValidateValues) {
  const char* argv[] = {"prog", "--rounds=abc", "--nu=xyz"};
  CliArgs args(3, argv);
  EXPECT_THROW((void)args.get_opt_uint("rounds"), std::runtime_error);
  EXPECT_THROW((void)args.get_opt_double("nu"), std::runtime_error);
}

TEST(CliArgs, UnknownFlagErrorIncludesUsage) {
  const char* argv[] = {"prog", "--typo=1"};
  CliArgs args(2, argv);
  (void)args.get_uint("rounds", 1000);
  try {
    args.reject_unconsumed();
    FAIL() << "expected an unknown-flag error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--typo"), std::string::npos) << what;
    EXPECT_NE(what.find("--rounds <uint>"), std::string::npos) << what;
  }
}

TEST(CsvFormatRow, JoinsAndQuotes) {
  EXPECT_EQ(csv_format_row({"a", "b"}), "a,b");
  EXPECT_EQ(csv_format_row({"x,y", "q\"t"}), "\"x,y\",\"q\"\"t\"");
  EXPECT_EQ(csv_format_row({}), "");
}

}  // namespace
}  // namespace neatbound
