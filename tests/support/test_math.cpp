#include "support/math.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace neatbound {
namespace {

TEST(LogAddExp, MatchesNaive) {
  EXPECT_NEAR(log_add_exp(std::log(0.3), std::log(0.4)), std::log(0.7),
              1e-14);
}

TEST(LogAddExp, HandlesNegInfinity) {
  const double neg_inf = -std::numeric_limits<double>::infinity();
  EXPECT_EQ(log_add_exp(neg_inf, std::log(0.5)), std::log(0.5));
  EXPECT_EQ(log_add_exp(std::log(0.5), neg_inf), std::log(0.5));
  EXPECT_EQ(log_add_exp(neg_inf, neg_inf), neg_inf);
}

TEST(LogAddExp, NoOverflowForLargeArgs) {
  EXPECT_NEAR(log_add_exp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-12);
}

TEST(LogSubExp, MatchesNaive) {
  EXPECT_NEAR(log_sub_exp(std::log(0.7), std::log(0.2)), std::log(0.5),
              1e-14);
}

TEST(LogSubExp, EqualArgsGiveNegInfinity) {
  EXPECT_TRUE(std::isinf(log_sub_exp(std::log(0.3), std::log(0.3))));
}

TEST(LogSubExp, RejectsNegativeResult) {
  EXPECT_THROW((void)log_sub_exp(std::log(0.2), std::log(0.7)),
               ContractViolation);
}

TEST(LogBinomialCoefficient, SmallExactValues) {
  EXPECT_NEAR(log_binomial_coefficient(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(log_binomial_coefficient(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(log_binomial_coefficient(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(log_binomial_coefficient(52, 5), std::log(2598960.0), 1e-9);
}

TEST(LogBinomialCoefficient, Symmetry) {
  EXPECT_NEAR(log_binomial_coefficient(100, 30),
              log_binomial_coefficient(100, 70), 1e-9);
}

TEST(LogBinomialCoefficient, RejectsOutOfRange) {
  EXPECT_THROW((void)log_binomial_coefficient(5, 6), ContractViolation);
  EXPECT_THROW((void)log_binomial_coefficient(5, -1), ContractViolation);
}

TEST(Log1mExp, MatchesNaiveBothBranches) {
  // x > −ln2 branch:
  EXPECT_NEAR(log1m_exp(-0.1), std::log(1.0 - std::exp(-0.1)), 1e-14);
  // x < −ln2 branch:
  EXPECT_NEAR(log1m_exp(-3.0), std::log(1.0 - std::exp(-3.0)), 1e-14);
}

TEST(Log1mExp, RejectsNonNegative) {
  EXPECT_THROW((void)log1m_exp(0.0), ContractViolation);
}

TEST(RelativeError, Basics) {
  EXPECT_EQ(relative_error(1.0, 1.0), 0.0);
  EXPECT_NEAR(relative_error(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_EQ(relative_error(0.0, 0.0), 0.0);
}

TEST(ApproxEqual, Basics) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-13, 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.1, 1e-3));
}

TEST(Bisection, FindsFrontier) {
  // pred true iff x ≤ π.
  const auto r = bisect_last_true([](double x) { return x <= 3.14159; },
                                  0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 3.14159, 1e-9);
}

TEST(Bisection, AllFalseReportsNotConverged) {
  const auto r = bisect_last_true([](double) { return false; }, 0.0, 1.0);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.value, 0.0);
}

TEST(Bisection, AllTrueReportsNotConverged) {
  const auto r = bisect_last_true([](double) { return true; }, 0.0, 1.0);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.value, 1.0);
}

TEST(Bisection, LogGridSpansDecades) {
  // Frontier at 10⁻⁴⁰: linear bisection over [1e-80, 1] would need ~270
  // iterations to resolve; the log grid nails it.
  const auto r = bisect_last_true_log(
      [](double x) { return x <= 1e-40; }, 1e-80, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(std::log10(r.value), -40.0, 1e-6);
}

TEST(Bisection, LogGridRejectsBadBracket) {
  EXPECT_THROW(
      (void)bisect_last_true_log([](double) { return true; }, 0.0, 1.0),
      ContractViolation);
}

}  // namespace
}  // namespace neatbound
