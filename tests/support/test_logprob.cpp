#include "support/logprob.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <sstream>

#include "support/contracts.hpp"

namespace neatbound {
namespace {

TEST(LogProb, DefaultConstructsZero) {
  const LogProb p;
  EXPECT_TRUE(p.is_zero());
  EXPECT_EQ(p.linear(), 0.0);
  EXPECT_TRUE(std::isinf(p.log()));
}

TEST(LogProb, FromLinearRoundTrips) {
  for (const double v : {1e-300, 1e-10, 0.25, 0.5, 1.0, 2.0, 1e10}) {
    EXPECT_NEAR(LogProb::from_linear(v).linear(), v, v * 1e-12);
  }
}

TEST(LogProb, FromLinearRejectsNegative) {
  EXPECT_THROW((void)LogProb::from_linear(-0.1), ContractViolation);
}

TEST(LogProb, FromLinearRejectsNan) {
  EXPECT_THROW((void)LogProb::from_linear(std::nan("")), ContractViolation);
}

TEST(LogProb, FromLogRejectsNan) {
  EXPECT_THROW((void)LogProb::from_log(std::nan("")), ContractViolation);
}

TEST(LogProb, ZeroAndOneConstants) {
  EXPECT_TRUE(LogProb::zero().is_zero());
  EXPECT_EQ(LogProb::one().linear(), 1.0);
  EXPECT_EQ(LogProb::one().log(), 0.0);
}

TEST(LogProb, MultiplicationMatchesLinear) {
  const LogProb a = LogProb::from_linear(0.3);
  const LogProb b = LogProb::from_linear(0.4);
  EXPECT_NEAR((a * b).linear(), 0.12, 1e-15);
}

TEST(LogProb, MultiplicationByZeroIsZero) {
  EXPECT_TRUE((LogProb::zero() * LogProb::from_linear(0.5)).is_zero());
  EXPECT_TRUE((LogProb::from_linear(0.5) * LogProb::zero()).is_zero());
}

TEST(LogProb, MultiplicationFarBelowUnderflow) {
  // (10^-200)^4 = 10^-800 — far below double range, exact in log space.
  LogProb p = LogProb::from_linear(1e-200);
  const LogProb result = p * p * p * p;
  EXPECT_NEAR(result.log(), 4.0 * std::log(1e-200), 1e-6);
  EXPECT_EQ(result.linear(), 0.0);  // linear rendering underflows, as expected
}

TEST(LogProb, DivisionMatchesLinear) {
  const LogProb a = LogProb::from_linear(0.3);
  const LogProb b = LogProb::from_linear(0.6);
  EXPECT_NEAR((a / b).linear(), 0.5, 1e-15);
}

TEST(LogProb, DivisionByZeroThrows) {
  EXPECT_THROW((void)(LogProb::one() / LogProb::zero()), ContractViolation);
}

TEST(LogProb, ZeroDividedIsZero) {
  EXPECT_TRUE((LogProb::zero() / LogProb::from_linear(0.5)).is_zero());
}

TEST(LogProb, AdditionMatchesLinear) {
  const LogProb a = LogProb::from_linear(0.125);
  const LogProb b = LogProb::from_linear(0.25);
  EXPECT_NEAR((a + b).linear(), 0.375, 1e-15);
}

TEST(LogProb, AdditionWithZeroIsIdentity) {
  const LogProb a = LogProb::from_linear(0.7);
  EXPECT_EQ((a + LogProb::zero()).log(), a.log());
  EXPECT_EQ((LogProb::zero() + a).log(), a.log());
}

TEST(LogProb, AdditionAcrossScales) {
  // Adding a vastly smaller value must not lose the larger one.
  const LogProb big = LogProb::from_linear(1.0);
  const LogProb small = LogProb::from_log(-1000.0);
  EXPECT_NEAR((big + small).log(), 0.0, 1e-15);
}

TEST(LogProb, SubtractionMatchesLinear) {
  const LogProb a = LogProb::from_linear(0.75);
  const LogProb b = LogProb::from_linear(0.25);
  EXPECT_NEAR((a - b).linear(), 0.5, 1e-14);
}

TEST(LogProb, SubtractionToZero) {
  const LogProb a = LogProb::from_linear(0.4);
  EXPECT_TRUE((a - a).is_zero());
}

TEST(LogProb, SubtractionUnderflowThrows) {
  EXPECT_THROW(
      (void)(LogProb::from_linear(0.1) - LogProb::from_linear(0.2)),
      ContractViolation);
}

TEST(LogProb, PowHugeExponent) {
  // ᾱ^{2Δ} with ᾱ = 1 − 10⁻¹⁴ and Δ = 10¹³: ln result ≈ −0.2.
  const LogProb abar = LogProb::from_log(std::log1p(-1e-14));
  const LogProb result = abar.pow(2e13);
  EXPECT_NEAR(result.log(), 2e13 * std::log1p(-1e-14), 1e-12);
  EXPECT_NEAR(result.linear(), std::exp(-0.2), 1e-3);
}

TEST(LogProb, PowZeroBaseRequiresPositiveExponent) {
  EXPECT_THROW((void)LogProb::zero().pow(0.0), ContractViolation);
  EXPECT_TRUE(LogProb::zero().pow(2.0).is_zero());
}

TEST(LogProb, ComplementBasics) {
  EXPECT_NEAR(LogProb::from_linear(0.25).complement().linear(), 0.75, 1e-15);
  EXPECT_TRUE(LogProb::one().complement().is_zero());
  EXPECT_EQ(LogProb::zero().complement().log(), 0.0);
}

TEST(LogProb, ComplementNearOneIsPrecise) {
  // 1 − (1 − 10⁻¹⁸): naive linear math returns 0; log space keeps 10⁻¹⁸.
  const LogProb nearly_one = LogProb::from_log(std::log1p(-1e-18));
  EXPECT_NEAR(nearly_one.complement().log(), std::log(1e-18), 1e-9);
}

TEST(LogProb, ComplementAboveOneThrows) {
  EXPECT_THROW((void)LogProb::from_linear(1.5).complement(),
               ContractViolation);
}

TEST(LogProb, ComparisonsFollowMagnitude) {
  const LogProb small = LogProb::from_linear(0.1);
  const LogProb large = LogProb::from_linear(0.9);
  EXPECT_LT(small, large);
  EXPECT_GT(large, small);
  EXPECT_EQ(small, LogProb::from_linear(0.1));
  EXPECT_LE(LogProb::zero(), small);
}

TEST(LogProb, StreamOutput) {
  std::ostringstream os;
  os << LogProb::from_linear(0.5);
  EXPECT_EQ(os.str(), "0.5");
  std::ostringstream os2;
  os2 << LogProb::from_log(-1e6);  // unrepresentable linearly
  EXPECT_EQ(os2.str(), "exp(-1e+06)");
}

TEST(PowOneMinus, MatchesNaiveForModerateArgs) {
  EXPECT_NEAR(pow_one_minus(0.25, 10.0).linear(), std::pow(0.75, 10.0),
              1e-12);
}

TEST(PowOneMinus, StableForTinyP) {
  // (1−10⁻²⁰)^{10²⁰} → 1/e; naive pow(1-p, k) would see pow(1.0, k) = 1.
  EXPECT_NEAR(pow_one_minus(1e-20, 1e20).linear(), std::exp(-1.0), 1e-6);
}

TEST(PowOneMinus, ContractChecks) {
  EXPECT_THROW((void)pow_one_minus(1.0, 2.0), ContractViolation);
  EXPECT_THROW((void)pow_one_minus(-0.1, 2.0), ContractViolation);
  EXPECT_THROW((void)pow_one_minus(0.1, -1.0), ContractViolation);
}

// Property sweep: (a·b)/b == a and (a+b)−b == a across magnitudes.
class LogProbAlgebra : public ::testing::TestWithParam<double> {};

TEST_P(LogProbAlgebra, MulDivRoundTrip) {
  const double x = GetParam();
  const LogProb a = LogProb::from_linear(x);
  const LogProb b = LogProb::from_linear(0.37);
  EXPECT_NEAR(((a * b) / b).log(), a.log(), 1e-12);
}

TEST_P(LogProbAlgebra, AddSubRoundTrip) {
  const double x = GetParam();
  const LogProb a = LogProb::from_linear(x);
  const LogProb b = LogProb::from_linear(x * 0.5);
  EXPECT_NEAR(((a + b) - b).log(), a.log(), 1e-9);
}

TEST_P(LogProbAlgebra, PowSplitsMultiplicatively) {
  const double x = GetParam();
  const LogProb a = LogProb::from_linear(x);
  EXPECT_NEAR(a.pow(5.0).log(), (a * a * a * a * a).log(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, LogProbAlgebra,
                         ::testing::Values(1e-250, 1e-50, 1e-9, 0.1, 0.5,
                                           0.999, 1.0, 3.5, 1e20));

}  // namespace
}  // namespace neatbound
