// TSan-targeted stress tests for parallel_for_indexed: the shared work
// pool under high contention, worker exceptions racing the shutdown path,
// and nested pools.  These pass trivially in a plain build; their job is
// to give ThreadSanitizer (NEATBOUND_SANITIZE=thread) enough concurrent
// traffic over the pool's atomics, the error-capture mutex and the join
// path to flush out any ordering bug.
#include "support/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace neatbound {
namespace {

TEST(ParallelStress, HighContentionEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 50000;
  // Tiny per-job bodies keep the workers hammering the shared counter —
  // maximum contention on the index dispenser.
  std::vector<std::atomic<std::uint32_t>> hits(kCount);
  parallel_for_indexed(kCount, 8, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ParallelStress, MutexGuardedFoldSeesEveryIndex) {
  constexpr std::size_t kCount = 20000;
  std::mutex mutex;
  std::vector<std::size_t> seen;
  seen.reserve(kCount);
  parallel_for_indexed(kCount, 8, [&](std::size_t i) {
    const std::lock_guard<std::mutex> lock(mutex);
    seen.push_back(i);
  });
  ASSERT_EQ(seen.size(), kCount);
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_EQ(seen[i], i);
}

TEST(ParallelStress, ExceptionFromWorkerUnderContention) {
  // Many workers, many throwing indices: the first captured exception is
  // rethrown, every thread joins, and indices that did run ran once.
  // Repeated so TSan sees the capture/shutdown race from many schedules.
  constexpr std::size_t kCount = 4000;
  for (int iteration = 0; iteration < 10; ++iteration) {
    std::vector<std::atomic<std::uint32_t>> hits(kCount);
    bool threw = false;
    try {
      parallel_for_indexed(kCount, 8, [&](std::size_t i) {
        if (i % 97 == 13) throw std::runtime_error("worker failure");
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
    } catch (const std::runtime_error& error) {
      threw = true;
      EXPECT_STREQ(error.what(), "worker failure");
    }
    EXPECT_TRUE(threw);
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_LE(hits[i].load(), 1u) << "index " << i << " ran twice";
    }
  }
}

TEST(ParallelStress, NestedPoolsFoldInDeterministicOrder) {
  // An outer pool whose workers each run an inner pool — the shape the
  // experiment layer would take if a sink ever parallelized per-cell
  // post-processing.  The inner fold is serial (threads=1), so each
  // chunk's partial sums must come out in index order regardless of how
  // the outer workers interleave.
  constexpr std::size_t kChunks = 16;
  constexpr std::size_t kChunkSize = 500;
  std::vector<std::vector<std::size_t>> folds(kChunks);
  parallel_for_indexed(kChunks, 4, [&](std::size_t chunk) {
    std::vector<std::size_t>& fold = folds[chunk];
    parallel_for_indexed(kChunkSize, 1, [&](std::size_t i) {
      // threads=1 runs inline in index order — append order IS index
      // order, which the assertions below pin.
      fold.push_back(chunk * kChunkSize + i);
    });
  });
  for (std::size_t chunk = 0; chunk < kChunks; ++chunk) {
    ASSERT_EQ(folds[chunk].size(), kChunkSize);
    for (std::size_t i = 0; i < kChunkSize; ++i) {
      ASSERT_EQ(folds[chunk][i], chunk * kChunkSize + i);
    }
  }
}

TEST(ParallelStress, NestedParallelPoolsDoNotDeadlockOrRace) {
  // Both levels multi-threaded: outer workers spawning inner workers must
  // neither deadlock nor trample each other's chunks.
  constexpr std::size_t kChunks = 8;
  constexpr std::size_t kChunkSize = 2000;
  std::vector<std::atomic<std::uint64_t>> sums(kChunks);
  parallel_for_indexed(kChunks, 4, [&](std::size_t chunk) {
    parallel_for_indexed(kChunkSize, 2, [&](std::size_t i) {
      sums[chunk].fetch_add(i, std::memory_order_relaxed);
    });
  });
  const std::uint64_t expected = kChunkSize * (kChunkSize - 1) / 2;
  for (std::size_t chunk = 0; chunk < kChunks; ++chunk) {
    ASSERT_EQ(sums[chunk].load(), expected);
  }
}

}  // namespace
}  // namespace neatbound
