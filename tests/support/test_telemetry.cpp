// Telemetry contract tests (docs/observability.md): the macros compile in
// every configuration and respect the build gate (true no-ops when the
// gate is off), the accumulator fold is associative and seed-order
// independent, the name tables cover their enums, and the Chrome-trace
// exporter emits a parseable document in both configurations.
#include "support/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace neatbound::telemetry {
namespace {

TEST(Telemetry, MacrosRespectBuildGate) {
  reset();
  NEATBOUND_COUNT(kDeliveries);
  NEATBOUND_COUNT_ADD(kDeliveries, 3);
  {
    NEATBOUND_PHASE_SCOPE(kDeliver);
  }
  const TelemetrySnapshot snap = snapshot();
  const auto deliveries = static_cast<std::size_t>(Counter::kDeliveries);
  if constexpr (enabled()) {
    EXPECT_EQ(snap.counters[deliveries], 4u);
    ASSERT_EQ(phase_events().size(), 1u);
    EXPECT_EQ(phase_events()[0].phase, Phase::kDeliver);
  } else {
    for (const std::uint64_t value : snap.counters) EXPECT_EQ(value, 0u);
    for (const std::uint64_t value : snap.phase_nanos) EXPECT_EQ(value, 0u);
    EXPECT_TRUE(phase_events().empty());
    // The OFF PhaseScope is an empty stand-in — the macros expand to
    // nothing, so there is no state to carry.
    EXPECT_EQ(sizeof(PhaseScope), 1u);
  }
  reset();
}

TEST(Telemetry, NameTablesCoverTheirEnums) {
  std::set<std::string> counter_names;
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    const char* name = counter_name(static_cast<Counter>(c));
    ASSERT_NE(name, nullptr);
    EXPECT_FALSE(std::string(name).empty());
    counter_names.insert(name);
  }
  EXPECT_EQ(counter_names.size(), kCounterCount) << "duplicate counter name";

  std::set<std::string> phase_names;
  for (std::size_t ph = 0; ph < kPhaseCount; ++ph) {
    const char* name = phase_name(static_cast<Phase>(ph));
    ASSERT_NE(name, nullptr);
    EXPECT_FALSE(std::string(name).empty());
    phase_names.insert(name);
  }
  EXPECT_EQ(phase_names.size(), kPhaseCount) << "duplicate phase name";
}

/// A snapshot whose every slot is distinct, so a swapped index or a lost
/// run shows up as a sum mismatch.
TelemetrySnapshot numbered_snapshot(std::uint64_t base) {
  TelemetrySnapshot snap;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    snap.counters[i] = base * 100 + i;
  }
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    snap.phase_nanos[i] = base * 1000 + i;
  }
  return snap;
}

bool equal(const TelemetryAccumulator& a, const TelemetryAccumulator& b) {
  return a.counters == b.counters && a.phase_nanos == b.phase_nanos &&
         a.runs == b.runs;
}

TEST(TelemetryAccumulator, AddSumsSlotwiseAndCountsRuns) {
  TelemetryAccumulator acc;
  acc.add(numbered_snapshot(1));
  acc.add(numbered_snapshot(2));
  EXPECT_EQ(acc.runs, 2u);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    EXPECT_EQ(acc.counters[i], 300 + 2 * i);
  }
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    EXPECT_EQ(acc.phase_nanos[i], 3000 + 2 * i);
  }
}

TEST(TelemetryAccumulator, MergeIsAssociative) {
  TelemetryAccumulator a;
  TelemetryAccumulator b;
  TelemetryAccumulator c;
  a.add(numbered_snapshot(1));
  b.add(numbered_snapshot(2));
  b.add(numbered_snapshot(3));
  c.add(numbered_snapshot(4));

  TelemetryAccumulator left = a;  // (a ⊕ b) ⊕ c
  left.merge(b);
  left.merge(c);

  TelemetryAccumulator bc = b;  // a ⊕ (b ⊕ c)
  bc.merge(c);
  TelemetryAccumulator right = a;
  right.merge(bc);

  EXPECT_TRUE(equal(left, right));
  EXPECT_EQ(left.runs, 4u);
}

TEST(TelemetryAccumulator, FoldIsSeedOrderIndependent) {
  std::vector<TelemetrySnapshot> runs;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    runs.push_back(numbered_snapshot(seed));
  }
  TelemetryAccumulator forward;
  for (const TelemetrySnapshot& snap : runs) forward.add(snap);
  TelemetryAccumulator reversed;
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) reversed.add(*it);
  EXPECT_TRUE(equal(forward, reversed));
}

TEST(Telemetry, ChromeTraceExportsParseableDocument) {
  std::vector<PhaseEvent> events;
  events.push_back({1'000'000, 500'000, Phase::kDeliver});
  events.push_back({2'000'000, 250'000, Phase::kMine});
  TelemetrySnapshot snap;
  snap.counters[static_cast<std::size_t>(Counter::kDeliveries)] = 7;

  std::ostringstream os;
  write_chrome_trace(os, events, snap);
  const support::JsonValue doc = support::parse_json(os.str());
  const auto& trace_events = doc.at("traceEvents").as_array();
  // One process_name metadata record, one "X" per scope, two instant
  // events (counters, phase totals).
  ASSERT_EQ(trace_events.size(), events.size() + 3);
  EXPECT_NE(os.str().find("\"process_name\""), std::string::npos);
  EXPECT_NE(os.str().find("\"deliver\""), std::string::npos);
  EXPECT_NE(os.str().find("\"phase_totals_ns\""), std::string::npos);
}

TEST(Telemetry, ChromeTraceTimestampsAreFixedPointMicros) {
  // ts/dur are fixed-point fractional µs with ns resolution.  A run
  // longer than ~1 s must not degrade into scientific notation or
  // rounded timestamps (scripts/check_trace.py --chrome enforces plain
  // non-negative numbers on the CI side).
  std::vector<PhaseEvent> events;
  events.push_back({5'000'000'000'000, 1'234'567'891'234, Phase::kDeliver});
  events.push_back({9'876'543'210'987, 42, Phase::kMine});

  std::ostringstream os;
  write_chrome_trace(os, events, TelemetrySnapshot{});
  const std::string text = os.str();
  EXPECT_EQ(text.find("e+"), std::string::npos);  // no scientific notation
  EXPECT_EQ(text.find("e-"), std::string::npos);
  EXPECT_NE(text.find("\"ts\":0.000,\"dur\":1234567891.234"),
            std::string::npos);
  // Second event rebased against the first scope's start.
  EXPECT_NE(text.find("\"ts\":4876543210.987,\"dur\":0.042"),
            std::string::npos);
  (void)support::parse_json(text);  // still a valid JSON document
}

TEST(Telemetry, ChromeTraceValidWithNoEvents) {
  // An OFF build has no timeline; the document must still parse (the
  // CLI writes it with a note either way).
  std::ostringstream os;
  write_chrome_trace(os, {}, TelemetrySnapshot{});
  const support::JsonValue doc = support::parse_json(os.str());
  EXPECT_EQ(doc.at("traceEvents").as_array().size(), 3u);
}

}  // namespace
}  // namespace neatbound::telemetry
